package canonstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]byte{}
	for i := uint64(0); i < 100; i++ {
		v := []byte(fmt.Sprintf("value-%d", i))
		want[i] = v
		if _, err := d.Put(Entry{Key: i, Value: v, Storage: "s", Access: "", Level: 1, Version: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete(42, "s", "", false); err != nil {
		t.Fatal(err)
	}
	delete(want, 42)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Keys() != len(want) {
		t.Fatalf("Keys() = %d after reopen, want %d", d2.Keys(), len(want))
	}
	for k, v := range want {
		got := d2.Get(k, nil)
		if len(got) != 1 || !bytes.Equal(got[0].Value, v) || got[0].Version != k+1 || got[0].Level != 1 {
			t.Fatalf("key %d after reopen: %+v", k, got)
		}
	}
	if got := d2.Get(42, nil); len(got) != 0 {
		t.Fatalf("deleted key resurrected: %+v", got)
	}
}

func TestDiskRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations; CompactMinSegments=2 makes the
	// background compactor run during the writes.
	d, err := Open(dir, Options{SegmentBytes: 2 << 10, CompactMinSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 128)
	for i := uint64(0); i < 400; i++ {
		if _, err := d.Put(Entry{Key: i % 50, Value: val, Storage: "s", Version: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Wait for the compactor to drain: segment count must come down to a
	// small constant despite ~25 rotations' worth of appends.
	deadline := time.Now().Add(5 * time.Second)
	for {
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if len(segs) <= 3 || time.Now().After(deadline) {
			if len(segs) > 3 {
				t.Fatalf("compaction never caught up: %d segments", len(segs))
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Keys() != 50 {
		t.Fatalf("Keys() = %d after compacted reopen, want 50", d2.Keys())
	}
	for i := uint64(0); i < 50; i++ {
		got := d2.Get(i, nil)
		if len(got) != 1 || !bytes.Equal(got[0].Value, val) {
			t.Fatalf("key %d after compaction: %d entries", i, len(got))
		}
		// The surviving version must be the newest write for that key.
		if got[0].Version < 351 {
			t.Fatalf("key %d kept stale version %d", i, got[0].Version)
		}
	}
}

func TestDiskCorruptSealedSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("y"), 100)
	for i := uint64(0); i < 60; i++ {
		if _, err := d.Put(Entry{Key: i, Value: val, Version: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("test needs >= 2 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the FIRST segment: that is sealed
	// history, so Open must refuse rather than silently drop acked data.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestDiskTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Put(Entry{Key: 1, Value: []byte("keep"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage to the newest segment: a torn tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	newest := segs[len(segs)-1]
	// Close wrote nothing after Sync, so the newest non-empty segment
	// holds the record; find it.
	for i := len(segs) - 1; i >= 0; i-- {
		if fi, _ := os.Stat(segs[i]); fi != nil && fi.Size() > 0 {
			newest = segs[i]
			break
		}
	}
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(newest)

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	defer d2.Close()
	if got := d2.Get(1, nil); len(got) != 1 || string(got[0].Value) != "keep" {
		t.Fatalf("acked record lost: %+v", got)
	}
	after, _ := os.Stat(newest)
	if after.Size() != before.Size()-3 {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestDiskClosedOps(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Put(Entry{Key: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}
