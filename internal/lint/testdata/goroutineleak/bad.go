// Package goroutineleak is the golden fixture for the goroutine-leak check:
// goroutines that can reach an endless loop with no statement that ever
// leaves it.
package goroutineleak

import "time"

// Prober is a long-lived struct in the netnode mold.
type Prober struct {
	stop chan struct{}
}

// loop never exits: for {} with no return, break, or panic.
func (p *Prober) loop() {
	for {
		time.Sleep(time.Second)
	}
}

// Start leaks loop.
func (p *Prober) Start() {
	go p.loop() // want `goroutine spawned here runs an endless loop in .*loop.* with no reachable stop path`
}

// run reaches the endless loop one call down; the chain still finds it.
func (p *Prober) run() {
	p.spin()
}

func (p *Prober) spin() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// StartIndirect leaks through run -> spin.
func (p *Prober) StartIndirect() {
	go p.run() // want `goroutine spawned here runs an endless loop in .*spin.* with no reachable stop path`
}

// tickForever ranges over a ticker channel, which never closes: as endless
// as for {}.
func (p *Prober) tickForever(t *time.Ticker) {
	for range t.C {
		p.work()
	}
}

func (p *Prober) work() {}

// StartTicker leaks tickForever.
func (p *Prober) StartTicker(t *time.Ticker) {
	go p.tickForever(t) // want `goroutine spawned here runs an endless loop in .*tickForever.* with no reachable stop path`
}

// ignoresSignal receives the stop signal but never leaves the loop — the
// check calls that out specifically.
func (p *Prober) ignoresSignal(t *time.Ticker) {
	for {
		select {
		case <-p.stop:
		case <-t.C:
			p.work()
		}
	}
}

// StartDeaf leaks ignoresSignal despite its stop case.
func (p *Prober) StartDeaf(t *time.Ticker) {
	go p.ignoresSignal(t) // want `endless loop in .*ignoresSignal.*receives a stop signal but never leaves the loop`
}

// literalLeak spawns an endless closure.
func (p *Prober) literalLeak() {
	go func() { // want `goroutine spawned here runs an endless loop in func literal`
		for {
			time.Sleep(time.Second)
		}
	}()
}
