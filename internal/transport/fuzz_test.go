package transport_test

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/transport"
)

// FuzzMessageDecode ensures arbitrary payload bytes never panic Decode.
func FuzzMessageDecode(f *testing.F) {
	f.Add([]byte(`{"x":1}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		msg := transport.Message{Type: "fuzz", Payload: payload}
		var out map[string]any
		_ = msg.Decode(&out) // must not panic
		var s struct {
			X int `json:"x"`
		}
		_ = msg.Decode(&s)
	})
}

// FuzzTCPFrame throws raw bytes at a live TCP server: malformed frames must
// be rejected without panics, hangs or resource leaks.
func FuzzTCPFrame(f *testing.F) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = srv.Close() })
	srv.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		return msg, nil
	})

	good := func(body string) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(good(`{"type":"echo"}`))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})           // absurd length
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'})             // truncated body
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0, 0, 0, 0}) // frame + empty frame

	f.Fuzz(func(t *testing.T, raw []byte) {
		conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			t.Skip("dial failed")
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
		_, _ = conn.Write(raw)
		buf := make([]byte, 1024)
		_, _ = conn.Read(buf) // response or error; either is fine
	})
}
