package lint

import (
	"go/ast"
)

// checkSimDeterminism flags wall-clock reads and global-RNG draws inside the
// pure-simulation packages (the analytical Canon model, the flat-DHT
// baselines, and the experiment harness). Their results must be reproducible
// from a seed alone — the paper's figures are regenerated in CI — so
// time.Now/Since/Sleep and math/rand's global source are banned there; real
// time belongs to the live stack (netnode, transport, cmd).
var checkSimDeterminism = Check{
	Name: "simdeterminism",
	Doc:  "time.Now/Since/Sleep and global RNG inside seed-reproducible simulation packages",
	Run:  runSimDeterminism,
}

// wallClockFuncs are the time package functions that read or depend on the
// wall clock (duration constants like time.Millisecond remain fine).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runSimDeterminism(pass *Pass) {
	if !pass.Cfg.SimPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		reportGlobalRandCalls(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, name, ok := pass.PkgFuncCall(call); ok && pkgPath == "time" && wallClockFuncs[name] {
				pass.Reportf(call.Pos(),
					"time.%s in pure-simulation package %s; results must be reproducible from the seed alone", name, pass.Pkg.Path)
			}
			return true
		})
	}
}
