package canonstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	entries := []Entry{
		{},
		{Key: 1, Value: []byte("v"), Storage: "a/b", Access: "a", Level: 2, Version: 9},
		{Key: ^uint64(0), Value: []byte{}, PtrID: 3, PtrName: "x/y", PtrAddr: "h:1", Level: -1},
	}
	var log []byte
	for _, e := range entries {
		log = appendRecord(log, recPut, appendEntry(nil, e))
	}
	log = appendRecord(log, recDelete, appendDelete(nil, 7, "s", "a", true))

	var got []Entry
	dels := 0
	consumed, err := scanRecords(log, func(typ byte, payload []byte) error {
		switch typ {
		case recPut:
			e, err := decodeEntry(payload)
			if err != nil {
				return err
			}
			got = append(got, e)
		case recDelete:
			key, storage, access, pointer, err := decodeDelete(payload)
			if err != nil {
				return err
			}
			if key != 7 || storage != "s" || access != "a" || !pointer {
				t.Fatalf("delete decoded wrong: %d %q %q %v", key, storage, access, pointer)
			}
			dels++
		}
		return nil
	})
	if err != nil || consumed != len(log) {
		t.Fatalf("scan: consumed %d/%d, err %v", consumed, len(log), err)
	}
	if dels != 1 || len(got) != len(entries) {
		t.Fatalf("got %d puts %d deletes", len(got), dels)
	}
	for i, e := range entries {
		if !bytes.Equal(got[i].Value, e.Value) || got[i].Key != e.Key || got[i].Level != e.Level ||
			got[i].Version != e.Version || got[i].PtrAddr != e.PtrAddr {
			t.Fatalf("entry %d round-trip: got %+v want %+v", i, got[i], e)
		}
		// The nil/empty value distinction must survive.
		if (got[i].Value == nil) != (e.Value == nil) {
			t.Fatalf("entry %d nil-ness lost", i)
		}
	}
}

func TestScanRecordsTornTails(t *testing.T) {
	whole := appendRecord(nil, recPut, appendEntry(nil, Entry{Key: 5, Value: []byte("hello")}))
	for cut := 1; cut < len(whole); cut++ {
		good := appendRecord(nil, recPut, appendEntry(nil, Entry{Key: 4, Value: []byte("ok")}))
		log := append(append([]byte(nil), good...), whole[:cut]...)
		n := 0
		consumed, err := scanRecords(log, func(byte, []byte) error { n++; return nil })
		if !errors.Is(err, errTorn) {
			t.Fatalf("cut %d: err = %v, want errTorn", cut, err)
		}
		if consumed != len(good) || n != 1 {
			t.Fatalf("cut %d: consumed %d records %d", cut, consumed, n)
		}
	}
	// A flipped payload byte is a checksum mismatch, also torn.
	bad := append([]byte(nil), whole...)
	bad[len(bad)-1] ^= 1
	if _, err := scanRecords(bad, func(byte, []byte) error { return nil }); !errors.Is(err, errTorn) {
		t.Fatalf("flipped byte: err = %v, want errTorn", err)
	}
}

// failWriter passes bytes through until its budget runs out, then fails
// forever — the crash model: a process dies mid-write, leaving an
// arbitrary prefix of the last write on disk.
type failWriter struct {
	w         io.Writer
	remaining int
	failed    bool
}

var errInjected = errors.New("injected write failure")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.failed {
		return 0, errInjected
	}
	if len(p) <= f.remaining {
		f.remaining -= len(p)
		return f.w.Write(p)
	}
	n := f.remaining
	f.remaining = 0
	f.failed = true
	if n > 0 {
		_, _ = f.w.Write(p[:n])
	}
	return n, errInjected
}

// TestWALCrashRecovery is the crash-safety property test: kill the WAL
// write path at a random byte offset, reopen, and assert that (1) every
// acked write survives with its exact content and (2) nothing the writer
// never wrote appears — the torn tail is discarded, not misparsed.
func TestWALCrashRecovery(t *testing.T) {
	rounds := 25
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) * 7919))
		dir := t.TempDir()
		fw := &failWriter{remaining: 1 + rng.Intn(48<<10)}
		d, err := Open(dir, Options{
			SegmentBytes:       8 << 10,
			CompactMinSegments: 1 << 30, // compaction writes outside the fault path; keep the test single-mechanism
			testWrapWriter: func(w io.Writer) io.Writer {
				fw.w = w
				return fw
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		type ident struct {
			key             uint64
			storage, access string
		}
		acked := map[ident]Entry{}
		attempted := map[ident][]Entry{}
		for i := 0; i < 4000; i++ {
			e := Entry{
				Key:     uint64(rng.Intn(200)),
				Value:   randBytes(rng, rng.Intn(256)),
				Storage: fmt.Sprintf("d%d", rng.Intn(3)),
				Level:   rng.Intn(4),
				Version: uint64(i + 1),
			}
			id := ident{e.Key, e.Storage, e.Access}
			attempted[id] = append(attempted[id], e)
			_, perr := d.Put(e)
			serr := d.Sync()
			if perr == nil && serr == nil {
				acked[id] = e
			} else {
				break // the store latched its write error: no more acks
			}
		}
		_ = d.Close()

		d2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("round %d: reopen after crash: %v", round, err)
		}
		for id, want := range acked {
			got := d2.Get(id.key, nil)
			found := false
			for _, e := range got {
				if e.Storage != id.storage || e.Access != id.access || e.IsPointer() {
					continue
				}
				found = true
				// An unacked later write may have reached disk before the
				// fault byte — that is allowed (durability is one-way).
				// What is not allowed: losing the acked version or serving
				// a value that was never written.
				if e.Version < want.Version {
					t.Fatalf("round %d key %d: acked version %d lost, have %d",
						round, id.key, want.Version, e.Version)
				}
				matched := false
				for _, a := range attempted[id] {
					if a.Version == e.Version && bytes.Equal(a.Value, e.Value) {
						matched = true
						break
					}
				}
				if !matched {
					t.Fatalf("round %d key %d: recovered entry matches no attempted write: %+v",
						round, id.key, e)
				}
			}
			if !found {
				t.Fatalf("round %d: acked key %d (%q) missing after recovery", round, id.key, id.storage)
			}
		}
		_ = d2.Close()
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// FuzzWALRecordDecode throws arbitrary bytes at the segment scanner and
// the payload codecs: no panic, no record accepted past a bad checksum,
// and every accepted put payload must re-encode byte-identically (the
// codec is canonical).
func FuzzWALRecordDecode(f *testing.F) {
	f.Add(appendRecord(nil, recPut, appendEntry(nil, Entry{Key: 1, Value: []byte("v"), Storage: "a/b"})))
	f.Add(appendRecord(nil, recDelete, appendDelete(nil, 2, "s", "", false)))
	whole := appendRecord(nil, recPut, appendEntry(nil, Entry{Key: 3, Value: bytes.Repeat([]byte("z"), 100)}))
	f.Add(whole[:len(whole)-5])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		consumed, _ := scanRecords(data, func(typ byte, payload []byte) error {
			if typ == recPut {
				if e, err := decodeEntry(payload); err == nil {
					if re := appendEntry(nil, e); !bytes.Equal(re, payload) {
						t.Fatalf("non-canonical put payload: %x -> %x", payload, re)
					}
				}
			}
			return nil
		})
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
	})
}
