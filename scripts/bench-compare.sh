#!/usr/bin/env bash
# bench-compare.sh — run the wire-protocol benchmarks (JSON legacy framing vs
# binary mux) and render the comparison as BENCH_PR5.json.
#
# Usage:
#   ./scripts/bench-compare.sh [output.json]
#
# The JSON records ns/op, B/op and allocs/op for each benchmark plus the
# computed speedup ratios the PR's acceptance criteria reference:
#   - encode_speedup:     JSON envelope encode / binary envelope encode
#   - decode_speedup:     JSON envelope decode / binary envelope decode
#   - mux64_speedup:      64-concurrent same-peer RPC throughput, pooled JSON
#                         framing vs multiplexed binary (must be >= 2.0)
set -euo pipefail

out="${1:-BENCH_PR5.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'BenchmarkEnvelope|BenchmarkRoundTrip' \
	-benchmem -benchtime=2s -count=1 ./internal/transport/)
echo "$raw" >&2

echo "$raw" | awk -v out="$out" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
	ns[name] = $3
	bytes[name] = $5
	allocs[name] = $7
	order[n++] = name
}
END {
	printf "{\n" > out
	printf "  \"description\": \"PR5 wire-protocol benchmarks: legacy length-prefixed JSON framing vs multiplexed binary protocol (internal/transport)\",\n" >> out
	printf "  \"command\": \"go test -run \\\"^$\\\" -bench \\\"BenchmarkEnvelope|BenchmarkRoundTrip\\\" -benchmem -benchtime=2s -count=1 ./internal/transport/\",\n" >> out
	printf "  \"benchmarks\": {\n" >> out
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "") >> out
	}
	printf "  },\n" >> out
	es = ns["BenchmarkEnvelopeEncodeJSON"] / ns["BenchmarkEnvelopeEncodeBinary"]
	ds = ns["BenchmarkEnvelopeDecodeJSON"] / ns["BenchmarkEnvelopeDecodeBinary"]
	ms = ns["BenchmarkRoundTrip64JSON"] / ns["BenchmarkRoundTrip64Binary"]
	printf "  \"encode_speedup\": %.2f,\n", es >> out
	printf "  \"decode_speedup\": %.2f,\n", ds >> out
	printf "  \"mux64_speedup\": %.2f\n", ms >> out
	printf "}\n" >> out
	if (ms < 2.0) {
		printf "FAIL: 64-concurrent mux speedup %.2fx is below the 2x acceptance floor\n", ms > "/dev/stderr"
		exit 1
	}
}
'
echo "wrote $out" >&2
