package transport

import (
	"net"
	"testing"
)

// fakeConn satisfies net.Conn well enough for pool bookkeeping tests; only
// Close is ever called.
type fakeConn struct {
	net.Conn
	closed bool
}

func (f *fakeConn) Close() error { f.closed = true; return nil }

// TestPutConnDropsBroken verifies the mid-frame-error fix: a connection whose
// call failed after writing part of a frame is marked broken and must never be
// pooled — a later call reusing it would read the stale partial stream.
func TestPutConnDropsBroken(t *testing.T) {
	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	fc := &fakeConn{}
	tr.putConn("peer:1", &tcpConn{c: fc, broken: true})
	if !fc.closed {
		t.Error("broken connection was not closed")
	}
	if n := len(tr.pools["peer:1"]); n != 0 {
		t.Errorf("broken connection was pooled (pool size %d)", n)
	}

	ok := &fakeConn{}
	tr.putConn("peer:1", &tcpConn{c: ok})
	if ok.closed {
		t.Error("healthy connection was closed instead of pooled")
	}
	if n := len(tr.pools["peer:1"]); n != 1 {
		t.Errorf("healthy connection not pooled (pool size %d)", n)
	}
}

// TestPutConnRespectsPoolCap verifies the configurable cap that replaced the
// hardcoded 4: the pool holds at most PoolCap conns per peer and closes the
// overflow.
func TestPutConnRespectsPoolCap(t *testing.T) {
	tr, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{PoolCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conns := make([]*fakeConn, 3)
	for i := range conns {
		conns[i] = &fakeConn{}
		tr.putConn("peer:2", &tcpConn{c: conns[i]})
	}
	if n := len(tr.pools["peer:2"]); n != 2 {
		t.Errorf("pool size = %d, want PoolCap (2)", n)
	}
	if conns[0].closed || conns[1].closed {
		t.Error("pooled connections were closed")
	}
	if !conns[2].closed {
		t.Error("overflow connection was not closed")
	}
}

// TestListenTCPOptsDefaultsAndValidation pins the documented defaults and the
// rejection of unknown wire modes.
func TestListenTCPOptsDefaultsAndValidation(t *testing.T) {
	if _, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{Wire: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown wire mode accepted")
	}
	tr, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.opts.Wire != WireBinary {
		t.Errorf("default wire = %q, want %q", tr.opts.Wire, WireBinary)
	}
	if tr.opts.ConnsPerPeer != 2 {
		t.Errorf("default ConnsPerPeer = %d, want 2", tr.opts.ConnsPerPeer)
	}
	if tr.opts.PoolCap != 4 {
		t.Errorf("default PoolCap = %d, want 4", tr.opts.PoolCap)
	}
}
