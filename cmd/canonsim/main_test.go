package main

import (
	"testing"
)

func TestParseInts(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "1,2,3", want: []int{1, 2, 3}},
		{in: " 10 , 20 ", want: []int{10, 20}},
		{in: "7", want: []int{7}},
		{in: "a,b", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseInts(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseInts(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseInts(%q)[%d] = %d, want %d", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no experiment should error")
	}
	if err := run([]string{"nonsense"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-sizes", "x", "fig3"}); err == nil {
		t.Error("bad sizes should error")
	}
	if err := run([]string{"-levels", "y", "fig3"}); err == nil {
		t.Error("bad levels should error")
	}
}

func TestRunTinyExperiments(t *testing.T) {
	// Exercise a representative subset end to end at tiny scale; output goes
	// to stdout, which `go test` captures.
	cases := [][]string{
		{"-sizes", "256", "-levels", "1,2", "-pairs", "50", "fig3"},
		{"-sizes", "256", "-levels", "1,2", "-pairs", "50", "-n", "256", "fig4"},
		{"-sizes", "256", "-levels", "1,2", "-pairs", "50", "fig5"},
		{"-sizes", "256", "-pairs", "50", "lookahead"},
		{"-sizes", "256", "-pairs", "50", "balance"},
		{"-n", "256", "-pairs", "50", "-fanout", "4", "variants"},
		{"-n", "512", "-pairs", "50", "-fanout", "4", "resilience"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"text", "csv", "json"} {
		if err := run([]string{"-sizes", "128", "-levels", "1", "-pairs", "20", "-format", format, "fig3"}); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
	if err := run([]string{"-sizes", "128", "-levels", "1", "-pairs", "20", "-format", "xml", "fig3"}); err == nil {
		t.Error("unknown format should error")
	}
}
