package netnode

import (
	"context"
	"math"

	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/symphony"
	"github.com/canon-dht/canon/internal/transport"
)

// cacophonyGeometry is Canonical Symphony (paper Section 5.2): per level,
// floor(log2(n)) long links whose clockwise lengths follow the harmonic
// distribution over an *estimated* ring size n, under the Canon merge bound
// (the successor distance of the level below, symphony.Geometry.Bound).
// Next-hop choice is 1-lookahead: a hop ranks each window candidate by the
// key distance left after the best advance reachable through it — the
// candidate itself or its known ring successor — in forwardSetScored. The
// successor tables that power the lookahead travel in a periodic
// lookaheadReq/lookaheadResp exchange (maintain).
type cacophonyGeometry struct{}

// lookaheadFanout bounds how many contacts one lookahead exchange round
// queries.
const lookaheadFanout = 16

// lookKey identifies one lookahead fact: the clockwise distance from self to
// the level-`level` ring successor of the contact at `addr`.
type lookKey struct {
	addr  string
	level int
}

func (cacophonyGeometry) kind() geomKind { return geomCacophony }
func (cacophonyGeometry) name() string   { return GeometryCacophony }

// fixLinks rebuilds the node's long links with the Symphony harmonic rule
// under the Canon merge bound: at each level, draws against the estimated
// ring size, keeping only links strictly shorter than the successor distance
// inherited from the level below. Draws are independent; a rejected draw is
// simply not replaced (symphony.Geometry.MergeLinks).
func (cacophonyGeometry) fixLinks(ctx context.Context, n *Node) {
	fingers := make(map[uint64]Info)
	bound := n.space.Size()
	for l := n.levels; l >= 0; l-- {
		prefix := prefixAt(n.self.Name, l)
		est := n.ringEstimate(l)
		draws := int(math.Floor(math.Log2(float64(est))))
		for i := 0; i < draws; i++ {
			n.mu.Lock()
			u := n.rng.Float64()
			n.mu.Unlock()
			d := symphony.HarmonicDraw(n.space, float64(est), u)
			if d >= bound {
				continue
			}
			target := uint64(n.space.Add(id.ID(n.self.ID), d))
			resp, err := n.lookupFrom(ctx, n.self, uint64(n.space.Sub(id.ID(target), 1)), prefix)
			if err != nil {
				continue
			}
			cand := resp.Succ
			if cand.IsZero() || cand.Addr == n.self.Addr {
				continue
			}
			if cd := n.clockwise(n.self.ID, cand.ID); cd == 0 || cd >= bound {
				continue
			}
			fingers[cand.ID] = cand
		}
		// The next (higher-level) merge keeps only links shorter than our
		// successor distance at this level (symphony.Geometry.Bound).
		n.mu.Lock()
		if len(n.succs[l]) > 0 && n.succs[l][0].Addr != n.self.Addr {
			bound = n.clockwise(n.self.ID, n.succs[l][0].ID)
		}
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.fingers = fingers
	n.publishRoutingLocked()
	n.mu.Unlock()
}

// ringEstimate estimates the level-`level` ring size the way a live Symphony
// node does: from the arc its own successor list spans
// (symphony.EstimateFromArc), averaged with the estimates neighbors reported
// in the last lookahead exchange. Falls back to 2 when the node knows
// nothing yet — one draw, which stabilization's successor links back up.
func (n *Node) ringEstimate(level int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var sum uint64
	var cnt uint64
	if s := n.succs[level]; len(s) > 0 && s[len(s)-1].Addr != n.self.Addr {
		if arc := n.clockwise(n.self.ID, s[len(s)-1].ID); arc > 0 {
			sum += uint64(symphony.EstimateFromArc(n.space, len(s), arc))
			cnt++
		}
	}
	if n.ests[level] > 0 {
		sum += n.ests[level]
		cnt++
	}
	if cnt == 0 {
		return 2
	}
	est := int(sum / cnt)
	if est < 2 {
		est = 2
	}
	return est
}

// maintain implements geometry: the lookahead neighbor exchange. The node
// asks its per-level first successors and current long links for their own
// per-level successors and ring-size estimates, then swaps the fresh tables
// in wholesale — a contact that stopped answering drops out, and the routing
// view republishes once with one consistent lookahead state.
func (cacophonyGeometry) maintain(ctx context.Context, n *Node) {
	n.mu.Lock()
	targets := make([]Info, 0, lookaheadFanout)
	seen := make(map[string]bool, lookaheadFanout)
	add := func(i Info) {
		if i.IsZero() || i.Addr == n.self.Addr || seen[i.Addr] || len(targets) >= lookaheadFanout {
			return
		}
		seen[i.Addr] = true
		targets = append(targets, i)
	}
	for l := 0; l <= n.levels; l++ {
		if len(n.succs[l]) > 0 {
			add(n.succs[l][0])
		}
	}
	for _, f := range n.fingers {
		add(f)
	}
	levels := n.levels
	n.mu.Unlock()

	looks := make(map[lookKey]uint64, len(targets))
	estSum := make([]uint64, levels+1)
	estCnt := make([]uint64, levels+1)
	for _, t := range targets {
		// Levels above the lowest common domain have different prefixes on
		// the two sides, so only the shared ones are exchanged.
		shared := sharedLevels(n.self.Name, t.Name)
		req, err := transport.NewMessage(msgLookahead, lookaheadReq{Levels: shared})
		if err != nil {
			continue
		}
		raw, err := n.call(ctx, t.Addr, req)
		if err != nil {
			continue
		}
		var resp lookaheadResp
		if err := raw.Decode(&resp); err != nil {
			continue
		}
		for l := 0; l <= shared && l < len(resp.Succs) && l <= levels; l++ {
			s := resp.Succs[l]
			if s.IsZero() || s.Addr == t.Addr || s.Addr == n.self.Addr {
				continue // no lookahead through an alone peer or back to us
			}
			looks[lookKey{addr: t.Addr, level: l}] = n.clockwise(n.self.ID, s.ID)
		}
		for l := 0; l <= shared && l < len(resp.Ests) && l <= levels; l++ {
			if resp.Ests[l] > 0 {
				estSum[l] += resp.Ests[l]
				estCnt[l]++
			}
		}
	}
	n.mu.Lock()
	n.looks = looks
	for l := range estSum {
		if estCnt[l] > 0 {
			n.ests[l] = estSum[l] / estCnt[l]
		}
	}
	n.publishRoutingLocked()
	n.mu.Unlock()
}

// handleLookahead serves one side of the lookahead exchange from the
// published routing view: the node's first successor and arc-based ring-size
// estimate for every requested level of its chain. No locks — the view is
// one complete epoch.
func (n *Node) handleLookahead(req lookaheadReq) lookaheadResp {
	v := n.routing.Load()
	top := req.Levels
	if top < 0 {
		top = 0
	}
	if top > v.levels {
		top = v.levels
	}
	resp := lookaheadResp{Succs: make([]Info, top+1), Ests: make([]uint64, top+1)}
	for l := 0; l <= top; l++ {
		resp.Succs[l] = v.succAt(l)
		if s := v.succs[l]; len(s) > 0 && s[len(s)-1].Addr != v.self.Addr {
			if arc := v.space.Clockwise(id.ID(v.self.ID), id.ID(s[len(s)-1].ID)); arc > 0 {
				resp.Ests[l] = uint64(symphony.EstimateFromArc(v.space, len(s), arc))
			}
		}
	}
	return resp
}
