package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4), using only the standard library.
// Metrics are grouped into families (one # HELP / # TYPE pair per name) and
// emitted in sorted order so scrapes are diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	lastFamily := ""
	for _, s := range samples {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelBlock(s.Labels, "", ""), formatFloat(s.Value)); err != nil {
				return err
			}
		case KindHistogram:
			cum := int64(0)
			for i, b := range s.Buckets {
				cum += b
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelBlock(s.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelBlock(s.Labels, "", ""), formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelBlock(s.Labels, "", ""), int64(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// labelBlock renders {k="v",...}, optionally appending one extra pair (the
// histogram le label). Empty label sets render as the empty string.
func labelBlock(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
