package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/metrics"
	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// Resilience measures static resilience — the fraction of routes that still
// reach the key's surviving owner immediately after a batch of crashes,
// before any repair — for flat Chord versus Crescendo, across failure
// fractions. Hierarchy must not make the overlay more fragile; the paper's
// fault-isolation property additionally guarantees that intra-domain routes
// are untouched by outside failures (asserted by tests, reported here as a
// separate row pair).
func Resilience(cfg Config, n, levels int, fractions []float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Static resilience, %d nodes (no repair)", n),
		XLabel: "failure fraction",
	}
	flatNet, err := buildHierNet(cfg, canon.Chord, n, 1)
	if err != nil {
		return nil, err
	}
	hierNet, err := buildHierNet(cfg, canon.Chord, n, levels)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		nw   *canon.Network
	}{
		{"chord success", flatNet},
		{fmt.Sprintf("crescendo-%d success", levels), hierNet},
	}
	for _, sys := range systems {
		success := &metrics.Series{Name: sys.name}
		hops := &metrics.Series{Name: sys.name + " hops"}
		for _, frac := range fractions {
			s, h := resilienceAt(cfg, sys.nw, frac)
			success.Append(frac, s)
			hops.Append(frac, h)
		}
		tbl.AddSeries(success)
		tbl.AddSeries(hops)
	}
	tbl.AddNote("success = route reaches the key's surviving owner")
	return tbl, nil
}

func resilienceAt(cfg Config, nw *canon.Network, frac float64) (successRate, avgHopCount float64) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(frac*1000)))
	fails := nw.NewFailureSet()
	for fails.NumDown() < int(frac*float64(nw.Len())) {
		fails.Fail(rng.Intn(nw.Len()))
	}
	var ok, total float64
	var hops metrics.Stream
	for i := 0; i < cfg.RoutePairs; i++ {
		from := rng.Intn(nw.Len())
		if fails.Down(from) {
			continue
		}
		key := nw.Space().Random(rng)
		r := nw.RouteToKeyFailures(from, key, fails)
		total++
		if r.Success {
			ok++
			hops.Add(float64(r.Hops()))
		}
	}
	if total == 0 {
		return 0, 0
	}
	return ok / total, hops.Mean()
}

// LiveResilience measures the wire protocol's end-to-end robustness: a live
// in-process cluster is built over the in-memory bus with every endpoint
// wrapped in a seeded FaultyTransport, then message loss is swept across
// lossRates and the same lookup workload is replayed at each rate. A lookup
// succeeds when it returns the same owner the loss-free network returns for
// that key, so retries and route-around must actually recover the route, not
// merely produce an answer. Reported per rate: success fraction, hop stretch
// versus the loss-free baseline, and retries per lookup.
func LiveResilience(cfg Config, n int, lossRates []float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	lookups := cfg.RoutePairs
	if lookups > 500 {
		lookups = 500 // retry sleeps make full 2000-pair sweeps needlessly slow
	}
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Live resilience under message loss, %d nodes, %d lookups/rate", n, lookups),
		XLabel: "loss rate",
	}
	cl, err := newLossCluster(cfg, n)
	if err != nil {
		return nil, err
	}
	defer cl.close()

	base := cl.measure(lookups, nil)
	success := &metrics.Series{Name: "lookup success"}
	stretch := &metrics.Series{Name: "hop stretch vs loss-free"}
	retries := &metrics.Series{Name: "retries per lookup"}
	for _, rate := range lossRates {
		cl.setLoss(rate)
		m := cl.measure(lookups, base)
		cl.setLoss(0)
		success.Append(rate, m.successRate)
		if base.meanHops > 0 {
			stretch.Append(rate, m.meanHops/base.meanHops)
		}
		retries.Append(rate, m.retriesPerLookup)
	}
	tbl.AddSeries(success)
	tbl.AddSeries(stretch)
	tbl.AddSeries(retries)
	tbl.AddNote("success = same owner as the loss-free network; loss injected by seeded FaultyTransport")
	return tbl, nil
}

// lossCluster is a live cluster whose endpoints all sit behind Faulty
// wrappers, plus the fixed lookup workload replayed at every loss rate.
type lossCluster struct {
	nodes    []*netnode.Node
	faulties []*transport.Faulty
	origins  []int
	keys     []uint64
	owners   []string // loss-free owner per workload entry, filled by measure(nil)
}

type lossMeasurement struct {
	successRate      float64
	meanHops         float64
	retriesPerLookup float64
	owners           []string
}

// newLossCluster builds and settles an n-node two-level cluster with
// fault-capable transports (initially injecting nothing).
func newLossCluster(cfg Config, n int) (*lossCluster, error) {
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := context.Background()
	cl := &lossCluster{}
	for i := 0; i < n; i++ {
		ft := transport.NewFaulty(bus.Endpoint(fmt.Sprintf("loss-%d", i)), cfg.Seed+int64(i), transport.Faults{})
		node, err := netnode.New(netnode.Config{
			Name:      "org/dept",
			RandomID:  true,
			Rand:      rng,
			Transport: ft,
			Geometry:  cfg.Geometry,
			Retry: netnode.RetryPolicy{
				MaxAttempts: 3,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
			},
		})
		if err != nil {
			cl.close()
			return nil, err
		}
		contact := ""
		if i > 0 {
			contact = cl.nodes[0].Info().Addr
		}
		if err := node.Join(ctx, contact); err != nil {
			_ = node.Close()
			cl.close()
			return nil, fmt.Errorf("join node %d: %w", i, err)
		}
		cl.nodes = append(cl.nodes, node)
		cl.faulties = append(cl.faulties, ft)
		if i%8 == 7 {
			for _, nd := range cl.nodes {
				nd.StabilizeOnce(ctx)
			}
		}
	}
	for r := 0; r < 6; r++ {
		for _, nd := range cl.nodes {
			nd.StabilizeOnce(ctx)
		}
		for _, nd := range cl.nodes {
			nd.FixFingers(ctx)
		}
	}
	// Fix the workload once so every loss rate resolves identical queries.
	wrng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < 2000; i++ {
		cl.origins = append(cl.origins, wrng.Intn(n))
		cl.keys = append(cl.keys, uint64(wrng.Uint32()))
	}
	return cl, nil
}

// setLoss applies a uniform drop rate to every endpoint (0 heals the net).
func (cl *lossCluster) setLoss(rate float64) {
	for _, ft := range cl.faulties {
		ft.SetFaults(transport.Faults{Drop: rate})
	}
}

// measure replays the first `lookups` workload entries. With a nil baseline
// it records the owners it sees as ground truth; against a baseline it
// scores each lookup by owner equality.
func (cl *lossCluster) measure(lookups int, base *lossMeasurement) *lossMeasurement {
	ctx := context.Background()
	m := &lossMeasurement{}
	var hops metrics.Stream
	before := cl.totalRetries()
	ok, total := 0, 0
	for i := 0; i < lookups && i < len(cl.keys); i++ {
		from := cl.nodes[cl.origins[i]]
		owner, h, err := from.LookupHops(ctx, cl.keys[i], "")
		total++
		addr := ""
		if err == nil {
			addr = owner.Addr
			hops.Add(float64(h))
		}
		m.owners = append(m.owners, addr)
		if base == nil {
			if err == nil {
				ok++
			}
		} else if addr != "" && addr == base.owners[i] {
			ok++
		}
	}
	if total > 0 {
		m.successRate = float64(ok) / float64(total)
		m.retriesPerLookup = float64(cl.totalRetries()-before) / float64(total)
	}
	m.meanHops = hops.Mean()
	return m
}

func (cl *lossCluster) totalRetries() int64 {
	var sum int64
	for _, nd := range cl.nodes {
		sum += nd.Stats().Retries
	}
	return sum
}

func (cl *lossCluster) close() {
	for _, nd := range cl.nodes {
		_ = nd.Close()
	}
}
