// Package lockheldrpc is a canonvet fixture: RPC-shaped calls (Transport.Call
// signatures, call* helpers) issued while a mutex is lexically held must be
// flagged; releasing first, handing off to a goroutine, or deferring into a
// closure must not.
package lockheldrpc

import (
	"context"
	"sync"
)

// conn has the Transport.Call shape: method named Call whose first parameter
// is a context.Context.
type conn struct{}

func (conn) Call(ctx context.Context, addr string, body string) (string, error) {
	return "", nil
}

type node struct {
	mu sync.Mutex
	c  conn
}

// call is an RPC helper by naming convention (node.call / node.callFoo).
func (n *node) call(addr string) error { return nil }

// callLookup is the capitalized-suffix form of the helper convention.
func (n *node) callLookup(addr string, key uint64) error { return nil }

// deferredUnlock is the dangerous pattern verbatim: defer mu.Unlock() keeps
// the region locked across the wire call.
func (n *node) deferredUnlock(ctx context.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, err := n.c.Call(ctx, "peer", "ping") // want `Transport.Call while a mutex is lexically held`
	return err
}

// helperUnderLock reaches the wire through the call helper before releasing.
func (n *node) helperUnderLock() {
	n.mu.Lock()
	_ = n.call("peer") // want `RPC helper .call call while a mutex is lexically held`
	n.mu.Unlock()
}

// helperVariantUnderLock exercises the callXxx naming rule.
func (n *node) helperVariantUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.callLookup("peer", 42) // want `RPC helper .callLookup call while a mutex is lexically held`
}

// suppressed proves the pragma escape hatch for a deliberate exception.
func (n *node) suppressed(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//canonvet:ignore lockheldrpc -- fixture: prove the pragma suppresses the line below
	_, _ = n.c.Call(ctx, "peer", "ping")
}
