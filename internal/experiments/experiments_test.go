package experiments

import (
	"strings"
	"testing"
)

// Small parameters keep the tests fast; the full paper-scale sweeps run via
// cmd/canonsim.
func smallCfg() Config {
	return Config{Seed: 1, Fanout: 4, ZipfExponent: 1.25, RoutePairs: 200}
}

func seriesByName(tbl interface{ String() string }, name string) bool {
	return strings.Contains(tbl.String(), name)
}

func TestFig3ShapeHolds(t *testing.T) {
	tbl, err := Fig3(smallCfg(), []int{512, 1024}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(tbl.Series))
	}
	flat, hier := tbl.Series[0], tbl.Series[1]
	for i := range flat.Y {
		// Degree near log2(n): in [log2(n)-2, log2(n)+1].
		logN := map[float64]float64{512: 9, 1024: 10}[flat.X[i]]
		if flat.Y[i] < logN-2 || flat.Y[i] > logN+1 {
			t.Errorf("flat degree %v at n=%v not near log n", flat.Y[i], flat.X[i])
		}
		// Crescendo's degree is at or below Chord's (paper's observation).
		if hier.Y[i] > flat.Y[i]+0.3 {
			t.Errorf("hierarchical degree %v above flat %v", hier.Y[i], flat.Y[i])
		}
	}
	// Degree grows with n.
	if flat.Y[1] <= flat.Y[0] {
		t.Error("flat degree should grow with n")
	}
}

func TestFig4IsDistribution(t *testing.T) {
	tbl, err := Fig4(smallCfg(), 1024, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Series {
		sum := 0.0
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("fraction %v out of range", y)
			}
			sum += y
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("series %q sums to %v", s.Name, sum)
		}
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	tbl, err := Fig5(smallCfg(), []int{512, 1024}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	flat, hier := tbl.Series[0], tbl.Series[1]
	for i := range flat.Y {
		// Hops ~ 0.5*log2(n) + small constant.
		logN := map[float64]float64{512: 9, 1024: 10}[flat.X[i]]
		if flat.Y[i] < 0.3*logN || flat.Y[i] > 0.75*logN {
			t.Errorf("flat hops %v at n=%v not near 0.5 log n", flat.Y[i], flat.X[i])
		}
		// Crescendo within ~0.9 hops of Chord (paper: at most ~0.7).
		if hier.Y[i] > flat.Y[i]+0.9 {
			t.Errorf("hierarchical hops %v too far above flat %v", hier.Y[i], flat.Y[i])
		}
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	lat, str, err := Fig6(cfg, []int{1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Series) != 4 || len(str.Series) != 4 {
		t.Fatalf("expected 4 systems, got %d/%d", len(lat.Series), len(str.Series))
	}
	get := func(name string) float64 {
		for _, s := range str.Series {
			if s.Name == name {
				return s.Y[0]
			}
		}
		t.Fatalf("missing series %q", name)
		return 0
	}
	chordPlain := get("chord (no prox.)")
	crescendoPlain := get("crescendo (no prox.)")
	chordProx := get("chord (prox.)")
	crescendoProx := get("crescendo (prox.)")
	// Ordering from the paper: Crescendo (Prox.) best, plain Chord worst,
	// Crescendo beats plain Chord, proximity helps Chord.
	if !(crescendoProx < crescendoPlain) {
		t.Errorf("prox should improve crescendo: %.2f vs %.2f", crescendoProx, crescendoPlain)
	}
	if !(chordProx < chordPlain) {
		t.Errorf("prox should improve chord: %.2f vs %.2f", chordProx, chordPlain)
	}
	if !(crescendoPlain < chordPlain) {
		t.Errorf("crescendo %.2f should beat plain chord %.2f", crescendoPlain, chordPlain)
	}
	if crescendoProx >= chordProx {
		t.Errorf("crescendo (prox.) %.2f should beat chord (prox.) %.2f", crescendoProx, chordProx)
	}
	if chordPlain < 1 {
		t.Errorf("stretch below 1 is impossible: %v", chordPlain)
	}
}

func TestFig7LocalityCollapse(t *testing.T) {
	tbl, err := Fig7(smallCfg(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	var crescendo *seriesRef
	var chordProx *seriesRef
	for _, s := range tbl.Series {
		switch s.Name {
		case "crescendo (no prox.)":
			crescendo = &seriesRef{x: s.X, y: s.Y}
		case "chord (prox.)":
			chordProx = &seriesRef{x: s.X, y: s.Y}
		}
	}
	if crescendo == nil || chordProx == nil {
		t.Fatal("missing series")
	}
	// Crescendo's latency at level 3+ (stub domain) is near zero and far
	// below its top-level latency.
	top, local := crescendo.y[0], crescendo.y[3]
	if local > top/4 {
		t.Errorf("crescendo locality collapse missing: top %.1f, level3 %.1f", top, local)
	}
	// Chord (Prox.) barely improves with locality.
	if chordProx.y[3] < chordProx.y[0]/4 {
		t.Errorf("chord (prox.) should not collapse: top %.1f, level3 %.1f",
			chordProx.y[0], chordProx.y[3])
	}
}

type seriesRef struct{ x, y []float64 }

func TestFig8OverlapOrdering(t *testing.T) {
	tbl, err := Fig8(smallCfg(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	var crescendoHops, chordHops []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "crescendo (hops)":
			crescendoHops = s.Y
		case "chord (prox.) (hops)":
			chordHops = s.Y
		}
	}
	if crescendoHops == nil || chordHops == nil {
		t.Fatal("missing series")
	}
	// At deep domain levels Crescendo's overlap must far exceed Chord's.
	if crescendoHops[3] < 2*chordHops[3] {
		t.Errorf("crescendo overlap %.3f not well above chord %.3f at level 3",
			crescendoHops[3], chordHops[3])
	}
	// Crescendo's overlap rises with domain level.
	if crescendoHops[3] <= crescendoHops[0] {
		t.Errorf("crescendo overlap should rise with level: %v", crescendoHops)
	}
	for _, v := range append(append([]float64{}, crescendoHops...), chordHops...) {
		if v < 0 || v > 1 {
			t.Fatalf("overlap fraction %v out of range", v)
		}
	}
}

func TestFig9CrescendoSavesLinks(t *testing.T) {
	tbl, err := Fig9(smallCfg(), 1024, 200)
	if err != nil {
		t.Fatal(err)
	}
	var crescendo, chord []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "crescendo":
			crescendo = s.Y
		case "chord (prox.)":
			chord = s.Y
		}
	}
	if crescendo == nil || chord == nil {
		t.Fatal("missing series")
	}
	for i := range crescendo {
		if crescendo[i] > chord[i] {
			t.Errorf("level %d: crescendo %v uses more inter-domain links than chord %v",
				i+1, crescendo[i], chord[i])
		}
	}
	// Top-level savings must be large (paper: 44x; assert at least 4x at
	// this small scale).
	if crescendo[0]*4 > chord[0] {
		t.Errorf("crescendo top-level links %v not well below chord %v", crescendo[0], chord[0])
	}
}

func TestVariantsTable(t *testing.T) {
	tbl, err := Variants(smallCfg(), 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 4 {
		t.Fatalf("series = %d", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		if len(s.Y) != 5 {
			t.Fatalf("series %q has %d rows, want 5", s.Name, len(s.Y))
		}
		for _, v := range s.Y {
			if v <= 0 {
				t.Errorf("series %q has non-positive value %v", s.Name, v)
			}
		}
	}
}

func TestLookaheadSavings(t *testing.T) {
	tbl, err := Lookahead(smallCfg(), []int{1024}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var saving float64
	for _, s := range tbl.Series {
		if s.Name == "saving fraction" {
			saving = s.Y[0]
		}
	}
	if saving < 0.15 || saving > 0.7 {
		t.Errorf("lookahead saving %.2f outside plausible band (paper: ~0.4)", saving)
	}
}

func TestBalanceTable(t *testing.T) {
	tbl, err := Balance(smallCfg(), []int{1024})
	if err != nil {
		t.Fatal(err)
	}
	var randRatio, bisect float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "random ids":
			randRatio = s.Y[0]
		case "bisection":
			bisect = s.Y[0]
		}
	}
	if bisect > 8 {
		t.Errorf("bisection ratio %v exceeds 8", bisect)
	}
	if bisect*3 > randRatio {
		t.Errorf("bisection %v not well below random %v", bisect, randRatio)
	}
}

func TestCachingTable(t *testing.T) {
	tbl, err := Caching(smallCfg(), 512, 8, 30, 400)
	if err != nil {
		t.Fatal(err)
	}
	var hitRates, hops []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "hit rate":
			hitRates = s.Y
		case "avg hops":
			hops = s.Y
		}
	}
	if hitRates[0] != 0 {
		t.Errorf("no-cache hit rate = %v", hitRates[0])
	}
	if hitRates[1] == 0 {
		t.Error("level-aware cache produced no hits")
	}
	// Caching must reduce average hops versus no cache.
	if hops[1] >= hops[0] {
		t.Errorf("caching did not reduce hops: %v vs %v", hops[1], hops[0])
	}
}

func TestTablesRender(t *testing.T) {
	tbl, err := Fig3(smallCfg(), []int{512}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"Figure 3", "512", "levels=1 (chord)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestResilienceTable(t *testing.T) {
	tbl, err := Resilience(smallCfg(), 512, 3, []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var chordSuccess, crescendoSuccess []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "chord success":
			chordSuccess = s.Y
		case "crescendo-3 success":
			crescendoSuccess = s.Y
		}
	}
	if chordSuccess == nil || crescendoSuccess == nil {
		t.Fatal("missing series")
	}
	for i := range chordSuccess {
		if chordSuccess[i] <= 0 || chordSuccess[i] > 1 {
			t.Fatalf("success rate %v out of range", chordSuccess[i])
		}
	}
	// More failures, fewer successes.
	if chordSuccess[1] > chordSuccess[0] {
		t.Errorf("success should fall with failure fraction: %v", chordSuccess)
	}
	// Hierarchy must not collapse resilience.
	if crescendoSuccess[0] < chordSuccess[0]-0.2 {
		t.Errorf("crescendo %v far below chord %v at 10%%", crescendoSuccess[0], chordSuccess[0])
	}
}

func TestChurnTable(t *testing.T) {
	tbl, err := Churn(smallCfg(), []int{256, 1024}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var joins, perLog []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "messages/join":
			joins = s.Y
		case "join messages / log2 n":
			perLog = s.Y
		}
	}
	if joins == nil || perLog == nil {
		t.Fatal("missing series")
	}
	// O(log n): growing n 4x must not grow per-join cost much beyond the
	// log factor (log2 1024 / log2 256 = 1.25).
	if joins[1] > 2*joins[0] {
		t.Errorf("join cost grew too fast: %v", joins)
	}
	for _, c := range perLog {
		if c <= 0 || c > 8 {
			t.Errorf("messages/log2(n) = %v outside (0, 8]", c)
		}
	}
}

func TestLiveTable(t *testing.T) {
	cfg := smallCfg()
	cfg.RoutePairs = 60
	tbl, err := Live(cfg, []int{16, 32}, "a/b")
	if err != nil {
		t.Fatal(err)
	}
	var hops, perLog []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "lookup hops":
			hops = s.Y
		case "hops / log2 n":
			perLog = s.Y
		}
	}
	if hops == nil || perLog == nil {
		t.Fatal("missing series")
	}
	for i, h := range hops {
		if h <= 0 || h > 20 {
			t.Errorf("live hops[%d] = %v implausible", i, h)
		}
	}
	// Hops grow sublinearly: doubling n must not double hops.
	if hops[1] > 2*hops[0] {
		t.Errorf("live hops grew too fast: %v", hops)
	}
}

func TestVerifyAllClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full claim sweep takes ~1 min; skipped with -short")
	}
	cfg := Defaults()
	cfg.RoutePairs = 400
	report, failures := Verify(cfg)
	if len(report) != len(Claims()) {
		t.Fatalf("report has %d lines for %d claims", len(report), len(Claims()))
	}
	if failures != 0 {
		for _, line := range report {
			t.Log(line)
		}
		t.Fatalf("%d claims failed", failures)
	}
}

func TestGroupSizesTable(t *testing.T) {
	tbl, err := GroupSizes(smallCfg(), 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	var maxOverMean, empty []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "max/mean group size":
			maxOverMean = s.Y
		case "empty group fraction":
			empty = s.Y
		}
	}
	if maxOverMean == nil || empty == nil {
		t.Fatal("missing series")
	}
	// Bisection (row 2) must beat random (row 1) on both metrics.
	if maxOverMean[1] >= maxOverMean[0] {
		t.Errorf("bisection max/mean %v not below random %v", maxOverMean[1], maxOverMean[0])
	}
	if empty[1] > empty[0] {
		t.Errorf("bisection empty fraction %v above random %v", empty[1], empty[0])
	}
	if empty[1] > 0.01 {
		t.Errorf("bisection leaves %.3f of groups empty", empty[1])
	}
}

func TestLiveResilienceTable(t *testing.T) {
	cfg := smallCfg() // 200 lookups per rate keeps this fast
	tbl, err := LiveResilience(cfg, 24, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var success, retries []float64
	for _, s := range tbl.Series {
		switch s.Name {
		case "lookup success":
			success = s.Y
		case "retries per lookup":
			retries = s.Y
		}
	}
	if success == nil || retries == nil {
		t.Fatal("missing series")
	}
	for i, v := range success {
		if v < 0.95 {
			t.Errorf("success[%d] = %v under loss, want >= 0.95 with retries", i, v)
		}
	}
	// Retry traffic must grow with the loss rate and be nonzero under loss.
	if retries[0] <= 0 {
		t.Errorf("no retries recorded at 10%% loss: %v", retries)
	}
	if retries[1] < retries[0] {
		t.Errorf("retries per lookup should rise with loss: %v", retries)
	}
}

// TestTraceLiveAllGeometries holds the paper's Section 3.2 structural route
// guarantees on a live traced cluster for every routing geometry: TraceLive
// itself fails on any locality or proxy-convergence violation, so each
// geometry must come back clean — the hierarchy invariants are properties of
// the shared ring substrate, not of Crescendo's particular long links.
func TestTraceLiveAllGeometries(t *testing.T) {
	for _, geom := range []string{"crescendo", "kandy", "cacophony"} {
		t.Run(geom, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Geometry = geom
			tbl, err := TraceLive(cfg, 32, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"out-of-domain hop violations", "distinct-proxy violations"} {
				for _, s := range tbl.Series {
					if s.Name == name && len(s.Y) > 0 && s.Y[0] != 0 {
						t.Errorf("%s: %s = %v, want 0", geom, name, s.Y[0])
					}
				}
			}
		})
	}
}

// TestGeometryCompareTable runs the three-way geometry comparison at a small
// size and checks the cross-geometry invariants: every geometry keeps its
// locality violations at zero and stays routable under loss and churn.
func TestGeometryCompareTable(t *testing.T) {
	tbl, err := GeometryCompare(smallCfg(), 32, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Series {
		if len(s.Y) == 0 {
			t.Fatalf("series %q is empty", s.Name)
		}
		switch {
		case strings.HasSuffix(s.Name, "locality violations"):
			if s.Y[0] != 0 {
				t.Errorf("%s = %v, want 0", s.Name, s.Y[0])
			}
		case strings.HasSuffix(s.Name, "success under loss"):
			if s.Y[0] < 0.95 {
				t.Errorf("%s = %v, want >= 0.95", s.Name, s.Y[0])
			}
		case strings.HasSuffix(s.Name, "post-churn success"):
			if s.Y[0] < 0.90 {
				t.Errorf("%s = %v, want >= 0.90", s.Name, s.Y[0])
			}
		case strings.HasSuffix(s.Name, "links per node"):
			if s.Y[0] <= 0 {
				t.Errorf("%s = %v, want > 0", s.Name, s.Y[0])
			}
		}
	}
}
