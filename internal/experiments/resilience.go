package experiments

import (
	"fmt"
	"math/rand"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/metrics"
)

// Resilience measures static resilience — the fraction of routes that still
// reach the key's surviving owner immediately after a batch of crashes,
// before any repair — for flat Chord versus Crescendo, across failure
// fractions. Hierarchy must not make the overlay more fragile; the paper's
// fault-isolation property additionally guarantees that intra-domain routes
// are untouched by outside failures (asserted by tests, reported here as a
// separate row pair).
func Resilience(cfg Config, n, levels int, fractions []float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Static resilience, %d nodes (no repair)", n),
		XLabel: "failure fraction",
	}
	flatNet, err := buildHierNet(cfg, canon.Chord, n, 1)
	if err != nil {
		return nil, err
	}
	hierNet, err := buildHierNet(cfg, canon.Chord, n, levels)
	if err != nil {
		return nil, err
	}
	systems := []struct {
		name string
		nw   *canon.Network
	}{
		{"chord success", flatNet},
		{fmt.Sprintf("crescendo-%d success", levels), hierNet},
	}
	for _, sys := range systems {
		success := &metrics.Series{Name: sys.name}
		hops := &metrics.Series{Name: sys.name + " hops"}
		for _, frac := range fractions {
			s, h := resilienceAt(cfg, sys.nw, frac)
			success.Append(frac, s)
			hops.Append(frac, h)
		}
		tbl.AddSeries(success)
		tbl.AddSeries(hops)
	}
	tbl.AddNote("success = route reaches the key's surviving owner")
	return tbl, nil
}

func resilienceAt(cfg Config, nw *canon.Network, frac float64) (successRate, avgHopCount float64) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(frac*1000)))
	fails := nw.NewFailureSet()
	for fails.NumDown() < int(frac*float64(nw.Len())) {
		fails.Fail(rng.Intn(nw.Len()))
	}
	var ok, total float64
	var hops metrics.Stream
	for i := 0; i < cfg.RoutePairs; i++ {
		from := rng.Intn(nw.Len())
		if fails.Down(from) {
			continue
		}
		key := nw.Space().Random(rng)
		r := nw.RouteToKeyFailures(from, key, fails)
		total++
		if r.Success {
			ok++
			hops.Add(float64(r.Hops()))
		}
	}
	if total == 0 {
		return 0, 0
	}
	return ok / total, hops.Mean()
}
