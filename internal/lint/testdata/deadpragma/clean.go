package deadpragma

import "math/rand"

// jitter carries a *live* suppression: the globalrand check really does fire
// on the line below, the pragma absorbs it, and deadpragma therefore has
// nothing to say.
func jitter() int {
	//canonvet:ignore globalrand -- fixture exercises a live suppression
	return rand.Intn(10)
}
