package snapshotmut

// stompEpoch mutates a published snapshot's field from outside the builder
// file — the exact torn-view race the check exists to catch.
func stompEpoch(v *routeView) {
	v.epoch = 99 // want `write to routeView.epoch outside snapshot.go`
}

// stompElement writes through a view's slice into a marked element type.
func stompElement(v *routeView) {
	v.succs[0].dist = 1 // want `write to contact.dist outside snapshot.go`
}

// stompNested reaches a field of an unmarked struct nested inside the view;
// the chain still crosses the marked base, so it is flagged.
func stompNested(v *routeView) {
	v.inner.healthy++ // want `write to routeView.inner outside snapshot.go`
}

// scratchCopy shows what stays legal outside the builder: copying a contact
// out of the view and filling a caller-owned scratch slice. No selector on a
// marked base is written, so per-lookup scratch buffers keep working.
func scratchCopy(v *routeView, dst []contact) int {
	n := 0
	for _, c := range v.succs {
		dst[n] = c
		n++
	}
	return n
}

// freshBuild constructs a brand-new view outside the declaring file; that is
// construction, not mutation of a shared snapshot, and is not flagged.
func freshBuild() *routeView {
	return &routeView{epoch: 1}
}

// suppressed proves the pragma escape hatch.
func suppressed(v *routeView) {
	//canonvet:ignore snapshotmut -- fixture: prove the pragma suppresses the line below
	v.epoch = 7
}
