package netnode_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// TestLiveChurn drives a live cluster through churn with background
// maintenance running: nodes join and crash concurrently with lookups; after
// the churn stops and the survivors stabilize, the ring must be consistent
// and all data retrievable. Run with -race to exercise the locking.
func TestLiveChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("live churn takes ~10s; skipped with -short")
	}
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(61))
	ctx := context.Background()

	newNode := func(i int) *netnode.Node {
		n, err := netnode.New(netnode.Config{
			Name:              "org/dept",
			RandomID:          true,
			Rand:              rng,
			Transport:         bus.Endpoint(fmt.Sprintf("churn-%d", i)),
			ReplicationFactor: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Stop background loops even when the test aborts early, or they
		// starve the rest of the package on small machines.
		t.Cleanup(func() { _ = n.Close() })
		return n
	}

	// Initial stable cluster of 8.
	var nodes []*netnode.Node
	for i := 0; i < 8; i++ {
		n := newNode(i)
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		n.Start(2 * time.Millisecond)
		nodes = append(nodes, n)
	}
	time.Sleep(60 * time.Millisecond)

	// Seed some data.
	keys := make([]uint64, 10)
	for i := range keys {
		keys[i] = uint64(1000 + i*7919)
		if err := nodes[0].Put(ctx, keys[i], []byte(fmt.Sprintf("v%d", i)), "org", "org"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // let replication run

	// Churn: joins and crashes interleaved with lookups from a reader
	// goroutine.
	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	reader := nodes[0] // captured before the main goroutine mutates `nodes`
	wg.Add(1)
	go func() {
		defer wg.Done()
		rr := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			readCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			_, _, _ = reader.LookupHops(readCtx, uint64(rr.Uint32()), "")
			cancel()
			time.Sleep(time.Millisecond)
		}
	}()

	// Joins and crashes interleaved. Replication factor 3 tolerates two
	// adjacent losses per re-replication window, so each crash gets a
	// window for the background loops to restore redundancy before the
	// next.
	crashed := make(map[string]bool)
	for i := 8; i < 14; i++ {
		n := newNode(i)
		if err := n.Join(ctx, nodes[0].Info().Addr); err != nil {
			t.Fatalf("churn join: %v", err)
		}
		n.Start(2 * time.Millisecond)
		nodes = append(nodes, n)
		// Crash one of the mid-cluster nodes (never node 0, the reader's
		// entry point) after every other join.
		if i%2 == 0 {
			victim := nodes[1+i%5]
			if !crashed[victim.Info().Addr] {
				bus.SetDown(victim.Info().Addr, true)
				crashed[victim.Info().Addr] = true
			}
		}
		time.Sleep(80 * time.Millisecond)
	}
	close(stopReads)
	wg.Wait()

	// Let the survivors settle.
	var alive []*netnode.Node
	for _, n := range nodes {
		if !crashed[n.Info().Addr] {
			alive = append(alive, n)
		}
	}
	time.Sleep(200 * time.Millisecond)
	for r := 0; r < 10; r++ {
		for _, n := range alive {
			sctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			n.StabilizeOnce(sctx)
			n.FixFingers(sctx)
			cancel()
		}
	}

	// All data survives the churn (replication factor 3, <= 5 crashes
	// spread over time with re-replication between them).
	for i, key := range keys {
		got, err := alive[0].Get(ctx, key)
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Errorf("key %d lost after churn: %q, %v", key, got, err)
		}
	}
	// Lookups from every survivor agree.
	for _, key := range keys {
		var owner string
		for _, n := range alive {
			info, err := n.Lookup(ctx, key, "")
			if err != nil {
				t.Fatalf("lookup after churn: %v", err)
			}
			if owner == "" {
				owner = info.Addr
			} else if info.Addr != owner {
				t.Errorf("key %d: owners disagree (%s vs %s)", key, info.Addr, owner)
			}
		}
	}
}

// TestChurnSoak is the nightly soak test: CANON_CHURN_OPS lookups (nightly
// runs it at 1,000,000) driven by concurrent workers against a live cluster
// while nodes continuously join and leave. It exists to surface the failure
// modes short tests structurally miss — pool poisoning that needs thousands
// of recycles to line up, epoch-snapshot races with tiny windows, slow
// routing-table corruption under sustained churn. The test skips unless
// CANON_CHURN_OPS is set, so regular CI and local runs are unaffected.
func TestChurnSoak(t *testing.T) {
	opsEnv := os.Getenv("CANON_CHURN_OPS")
	if opsEnv == "" {
		t.Skip("set CANON_CHURN_OPS (e.g. 1000000) to run the churn soak test")
	}
	totalOps, err := strconv.ParseUint(opsEnv, 10, 64)
	if err != nil || totalOps == 0 {
		t.Fatalf("bad CANON_CHURN_OPS %q: %v", opsEnv, err)
	}
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(101))
	ctx := context.Background()

	newNode := func(tag string) *netnode.Node {
		n, err := netnode.New(netnode.Config{
			Name:              "org/dept",
			RandomID:          true,
			Rand:              rng,
			Transport:         bus.Endpoint("soak-" + tag),
			ReplicationFactor: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}

	var stable []*netnode.Node
	for i := 0; i < 10; i++ {
		n := newNode(fmt.Sprintf("s%d", i))
		contact := ""
		if i > 0 {
			contact = stable[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		n.Start(5 * time.Millisecond)
		stable = append(stable, n)
	}
	time.Sleep(100 * time.Millisecond)

	// Seed data that must survive the whole soak.
	keys := make([]uint64, 20)
	for i := range keys {
		keys[i] = uint64(5000 + i*7919)
		if err := stable[0].Put(ctx, keys[i], []byte(fmt.Sprintf("soak%d", i)), "org", "org"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)

	var done atomic.Uint64
	var lookupErrs atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(w)))
			for {
				op := done.Add(1)
				if op > totalOps {
					return
				}
				src := stable[op%uint64(len(stable))]
				opCtx, cancel := context.WithTimeout(ctx, time.Second)
				_, _, err := src.LookupHops(opCtx, uint64(rr.Uint32()), "")
				cancel()
				if err != nil {
					lookupErrs.Add(1)
				}
			}
		}(w)
	}

	// Continuous join/leave churn against the stable core until the workers
	// drain the op budget.
	churnStop := make(chan struct{})
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			n := newNode(fmt.Sprintf("t%d", i))
			if err := n.Join(ctx, stable[i%len(stable)].Info().Addr); err != nil {
				t.Errorf("soak join %d: %v", i, err)
				return
			}
			n.Start(5 * time.Millisecond)
			time.Sleep(50 * time.Millisecond)
			leaveCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			if err := n.Leave(leaveCtx); err != nil {
				t.Errorf("soak leave %d: %v", i, err)
			}
			cancel()
			time.Sleep(20 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(churnStop)
	churnWg.Wait()
	elapsed := time.Since(start)

	// Transient lookup errors are tolerated (a node mid-leave can time out a
	// hop), but they must stay rare or routing is degrading under churn.
	errs := lookupErrs.Load()
	if maxErrs := totalOps / 100; errs > maxErrs {
		t.Fatalf("%d/%d lookups failed during churn (allowed %d)", errs, totalOps, maxErrs)
	}
	t.Logf("soak: %d lookups in %v (%.0f ops/s), %d transient errors",
		totalOps, elapsed.Round(time.Second), float64(totalOps)/elapsed.Seconds(), errs)

	// Settle, then every seeded key must still be retrievable and owners must
	// agree across the stable core.
	for r := 0; r < 10; r++ {
		for _, n := range stable {
			sctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
			n.StabilizeOnce(sctx)
			n.FixFingers(sctx)
			cancel()
		}
	}
	for i, key := range keys {
		got, err := stable[0].Get(ctx, key)
		if err != nil || string(got) != fmt.Sprintf("soak%d", i) {
			t.Errorf("key %d lost after soak: %q, %v", key, got, err)
		}
	}
	for _, key := range keys {
		var owner string
		for _, n := range stable {
			info, err := n.Lookup(ctx, key, "")
			if err != nil {
				t.Fatalf("lookup after soak: %v", err)
			}
			if owner == "" {
				owner = info.Addr
			} else if info.Addr != owner {
				t.Errorf("key %d: owners disagree after soak (%s vs %s)", key, info.Addr, owner)
			}
		}
	}
}
