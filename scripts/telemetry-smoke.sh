#!/usr/bin/env bash
# telemetry-smoke.sh — end-to-end smoke test of the observability stack.
#
# Boots a real five-node canond cluster over TCP — deliberately mixed-wire:
# nodes 2 and 4 are forced to the legacy JSON framing (-wire json) while the
# rest speak the binary mux, so the run exercises binary<->binary mux reuse,
# binary->json downgrades and json->binary upgrades on real sockets — with
# the admin endpoint enabled on the bootstrap node, runs puts/gets and a
# traced lookup through canonctl, then asserts:
#   * /metrics serves Prometheus text with nonzero canon_rpc_sent_total and
#     canon_transport_calls_total counters,
#   * the canon_transport_mux_* negotiation series prove the binary wire was
#     actually used (dials > 0) in the mixed cluster,
#   * canonctl trace prints an owner and per-hop spans,
#   * /debug/trace/ archives the trace and serves it back by id.
#
# Usage: telemetry-smoke.sh [path-to-canond] [path-to-canonctl]
set -euo pipefail

CANOND=${1:-./canond}
CANONCTL=${2:-./canonctl}
BASE=7141
ADMIN=9141
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== booting five nodes (bootstrap admin at :$ADMIN)"
"$CANOND" -listen "127.0.0.1:$BASE" -domain west/a -admin "127.0.0.1:$ADMIN" \
  -trace-sample 0.5 -stabilize 200ms &
PIDS+=($!)
sleep 1
domains=(west/a west/b east/a east/b)
for i in 1 2 3 4; do
  # Mixed wires: even-numbered joiners speak the legacy JSON framing
  # outbound, odd-numbered ones (and the bootstrap) the binary mux. Every
  # node *serves* both, so the cluster interoperates regardless.
  wire=binary
  if [ $((i % 2)) -eq 0 ]; then wire=json; fi
  "$CANOND" -listen "127.0.0.1:$((BASE + i))" -domain "${domains[$((i % 4))]}" \
    -join "127.0.0.1:$BASE" -stabilize 200ms -wire "$wire" &
  PIDS+=($!)
  sleep 0.5
done
echo "== letting stabilization run"
sleep 4

echo "== put/get through the cluster"
"$CANONCTL" -node "127.0.0.1:$((BASE + 2))" put 42 smoke-value
got=$("$CANONCTL" -node "127.0.0.1:$((BASE + 3))" get 42)
[ "$got" = "smoke-value" ] || { echo "get returned '$got', want 'smoke-value'" >&2; exit 1; }

echo "== traced lookup"
trace_out=$("$CANONCTL" -node "127.0.0.1:$BASE" trace 3405691582)
echo "$trace_out"
echo "$trace_out" | grep -q "owner node" || { echo "trace output has no owner" >&2; exit 1; }
echo "$trace_out" | grep -q "hop 0" || { echo "trace output has no spans" >&2; exit 1; }
trace_id=$(echo "$trace_out" | sed -n 's/^trace \([0-9a-f]*\) .*/\1/p')
[ -n "$trace_id" ] || { echo "could not parse trace id" >&2; exit 1; }

echo "== /metrics serves nonzero counters"
metrics=$(curl -sf "http://127.0.0.1:$ADMIN/metrics")
echo "$metrics" | awk '/^canon_rpc_sent_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_rpc_sent_total missing or zero" >&2; exit 1; }
echo "$metrics" | awk '/^canon_transport_calls_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_transport_calls_total missing or zero" >&2; exit 1; }
echo "$metrics" | grep -q '^canon_lookup_hops_count' \
  || { echo "canon_lookup_hops histogram missing" >&2; exit 1; }
# The bootstrap node speaks the binary mux outbound; the negotiation series
# must show it actually dialed and multiplexed binary connections.
echo "$metrics" | awk '/^canon_transport_mux_dials_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_transport_mux_dials_total missing or zero" >&2; exit 1; }
echo "$metrics" | awk '/^canon_transport_mux_frames_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_transport_mux_frames_total missing or zero" >&2; exit 1; }

echo "== /debug/trace/ archives the trace"
curl -sf "http://127.0.0.1:$ADMIN/debug/trace/$trace_id" | grep -q "$trace_id" \
  || { echo "trace $trace_id not served back by /debug/trace/" >&2; exit 1; }

echo "== /status still answers"
curl -sf "http://127.0.0.1:$ADMIN/status" | grep -q '"info"\|"Info"\|{' \
  || { echo "/status unusable" >&2; exit 1; }

echo "telemetry smoke: OK"
