package netnode

import (
	"context"
	"errors"
	"testing"

	"github.com/canon-dht/canon/internal/canonstore"
	"github.com/canon-dht/canon/internal/transport"
)

var errBarrier = errors.New("injected barrier failure")

// failingSyncStore passes everything through until armed, then fails the
// durability barrier.
type failingSyncStore struct {
	canonstore.Store
	fail bool
}

func (s *failingSyncStore) Sync() error {
	if s.fail {
		return errBarrier
	}
	return s.Store.Sync()
}

// TestSyncWithSurfacesBarrierError pins the durabilityerr fix in syncWith:
// pulled anti-entropy repairs are acked writes by proxy, so a failed
// store.Sync after applying them must surface as the round's error instead
// of being discarded.
func TestSyncWithSurfacesBarrierError(t *testing.T) {
	ctx := context.Background()
	bus := transport.NewBus()
	fs := &failingSyncStore{Store: canonstore.NewMem()}
	a, err := New(Config{Name: "a", ID: 100, Transport: bus.Endpoint("a"), Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Name: "b", ID: 200, Transport: bus.Endpoint("b")})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Join(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(ctx, a.Info().Addr); err != nil {
		t.Fatal(err)
	}

	// Seed the peer with a record the local node lacks, then sync the whole
	// ring (lo == hi): the record must be pulled, and the failed barrier
	// must surface.
	if err := b.storeLocalV2(storeReq2{Key: 42, Value: []byte("x"), Version: 7}); err != nil {
		t.Fatal(err)
	}
	fs.fail = true
	_, pulled, err := a.syncWith(ctx, b.Info(), "", 0, 0)
	if pulled != 1 {
		t.Fatalf("pulled = %d, want 1", pulled)
	}
	if !errors.Is(err, errBarrier) {
		t.Fatalf("syncWith error = %v, want the injected barrier failure", err)
	}
}
