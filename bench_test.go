package canon_test

// One benchmark per table and figure of the paper's evaluation (Section 5),
// plus theorem-bound checks and the Section 3/4 ablations. Benchmarks run at
// reduced sizes so `go test -bench=.` completes quickly; the full
// paper-scale sweeps run via `go run ./cmd/canonsim <figure>`. Reproduced
// quantities are reported with b.ReportMetric so shapes can be compared to
// the paper directly from benchmark output.

import (
	"math"
	"math/rand"
	"testing"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Fanout: 10, ZipfExponent: 1.25, RoutePairs: 500}
}

// BenchmarkFig3Degree regenerates Figure 3 (average links per node vs
// network size, per hierarchy depth) at reduced scale.
func BenchmarkFig3Degree(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig3(cfg, []int{1024, 4096}, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			flat := tbl.Series[0]
			deep := tbl.Series[2]
			b.ReportMetric(flat.Y[len(flat.Y)-1], "chord-degree@4096")
			b.ReportMetric(deep.Y[len(deep.Y)-1], "crescendo5-degree@4096")
		}
	}
}

// BenchmarkFig4DegreePDF regenerates Figure 4 (links/node distribution).
func BenchmarkFig4DegreePDF(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig4(cfg, 4096, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the mode of the flat distribution.
			flat := tbl.Series[0]
			best, bestY := 0.0, 0.0
			for j := range flat.Y {
				if flat.Y[j] > bestY {
					best, bestY = flat.X[j], flat.Y[j]
				}
			}
			b.ReportMetric(best, "chord-mode-links")
		}
	}
}

// BenchmarkFig5Hops regenerates Figure 5 (average routing hops).
func BenchmarkFig5Hops(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig5(cfg, []int{1024, 4096}, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			flat, deep := tbl.Series[0], tbl.Series[2]
			b.ReportMetric(flat.Y[len(flat.Y)-1], "chord-hops@4096")
			b.ReportMetric(deep.Y[len(deep.Y)-1]-flat.Y[len(flat.Y)-1], "crescendo5-extra-hops")
		}
	}
}

// BenchmarkFig6Stretch regenerates Figure 6 (latency and stretch on the
// transit-stub topology) at one reduced size.
func BenchmarkFig6Stretch(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		_, stretch, err := experiments.Fig6(cfg, []int{2048})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range stretch.Series {
				switch s.Name {
				case "chord (no prox.)":
					b.ReportMetric(s.Y[0], "stretch-chord")
				case "crescendo (no prox.)":
					b.ReportMetric(s.Y[0], "stretch-crescendo")
				case "chord (prox.)":
					b.ReportMetric(s.Y[0], "stretch-chord-prox")
				case "crescendo (prox.)":
					b.ReportMetric(s.Y[0], "stretch-crescendo-prox")
				}
			}
		}
	}
}

// BenchmarkFig7Locality regenerates Figure 7 (latency vs query locality).
func BenchmarkFig7Locality(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig7(cfg, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				if s.Name == "crescendo (no prox.)" {
					b.ReportMetric(s.Y[0], "crescendo-top-ms")
					b.ReportMetric(s.Y[3], "crescendo-level3-ms")
				}
			}
		}
	}
}

// BenchmarkFig8Overlap regenerates Figure 8 (path overlap fractions).
func BenchmarkFig8Overlap(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig8(cfg, 2048)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				switch s.Name {
				case "crescendo (hops)":
					b.ReportMetric(s.Y[3], "crescendo-overlap@3")
				case "chord (prox.) (hops)":
					b.ReportMetric(s.Y[3], "chord-overlap@3")
				}
			}
		}
	}
}

// BenchmarkFig9Multicast regenerates the Figure 9 table (inter-domain links
// in a multicast tree).
func BenchmarkFig9Multicast(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig9(cfg, 2048, 500)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var crescendo, chordP float64
			for _, s := range tbl.Series {
				switch s.Name {
				case "crescendo":
					crescendo = s.Y[0]
				case "chord (prox.)":
					chordP = s.Y[0]
				}
			}
			b.ReportMetric(crescendo, "crescendo-links@1")
			b.ReportMetric(chordP, "chord-links@1")
			if crescendo > 0 {
				b.ReportMetric(chordP/crescendo, "savings-factor")
			}
		}
	}
}

// BenchmarkThmDegreeBounds measures the Theorem 1/2 quantities: expected
// degrees against log2(n-1)+1 (Chord) and log2(n-1)+min(l, log n)
// (Crescendo).
func BenchmarkThmDegreeBounds(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig3(cfg, []int{4096}, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bound := math.Log2(4095) + 1
			b.ReportMetric(tbl.Series[0].Y[0]/bound, "chord-degree/bound")
			bound4 := math.Log2(4095) + math.Min(4, math.Log2(4096))
			b.ReportMetric(tbl.Series[1].Y[0]/bound4, "crescendo-degree/bound")
		}
	}
}

// BenchmarkThmHopBounds measures the Theorem 4/5 quantities: expected hops
// against 0.5*log2(n-1)+0.5 (Chord) and log2(n-1)+1 (Crescendo).
func BenchmarkThmHopBounds(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig5(cfg, []int{4096}, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tbl.Series[0].Y[0]/(0.5*math.Log2(4095)+0.5), "chord-hops/bound")
			b.ReportMetric(tbl.Series[1].Y[0]/(math.Log2(4095)+1), "crescendo-hops/bound")
		}
	}
}

// BenchmarkVariantsDegree compares all Section 3 Canonical constructions.
func BenchmarkVariantsDegree(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Variants(cfg, 1024, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Rows: chord, ndchord, symphony, kademlia, can.
			for _, s := range tbl.Series {
				if s.Name == "canonical hops" {
					b.ReportMetric(s.Y[0], "crescendo-hops")
					b.ReportMetric(s.Y[2], "cacophony-hops")
					b.ReportMetric(s.Y[3], "kandy-hops")
					b.ReportMetric(s.Y[4], "cancan-hops")
				}
			}
		}
	}
}

// BenchmarkLookahead quantifies Section 3.1's lookahead-routing saving.
func BenchmarkLookahead(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Lookahead(cfg, []int{2048}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				if s.Name == "saving fraction" {
					b.ReportMetric(s.Y[0], "hop-saving-fraction")
				}
			}
		}
	}
}

// BenchmarkBalance measures the Section 4.3 partition ratios.
func BenchmarkBalance(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Balance(cfg, []int{4096})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				switch s.Name {
				case "random ids":
					b.ReportMetric(s.Y[0], "ratio-random")
				case "bisection":
					b.ReportMetric(s.Y[0], "ratio-bisection")
				case "hierarchical":
					b.ReportMetric(s.Y[0], "ratio-hierarchical")
				}
			}
		}
	}
}

// BenchmarkCaching measures the Section 4.2 cache policies.
func BenchmarkCaching(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Caching(cfg, 1024, 32, 100, 3000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				if s.Name == "hit rate" {
					b.ReportMetric(s.Y[1], "hit-rate-level-aware")
					b.ReportMetric(s.Y[2], "hit-rate-lru")
				}
			}
		}
	}
}

// BenchmarkBuildCrescendo measures raw construction throughput.
func BenchmarkBuildCrescendo(b *testing.B) {
	tree, err := canon.BalancedHierarchy(3, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	placement := canon.AssignZipf(rng, tree, 8192, 1.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := canon.Build(tree, placement, canon.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(8192, "nodes")
}

// BenchmarkRouteCrescendo measures routing throughput on a built network.
func BenchmarkRouteCrescendo(b *testing.B) {
	tree, err := canon.BalancedHierarchy(3, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	placement := canon.AssignZipf(rng, tree, 8192, 1.25)
	nw, err := canon.Build(tree, placement, canon.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := rng.Intn(nw.Len())
		key := nw.Space().Random(rng)
		r := nw.RouteToKey(from, key)
		if !r.Success {
			b.Fatal("route failed")
		}
	}
}

// BenchmarkResilience measures static resilience under 20% failures.
func BenchmarkResilience(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Resilience(cfg, 2048, 3, []float64{0.2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				switch s.Name {
				case "chord success":
					b.ReportMetric(s.Y[0], "chord-success@20%")
				case "crescendo-3 success":
					b.ReportMetric(s.Y[0], "crescendo-success@20%")
				}
			}
		}
	}
}

// BenchmarkChurn measures Section 2.3's maintenance messages per join.
func BenchmarkChurn(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Churn(cfg, []int{1024}, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range tbl.Series {
				switch s.Name {
				case "messages/join":
					b.ReportMetric(s.Y[0], "messages-per-join")
				case "join messages / log2 n":
					b.ReportMetric(s.Y[0], "messages-per-log2n")
				}
			}
		}
	}
}
