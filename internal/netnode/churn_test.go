package netnode_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// TestLiveChurn drives a live cluster through churn with background
// maintenance running: nodes join and crash concurrently with lookups; after
// the churn stops and the survivors stabilize, the ring must be consistent
// and all data retrievable. Run with -race to exercise the locking.
func TestLiveChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("live churn takes ~10s; skipped with -short")
	}
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(61))
	ctx := context.Background()

	newNode := func(i int) *netnode.Node {
		n, err := netnode.New(netnode.Config{
			Name:              "org/dept",
			RandomID:          true,
			Rand:              rng,
			Transport:         bus.Endpoint(fmt.Sprintf("churn-%d", i)),
			ReplicationFactor: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Stop background loops even when the test aborts early, or they
		// starve the rest of the package on small machines.
		t.Cleanup(func() { _ = n.Close() })
		return n
	}

	// Initial stable cluster of 8.
	var nodes []*netnode.Node
	for i := 0; i < 8; i++ {
		n := newNode(i)
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		n.Start(2 * time.Millisecond)
		nodes = append(nodes, n)
	}
	time.Sleep(60 * time.Millisecond)

	// Seed some data.
	keys := make([]uint64, 10)
	for i := range keys {
		keys[i] = uint64(1000 + i*7919)
		if err := nodes[0].Put(ctx, keys[i], []byte(fmt.Sprintf("v%d", i)), "org", "org"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // let replication run

	// Churn: joins and crashes interleaved with lookups from a reader
	// goroutine.
	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	reader := nodes[0] // captured before the main goroutine mutates `nodes`
	wg.Add(1)
	go func() {
		defer wg.Done()
		rr := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			readCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			_, _, _ = reader.LookupHops(readCtx, uint64(rr.Uint32()), "")
			cancel()
			time.Sleep(time.Millisecond)
		}
	}()

	// Joins and crashes interleaved. Replication factor 3 tolerates two
	// adjacent losses per re-replication window, so each crash gets a
	// window for the background loops to restore redundancy before the
	// next.
	crashed := make(map[string]bool)
	for i := 8; i < 14; i++ {
		n := newNode(i)
		if err := n.Join(ctx, nodes[0].Info().Addr); err != nil {
			t.Fatalf("churn join: %v", err)
		}
		n.Start(2 * time.Millisecond)
		nodes = append(nodes, n)
		// Crash one of the mid-cluster nodes (never node 0, the reader's
		// entry point) after every other join.
		if i%2 == 0 {
			victim := nodes[1+i%5]
			if !crashed[victim.Info().Addr] {
				bus.SetDown(victim.Info().Addr, true)
				crashed[victim.Info().Addr] = true
			}
		}
		time.Sleep(80 * time.Millisecond)
	}
	close(stopReads)
	wg.Wait()

	// Let the survivors settle.
	var alive []*netnode.Node
	for _, n := range nodes {
		if !crashed[n.Info().Addr] {
			alive = append(alive, n)
		}
	}
	time.Sleep(200 * time.Millisecond)
	for r := 0; r < 10; r++ {
		for _, n := range alive {
			sctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			n.StabilizeOnce(sctx)
			n.FixFingers(sctx)
			cancel()
		}
	}

	// All data survives the churn (replication factor 3, <= 5 crashes
	// spread over time with re-replication between them).
	for i, key := range keys {
		got, err := alive[0].Get(ctx, key)
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Errorf("key %d lost after churn: %q, %v", key, got, err)
		}
	}
	// Lookups from every survivor agree.
	for _, key := range keys {
		var owner string
		for _, n := range alive {
			info, err := n.Lookup(ctx, key, "")
			if err != nil {
				t.Fatalf("lookup after churn: %v", err)
			}
			if owner == "" {
				owner = info.Addr
			} else if info.Addr != owner {
				t.Errorf("key %d: owners disagree (%s vs %s)", key, info.Addr, owner)
			}
		}
	}
}
