// Package transport provides the message transport used by live Canon nodes
// (internal/netnode): a request/response abstraction with three
// implementations — an in-memory bus for tests and simulations, a TCP
// transport for real deployments, and a retrying UDP transport for
// low-overhead LAN messaging (paper, Section 3.5).
//
// # Wire protocols
//
// The TCP transport speaks two wire protocols on the same listening port,
// distinguished by the first byte a connection carries (docs/WIRE.md is the
// authoritative specification):
//
//   - Binary mux (preferred): one persistent connection per peer (default 2)
//     carries many concurrent in-flight requests, each frame tagged with a
//     uint64 request ID. Envelopes use a compact binary encoding with varint
//     lengths; bodies that implement BinaryAppender/encoding.BinaryMarshaler
//     (the hot netnode payloads: lookup, store, fetch, ping) are encoded in
//     their canonical binary form, everything else rides as JSON inside the
//     binary envelope. Encode buffers are sync.Pool-recycled.
//
//   - Legacy JSON (fallback): one request/response per connection at a time,
//     4-byte big-endian length prefix followed by the envelope as a JSON
//     object. Connections are pooled per peer and carry one call each.
//
// A dialing node always tries the binary handshake first (unless configured
// -wire=json) and downgrades automatically when the peer closes the
// connection on the unrecognized magic, so mixed-version clusters
// interoperate without configuration. The serving side sniffs the first byte
// of every accepted connection and serves whichever protocol the dialer
// chose.
//
// # Composition
//
// Faulty (deterministic fault injection + nonce dedup) and Instrumented
// (wire-level telemetry) wrap any Transport, in any order, and compose
// unchanged with both wire protocols: they operate on Message values, which
// carry their typed Body alongside the encoded Payload, so a message crossing
// a binary connection is encoded from Body while the same message crossing a
// JSON connection materializes JSON — no wrapper ever needs to know which.
package transport
