package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the fixture annotation `// want `<regexp>“, the golden
// syntax every bad.go line with an expected finding carries.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// fixtureWants parses the want annotations of every .go file directly in dir
// (sub-packages excluded), keyed by "file.go:line".
func fixtureWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string][]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// TestFixtures is the golden corpus: for every check, the testdata/<check>
// package must produce exactly the findings its want comments declare — each
// bad.go line fires, every clean.go construct stays silent, and the pragma
// lines prove the escape hatch.
func TestFixtures(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, chk := range AllChecks() {
		t.Run(chk.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", chk.Name)
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("check %s has no fixture directory: %v", chk.Name, err)
			}
			loader, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := loader.LoadDirs([]string{dir})
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, terr := range pkg.TypeErrors {
					t.Errorf("fixture must type-check cleanly: %v", terr)
				}
			}

			cfg := DefaultConfig(loader.Module)
			cfg.Enabled = map[string]bool{chk.Name: true}
			fixturePath, err := loader.importPath(dir)
			if err != nil {
				t.Fatal(err)
			}
			switch chk.Name {
			case "simdeterminism":
				// The fixture package plays a seed-reproducible simulation
				// package, the way cmd/canonvet's config lists the real ones.
				cfg.SimPackages[fixturePath] = true
			case "nodeadline":
				// The fixture package plays a command entry point.
				cfg.EntryPackages[fixturePath] = true
			case "durabilityerr":
				// The fixture package plays the storage engine, so its own
				// durability primitives are in scope.
				cfg.DurabilityPackages[fixturePath] = true
			case deadPragmaName:
				// The meta-check needs the other checks to run (staleness is
				// "named check ran and suppressed nothing"); the fixture is
				// deliberately clean under all of them.
				cfg.Enabled = nil
			case "wiresym", "wirebreak", "wirebounds", "wiredoc":
				// The fixture package plays the wire codec package. The doc
				// and baseline artifacts live inside the fixture directory;
				// an empty path disables the corresponding check, which is
				// what the fixtures of the other wire checks want.
				cfg.WirePackages = map[string]bool{fixturePath: true}
				cfg.WireDocPath = ""
				cfg.WireBaselinePath = ""
				if chk.Name == "wiredoc" {
					cfg.WireDocPath = filepath.Join(dir, "WIRE.md")
				}
				if chk.Name == "wirebreak" {
					cfg.WireBaselinePath = filepath.Join(dir, "wire.schema.json")
				}
			}

			diags := Run(cfg, loader.Fset, pkgs)
			wants := fixtureWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no want annotations", dir)
			}
			used := make(map[string][]bool, len(wants))
			for key, pats := range wants {
				used[key] = make([]bool, len(pats))
			}
			for _, d := range diags {
				if d.Check != chk.Name {
					t.Errorf("diagnostic from unexpected check %s: %s", d.Check, d)
					continue
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
				matched := false
				for i, pat := range wants[key] {
					if used[key][i] {
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					if re.MatchString(d.Message) {
						used[key][i] = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
				}
			}
			for key, pats := range wants {
				for i, pat := range pats {
					if !used[key][i] {
						t.Errorf("missing diagnostic at %s matching %q", key, pat)
					}
				}
			}
		})
	}
}

// TestModuleClean pins the acceptance bar: the full tree under every check
// produces zero findings (real problems were fixed; deliberate exceptions
// carry justified ignore pragmas).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(loader.Module)
	// The wire checks resolve docs/WIRE.md and docs/wire.schema.json against
	// the module root, exactly like cmd/canonvet does.
	cfg.Root = root
	diags := Run(cfg, loader.Fset, pkgs)
	for _, d := range diags {
		t.Errorf("module must be canonvet-clean: %s", d)
	}
}

// TestPragmaParsing covers the two pragma scopes directly: above the package
// clause (file-wide) and adjacent to a line (that line and the next).
func TestPragmaParsing(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "globalrand")
	pkgs, err := loader.LoadDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(loader.Module)
	cfg.Enabled = map[string]bool{"globalrand": true}
	diags := Run(cfg, loader.Fset, pkgs)
	for _, d := range diags {
		base := filepath.Base(d.File)
		if base == "ignored.go" {
			t.Errorf("file-wide pragma failed to suppress: %s", d)
		}
	}
}
