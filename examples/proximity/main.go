// Proximity adaptation: the same node population on the same simulated
// internet, built four ways — Chord and Crescendo, each with and without the
// group-based proximity adaptation of Section 3.6 — and the latency bill for
// each. A miniature of the paper's Figure 6.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proximity:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 2048
	rng := rand.New(rand.NewSource(6))
	topo, err := topology.New(rng, topology.DefaultConfig())
	if err != nil {
		return err
	}
	hosts, err := topo.AttachHosts(rng, n)
	if err != nil {
		return err
	}
	direct := hosts.AvgDirectLatency(rng, 2000)
	fmt.Printf("simulated internet: %d routers, %d hosts, avg direct latency %.0f ms\n\n",
		topo.NumRouters(), n, direct)

	// Fixed IDs so every system is built over the identical population.
	ids, err := canon.DefaultSpace().UniqueRandom(rng, n)
	if err != nil {
		return err
	}
	tagOf := tagsByID(ids)
	latency := func(a, b int) float64 { return hosts.Latency(tagOf[a], tagOf[b]) }

	build := func(hierarchical, prox bool) (*canon.Network, error) {
		var tree *canon.Hierarchy
		placement := make([]*canon.Domain, n)
		if hierarchical {
			tree = hosts.Tree()
			copy(placement, hosts.Leaves())
		} else {
			tree = canon.NewHierarchy()
			for i := range placement {
				placement[i] = tree.Root()
			}
		}
		opts := canon.Options{Seed: 6, IDs: ids}
		if prox {
			opts.Proximity = &canon.ProximityOptions{Latency: latency}
		}
		return canon.Build(tree, placement, opts)
	}

	systems := []struct {
		name         string
		hierarchical bool
		prox         bool
	}{
		{"chord (no prox.)", false, false},
		{"chord (prox.)", false, true},
		{"crescendo (no prox.)", true, false},
		{"crescendo (prox.)", true, true},
	}
	fmt.Printf("%-24s %12s %9s\n", "system", "latency (ms)", "stretch")
	for _, sys := range systems {
		nw, err := build(sys.hierarchical, sys.prox)
		if err != nil {
			return err
		}
		rr := rand.New(rand.NewSource(9))
		var total float64
		const routes = 1500
		for i := 0; i < routes; i++ {
			key := nw.Space().Random(rr)
			r := nw.RouteToKey(rr.Intn(n), key)
			if !r.Success {
				continue
			}
			for j := 0; j+1 < len(r.Nodes); j++ {
				total += hosts.Latency(nw.NodeTag(r.Nodes[j]), nw.NodeTag(r.Nodes[j+1]))
			}
		}
		avg := total / routes
		fmt.Printf("%-24s %12.0f %9.2f\n", sys.name, avg, avg/direct)
	}
	fmt.Println("\nhierarchy alone more than halves the bill; proximity adaptation")
	fmt.Println("at the top level takes crescendo to within ~1.7x of direct routing.")
	return nil
}

func tagsByID(ids []canon.ID) []int {
	type pair struct {
		id  canon.ID
		tag int
	}
	pairs := make([]pair, len(ids))
	for i, v := range ids {
		pairs[i] = pair{id: v, tag: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return uint64(pairs[i].id) < uint64(pairs[j].id) })
	out := make([]int, len(ids))
	for i, p := range pairs {
		out[i] = p.tag
	}
	return out
}
