package wiresym

// pongResp's encoder and decoder agree field for field; wiresym stays
// silent however many messages the package defines.
type pongResp struct {
	C uint64
	D string
}

func (p pongResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, p.C)
	b = appendStr(b, p.D)
	return b, nil
}

func (p *pongResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.C = r.u64()
	p.D = r.str()
	return r.done()
}
