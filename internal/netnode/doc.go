// Package netnode implements a live, networked Crescendo node: the dynamic
// side of the paper (Section 2.3). Nodes carry hierarchical names
// ("stanford/cs/db"), maintain successor lists (leaf sets) and a predecessor
// at every level of their domain chain, and build their finger tables with
// the Canon rule — full Chord fingers inside the lowest-level domain, and at
// each higher level only fingers shorter than the distance to the
// lower-level successor. Lookups are forwarded greedily clockwise,
// constrained to a domain, so intra-domain path locality holds on the wire
// exactly as in the analytical model.
//
// Bootstrap uses the paper's third suggestion: membership hints are stored
// in the DHT itself, under a key derived from each domain's name.
//
// # Wire formats
//
// RPC bodies are declared in wire.go with json struct tags — the legacy
// wire form — and the hot payloads (lookup, store, fetch, node identities,
// trace spans) additionally implement transport.BinaryAppender and
// encoding.BinaryUnmarshaler in binwire.go, so binary-mux connections carry
// them in the compact encoding specified in docs/WIRE.md §4. Both forms are
// maintained in lockstep; the differential fuzzers in binwire_test.go hold
// them to byte-level agreement on everything JSON can represent.
//
// # Resilience
//
// Outbound RPCs go through a retry policy with exponential backoff; each
// logical request carries a dedup nonce, and the serving side wraps its
// handler in nonce-based at-most-once caching (transport.DedupHandler
// semantics), so retries and duplicated deliveries never double-execute a
// store. Nodes that repeatedly fail are routed around using the per-level
// successor lists, and the routing layer records route-arounds in the
// node's stats and any active route trace.
package netnode
