// Package id implements the identifier spaces used by Canon DHTs: an N-bit
// circular space with clockwise (ring) distance, as used by Chord, Crescendo,
// Symphony and Cacophony, and the XOR metric used by Kademlia, Kandy, CAN and
// Can-Can.
//
// Identifiers are stored in the low Bits bits of a uint64. All arithmetic is
// performed modulo 2^Bits. The package is purely computational and safe for
// concurrent use.
package id

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
)

// DefaultBits is the identifier width used throughout the paper's
// evaluation (nodes choose random 32-bit IDs).
const DefaultBits = 32

// MaxBits is the widest identifier space supported.
const MaxBits = 63

// ID is an identifier in an N-bit circular space. The space width is carried
// separately (see Space); an ID by itself is just the integer value.
type ID uint64

// Space describes an N-bit identifier space and provides modular arithmetic
// and the two distance metrics over it.
type Space struct {
	bits uint
	mask uint64
}

// NewSpace returns a Space with the given number of bits. It returns an
// error if bits is outside [1, MaxBits].
func NewSpace(bits uint) (Space, error) {
	if bits < 1 || bits > MaxBits {
		return Space{}, fmt.Errorf("id: space bits %d out of range [1,%d]", bits, MaxBits)
	}
	return Space{bits: bits, mask: (uint64(1) << bits) - 1}, nil
}

// MustSpace is like NewSpace but panics on error. It is intended for
// package-level defaults and tests.
func MustSpace(bits uint) Space {
	s, err := NewSpace(bits)
	if err != nil {
		panic(err)
	}
	return s
}

// DefaultSpace is the 32-bit identifier space used in the paper's evaluation.
func DefaultSpace() Space { return MustSpace(DefaultBits) }

// Bits returns the width of the space in bits.
func (s Space) Bits() uint { return s.bits }

// Size returns the number of identifiers in the space, 2^Bits.
func (s Space) Size() uint64 { return s.mask + 1 }

// Mask returns the bit mask selecting valid identifier bits.
func (s Space) Mask() uint64 { return s.mask }

// Contains reports whether v is a valid identifier in this space.
func (s Space) Contains(v ID) bool { return uint64(v)&^s.mask == 0 }

// Wrap reduces an arbitrary integer into the space.
func (s Space) Wrap(v uint64) ID { return ID(v & s.mask) }

// Random returns an identifier drawn uniformly at random from the space.
func (s Space) Random(rng *rand.Rand) ID {
	return ID(rng.Uint64() & s.mask)
}

// Add returns a + d (mod 2^Bits).
func (s Space) Add(a ID, d uint64) ID {
	return ID((uint64(a) + d) & s.mask)
}

// Sub returns a - d (mod 2^Bits).
func (s Space) Sub(a ID, d uint64) ID {
	return ID((uint64(a) - d) & s.mask)
}

// Clockwise returns the clockwise distance from a to b on the ring: the
// number of unit steps needed to reach b from a moving in increasing-ID
// direction, in [0, 2^Bits).
func (s Space) Clockwise(a, b ID) uint64 {
	return (uint64(b) - uint64(a)) & s.mask
}

// XOR returns the XOR distance between a and b (the Kademlia metric).
func (s Space) XOR(a, b ID) uint64 {
	return (uint64(a) ^ uint64(b)) & s.mask
}

// Between reports whether x lies in the half-open clockwise interval (a, b].
// The interval wraps around zero when b's clockwise position precedes a's.
// If a == b the interval covers the entire ring (every x qualifies), matching
// Chord's convention for a ring with a single node.
func (s Space) Between(x, a, b ID) bool {
	if a == b {
		return true
	}
	da := s.Clockwise(a, x)
	db := s.Clockwise(a, b)
	return da > 0 && da <= db
}

// InInterval reports whether the clockwise distance from a to x lies in
// [lo, hi). It is the primitive behind nondeterministic Chord's link rule.
func (s Space) InInterval(x, a ID, lo, hi uint64) bool {
	d := s.Clockwise(a, x)
	return d >= lo && d < hi
}

// CommonPrefixLen returns the number of leading bits (most significant first,
// within the space width) shared by a and b.
func (s Space) CommonPrefixLen(a, b ID) uint {
	x := s.XOR(a, b)
	if x == 0 {
		return s.bits
	}
	n := uint(0)
	for i := int(s.bits) - 1; i >= 0; i-- {
		if x&(uint64(1)<<uint(i)) != 0 {
			break
		}
		n++
	}
	return n
}

// Bit returns bit i of v, where bit 0 is the most significant bit of the
// space. It panics if i >= Bits, which would indicate a programming error.
func (s Space) Bit(v ID, i uint) uint {
	if i >= s.bits {
		panic("id: bit index out of range")
	}
	return uint(uint64(v)>>(s.bits-1-i)) & 1
}

// FlipBit returns v with bit i (MSB-first) inverted.
func (s Space) FlipBit(v ID, i uint) ID {
	if i >= s.bits {
		panic("id: bit index out of range")
	}
	return ID(uint64(v) ^ (uint64(1) << (s.bits - 1 - i)))
}

// Prefix returns the top plen bits of v, right-aligned. Prefix(v, 0) is 0.
func (s Space) Prefix(v ID, plen uint) uint64 {
	if plen == 0 {
		return 0
	}
	if plen > s.bits {
		panic("id: prefix length out of range")
	}
	return uint64(v) >> (s.bits - plen)
}

// PrefixRange returns the smallest and largest identifiers sharing the given
// right-aligned prefix of length plen.
func (s Space) PrefixRange(prefix uint64, plen uint) (lo, hi ID) {
	if plen > s.bits {
		panic("id: prefix length out of range")
	}
	if plen == 0 {
		return 0, ID(s.mask)
	}
	lo = ID(prefix << (s.bits - plen))
	hi = ID(uint64(lo) | (s.mask >> plen))
	return lo, hi
}

// String renders v as a zero-padded binary string of the space's width,
// which makes prefix structure visible in logs and tests.
func (s Space) String(v ID) string {
	raw := strconv.FormatUint(uint64(v), 2)
	for uint(len(raw)) < s.bits {
		raw = "0" + raw
	}
	return raw
}

// SortIDs sorts ids ascending in place and returns them.
func SortIDs(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// UniqueRandom draws n distinct identifiers uniformly at random. It returns
// an error if the space cannot hold n distinct values.
func (s Space) UniqueRandom(rng *rand.Rand, n int) ([]ID, error) {
	if uint64(n) > s.Size() {
		return nil, fmt.Errorf("id: cannot draw %d distinct ids from space of size %d", n, s.Size())
	}
	seen := make(map[ID]struct{}, n)
	out := make([]ID, 0, n)
	for len(out) < n {
		v := s.Random(rng)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out, nil
}

// SearchIDs returns the smallest index i in the ascending-sorted slice ids
// with ids[i] >= v, or len(ids) when every identifier is below v. It is the
// id.ID counterpart of sort.SearchInts: an insertion-point search in
// absolute identifier order, with no ring wrap-around (SuccessorIndex is the
// wrapping variant). It exists so callers never spell raw ordering
// comparisons on circular identifiers themselves — canonvet's ringcmp check
// flags those outside this package.
func SearchIDs(ids []ID, v ID) int {
	return sort.Search(len(ids), func(k int) bool { return ids[k] >= v })
}

// SearchAfter returns the smallest index i in the ascending-sorted slice ids
// with ids[i] > v, or len(ids). Chord's responsibility rule ("owner = the
// greatest identifier <= k, wrapping") is index i-1, wrapping to the last
// element when i == 0.
func SearchAfter(ids []ID, v ID) int {
	return sort.Search(len(ids), func(k int) bool { return ids[k] > v })
}

// SuccessorIndex returns the index in the ascending-sorted slice ids of the
// first identifier whose value is >= target, wrapping to index 0 when target
// exceeds every element. The slice must be non-empty.
func SuccessorIndex(ids []ID, target ID) int {
	i := SearchIDs(ids, target)
	if i == len(ids) {
		return 0
	}
	return i
}

// PredecessorIndex returns the index in the ascending-sorted slice ids of the
// last identifier strictly less than target, wrapping to the final index when
// target precedes every element. The slice must be non-empty.
func PredecessorIndex(ids []ID, target ID) int {
	i := SearchIDs(ids, target)
	if i == 0 {
		return len(ids) - 1
	}
	return i - 1
}
