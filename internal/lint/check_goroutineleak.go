package lint

import "strings"

// checkGoroutineLeak flags goroutine spawn sites whose spawned function can
// reach an endless loop (for {} with no escaping statement, or for-range
// over a never-closing time channel) with no way out: no return, no break,
// no panic anywhere in the loop. Canon's liveness arguments (proxy
// convergence, stabilization repair) assume maintenance goroutines are
// either running usefully or stopped deliberately; a loop that cannot exit
// outlives its node, keeps the old routing state alive, and — under churn
// experiments that create thousands of nodes — accumulates into real leaks.
//
// The stop-signal rule is syntactic and deliberately strict: a loop that
// *selects* on ctx.Done()/a stop channel but never leaves the loop is still
// reported (receiving a signal and ignoring it stops nothing); the fix is a
// `return` in the stop case, which makes the loop escape and the finding
// disappear. Spawn sites in _test.go files are exempt (test goroutines die
// with the process).
var checkGoroutineLeak = Check{
	Name:      "goroutineleak",
	Doc:       "goroutines that can reach an endless loop with no reachable stop path (leak class)",
	RunModule: runGoroutineLeak,
}

func runGoroutineLeak(mp *ModulePass) {
	inModule := func(pkg string) bool {
		return pkg == mp.Cfg.ModulePath || strings.HasPrefix(pkg, mp.Cfg.ModulePath+"/")
	}
	for _, n := range mp.Graph.SortedNodes() {
		for _, e := range n.Out {
			if e.Kind != EdgeGo {
				continue
			}
			if n.InTestFile || !inModule(n.Pkg) {
				continue
			}
			s := e.Callee
			if !s.EndlessLoop && !s.Sum.ReachesEndless {
				continue
			}
			chain := mp.Graph.Chain(s, summaryKinds, func(fn *FuncNode) bool {
				return fn.EndlessLoop
			})
			if len(chain) == 0 {
				continue // endless loop only via non-synchronous edges; skip
			}
			loopFn := chain[len(chain)-1]
			note := ""
			// Find the node that actually loops, for the signal note.
			target := s
			if !s.EndlessLoop {
				// The terminal chain frame names it; retrieve by walking.
				for _, cand := range mp.Graph.SortedNodes() {
					if cand.EndlessLoop && strings.HasPrefix(loopFn, cand.Name) {
						target = cand
						break
					}
				}
			}
			if target.StopsOnSignal {
				note = " (it receives a stop signal but never leaves the loop — return in the stop case)"
			} else {
				note = " (add a ctx/done-channel case that returns, and a Close path that signals it)"
			}
			fullChain := append([]string{mp.Graph.frame(n, e.Pos)}, chain...)
			mp.Report(e.Pos, fullChain,
				"goroutine spawned here runs an endless loop in %s with no reachable stop path%s",
				loopFn, note)
		}
	}
}
