package lint

// wireenc.go is the encoder half of the v4 symbolic engine: it abstractly
// executes an AppendBinary-style function body, tracking the byte buffer
// through `b = ...` re-assignments and recording every append to it as an
// abstract operation (wOp). Helper calls that encode a scalar are inlined
// with the caller's arguments substituted; helper calls whose subject is a
// different structure become opaque struct operations interpreted once and
// cached. A canonicalization pass (canonEnc) then folds the op stream into
// the published field layout: uvarint(len)+bytes becomes string/bytes, the
// nil-guard + uvarint(n+1) idiom becomes optbytes or a slice header, the
// bool branch pair becomes bool, and a flags byte carries its recorded bits.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// wVal is an abstract value: where a number/string/slice handed to the
// encoder came from, relative to the message being encoded ("root").
type wVal struct {
	kind string // "root","field","len","add","const","elem","local","nilcmp","opaque"
	base *wVal
	sel  string // field name / local name
	n    int64  // const value, or the add delta
	typ  types.Type
}

// fieldName is the name published in the schema for a value: the struct
// field or local it was read from; empty for loop elements and opaque
// values.
func (v *wVal) fieldName() string {
	if v == nil {
		return ""
	}
	switch v.kind {
	case "field", "local":
		return v.sel
	}
	return ""
}

// sameWVal is structural equality, used to pair a length prefix with the
// bytes it describes. Opaque values never match anything.
func sameWVal(a, b *wVal) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.kind != b.kind || a.kind == "opaque" || a.sel != b.sel || a.n != b.n {
		return false
	}
	if a.base == nil && b.base == nil {
		return true
	}
	return sameWVal(a.base, b.base)
}

// encCond classifies a branch condition in an encoder body.
type encCond struct {
	kind     string // "nil" (X == nil), "flag" (flags&C != 0), "val" (anything else)
	val      *wVal
	flagName string
	flagMask uint64
}

// wOp is one abstract byte-stream operation.
type wOp struct {
	kind      string // "u8","fixed","uvarint","varint","bytes","struct","loop","branch","stop"
	width     int    // fixed: byte width
	src       *wVal
	bits      []*WireBit // u8: the flag bits recorded into the written byte
	cond      *encCond   // branch
	sub, alt  []*wOp     // branch arms / loop body
	ref       string     // struct: referenced structure name
	refFields []*WireField
	pos       token.Pos
}

// encFixed is a [N]byte scratch array with a pending PutUintN write, waiting
// for the append(b, x[:]...) that flushes it to the stream.
type encFixed struct {
	width int
	src   *wVal
}

// encInterp interprets one encoder body. Inlined callees get a child interp
// sharing the package state and note sink but with their own environment.
type encInterp struct {
	x      *wirePkg
	buf    types.Object           // the []byte buffer being grown
	env    map[types.Object]*wVal // params/receiver bound to abstract values
	arrays map[types.Object]*encFixed
	flags  map[types.Object]*[]*WireBit // declared flag-byte locals
	notes  *[]wireNote
	depth  int
}

// interpEncoder interprets a method-form encoder (receiver is the message).
func (x *wirePkg) interpEncoder(decl *ast.FuncDecl) ([]*WireField, []wireNote) {
	var notes []wireNote
	e := x.newEncInterp(decl, &notes)
	if e == nil {
		return nil, notes
	}
	ops := e.block(decl.Body)
	fields := x.canonEnc(ops, &notes)
	return fields, notes
}

// newEncInterp binds an encoder's receiver (or single struct parameter) to
// the abstract root and locates its buffer parameter.
func (x *wirePkg) newEncInterp(decl *ast.FuncDecl, notes *[]wireNote) *encInterp {
	e := &encInterp{
		x:      x,
		env:    make(map[types.Object]*wVal),
		arrays: make(map[types.Object]*encFixed),
		flags:  make(map[types.Object]*[]*WireBit),
		notes:  notes,
	}
	bindRoot := func(id *ast.Ident) {
		obj := x.info.Defs[id]
		if obj != nil {
			e.env[obj] = &wVal{kind: "root", typ: obj.Type()}
		}
	}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		bindRoot(decl.Recv.List[0].Names[0])
	}
	var rootParam *ast.Ident
	if decl.Type.Params != nil {
		for _, fl := range decl.Type.Params.List {
			for _, name := range fl.Names {
				obj := x.info.Defs[name]
				if obj == nil {
					continue
				}
				if isByteSlice(obj.Type()) && e.buf == nil {
					e.buf = obj
				} else if decl.Recv == nil && namedOf(obj.Type()) != nil && rootParam == nil {
					rootParam = name
				}
			}
		}
	}
	if decl.Recv == nil && rootParam != nil {
		bindRoot(rootParam)
	}
	if e.buf == nil {
		*notes = append(*notes, wireNote{decl.Pos(), "encoder has no []byte buffer parameter"})
		return nil
	}
	return e
}

func (e *encInterp) note(pos token.Pos, msg string) {
	*e.notes = append(*e.notes, wireNote{pos, msg})
}

// block interprets a statement list and returns its op stream.
func (e *encInterp) block(b *ast.BlockStmt) []*wOp {
	var out []*wOp
	for _, s := range b.List {
		e.stmt(s, &out)
	}
	return out
}

func (e *encInterp) stmt(s ast.Stmt, out *[]*wOp) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		*out = append(*out, e.block(s)...)

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := e.x.info.Defs[name]
				if obj == nil {
					continue
				}
				switch t := obj.Type().Underlying().(type) {
				case *types.Array:
					if b, ok := t.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
						e.arrays[obj] = nil // scratch array, awaiting PutUintN
					}
				case *types.Basic:
					if t.Kind() == types.Byte || t.Kind() == types.Uint8 {
						bits := []*WireBit{}
						e.flags[obj] = &bits
					}
				}
			}
		}

	case *ast.AssignStmt:
		e.assign(s, out)

	case *ast.ExprStmt:
		e.exprStmt(s, out)

	case *ast.IfStmt:
		e.ifStmt(s, out)

	case *ast.RangeStmt:
		e.rangeStmt(s, out)

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if e.mentionsBuf(res) {
				e.bufExpr(res, out)
			}
		}
		*out = append(*out, &wOp{kind: "stop", pos: s.Pos()})

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		e.switchStmt(s, out)

	default:
		if e.stmtMentionsBuf(s) {
			e.note(s.Pos(), "unsupported statement touches the encode buffer")
		}
	}
}

// assign handles `b = ...` buffer growth, flag accumulation, and scratch
// writes; everything not involving the buffer is ignored.
func (e *encInterp) assign(s *ast.AssignStmt, out *[]*wOp) {
	// flags |= CONST
	if s.Tok == token.OR_ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if bits, ok := e.flags[e.objOf(id)]; ok {
				if mask, name, ok := e.x.constBit(s.Rhs[0]); ok {
					addBit(bits, mask, name)
				} else {
					e.note(s.Pos(), "flag bit is not a named constant")
				}
				return
			}
		}
	}
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		if e.stmtMentionsBuf(s) {
			e.note(s.Pos(), "unsupported compound assignment to the encode buffer")
		}
		return
	}
	// b = expr  /  b, _ = expr (multi-value call)
	if id, ok := s.Lhs[0].(*ast.Ident); ok && e.objOf(id) == e.buf && e.buf != nil {
		if len(s.Rhs) == 1 {
			e.bufExpr(s.Rhs[0], out)
			return
		}
		e.note(s.Pos(), "unsupported multi-expression assignment to the encode buffer")
		return
	}
	// Non-buffer assignment: bind simple `x := expr` so later uses resolve.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && s.Tok == token.DEFINE {
		if id, ok := s.Lhs[0].(*ast.Ident); ok && !e.mentionsBuf(s.Rhs[0]) {
			if obj := e.x.info.Defs[id]; obj != nil {
				e.env[obj] = e.eval(s.Rhs[0])
				return
			}
		}
	}
	for _, rhs := range s.Rhs {
		if e.mentionsBuf(rhs) {
			e.note(s.Pos(), "encode buffer aliased outside the buffer variable")
			return
		}
	}
}

// exprStmt recognizes binary.BigEndian.PutUintN into a scratch array.
func (e *encInterp) exprStmt(s *ast.ExprStmt, out *[]*wOp) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		if e.stmtMentionsBuf(s) {
			e.note(s.Pos(), "unsupported expression touches the encode buffer")
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) == 2 {
		var width int
		switch sel.Sel.Name {
		case "PutUint64":
			width = 8
		case "PutUint32":
			width = 4
		case "PutUint16":
			width = 2
		}
		if width > 0 {
			if arr := e.sliceOfArray(call.Args[0]); arr != nil {
				if _, tracked := e.arrays[arr]; tracked {
					e.arrays[arr] = &encFixed{width: width, src: e.eval(call.Args[1])}
					return
				}
			}
		}
	}
	if e.stmtMentionsBuf(s) {
		e.note(s.Pos(), "unsupported call touches the encode buffer")
	}
}

// sliceOfArray unwraps x[:] to the array object x.
func (e *encInterp) sliceOfArray(expr ast.Expr) types.Object {
	sl, ok := expr.(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.High != nil {
		return nil
	}
	id, ok := sl.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return e.objOf(id)
}

func (e *encInterp) ifStmt(s *ast.IfStmt, out *[]*wOp) {
	if s.Init != nil {
		e.stmt(s.Init, out)
	}
	cond := e.classifyCond(s.Cond)
	sub := e.block(s.Body)
	var alt []*wOp
	switch el := s.Else.(type) {
	case *ast.BlockStmt:
		alt = e.block(el)
	case *ast.IfStmt:
		e.stmt(el, &alt)
	}
	emitBranch(out, cond, sub, alt, s.Pos())
}

// emitBranch appends a branch op unless both arms are silent (pure control
// flow — flag computation, error returns that write nothing).
func emitBranch(out *[]*wOp, cond *encCond, sub, alt []*wOp, pos token.Pos) {
	if onlyStops(sub) && onlyStops(alt) {
		return
	}
	*out = append(*out, &wOp{kind: "branch", cond: cond, sub: sub, alt: alt, pos: pos})
}

// onlyStops reports whether an op stream writes nothing to the stream.
func onlyStops(ops []*wOp) bool {
	for _, op := range ops {
		if op.kind != "stop" {
			return false
		}
	}
	return true
}

func (e *encInterp) classifyCond(cond ast.Expr) *encCond {
	cond = unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok {
		x, y := unparen(be.X), unparen(be.Y)
		if be.Op == token.EQL {
			if isNilIdent(y) {
				return &encCond{kind: "nil", val: e.eval(x)}
			}
			if isNilIdent(x) {
				return &encCond{kind: "nil", val: e.eval(y)}
			}
		}
		if be.Op == token.NEQ {
			// flags&C != 0
			if and, ok := x.(*ast.BinaryExpr); ok && and.Op == token.AND && isZeroLit(e.x.info, y) {
				if id, ok := unparen(and.X).(*ast.Ident); ok {
					if _, isFlags := e.flags[e.objOf(id)]; isFlags {
						if mask, name, ok := e.x.constBit(and.Y); ok {
							return &encCond{kind: "flag", flagName: name, flagMask: mask}
						}
					}
				}
			}
		}
	}
	v := e.eval(cond)
	if v != nil && v.kind == "nilcmp" {
		return &encCond{kind: "nil", val: v.base}
	}
	return &encCond{kind: "val", val: v}
}

func (e *encInterp) rangeStmt(s *ast.RangeStmt, out *[]*wOp) {
	src := e.eval(s.X)
	child := e.child()
	if id, ok := s.Value.(*ast.Ident); ok {
		if obj := e.x.info.Defs[id]; obj != nil {
			child.env[obj] = &wVal{kind: "elem", base: src, typ: obj.Type()}
		}
	}
	sub := child.block(s.Body)
	*out = append(*out, &wOp{kind: "loop", src: src, sub: sub, pos: s.Pos()})
}

// switchStmt tolerates switches that never touch the buffer (the envelope's
// payload-resolution type switch); a buffer write inside one is out of the
// model.
func (e *encInterp) switchStmt(s ast.Stmt, out *[]*wOp) {
	var body *ast.BlockStmt
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		body = sw.Body
	case *ast.TypeSwitchStmt:
		body = sw.Body
	}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		var tmp []*wOp
		for _, st := range cc.Body {
			e.stmt(st, &tmp)
		}
		if !onlyStops(tmp) {
			e.note(cl.Pos(), "buffer write inside a switch is not modeled")
		}
	}
}

// child returns an interp sharing everything but able to grow new bindings.
func (e *encInterp) child() *encInterp {
	c := &encInterp{
		x: e.x, buf: e.buf, notes: e.notes, depth: e.depth,
		env:    make(map[types.Object]*wVal, len(e.env)+2),
		arrays: e.arrays, flags: e.flags,
	}
	for k, v := range e.env {
		c.env[k] = v
	}
	return c
}

// bufExpr interprets an expression producing the new buffer value.
func (e *encInterp) bufExpr(expr ast.Expr, out *[]*wOp) {
	expr = unparen(expr)
	switch expr := expr.(type) {
	case *ast.Ident:
		if e.objOf(expr) == e.buf {
			return // plain `b` — no growth
		}
		e.note(expr.Pos(), "encode buffer rebound to another variable")
	case *ast.CallExpr:
		e.bufCall(expr, out)
	default:
		e.note(expr.Pos(), "unsupported buffer expression")
	}
}

// bufCall interprets append(...), binary.Append*varint, and module helper
// calls that grow the buffer.
func (e *encInterp) bufCall(call *ast.CallExpr, out *[]*wOp) {
	fun := unparen(call.Fun)

	// Built-in append.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := e.x.info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			e.appendCall(call, out)
			return
		}
	}

	// binary.AppendUvarint / binary.AppendVarint.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := e.x.info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "encoding/binary" {
				switch {
				case sel.Sel.Name == "AppendUvarint" && len(call.Args) == 2:
					*out = append(*out, &wOp{kind: "uvarint", src: e.eval(call.Args[1]), pos: call.Pos()})
				case sel.Sel.Name == "AppendVarint" && len(call.Args) == 2:
					*out = append(*out, &wOp{kind: "varint", src: e.eval(call.Args[1]), pos: call.Pos()})
				default:
					e.note(call.Pos(), "unsupported encoding/binary call grows the buffer")
				}
				return
			}
		}
	}

	// Module helper call (free function or method).
	e.helperCall(call, out)
}

// appendCall interprets append(b, ...): fixed-width flushes, raw byte
// strings, and single bytes.
func (e *encInterp) appendCall(call *ast.CallExpr, out *[]*wOp) {
	if len(call.Args) == 0 || !e.mentionsBuf(call.Args[0]) {
		e.note(call.Pos(), "append does not grow the encode buffer")
		return
	}
	if call.Ellipsis.IsValid() {
		if len(call.Args) != 2 {
			e.note(call.Pos(), "variadic append with multiple sources")
			return
		}
		arg := unparen(call.Args[1])
		if arr := e.sliceOfArray(arg); arr != nil {
			if pending, ok := e.arrays[arr]; ok && pending != nil {
				*out = append(*out, &wOp{kind: "fixed", width: pending.width, src: pending.src, pos: call.Pos()})
				e.arrays[arr] = nil
				return
			}
		}
		*out = append(*out, &wOp{kind: "bytes", src: e.eval(arg), pos: call.Pos()})
		return
	}
	for _, arg := range call.Args[1:] {
		op := &wOp{kind: "u8", src: e.eval(arg), pos: call.Pos()}
		if id, ok := unparen(arg).(*ast.Ident); ok {
			if bits, isFlags := e.flags[e.objOf(id)]; isFlags {
				op.bits = append([]*WireBit(nil), (*bits)...)
				op.src = &wVal{kind: "local", sel: id.Name}
			}
		}
		*out = append(*out, op)
	}
}

// helperCall dispatches a module call that grows the buffer: inline it when
// it encodes the current message (scalar helpers, self-delegation), emit a
// struct op when its subject is a different structure.
func (e *encInterp) helperCall(call *ast.CallExpr, out *[]*wOp) {
	callee := e.x.calleeOf(call)
	if callee == nil {
		e.note(call.Pos(), "cannot resolve call that grows the encode buffer")
		return
	}
	decl := e.x.decls[callee]
	if decl == nil {
		e.note(call.Pos(), "call into another package grows the encode buffer")
		return
	}
	if e.depth > 16 {
		e.note(call.Pos(), "encoder call nesting too deep")
		return
	}

	// Determine the callee's subject: the receiver, or its single named-
	// struct parameter.
	var subject *wVal
	var subjectArg ast.Expr
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && decl.Recv != nil {
		subjectArg = sel.X
		subject = e.eval(sel.X)
	} else if decl.Recv == nil {
		var structArgs []ast.Expr
		for _, arg := range call.Args {
			if e.mentionsBuf(arg) {
				continue
			}
			if namedOf(e.x.typeOf(arg)) != nil && !isByteSlice(e.x.typeOf(arg)) {
				structArgs = append(structArgs, arg)
			}
		}
		if len(structArgs) == 1 {
			subjectArg = structArgs[0]
			subject = e.eval(structArgs[0])
		}
	}

	if subject != nil && subject.kind != "root" {
		named := namedOf(e.x.typeOf(subjectArg))
		if named == nil {
			e.note(call.Pos(), "cannot resolve the structure encoded by this call")
			return
		}
		sum := e.x.encStructSummary(callee, decl, named)
		if sum == nil {
			e.note(call.Pos(), "cannot interpret the structure encoder "+callee.Name())
			return
		}
		*out = append(*out, &wOp{
			kind: "struct", src: subject, ref: sum.ref, refFields: sum.fields, pos: call.Pos(),
		})
		return
	}

	// Inline: bind the callee's parameters to the caller's argument values.
	child := &encInterp{
		x: e.x, notes: e.notes, depth: e.depth + 1,
		env:    make(map[types.Object]*wVal),
		arrays: make(map[types.Object]*encFixed),
		flags:  make(map[types.Object]*[]*WireBit),
	}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if obj := e.x.info.Defs[decl.Recv.List[0].Names[0]]; obj != nil && subject != nil {
			child.env[obj] = subject
		}
	}
	params := flattenParams(e.x.info, decl)
	if len(params) != len(call.Args) {
		e.note(call.Pos(), "variadic or mismatched helper call grows the encode buffer")
		return
	}
	for i, p := range params {
		if p == nil {
			continue
		}
		if e.mentionsBuf(call.Args[i]) {
			child.buf = p
			continue
		}
		child.env[p] = e.eval(call.Args[i])
	}
	if child.buf == nil {
		e.note(call.Pos(), "helper call grows the buffer without receiving it")
		return
	}
	ops := child.block(decl.Body)
	// A callee's final return ends the callee, not the message.
	for len(ops) > 0 && ops[len(ops)-1].kind == "stop" {
		ops = ops[:len(ops)-1]
	}
	*out = append(*out, ops...)
}

// addBit appends a flag bit unless the same mask+name pair is already
// recorded (the envelope sets envHasPayload on two exclusive paths).
func addBit(bits *[]*WireBit, mask uint64, name string) {
	for _, b := range *bits {
		if b.Mask == mask && b.Name == name {
			return
		}
	}
	*bits = append(*bits, &WireBit{Mask: mask, Name: name})
}

// flattenParams lists a FuncDecl's parameter objects in order (nil for
// unnamed parameters).
func flattenParams(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Params == nil {
		return out
	}
	for _, fl := range decl.Type.Params.List {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range fl.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// encStructSummary interprets (once) a helper that encodes an embedded
// structure, registering its schema entry.
func (x *wirePkg) encStructSummary(callee types.Object, decl *ast.FuncDecl, named *types.Named) *wireStructSummary {
	if sum, ok := x.encCache[callee]; ok {
		return sum
	}
	x.encCache[callee] = nil // cycle guard
	var notes []wireNote
	e := x.newEncInterp(decl, &notes)
	var fields []*WireField
	if e != nil {
		ops := e.block(decl.Body)
		fields = x.canonEnc(ops, &notes)
	}
	sum := &wireStructSummary{
		ref:    named.Obj().Name(),
		spath:  x.structPath(named),
		fields: fields,
		pos:    decl.Pos(),
		notes:  notes,
	}
	x.encCache[callee] = sum
	x.addStructEntry(sum, true)
	return sum
}

// calleeOf resolves a call's target function object.
func (x *wirePkg) calleeOf(call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := x.info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := x.info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// typeOf is the package-scoped expression type lookup.
func (x *wirePkg) typeOf(e ast.Expr) types.Type {
	return typeOf(x.info, e)
}

// constBit resolves a flag-bit expression to its constant mask and name.
func (x *wirePkg) constBit(expr ast.Expr) (mask uint64, name string, ok bool) {
	expr = unparen(expr)
	tv, found := x.info.Types[expr]
	if !found || tv.Value == nil {
		return 0, "", false
	}
	v, exact := constant.Uint64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, "", false
	}
	if id, isIdent := expr.(*ast.Ident); isIdent {
		return v, id.Name, true
	}
	if sel, isSel := expr.(*ast.SelectorExpr); isSel {
		return v, sel.Sel.Name, true
	}
	return 0, "", false
}

// eval maps an expression to an abstract value.
func (e *encInterp) eval(expr ast.Expr) *wVal {
	expr = unparen(expr)
	switch expr := expr.(type) {
	case *ast.Ident:
		obj := e.objOf(expr)
		if v, ok := e.env[obj]; ok {
			return v
		}
		if c, ok := obj.(*types.Const); ok {
			if n, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
				return &wVal{kind: "const", n: n, typ: c.Type()}
			}
		}
		return &wVal{kind: "local", sel: expr.Name, typ: e.x.typeOf(expr)}
	case *ast.SelectorExpr:
		if c, ok := e.x.info.Uses[expr.Sel].(*types.Const); ok {
			if n, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
				return &wVal{kind: "const", n: n, typ: c.Type()}
			}
		}
		if _, isPkg := e.x.info.Uses[baseIdent(expr.X)].(*types.PkgName); isPkg && baseIdent(expr.X) != nil {
			return &wVal{kind: "opaque", typ: e.x.typeOf(expr)}
		}
		return &wVal{kind: "field", base: e.eval(expr.X), sel: expr.Sel.Name, typ: e.x.typeOf(expr)}
	case *ast.CallExpr:
		if tv, ok := e.x.info.Types[expr.Fun]; ok && tv.IsType() && len(expr.Args) == 1 {
			inner := e.eval(expr.Args[0])
			return &wVal{kind: inner.kind, base: inner.base, sel: inner.sel, n: inner.n, typ: e.x.typeOf(expr)}
		}
		if id, ok := unparen(expr.Fun).(*ast.Ident); ok {
			if _, isBuiltin := e.x.info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "len" {
				return &wVal{kind: "len", base: e.eval(expr.Args[0]), typ: e.x.typeOf(expr)}
			}
		}
		return &wVal{kind: "opaque", typ: e.x.typeOf(expr)}
	case *ast.BasicLit:
		if tv, ok := e.x.info.Types[expr]; ok && tv.Value != nil {
			if n, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return &wVal{kind: "const", n: n, typ: tv.Type}
			}
		}
		return &wVal{kind: "opaque", typ: e.x.typeOf(expr)}
	case *ast.BinaryExpr:
		x, y := unparen(expr.X), unparen(expr.Y)
		switch expr.Op {
		case token.ADD:
			if n, ok := constOf(e.x.info, y); ok {
				return &wVal{kind: "add", base: e.eval(x), n: n, typ: e.x.typeOf(expr)}
			}
			if n, ok := constOf(e.x.info, x); ok {
				return &wVal{kind: "add", base: e.eval(y), n: n, typ: e.x.typeOf(expr)}
			}
		case token.EQL:
			if isNilIdent(y) {
				return &wVal{kind: "nilcmp", base: e.eval(x), typ: e.x.typeOf(expr)}
			}
			if isNilIdent(x) {
				return &wVal{kind: "nilcmp", base: e.eval(y), typ: e.x.typeOf(expr)}
			}
		}
		return &wVal{kind: "opaque", typ: e.x.typeOf(expr)}
	case *ast.StarExpr:
		return e.eval(expr.X)
	case *ast.UnaryExpr:
		if expr.Op == token.AND {
			return e.eval(expr.X)
		}
		return &wVal{kind: "opaque", typ: e.x.typeOf(expr)}
	default:
		return &wVal{kind: "opaque", typ: e.x.typeOf(expr)}
	}
}

func (e *encInterp) objOf(id *ast.Ident) types.Object {
	if obj := e.x.info.Uses[id]; obj != nil {
		return obj
	}
	return e.x.info.Defs[id]
}

// mentionsBuf reports whether the expression references the buffer object.
func (e *encInterp) mentionsBuf(expr ast.Expr) bool {
	if e.buf == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && e.objOf(id) == e.buf {
			found = true
		}
		return !found
	})
	return found
}

func (e *encInterp) stmtMentionsBuf(s ast.Stmt) bool {
	if e.buf == nil {
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && e.objOf(id) == e.buf {
			found = true
		}
		return !found
	})
	return found
}

// ---- small syntax helpers shared with the decoder side ----

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func baseIdent(e ast.Expr) *ast.Ident {
	id, _ := unparen(e).(*ast.Ident)
	return id
}

func isZeroLit(info *types.Info, e ast.Expr) bool {
	n, ok := constOf(info, e)
	return ok && n == 0
}

func constOf(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}
