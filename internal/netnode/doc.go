// Package netnode implements a live, networked Canon node: the dynamic side
// of the paper (Section 2.3), generic over a pluggable routing geometry
// (Sections 5-6). Nodes carry hierarchical names ("stanford/cs/db") and
// maintain successor lists (leaf sets) and a predecessor at every level of
// their domain chain — the geometry-independent ring substrate that defines
// ownership. On top of it, Config.Geometry selects how long links are built
// and how a forwarding hop picks among them:
//
//   - Crescendo (the default): Canonical Chord — powers-of-two fingers
//     under the merge bound, maximal clockwise advance.
//   - Kandy: Canonical Kademlia — one contact per XOR bucket refreshed by
//     iterative bucket probes, level-major XOR-nearest next hop.
//   - Cacophony: Canonical Symphony — harmonic long links against an
//     estimated ring size, 1-lookahead next hop fed by a periodic
//     neighbor exchange.
//
// Every geometry forwards within the clockwise advance-without-overshoot
// window under the Section 2.2 link-retention rule, so lookups terminate,
// resolve to the same owner, interoperate across mixed-geometry clusters,
// and keep intra-domain path locality on the wire exactly as in the
// analytical model. The written geometry contract is docs/GEOMETRY.md.
//
// Bootstrap uses the paper's third suggestion: membership hints are stored
// in the DHT itself, under a key derived from each domain's name.
//
// # Wire formats
//
// RPC bodies are declared in wire.go with json struct tags — the legacy
// wire form — and the hot payloads (lookup, store, fetch, node identities,
// trace spans) additionally implement transport.BinaryAppender and
// encoding.BinaryUnmarshaler in binwire.go, so binary-mux connections carry
// them in the compact encoding specified in docs/WIRE.md §4. Both forms are
// maintained in lockstep; the differential fuzzers in binwire_test.go hold
// them to byte-level agreement on everything JSON can represent. The
// storage-sync payloads are wire version 2 (binwire2.go, docs/WIRE.md §8)
// and the geometry maintenance payloads are wire version 3 (binwire3.go,
// docs/WIRE.md §9).
//
// # Resilience
//
// Outbound RPCs go through a retry policy with exponential backoff; each
// logical request carries a dedup nonce, and the serving side wraps its
// handler in nonce-based at-most-once caching (transport.DedupHandler
// semantics), so retries and duplicated deliveries never double-execute a
// store. Nodes that repeatedly fail are routed around using the per-level
// successor lists, and the routing layer records route-arounds in the
// node's stats and any active route trace.
package netnode
