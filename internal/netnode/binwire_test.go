package netnode

import (
	"encoding/json"
	"testing"

	"github.com/canon-dht/canon/internal/telemetry"
)

// jsonEq reports whether two values have identical JSON renderings — the
// equality that matters for wire compatibility, since JSON is the legacy wire
// format the binary codec must round-trip against (including the nil-vs-empty
// distinctions omitempty makes observable).
func jsonEq(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal %T: %v", a, err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal %T: %v", b, err)
	}
	return string(ja) == string(jb)
}

// roundTrip encodes in through AppendBinary and decodes into out (a pointer
// to the same type), failing the test on either error.
func roundTrip(t *testing.T, in interface {
	AppendBinary([]byte) ([]byte, error)
}, out interface {
	UnmarshalBinary([]byte) error
}) {
	t.Helper()
	enc, err := in.AppendBinary(nil)
	if err != nil {
		t.Fatalf("encode %T: %v", in, err)
	}
	if err := out.UnmarshalBinary(enc); err != nil {
		t.Fatalf("decode %T: %v", out, err)
	}
}

var binwireSpans = []telemetry.Span{
	{Hop: 0, Name: "stanford/cs", ID: 42, Addr: "10.0.0.1:7001", Level: 2},
	{Hop: 1, Name: "stanford/ee", ID: 7, Addr: "10.0.0.2:7001", Level: 1, RouteAround: true},
	{Hop: 2, Name: "mit", ID: 99, Addr: "10.0.0.3:7001", Level: -1, Owner: true},
}

func TestBinWireInfoRoundTrip(t *testing.T) {
	cases := []Info{
		{},
		{ID: 1, Name: "a", Addr: "x:1"},
		{ID: ^uint64(0), Name: "stanford/cs/db", Addr: "192.0.2.1:65535"},
	}
	for _, in := range cases {
		var out Info
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("Info %+v round-tripped to %+v", in, out)
		}
	}
}

func TestBinWireLookupRoundTrip(t *testing.T) {
	reqs := []lookupReq{
		{},
		{Key: 123, Prefix: "stanford", Hops: 4},
		{Key: ^uint64(0), Prefix: "", Hops: 0, Trace: "t-1", Spans: binwireSpans},
		{Key: 5, Spans: []telemetry.Span{}}, // empty-but-present slice
	}
	for _, in := range reqs {
		var out lookupReq
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("lookupReq %+v round-tripped to %+v", in, out)
		}
	}
	resps := []lookupResp{
		{},
		{
			Pred:  Info{ID: 1, Name: "a", Addr: "x:1"},
			Succ:  Info{ID: 2, Name: "b", Addr: "y:2"},
			Hops:  7,
			Trace: "t-2",
			Spans: binwireSpans,
		},
	}
	for _, in := range resps {
		var out lookupResp
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("lookupResp %+v round-tripped to %+v", in, out)
		}
	}
}

func TestBinWireStoreFetchRoundTrip(t *testing.T) {
	stores := []storeReq{
		{},
		{Key: 9, Value: []byte("v"), Storage: "stanford", Access: "stanford/cs"},
		{Key: 9, Value: []byte{}, Replica: true}, // empty-but-present value
		{Key: 9, Pointer: Info{ID: 3, Name: "c", Addr: "z:3"}},
	}
	for _, in := range stores {
		var out storeReq
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("storeReq %+v round-tripped to %+v", in, out)
		}
	}
	var fq fetchReq
	roundTrip(t, fetchReq{Key: 11, Origin: "mit/csail"}, &fq)
	if fq.Key != 11 || fq.Origin != "mit/csail" {
		t.Errorf("fetchReq round-tripped to %+v", fq)
	}
	fetches := []fetchResp{
		{},
		{Values: []fetchValue{}},
		{Values: []fetchValue{
			{Value: []byte("data"), Access: "stanford"},
			{Value: nil, Access: "", Pointer: Info{ID: 4, Name: "d", Addr: "w:4"}},
		}},
	}
	for _, in := range fetches {
		var out fetchResp
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("fetchResp %+v round-tripped to %+v", in, out)
		}
	}
}

// TestBinWireGeometryRoundTrip covers the v3 geometry-maintenance payloads:
// every representable value — including the nil-vs-empty slice distinction —
// must survive the binary round trip exactly as JSON preserves it.
func TestBinWireGeometryRoundTrip(t *testing.T) {
	infos := []Info{{ID: 1, Name: "a", Addr: "x:1"}, {ID: 2, Name: "b/c", Addr: "y:2"}}
	var bq bucketRefReq
	roundTrip(t, bucketRefReq{Prefix: "stanford/cs", Target: ^uint64(0)}, &bq)
	if bq.Prefix != "stanford/cs" || bq.Target != ^uint64(0) {
		t.Errorf("bucketRefReq round-tripped to %+v", bq)
	}
	for _, in := range []bucketRefResp{{}, {Contacts: []Info{}}, {Contacts: infos}} {
		var out bucketRefResp
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("bucketRefResp %+v round-tripped to %+v", in, out)
		}
	}
	for _, in := range []lookaheadReq{{}, {Levels: 3}} {
		var out lookaheadReq
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("lookaheadReq %+v round-tripped to %+v", in, out)
		}
	}
	for _, in := range []lookaheadResp{
		{},
		{Succs: []Info{}, Ests: []uint64{}},
		{Succs: infos, Ests: []uint64{2, 1 << 40, 0}},
	} {
		var out lookaheadResp
		roundTrip(t, in, &out)
		if !jsonEq(t, in, out) {
			t.Errorf("lookaheadResp %+v round-tripped to %+v", in, out)
		}
	}
}

// TestBinWireStrictDecoding pins the strictness guarantees: trailing bytes
// and truncations must error, never silently decode.
func TestBinWireStrictDecoding(t *testing.T) {
	in := lookupReq{Key: 1, Prefix: "p", Hops: 2, Trace: "t", Spans: binwireSpans}
	enc, err := in.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	var out lookupReq
	if err := out.UnmarshalBinary(append(enc, 0x00)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	for i := 0; i < len(enc); i++ {
		var q lookupReq
		if err := q.UnmarshalBinary(enc[:i]); err == nil {
			t.Errorf("truncation to %d of %d bytes decoded without error", i, len(enc))
		}
	}
}

// FuzzBinWireDecode throws arbitrary bytes at every binary decoder: none may
// panic or over-allocate, whatever the input.
func FuzzBinWireDecode(f *testing.F) {
	seed := lookupReq{Key: 1, Prefix: "stanford", Hops: 3, Trace: "t", Spans: binwireSpans}
	if enc, err := seed.AppendBinary(nil); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Schema-guided corpus: one valid minimal encoding per message type per
	// wire version, synthesized from the committed schema baseline, so no
	// decoder path starts uncovered.
	for _, seed := range loadSchemaSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var i Info
		_ = i.UnmarshalBinary(data)
		var lq lookupReq
		_ = lq.UnmarshalBinary(data)
		var lp lookupResp
		_ = lp.UnmarshalBinary(data)
		var sq storeReq
		_ = sq.UnmarshalBinary(data)
		var fq fetchReq
		_ = fq.UnmarshalBinary(data)
		var fp fetchResp
		_ = fp.UnmarshalBinary(data)
		var s2 storeReq2
		_ = s2.UnmarshalBinary(data)
		var tq syncTreeReq
		_ = tq.UnmarshalBinary(data)
		var tp syncTreeResp
		_ = tp.UnmarshalBinary(data)
		var kq syncKeysReq
		_ = kq.UnmarshalBinary(data)
		var kp syncKeysResp
		_ = kp.UnmarshalBinary(data)
		var pq syncPullReq
		_ = pq.UnmarshalBinary(data)
		var pp syncPullResp
		_ = pp.UnmarshalBinary(data)
		var bq bucketRefReq
		_ = bq.UnmarshalBinary(data)
		var bp bucketRefResp
		_ = bp.UnmarshalBinary(data)
		var aq lookaheadReq
		_ = aq.UnmarshalBinary(data)
		var ap lookaheadResp
		_ = ap.UnmarshalBinary(data)
	})
}

// FuzzBinWireDifferential builds a lookupReq from fuzzed primitives and
// checks the binary round trip preserves exactly what the JSON wire form
// preserves — the two codecs must agree on every representable value.
func FuzzBinWireDifferential(f *testing.F) {
	f.Add(uint64(1), "stanford/cs", 3, "trace-1", 2, "hop", "addr:1", -1, true)
	f.Add(uint64(0), "", 0, "", 0, "", "", 0, false)
	f.Fuzz(func(t *testing.T, key uint64, prefix string, hops int, trace string,
		nspans int, spanName, spanAddr string, spanLevel int, owner bool) {
		in := lookupReq{Key: key, Prefix: prefix, Hops: hops, Trace: trace}
		if nspans < 0 {
			nspans = -nspans
		}
		nspans %= 8
		for j := 0; j < nspans; j++ {
			in.Spans = append(in.Spans, telemetry.Span{
				Hop: j, Name: spanName, ID: key + uint64(j), Addr: spanAddr,
				Level: spanLevel, Owner: owner,
			})
		}

		// Binary round trip.
		enc, err := in.AppendBinary(nil)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		var binOut lookupReq
		if err := binOut.UnmarshalBinary(enc); err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}

		// JSON round trip (the legacy wire).
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var jsonOut lookupReq
		if err := json.Unmarshal(raw, &jsonOut); err != nil {
			t.Fatalf("json decode of own encoding: %v", err)
		}

		if !jsonEq(t, binOut, jsonOut) {
			t.Errorf("codecs disagree:\n  binary: %+v\n  json:   %+v", binOut, jsonOut)
		}
	})
}
