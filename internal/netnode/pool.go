package netnode

import (
	"sync"

	"github.com/canon-dht/canon/internal/telemetry"
)

// lookupReqPool recycles lookup request objects across forwarded hops and
// handler decodes, so the steady-state forwarding path allocates no request
// object per hop.
//
// Safety of recycling hinges on two properties, both pinned by tests:
//
//   - Every in-tree delivery of a request body completes before Call returns
//     (the in-memory bus runs the handler synchronously, the faulty wrapper
//     delivers duplicates synchronously, and the mux encodes the body into
//     the frame before round-tripping), and receiver-side dedup caches only
//     responses — so once n.call returns, nothing references the request.
//   - A pooled object is fully zeroed before reuse (putLookupReq). This
//     matters because JSON decoding does not overwrite fields absent from
//     the payload: without the zeroing, an untraced request decoded into a
//     recycled object would inherit the previous request's Trace and Spans.
//     The pool-reuse fuzzer (FuzzLookupReqPoolReuse) proves no sequence of
//     decodes leaks spans between requests.
var lookupReqPool = sync.Pool{
	New: func() any { return new(lookupReq) },
}

// getLookupReq returns a zeroed lookup request from the pool.
func getLookupReq() *lookupReq {
	return lookupReqPool.Get().(*lookupReq)
}

// putLookupReq zeroes q and returns it to the pool. A span slice attached to
// q is detached and recycled through the telemetry span pool (which zeroes
// it), so neither the object nor its backing array can leak trace state.
func putLookupReq(q *lookupReq) {
	spans := q.Spans
	*q = lookupReq{}
	lookupReqPool.Put(q)
	telemetry.PutSpans(spans)
}
