// Package lint implements canonvet, a project-specific static analyzer for
// the Canon DHT codebase. It mechanically enforces invariants the project
// has already been bitten by (or is structurally exposed to): circular-ID
// arithmetic must go through the ring-metric helpers in internal/id,
// pure-simulation packages must stay seed-reproducible, shared RNGs must be
// lock-adjacent, metric names must be named constants, wire-message
// structs must not drift silently, and published copy-on-write snapshot
// types (marked //canonvet:immutable) must only be mutated in the file
// that declares them — their builder — never by a reader of a shared view.
//
// Since v2 the analyzer is interprocedural: a type-resolved, module-wide
// call graph (static dispatch, conservative interface resolution, function
// literal tracking — see callgraph.go) and per-function summaries computed
// to a fixpoint (summary.go) power the interprocedural checks: lockorder
// (lock-acquisition cycles across functions), lockheldrpc2 (RPCs reachable
// through the call graph while a mutex is held), goroutineleak (spawned
// goroutines with no reachable stop signal), nodeadline (wire-touching
// paths from command entry points with no timeout anywhere on the path),
// and fsyncbeforeack (store acks constructed before any durability barrier
// is reached — the fsync-on-ack contract of docs/STORAGE.md).
// A deadpragma meta-check keeps the suppression pragmas themselves honest.
//
// Since v3 an intraprocedural SSA-lite value-flow engine (dataflow.go)
// tracks individual values through one function body — aliasing by cell
// sharing, union-over-paths branch discipline — and propagates four
// monotone flow bits per function (returns-pooled, puts/retains/publishes
// per parameter) over the call graph to a fixpoint. It powers poolescape
// (pool values escaping their request scope, use-after-Put, double-Put),
// publishrace (the flow-sensitive upgrade of snapshotmut: writes to any
// value after it flowed into an atomic pointer store, in any file),
// atomicmix (a field accessed through sync/atomic in one place and by
// plain loads/stores in another, with no common mutex class held), and
// durabilityerr (error results of durability primitives — Sync, Write,
// Close, WAL appends — discarded or shadowed before the latch/ack site in
// the storage and ack packages). Value-flow findings carry a dataflow
// evidence chain in Diagnostic.Chain, same as call-chain evidence.
//
// Checks are table-driven (see AllChecks): per-package checks implement Run,
// module-wide checks implement RunModule. Every check honors the escape
// hatch
//
//	//canonvet:ignore <check>[,<check>...] -- <one-line justification>
//
// placed above the package clause (whole file) or on/above the offending
// line (that line only). The analyzer is stdlib-only: go/ast + go/parser +
// go/types + go/token, with go/importer resolving standard-library imports
// from source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, with a position that renders as file:line:col.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	// Fingerprint identifies the finding across line drift: a hash of the
	// check, the module-relative file path, and the message. Baseline files
	// (canonvet -baseline) store fingerprints.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Chain is the call-chain evidence behind an interprocedural finding,
	// outermost frame first. canonvet -why prints it.
	Chain []string `json:"chain,omitempty"`
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Column, d.Message, d.Check)
}

// Check is one named analysis. Per-package checks set Run; module-wide
// (interprocedural) checks set RunModule and receive the call graph.
type Check struct {
	// Name is the identifier used by -checks and ignore pragmas.
	Name string
	// Doc is a one-line description shown by canonvet -list.
	Doc string
	// Run reports findings for one package through pass.Reportf.
	Run func(pass *Pass)
	// RunModule reports findings over the whole loaded module through
	// mp.Report; it runs once, after every per-package check.
	RunModule func(mp *ModulePass)
}

// deadPragmaName is the meta-check's name; its logic lives in Run itself
// (it must observe every other check's suppressions).
const deadPragmaName = "deadpragma"

// AllChecks returns the check table, in reporting order. New checks are
// appended here.
func AllChecks() []Check {
	return []Check{
		checkRingCmp,
		checkGlobalRand,
		checkSimDeterminism,
		checkLockOrder,
		checkLockHeldRPC2,
		checkGoroutineLeak,
		checkNoDeadline,
		checkMetricNames,
		checkWireCompat,
		checkSnapshotMut,
		checkFsyncBeforeAck,
		checkPoolEscape,
		checkPublishRace,
		checkAtomicMix,
		checkDurabilityErr,
		checkWireSym,
		checkWireBreak,
		checkWireBounds,
		checkWireDoc,
		{
			Name: deadPragmaName,
			Doc:  "//canonvet:ignore pragmas whose check no longer fires at that scope (stale suppressions)",
		},
	}
}

// Config tunes the checks to the module under analysis.
type Config struct {
	// ModulePath is the module's import path prefix.
	ModulePath string
	// Root is the module root directory; when set, diagnostic fingerprints
	// use module-relative paths so they survive checkouts in different
	// directories.
	Root string
	// SimPackages is the set of import paths whose results must be
	// seed-reproducible (the simdeterminism check's scope). External test
	// units share their base package's path and scope.
	SimPackages map[string]bool
	// MetricExemptPackages may register metrics with literal names: the
	// telemetry registry's own package (its implementation and tests
	// exercise arbitrary names by design).
	MetricExemptPackages map[string]bool
	// EntryPackages are the command packages whose call paths to the
	// transport the nodeadline check audits.
	EntryPackages map[string]bool
	// DurabilityPackages are the import paths whose Sync/Write/Close/WAL-
	// append error results the durabilityerr check audits (the storage
	// engine and the ack paths that sit on it). Durability primitives owned
	// by these packages, os, or bufio are in scope wherever they are called
	// from one of these packages.
	DurabilityPackages map[string]bool
	// WirePackages are the import paths whose binary codecs the v4 symbolic
	// wire-schema engine interprets (wiresym/wirebreak/wirebounds/wiredoc).
	WirePackages map[string]bool
	// WireVersionFiles maps codec file basenames to the wire protocol
	// version their layouts belong to; unlisted files are version 1.
	WireVersionFiles map[string]int
	// WireDocPath is the human wire specification the wiredoc check compares
	// against the extracted schema; relative paths resolve against Root.
	// Empty disables wiredoc.
	WireDocPath string
	// WireBaselinePath is the committed machine-readable schema baseline the
	// wirebreak check gates against (canonvet -write-schema refreshes it);
	// relative paths resolve against Root. Empty disables wirebreak.
	WireBaselinePath string
	// Enabled restricts the run to the named checks; nil means all.
	Enabled map[string]bool
}

// wirePath resolves a wire doc/baseline path against the module root.
func (cfg *Config) wirePath(p string) string {
	if p == "" || filepath.IsAbs(p) || cfg.Root == "" {
		return p
	}
	return filepath.Join(cfg.Root, p)
}

// DefaultConfig returns the Canon module's tuning: the pure-simulation
// packages from the paper's analytical side, the telemetry registry as the
// only package allowed to touch raw metric-name strings, and the live
// command binaries as nodeadline entry points.
func DefaultConfig(module string) *Config {
	sim := map[string]bool{
		module:                           true, // the analytical Canon model itself
		module + "/internal/chord":       true,
		module + "/internal/symphony":    true,
		module + "/internal/kademlia":    true,
		module + "/internal/can":         true,
		module + "/internal/core":        true,
		module + "/internal/dynamic":     true,
		module + "/internal/experiments": true,
	}
	return &Config{
		ModulePath:           module,
		SimPackages:          sim,
		MetricExemptPackages: map[string]bool{module + "/internal/telemetry": true},
		EntryPackages: map[string]bool{
			module + "/cmd/canond":   true,
			module + "/cmd/canonctl": true,
		},
		DurabilityPackages: map[string]bool{
			module + "/internal/canonstore": true,
			module + "/internal/netnode":    true,
		},
		WirePackages: map[string]bool{
			module + "/internal/netnode":   true,
			module + "/internal/transport": true,
		},
		WireVersionFiles: map[string]int{
			"binwire.go":  1,
			"binwire2.go": 2,
			"binwire3.go": 3,
			"codec.go":    1,
		},
		WireDocPath:      "docs/WIRE.md",
		WireBaselinePath: "docs/wire.schema.json",
	}
}

// enabled reports whether the named check runs under this config.
func (cfg *Config) enabled(name string) bool {
	return cfg.Enabled == nil || cfg.Enabled[name]
}

// Pass carries one check's view of one package.
type Pass struct {
	Cfg  *Config
	Fset *token.FileSet
	Pkg  *Package

	check   string
	ignores map[string]*fileIgnores // keyed by filename
	sink    *[]Diagnostic
}

// Reportf records a finding at pos unless an ignore pragma suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.Fset, p.ignores, p.sink, p.check, pos, nil, format, args...)
}

// ModulePass carries one module-wide check's view of the loaded module.
type ModulePass struct {
	Cfg   *Config
	Fset  *token.FileSet
	Graph *CallGraph
	// wire is the symbolic wire-schema extraction, computed once per run
	// when any wire check is enabled (nil otherwise).
	wire *wireExtraction

	check   string
	ignores map[string]*fileIgnores
	sink    *[]Diagnostic
}

// Report records a finding at pos with optional call-chain evidence, unless
// an ignore pragma suppresses it.
func (p *ModulePass) Report(pos token.Pos, chain []string, format string, args ...any) {
	report(p.Fset, p.ignores, p.sink, p.check, pos, chain, format, args...)
}

// report is the shared suppression-aware diagnostic sink.
func report(fset *token.FileSet, ignores map[string]*fileIgnores, sink *[]Diagnostic,
	check string, pos token.Pos, chain []string, format string, args ...any) {
	position := fset.Position(pos)
	if ig, ok := ignores[position.Filename]; ok && ig.suppressed(check, position) {
		return
	}
	*sink = append(*sink, Diagnostic{
		Check:   check,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// TypeOf returns the type of an expression, or nil when type information is
// incomplete (checks must degrade gracefully).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return typeOf(p.Pkg.Info, e)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgFuncCall resolves call to a package-level function: it returns the
// imported package's path and the function name, or ok == false for method
// calls, conversions, locals and unresolved names.
func (p *Pass) PkgFuncCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsNamed reports whether t (through pointers) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedOf returns the named type behind t (through pointers), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// pragma is one parsed //canonvet:ignore directive. fileWide pragmas sit
// above the package clause; line pragmas suppress their own line and the
// next. used records which named checks the pragma actually suppressed, so
// the deadpragma meta-check can flag stale suppressions.
type pragma struct {
	checks   []string
	fileWide bool
	line     int
	pos      token.Pos
	used     map[string]bool
}

func (pr *pragma) names(check string) bool {
	for _, c := range pr.checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// fileIgnores is the parsed //canonvet:ignore pragmas of one file.
type fileIgnores struct {
	filename string
	pragmas  []*pragma
}

// suppressed reports whether a pragma covers the finding, marking the
// matching pragma as used.
func (ig *fileIgnores) suppressed(check string, pos token.Position) bool {
	if ig.filename != pos.Filename {
		return false
	}
	for _, pr := range ig.pragmas {
		if !pr.names(check) {
			continue
		}
		if pr.fileWide || pr.line == pos.Line || pr.line+1 == pos.Line {
			pr.used[check] = true
			return true
		}
	}
	return false
}

// parseIgnores scans a file's comments for canonvet pragmas. A pragma above
// the package clause suppresses the named checks for the whole file; any
// other pragma suppresses them on its own line and the line below it.
func parseIgnores(fset *token.FileSet, f *ast.File) *fileIgnores {
	ig := &fileIgnores{filename: fset.Position(f.Pos()).Filename}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			rest, ok := strings.CutPrefix(text, "canonvet:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			ig.pragmas = append(ig.pragmas, &pragma{
				checks:   strings.Split(fields[0], ","),
				fileWide: c.End() < f.Package,
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
				used:     make(map[string]bool),
			})
		}
	}
	return ig
}

// reportDeadPragmas emits the deadpragma meta-check: every parsed pragma
// entry naming a check that ran in this invocation but suppressed nothing is
// stale, and pragmas naming unknown checks are typos. "all" pragmas are only
// judged when the full check set ran (a restricted -checks run cannot prove
// them dead). Deadpragma findings deliberately bypass pragma suppression:
// the pragma under report would otherwise suppress its own staleness (an
// "all" pragma names every check, deadpragma included), and the only honest
// fix is deleting the pragma anyway.
func reportDeadPragmas(fset *token.FileSet, cfg *Config, ignores map[string]*fileIgnores,
	ran map[string]bool, fullSet bool, sink *[]Diagnostic) {
	known := make(map[string]bool)
	for _, c := range AllChecks() {
		known[c.Name] = true
	}
	emit := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		*sink = append(*sink, Diagnostic{
			Check: deadPragmaName, File: p.Filename, Line: p.Line, Column: p.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	files := make([]string, 0, len(ignores))
	for f := range ignores {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, pr := range ignores[f].pragmas {
			for _, name := range pr.checks {
				switch {
				case name == "all":
					if fullSet && len(pr.used) == 0 {
						emit(pr.pos,
							"stale //canonvet:ignore all: no check fires at this scope; remove the pragma")
					}
				case !known[name]:
					emit(pr.pos,
						"//canonvet:ignore names unknown check %q (see canonvet -list)", name)
				case ran[name] && !pr.used[name]:
					emit(pr.pos,
						"stale //canonvet:ignore: check %q no longer fires at this scope; remove the pragma", name)
				}
			}
		}
	}
}

// Fingerprint computes the stable identity of a finding for baseline files:
// a 64-bit FNV-1a hash of check, module-relative path, and message — line
// and column excluded so fingerprints survive unrelated edits.
func (cfg *Config) Fingerprint(d Diagnostic) string {
	file := d.File
	if cfg.Root != "" {
		if rel, err := filepath.Rel(cfg.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", d.Check, file, d.Message)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Run executes the enabled checks over every package and returns the
// findings sorted by position. Per-package checks run first, then the
// module-wide interprocedural checks over the call graph built from pkgs,
// and finally the deadpragma meta-check over the suppression evidence the
// earlier checks left behind.
func Run(cfg *Config, fset *token.FileSet, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	ignores := make(map[string]*fileIgnores)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ig := parseIgnores(fset, f)
			ignores[ig.filename] = ig
		}
	}

	ran := make(map[string]bool)
	needGraph := false
	for _, chk := range AllChecks() {
		if !cfg.enabled(chk.Name) {
			continue
		}
		if chk.RunModule != nil {
			needGraph = true
		}
	}

	for _, pkg := range pkgs {
		for _, chk := range AllChecks() {
			if chk.Run == nil || !cfg.enabled(chk.Name) {
				continue
			}
			ran[chk.Name] = true
			pass := &Pass{
				Cfg: cfg, Fset: fset, Pkg: pkg,
				check: chk.Name, ignores: ignores, sink: &diags,
			}
			chk.Run(pass)
		}
	}

	if needGraph {
		graph := BuildCallGraph(cfg, fset, pkgs)
		graph.ComputeSummaries()
		graph.ComputeFlowSummaries()
		var wireExt *wireExtraction
		if wireChecksEnabled(cfg) {
			wireExt = extractWire(cfg, fset, pkgs)
		}
		for _, chk := range AllChecks() {
			if chk.RunModule == nil || !cfg.enabled(chk.Name) {
				continue
			}
			ran[chk.Name] = true
			mp := &ModulePass{
				Cfg: cfg, Fset: fset, Graph: graph, wire: wireExt,
				check: chk.Name, ignores: ignores, sink: &diags,
			}
			chk.RunModule(mp)
		}
	}

	if cfg.enabled(deadPragmaName) {
		fullSet := true
		for _, chk := range AllChecks() {
			if chk.Name != deadPragmaName && !ran[chk.Name] {
				fullSet = false
			}
		}
		reportDeadPragmas(fset, cfg, ignores, ran, fullSet, &diags)
	}

	for i := range diags {
		diags[i].Fingerprint = cfg.Fingerprint(diags[i])
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Check < b.Check
	})
	return diags
}
