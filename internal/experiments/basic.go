package experiments

import (
	"fmt"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/metrics"
)

// DefaultSizes is the network-size sweep of Figures 3 and 5.
var DefaultSizes = []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// DefaultLevels is the hierarchy-depth sweep of Figures 3-5 (1 = flat
// Chord).
var DefaultLevels = []int{1, 2, 3, 4, 5}

// Fig3 reproduces Figure 3: the average number of links per node as a
// function of network size, one curve per hierarchy depth. The paper's
// findings: the count stays extremely close to log2 n for every depth, and
// decreases slightly as depth grows.
func Fig3(cfg Config, sizes, levels []int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  "Figure 3: Average number of links per node",
		XLabel: "nodes",
	}
	for _, lv := range levels {
		series := &metrics.Series{Name: levelName(lv)}
		for _, n := range sizes {
			nw, err := buildHierNet(cfg, canon.Chord, n, lv)
			if err != nil {
				return nil, err
			}
			series.Append(float64(n), nw.AvgDegree())
		}
		tbl.AddSeries(series)
	}
	tbl.AddNote("fanout=%d zipf=%.2f seed=%d", cfg.Fanout, cfg.ZipfExponent, cfg.Seed)
	return tbl, nil
}

// Fig4 reproduces Figure 4: the probability distribution of per-node link
// counts for one network size, one curve per hierarchy depth. The paper's
// finding: the distribution flattens to the left of the mean as depth grows
// while the maximum barely moves.
func Fig4(cfg Config, n int, levels []int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Figure 4: PDF of links/node for a %d-node network", n),
		XLabel: "links",
	}
	for _, lv := range levels {
		nw, err := buildHierNet(cfg, canon.Chord, n, lv)
		if err != nil {
			return nil, err
		}
		var h metrics.IntHistogram
		for i := 0; i < nw.Len(); i++ {
			h.Add(nw.Degree(i))
		}
		series := &metrics.Series{Name: levelName(lv)}
		vals, fracs := h.PDF()
		for i, v := range vals {
			series.Append(float64(v), fracs[i])
		}
		tbl.AddSeries(series)
	}
	tbl.AddNote("fanout=%d zipf=%.2f seed=%d", cfg.Fanout, cfg.ZipfExponent, cfg.Seed)
	return tbl, nil
}

// Fig5 reproduces Figure 5: the average number of routing hops as a function
// of network size, one curve per hierarchy depth. The paper's finding: hops
// are ~0.5*log2 n + c, with c growing by at most ~0.7 as depth increases.
func Fig5(cfg Config, sizes, levels []int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  "Figure 5: Average number of routing hops",
		XLabel: "nodes",
	}
	for _, lv := range levels {
		series := &metrics.Series{Name: levelName(lv)}
		for _, n := range sizes {
			nw, err := buildHierNet(cfg, canon.Chord, n, lv)
			if err != nil {
				return nil, err
			}
			series.Append(float64(n), avgHops(nw, cfg.RoutePairs, cfg.Seed+int64(n)))
		}
		tbl.AddSeries(series)
	}
	tbl.AddNote("pairs=%d fanout=%d zipf=%.2f seed=%d", cfg.RoutePairs, cfg.Fanout, cfg.ZipfExponent, cfg.Seed)
	return tbl, nil
}

func levelName(lv int) string {
	if lv == 1 {
		return "levels=1 (chord)"
	}
	return fmt.Sprintf("levels=%d", lv)
}
