package netnode

import (
	"sync"

	"github.com/canon-dht/canon/internal/telemetry"
)

// Metric names published by a live node. One canond process hosts one node,
// so names carry no node label; sharing a Registry across in-process nodes
// aggregates their series (see Config.Telemetry).
const (
	mnSent         = "canon_rpc_sent_total"
	mnReceived     = "canon_rpc_received_total"
	mnRetries      = "canon_rpc_retries_total"
	mnFailed       = "canon_rpc_failed_calls_total"
	mnRouteAround  = "canon_route_around_total"
	mnRPCLatency   = "canon_rpc_latency_seconds"
	mnRPCAttempts  = "canon_rpc_attempts"
	mnLookupHops   = "canon_lookup_hops"
	mnTraceStarted = "canon_traces_started_total"
	mnTraceDone    = "canon_traces_completed_total"
	mnStoreWrites  = "canon_store_writes_total"
	mnFetchReads   = "canon_fetch_reads_total"
	mnStoreItems   = "canon_store_items"
	mnSuspects     = "canon_suspect_peers"
)

// nodeMetrics holds the node's cached handles into its telemetry registry.
// The per-message-type sent/received counter maps are populated lazily (one
// counter per wire message type) under their own lock so the RPC hot path
// never contends with unrelated node state.
type nodeMetrics struct {
	reg *telemetry.Registry

	retries      *telemetry.Counter
	failedCalls  *telemetry.Counter
	routedAround *telemetry.Counter
	rpcLatency   *telemetry.Histogram
	rpcAttempts  *telemetry.Histogram
	lookupHops   *telemetry.Histogram
	traceStarted *telemetry.Counter
	traceDone    *telemetry.Counter
	storeWrites  *telemetry.Counter
	fetchReads   *telemetry.Counter
	storeItems   *telemetry.Gauge
	suspects     *telemetry.Gauge

	mu       sync.Mutex
	sent     map[string]*telemetry.Counter
	received map[string]*telemetry.Counter
}

func newNodeMetrics(reg *telemetry.Registry) *nodeMetrics {
	return &nodeMetrics{
		reg:          reg,
		retries:      reg.Counter(mnRetries, "re-send attempts beyond each call's first"),
		failedCalls:  reg.Counter(mnFailed, "calls that exhausted every attempt"),
		routedAround: reg.Counter(mnRouteAround, "lookup forwards that skipped a distrusted best candidate"),
		rpcLatency:   reg.Histogram(mnRPCLatency, "outgoing RPC latency per completed call, seconds", telemetry.DefBuckets),
		rpcAttempts:  reg.Histogram(mnRPCAttempts, "transport attempts used per RPC call", telemetry.AttemptBuckets),
		lookupHops:   reg.Histogram(mnLookupHops, "forwarding hops per lookup answered for a local or remote originator", telemetry.HopBuckets),
		traceStarted: reg.Counter(mnTraceStarted, "route traces originated by this node"),
		traceDone:    reg.Counter(mnTraceDone, "route traces completed and archived at this node"),
		storeWrites:  reg.Counter(mnStoreWrites, "local store writes (values, pointers and replicas)"),
		fetchReads:   reg.Counter(mnFetchReads, "local fetch reads served"),
		storeItems:   reg.Gauge(mnStoreItems, "distinct keys currently stored"),
		suspects:     reg.Gauge(mnSuspects, "peers the failure detector currently distrusts"),
		sent:         make(map[string]*telemetry.Counter),
		received:     make(map[string]*telemetry.Counter),
	}
}

// sentCounter returns the outgoing-request counter for a message type.
func (m *nodeMetrics) sentCounter(msgType string) *telemetry.Counter {
	m.mu.Lock()
	c, ok := m.sent[msgType]
	if !ok {
		c = m.reg.Counter(mnSent, "outgoing requests by message type (first attempts only)",
			telemetry.L("type", msgType))
		m.sent[msgType] = c
	}
	m.mu.Unlock()
	return c
}

// receivedCounter returns the incoming-request counter for a message type.
func (m *nodeMetrics) receivedCounter(msgType string) *telemetry.Counter {
	m.mu.Lock()
	c, ok := m.received[msgType]
	if !ok {
		c = m.reg.Counter(mnReceived, "incoming requests by message type",
			telemetry.L("type", msgType))
		m.received[msgType] = c
	}
	m.mu.Unlock()
	return c
}

// sentSnapshot copies the per-type sent counts (the Stats bridge).
func (m *nodeMetrics) sentSnapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.sent))
	for k, c := range m.sent {
		out[k] = c.Value()
	}
	return out
}

// receivedSnapshot copies the per-type received counts.
func (m *nodeMetrics) receivedSnapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.received))
	for k, c := range m.received {
		out[k] = c.Value()
	}
	return out
}
