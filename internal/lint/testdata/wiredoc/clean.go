package wiredoc

// docReq's table in WIRE.md matches the codec field for field, so wiredoc
// stays silent about it.
type docReq struct {
	C uint64
	D string
}

func (q docReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.C)
	b = appendStr(b, q.D)
	return b, nil
}

func (q *docReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.C = r.u64()
	q.D = r.str()
	return r.done()
}
