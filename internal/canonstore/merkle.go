// Merkle-style summaries for replica anti-entropy.
//
// A MerkleTree condenses one replica set (the entries a node holds for one
// domain ring and key range) into a fixed 256-leaf digest vector plus a
// root. Two replicas exchange roots; on mismatch they exchange the leaf
// vector, diff it locally, and then only the keys in mismatched buckets
// travel — tree exchange → diff → repair, with traffic proportional to
// divergence, not to data size (the DistHash/Dynamo lineage).
//
// The per-entry digest covers identity, content and version — but not the
// placement level, which replicas of the same record legitimately disagree
// on — so a replica holding a stale version of a key diverges in exactly
// that key's bucket. Leaves combine entry digests with modular addition,
// which is commutative — iteration order (map order, log order) cannot
// change the summary. The combiner is not cryptographic: a colliding pair
// would only delay repair by one round, because versions advance and
// re-digest differently.
package canonstore

// MerkleLeaves is the fixed leaf count of every tree; both sides of a sync
// must agree on it, so it is part of the wire contract (docs/WIRE.md).
const MerkleLeaves = 256

// MerkleTree is a sealed summary: Leaves has exactly MerkleLeaves entries
// and Root folds them in index order.
type MerkleTree struct {
	Root   uint64
	Leaves []uint64
}

// MerkleBucket maps a key to its leaf index. Keys are ring positions (not
// necessarily uniform per range), so they are remixed first.
func MerkleBucket(key uint64) int {
	return int(mix64(key) >> 56) // top 8 bits: 256 buckets
}

// Digest fingerprints an entry's identity, content and version. The
// placement level is excluded: a per-level replica and its primary hold the
// same record at different levels and must digest identically, and Digest
// is also the conflict tie-break for equal-version writes (see putEntry),
// where placement must not pick winners.
func (e Entry) Digest() uint64 {
	e.Level = 0
	var buf [512]byte
	return mix64(fnv64a(appendEntry(buf[:0], e)))
}

// fnv64a is FNV-1a over a byte slice, inlined so digesting stays
// allocation-free on the store hot path (hash/fnv's New64a escapes).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// NewMerkleTree returns an empty, unsealed tree.
func NewMerkleTree() *MerkleTree {
	return &MerkleTree{Leaves: make([]uint64, MerkleLeaves)}
}

// Add folds one entry into its leaf. Adding is commutative.
func (t *MerkleTree) Add(e Entry) {
	t.Leaves[MerkleBucket(e.Key)] += e.Digest()
}

// Seal computes the root over the leaf vector; call it after the last Add.
func (t *MerkleTree) Seal() {
	root := uint64(14695981039346656037) // fnv-64a offset basis
	for _, l := range t.Leaves {
		root = mix64(root ^ l)
	}
	t.Root = root
}

// DiffBuckets returns the leaf indexes where the two vectors disagree. A
// short or nil peer vector (a peer holding nothing, or a malformed reply)
// counts every local non-empty bucket as divergent.
func (t *MerkleTree) DiffBuckets(peer []uint64) []int {
	var out []int
	for i, l := range t.Leaves {
		var p uint64
		if i < len(peer) {
			p = peer[i]
		}
		if l != p {
			out = append(out, i)
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
