package wirebreak

// okReq matches its baseline entry byte for byte; the gate has nothing to
// say however many unchanged messages the package carries.
type okReq struct {
	C uint64
	D string
}

func (q okReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.C)
	b = appendStr(b, q.D)
	return b, nil
}

func (q *okReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.C = r.u64()
	q.D = r.str()
	return r.done()
}
