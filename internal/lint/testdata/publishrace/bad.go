// Package publishrace is the golden fixture for the publish-immutability
// check. The view type plays the routing snapshot: built privately, then
// published through an atomic pointer, after which every byte must be
// frozen. Each function here mutates a value after publication in one of
// the ways the value-flow engine tracks.
package publishrace

import "sync/atomic"

type view struct {
	epoch int
	peers []string
}

var current atomic.Pointer[view]

// writeAfterStore mutates the snapshot it just published: a reader
// holding the pointer observes the change without synchronization.
func writeAfterStore() {
	v := &view{epoch: 1}
	current.Store(v)
	v.epoch = 2 // want `value "v" is written after being published`
}

// aliasWrite mutates through an alias of the published value; the cells
// are shared, so the alias carries the publication fact.
func aliasWrite() {
	v := &view{}
	w := v
	current.Store(v)
	w.epoch = 3 // want `value "v" is written after being published`
}

// swapAndWrite: Swap publishes its argument exactly like Store.
func swapAndWrite() {
	v := &view{}
	current.Swap(v)
	v.epoch = 9 // want `value "v" is written after being published`
}

// deepWrite mutates a slice field of the published value: still a write
// to published memory.
func deepWrite() {
	v := &view{}
	current.Store(v)
	v.peers = append(v.peers, "x") // want `value "v" is written after being published`
}

// incAfterStore: increments are writes too.
func incAfterStore() {
	v := &view{}
	current.Store(v)
	v.epoch++ // want `value "v" is written after being published`
}

// publishView plays the publish helper: its PublishesParam summary makes
// calls to it count as publication sites.
func publishView(v *view) { current.Store(v) }

// writeAfterHelper publishes through the helper; only the
// interprocedural summary sees the publication.
func writeAfterHelper() {
	v := &view{}
	publishView(v)
	v.peers = nil // want `value "v" is written after being published`
}

var current2 atomic.Pointer[view]

// rebindAfterStore published the variable's own storage (&v), so even
// rebinding the variable writes the published memory.
func rebindAfterStore() {
	v := view{epoch: 1}
	current2.Store(&v)
	v = view{epoch: 2} // want `value "v" is written after being published`
}

// pragmaProof shows the escape hatch: the finding on the next line is
// suppressed, so no want annotation appears.
func pragmaProof() {
	v := &view{}
	current.Store(v)
	//canonvet:ignore publishrace -- fixture: proves the pragma suppresses the finding
	v.epoch = 5
}
