// Clean constructs for the publish-immutability fixture: the
// copy-on-write discipline the check must stay silent on.
package publishrace

// buildThenStore does all its mutation before publishing — the intended
// order.
func buildThenStore() {
	v := &view{epoch: 1}
	v.peers = append(v.peers, "a")
	current.Store(v)
}

// readAfterStore reads the published value: reads are the point of the
// snapshot.
func readAfterStore() int {
	v := &view{epoch: 1}
	current.Store(v)
	return v.epoch
}

// republish loads the old snapshot, builds a fresh copy, and publishes
// that: only the never-published copy is mutated.
func republish() {
	old := current.Load()
	next := &view{epoch: old.epoch + 1}
	next.peers = append(next.peers, "b")
	current.Store(next)
}

// inspect plays a helper that only reads its argument: no publication,
// so callers' writes stay legal.
func inspect(v *view) int { return v.epoch }

// writeAfterInspect passes the value to the read-only helper and keeps
// mutating.
func writeAfterInspect() {
	v := &view{}
	inspect(v)
	v.epoch = 4
	current.Store(v)
}
