// Wire message types and domain-name helpers; the package documentation
// lives in doc.go.
package netnode

import (
	"hash/fnv"
	"strings"

	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/telemetry"
)

// Info identifies a live node on the wire.
type Info struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// IsZero reports whether the Info is unset.
func (i Info) IsZero() bool { return i.Addr == "" }

// Message type identifiers.
const (
	msgLookup    = "lookup"
	msgNeighbors = "neighbors"
	msgNotify    = "notify"
	msgPing      = "ping"
	msgStore     = "store"
	msgFetch     = "fetch"
	msgRegister  = "register"
	msgMembers   = "members"
	msgLeaving   = "leaving"
)

// Message types introduced at wire version 2 (docs/WIRE.md): the versioned
// store and the replica anti-entropy protocol. The storeReq binary layout is
// frozen at v1, so the versioned form is a new type rather than new fields.
const (
	msgStoreV2  = "store2"
	msgSyncTree = "synctree"
	msgSyncKeys = "synckeys"
	msgSyncPull = "syncpull"
	msgRepair   = "repair"
)

// Message types introduced at wire version 3 (docs/WIRE.md §9): the geometry
// maintenance protocol — Kandy's bucket-refresh probe and Cacophony's
// lookahead neighbor exchange. Nodes serve both regardless of their own
// geometry, so a mixed cluster keeps every side's links fresh.
const (
	msgBucketRef = "bucketref"
	msgLookahead = "lookahead"
)

// lookupReq asks for the predecessor (owner) and successor of Key among the
// nodes of the domain named by Prefix ("" = the whole system).
//
// Trace, when non-empty, is a distributed trace context: every node the
// lookup passes through appends one telemetry.Span to Spans before
// forwarding (or answers with the accumulated spans, terminal span
// included). The span list rides the request clockwise and returns to the
// originator inside lookupResp, so the route's per-hop evidence — node,
// domain, routing level, route-arounds — costs no extra messages. Untraced
// lookups carry neither field on the wire (omitempty).
type lookupReq struct {
	Key    uint64 `json:"key"`
	Prefix string `json:"prefix"`
	Hops   int    `json:"hops"`
	// Trace is the trace identifier; empty means the lookup is untraced.
	Trace string `json:"trace,omitempty"`
	// Spans accumulates one record per hop already taken.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

type lookupResp struct {
	Pred Info `json:"pred"`
	Succ Info `json:"succ"`
	Hops int  `json:"hops"`
	// Trace and Spans echo a traced request's context with the terminal
	// span appended; see lookupReq.
	Trace string           `json:"trace,omitempty"`
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// neighborsReq asks for a node's neighbor state at one level.
type neighborsReq struct {
	Level int `json:"level"`
}

type neighborsResp struct {
	Pred  Info   `json:"pred"`
	Succs []Info `json:"succs"`
}

// notifyReq tells a node that From may be its predecessor at Level, or —
// with AsSuccessor set — that From may be its successor (the paper's eager
// notification of nodes that would otherwise erroneously skip a joiner).
type notifyReq struct {
	Level       int  `json:"level"`
	From        Info `json:"from"`
	AsSuccessor bool `json:"asSuccessor,omitempty"`
}

// storeReq stores a key-value pair (or a pointer to one) at the receiver.
type storeReq struct {
	Key     uint64 `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Storage string `json:"storage"`
	Access  string `json:"access"`
	// Pointer, when set, is the node actually holding the value.
	Pointer Info `json:"pointer,omitempty"`
	// Replica marks a copy pushed by the key's owner to its successors; the
	// receiver stores it without re-replicating.
	Replica bool `json:"replica,omitempty"`
}

// storeReq2 is the versioned store request: storeReq plus the placement
// level and the write version the storage engine orders writes by. Version
// 0 asks the receiver to stamp one (a fresh client write); replica pushes,
// handoffs and anti-entropy repairs carry the origin's version verbatim so
// the record's history survives the transfer.
type storeReq2 struct {
	Key     uint64 `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Storage string `json:"storage"`
	Access  string `json:"access"`
	Pointer Info   `json:"pointer,omitempty"`
	Replica bool   `json:"replica,omitempty"`
	// Level is the hierarchy level this copy is placed for: the home
	// domain's depth for primaries and chain replicas, deeper for per-level
	// copies on nested rings.
	Level   int    `json:"level"`
	Version uint64 `json:"version"`
}

// syncTreeReq asks a replica for its Merkle summary of one sync scope: the
// entries homed inside a domain containing Prefix with keys in the
// clockwise range [Lo, Hi) (Lo == Hi means the whole ring). Both sides
// compute the scope by the same rule, so the summaries are comparable.
type syncTreeReq struct {
	Prefix string `json:"prefix"`
	Lo     uint64 `json:"lo"`
	Hi     uint64 `json:"hi"`
}

// syncTreeResp is the sealed summary: canonstore.MerkleLeaves leaf digests
// plus the root folded over them.
type syncTreeResp struct {
	Root   uint64   `json:"root"`
	Leaves []uint64 `json:"leaves"`
}

// syncKeysReq asks for the per-record identities and digests in the listed
// divergent Merkle buckets of a sync scope.
type syncKeysReq struct {
	Prefix  string `json:"prefix"`
	Lo      uint64 `json:"lo"`
	Hi      uint64 `json:"hi"`
	Buckets []int  `json:"buckets"`
}

// syncItem names one stored record and its (Version, Digest) conflict
// position, without the value bytes — values only travel for records that
// actually differ.
type syncItem struct {
	Key     uint64 `json:"key"`
	Storage string `json:"storage"`
	Access  string `json:"access"`
	Pointer bool   `json:"pointer,omitempty"`
	Version uint64 `json:"version"`
	Digest  uint64 `json:"digest"`
}

type syncKeysResp struct {
	Items []syncItem `json:"items"`
}

// syncPullReq retrieves the full entries a peer holds for Key within a sync
// scope, versions included — the pull half of anti-entropy repair and the
// source of read-repair pushes.
type syncPullReq struct {
	Prefix string `json:"prefix"`
	Lo     uint64 `json:"lo"`
	Hi     uint64 `json:"hi"`
	Key    uint64 `json:"key"`
}

type syncPullResp struct {
	Entries []storeReq2 `json:"entries"`
}

// repairResp reports one operator-triggered anti-entropy round (the request
// carries no body). It is JSON-only on the wire: repair is a rare
// operations RPC, so it takes no binary codec (docs/WIRE.md allows that).
type repairResp struct {
	Partners int `json:"partners"`
	Pushed   int `json:"pushed"`
	Pulled   int `json:"pulled"`
}

// bucketRefReq asks the receiver for the contacts it knows XOR-nearest to
// Target within the domain named Prefix — Kandy's bucket-refresh probe, the
// live analog of Kademlia FIND_NODE. The receiver must belong to the domain.
type bucketRefReq struct {
	Prefix string `json:"prefix"`
	Target uint64 `json:"target"`
}

// bucketRefResp carries up to bucketRefFanout in-domain contacts, XOR-nearest
// first.
type bucketRefResp struct {
	Contacts []Info `json:"contacts"`
}

// lookaheadReq asks the receiver for its lookahead state — per-level first
// successors and ring-size estimates — for levels 0..Levels of its chain
// (Cacophony's neighbor exchange; the sender passes the depth of the lowest
// common domain, the levels whose rings the two sides share).
type lookaheadReq struct {
	Levels int `json:"levels"`
}

// lookaheadResp answers with Succs[l] (the receiver's first successor at
// level l, itself when alone) and Ests[l] (its arc-based ring-size estimate,
// 0 when it has no successor list to estimate from) for levels
// 0..min(Levels, receiver's depth).
type lookaheadResp struct {
	Succs []Info   `json:"succs"`
	Ests  []uint64 `json:"ests"`
}

// fetchReq retrieves values for Key visible to a querier named Origin.
type fetchReq struct {
	Key    uint64 `json:"key"`
	Origin string `json:"origin"`
}

type fetchValue struct {
	Value   []byte `json:"value"`
	Access  string `json:"access"`
	Pointer Info   `json:"pointer,omitempty"`
}

type fetchResp struct {
	Values []fetchValue `json:"values"`
}

// registerReq records From as a live member of the domain named Prefix in
// the receiver's membership registry.
type registerReq struct {
	Prefix string `json:"prefix"`
	From   Info   `json:"from"`
}

// membersReq asks for registered members of the domain named Prefix.
type membersReq struct {
	Prefix string `json:"prefix"`
}

type membersResp struct {
	Members []Info `json:"members"`
}

// leavingReq announces a graceful departure at every shared level.
type leavingReq struct {
	From  Info   `json:"from"`
	Succs []Info `json:"succs"` // the leaver's global successor list, as repair hints
}

// components splits a hierarchical name; the root is the empty slice.
func components(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, "/")
}

// prefixAt returns the first `level` components of name joined back into a
// domain path; level 0 is the root ("").
func prefixAt(name string, level int) string {
	if level <= 0 {
		return ""
	}
	comps := components(name)
	if level >= len(comps) {
		return name
	}
	return strings.Join(comps[:level], "/")
}

// prefixLevel returns the chain depth a domain prefix names: 0 for the root
// (""), otherwise one more than its separator count. It is the allocation-free
// counterpart of len(components(prefix)) used on the lookup hot path.
func prefixLevel(prefix string) int {
	if prefix == "" {
		return 0
	}
	return strings.Count(prefix, "/") + 1
}

// inDomain reports whether a node named `name` belongs to the domain named
// `prefix` (the root contains everyone).
func inDomain(name, prefix string) bool {
	if prefix == "" {
		return true
	}
	return name == prefix || strings.HasPrefix(name, prefix+"/")
}

// sharedLevels returns the number of leading name components two nodes
// share: the depth of their lowest common domain.
func sharedLevels(a, b string) int {
	ca, cb := components(a), components(b)
	n := 0
	for n < len(ca) && n < len(cb) && ca[n] == cb[n] {
		n++
	}
	return n
}

// domainKey hashes a domain name into the identifier space; the membership
// registry for the domain lives at this key's owner.
func domainKey(space id.Space, prefix string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("canon-domain:" + prefix))
	return h.Sum64() & space.Mask()
}
