package wiresym

// pingReq's encoder writes A then B; its decoder reads B then A. Every
// payload with a non-empty B decodes into garbage (or an error) on the
// other side — the classic silently-skewed codec pair wiresym exists for.
type pingReq struct {
	A uint64
	B string
}

func (p pingReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, p.A)
	b = appendStr(b, p.B)
	return b, nil
}

func (p *pingReq) UnmarshalBinary(data []byte) error { // want `encoder and decoder of ping request disagree at field 1: encoder writes A:u64, decoder reads B:string`
	r := &binReader{data: data}
	p.B = r.str()
	p.A = r.u64()
	return r.done()
}
