package netnode

import (
	"context"
	"fmt"

	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/transport"
)

// handle dispatches an incoming message to the matching RPC handler.
func (n *Node) handle(ctx context.Context, from string, msg transport.Message) (transport.Message, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return transport.Message{}, ErrClosed
	}
	n.countReceived(msg.Type)
	switch msg.Type {
	case msgPing:
		return transport.NewMessage(msgPing, n.self)

	case msgLookup:
		// The request decodes into a pooled object (returned fully zeroed —
		// see putLookupReq) so a forwarded hop allocates no request. The
		// response is passed by value: NewMessage keeps binary-capable bodies
		// lazy, and receiver-side dedup may cache the message, so the body
		// must not be recycled.
		req := getLookupReq()
		defer putLookupReq(req)
		if err := msg.Decode(req); err != nil {
			return transport.Message{}, err
		}
		resp, err := n.handleLookup(ctx, req)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgLookup, resp)

	case msgNeighbors:
		var req neighborsReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		n.mu.Lock()
		resp := neighborsResp{}
		if req.Level >= 0 && req.Level <= n.levels {
			resp.Pred = n.preds[req.Level]
			resp.Succs = append([]Info(nil), n.succs[req.Level]...)
		}
		n.mu.Unlock()
		return transport.NewMessage(msgNeighbors, resp)

	case msgNotify:
		var req notifyReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		n.handleNotify(req)
		return transport.NewMessage(msgNotify, nil)

	case msgStore:
		var req storeReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		if !inDomain(n.self.Name, req.Storage) && req.Pointer.IsZero() {
			return transport.Message{}, fmt.Errorf("%w: store for %q at %q",
				ErrBadDomain, req.Storage, n.self.Name)
		}
		if err := n.storeLocal(req); err != nil {
			return transport.Message{}, err
		}
		// fsync-on-ack: the empty reply promises durability, so the write
		// must hit the durability barrier first (canonvet: fsyncbeforeack).
		if err := n.store.Sync(); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgStore, nil)

	case msgStoreV2:
		var req storeReq2
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		if !inDomain(n.self.Name, req.Storage) && req.Pointer.IsZero() {
			return transport.Message{}, fmt.Errorf("%w: store for %q at %q",
				ErrBadDomain, req.Storage, n.self.Name)
		}
		if err := n.storeLocalV2(req); err != nil {
			return transport.Message{}, err
		}
		// fsync-on-ack, as above.
		if err := n.store.Sync(); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgStoreV2, nil)

	case msgSyncTree:
		var req syncTreeReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgSyncTree, n.syncTreeLocal(req))

	case msgSyncKeys:
		var req syncKeysReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgSyncKeys, n.syncKeysLocal(req))

	case msgSyncPull:
		var req syncPullReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgSyncPull, syncPullResp{Entries: n.syncPullLocal(req)})

	case msgRepair:
		stats := n.AntiEntropyOnce(ctx)
		return transport.NewMessage(msgRepair, repairResp{
			Partners: stats.Partners, Pushed: stats.Pushed, Pulled: stats.Pulled,
		})

	case msgFetch:
		var req fetchReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgFetch, fetchResp{Values: n.fetchLocal(req)})

	case msgRegister:
		var req registerReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		n.registerLocal(req.Prefix, req.From)
		return transport.NewMessage(msgRegister, nil)

	case msgMembers:
		var req membersReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		n.mu.Lock()
		members := append([]Info(nil), n.registry[req.Prefix]...)
		n.mu.Unlock()
		return transport.NewMessage(msgMembers, membersResp{Members: members})

	case msgBucketRef:
		var req bucketRefReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		resp, err := n.handleBucketRef(req)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgBucketRef, resp)

	case msgLookahead:
		var req lookaheadReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(msgLookahead, n.handleLookahead(req))

	case msgLeaving:
		var req leavingReq
		if err := msg.Decode(&req); err != nil {
			return transport.Message{}, err
		}
		n.handleLeaving(req)
		return transport.NewMessage(msgLeaving, nil)

	default:
		return transport.Message{}, fmt.Errorf("netnode: unknown message type %q", msg.Type)
	}
}

// handleNotify adopts the sender as predecessor at the given level when it
// lies between the current predecessor and us — or, with AsSuccessor set,
// as our successor when it lies between us and the current one.
func (n *Node) handleNotify(req notifyReq) {
	level := req.Level
	n.mu.Lock()
	defer n.mu.Unlock()
	if level < 0 || level > n.levels || req.From.Addr == n.self.Addr {
		return
	}
	if !inDomain(req.From.Name, prefixAt(n.self.Name, level)) {
		return
	}
	if req.AsSuccessor {
		cur := Info{}
		if len(n.succs[level]) > 0 {
			cur = n.succs[level][0]
		}
		if cur.IsZero() || cur.Addr == n.self.Addr ||
			n.space.Between(id.ID(req.From.ID), id.ID(n.self.ID), id.ID(cur.ID)) && req.From.ID != cur.ID {
			n.succs[level] = capList(dedupeInfos(append([]Info{req.From}, n.succs[level]...)), n.cfg.SuccessorListLen)
			n.publishRoutingLocked()
		}
		return
	}
	cur := n.preds[level]
	if cur.IsZero() || cur.Addr == n.self.Addr ||
		n.space.Between(id.ID(req.From.ID), id.ID(cur.ID), id.ID(n.self.ID)) && req.From.ID != n.self.ID {
		n.preds[level] = req.From
		n.publishRoutingLocked()
	}
}

// handleLeaving splices a departing node out of all local state.
func (n *Node) handleLeaving(req leavingReq) {
	n.mu.Lock()
	defer n.mu.Unlock()
	gone := req.From.Addr
	for l := 0; l <= n.levels; l++ {
		kept := n.succs[l][:0]
		for _, s := range n.succs[l] {
			if s.Addr != gone {
				kept = append(kept, s)
			}
		}
		// Use the leaver's successors as repair hints for this level.
		for _, h := range req.Succs {
			if h.Addr == gone || h.Addr == n.self.Addr {
				continue
			}
			if inDomain(h.Name, prefixAt(n.self.Name, l)) {
				kept = append(kept, h)
			}
		}
		n.succs[l] = capList(dedupeInfos(kept), n.cfg.SuccessorListLen)
		if len(n.succs[l]) == 0 {
			n.succs[l] = []Info{n.self}
		}
		if n.preds[l].Addr == gone {
			n.preds[l] = Info{}
		}
	}
	for fid, f := range n.fingers {
		if f.Addr == gone {
			delete(n.fingers, fid)
		}
	}
	for prefix, members := range n.registry {
		kept := members[:0]
		for _, m := range members {
			if m.Addr != gone {
				kept = append(kept, m)
			}
		}
		n.registry[prefix] = kept
	}
	n.publishRoutingLocked()
}
