// Package symphony implements the Symphony link-creation geometry (Manku,
// Bawa, Raghavan, USITS 2003): a randomized small-world ring where each node
// draws ~log2(n) long links whose lengths follow the harmonic distribution
// (probability of linking to a node inversely proportional to its clockwise
// distance), plus a successor link. Plugged into the Canon framework it
// yields Cacophony, the Canonical Symphony of Section 3.1.
package symphony

import (
	"math"
	"math/rand"

	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/id"
)

// maxDrawAttempts bounds the retries used to avoid self-links and duplicate
// draws when a ring is very small.
const maxDrawAttempts = 8

// EstimateFromArc estimates a ring's size from `hops` consecutive
// successors spanning the clockwise arc `arc`: if x nodes span a fraction f
// of the ring, the ring holds about x/f nodes. The estimate is at least 2.
// This is the pure core of the cheap estimation protocol Symphony relies on,
// shared by the offline EstimateRingSize and the live Cacophony geometry.
func EstimateFromArc(space id.Space, hops int, arc uint64) int {
	if hops < 1 || arc == 0 {
		return 2
	}
	est := int(float64(hops) * float64(space.Size()) / float64(arc))
	if est < 2 {
		est = 2
	}
	return est
}

// HarmonicDraw maps a uniform u in [0, 1) to a clockwise distance drawn from
// the harmonic pdf 1/(x ln n) over ring fractions x in [1/n, 1], scaled to
// the identifier space: inverse-CDF sampling with x = n^(u-1). The result is
// at least 1. This is the pure core of the Symphony draw, shared by the
// offline link builder and the live Cacophony geometry.
func HarmonicDraw(space id.Space, n float64, u float64) uint64 {
	x := math.Pow(n, u-1)
	d := uint64(x * float64(space.Size()))
	if d == 0 {
		d = 1
	}
	return d
}

// EstimateRingSize estimates the number of nodes in a ring from the arc
// spanned by the member at pos and its next `lookahead` successors, the
// cheap estimation protocol Symphony relies on: if x consecutive nodes span
// a fraction f of the ring, the ring holds about x/f nodes.
func EstimateRingSize(ring *core.Ring, pos, lookahead int) int {
	if ring.Len() == 1 {
		return 1
	}
	if lookahead < 1 {
		lookahead = 1
	}
	if lookahead >= ring.Len() {
		lookahead = ring.Len() - 1
	}
	space := ring.Space()
	arc := space.Clockwise(ring.IDAt(pos), ring.IDAt((pos+lookahead)%ring.Len()))
	if arc == 0 {
		return ring.Len()
	}
	return EstimateFromArc(space, lookahead, arc)
}

// Geometry is the Symphony link rule.
type Geometry struct {
	space id.Space
	// estimateWith, when positive, makes the geometry derive ring sizes
	// from the arc of this many successors instead of using the exact
	// count — the protocol a live Symphony deployment runs.
	estimateWith int
}

var _ core.Geometry = (*Geometry)(nil)

// New returns the Symphony geometry over space, using exact ring sizes.
func New(space id.Space) *Geometry {
	return &Geometry{space: space}
}

// NewEstimated returns the Symphony geometry with ring sizes estimated from
// the arcs of `lookahead` successors (Section 3.1 notes the estimation is
// cheap and accurate; this lets experiments quantify the claim).
func NewEstimated(space id.Space, lookahead int) *Geometry {
	return &Geometry{space: space, estimateWith: lookahead}
}

// ringSize returns the (exact or estimated) size of ring from the view of
// the member at pos.
func (g *Geometry) ringSize(ring *core.Ring, pos int) int {
	if g.estimateWith <= 0 {
		return ring.Len()
	}
	return EstimateRingSize(ring, pos, g.estimateWith)
}

// Name implements core.Geometry.
func (g *Geometry) Name() string { return "symphony" }

// Metric implements core.Geometry.
func (g *Geometry) Metric() core.Metric { return core.MetricClockwise }

// Distance implements core.Geometry.
func (g *Geometry) Distance(a, b id.ID) uint64 { return g.space.Clockwise(a, b) }

// BaseLinks implements core.Geometry: a successor link plus floor(log2(n))
// harmonic draws within the node's lowest-level ring. Symphony estimates n
// cheaply in a live deployment; the simulator uses the exact ring size,
// which the paper notes is an accurate, inexpensive estimate.
func (g *Geometry) BaseLinks(ring *core.Ring, node int, rng *rand.Rand) []int {
	return g.draw(ring, node, g.space.Size(), rng, true)
}

// MergeLinks implements core.Geometry: floor(log2(n_level)) harmonic draws
// over the merged ring, retaining only those closer than the node's
// lower-level successor, plus the new level's successor link when it too is
// closer (Section 3.1).
func (g *Geometry) MergeLinks(merged, _ *core.Ring, node int, bound uint64, rng *rand.Rand) []int {
	return g.draw(merged, node, bound, rng, false)
}

func (g *Geometry) draw(ring *core.Ring, node int, bound uint64, rng *rand.Rand, withSucc bool) []int {
	pos := ring.PosOfMember(node)
	if pos < 0 || ring.Len() == 1 {
		return nil
	}
	n := float64(g.ringSize(ring, pos))
	m := ring.IDAt(pos)
	k := int(math.Floor(math.Log2(n)))
	links := make([]int, 0, k+1)

	succDist := ring.SuccessorDistance(pos)
	if withSucc || succDist < bound {
		links = append(links, ring.Member(ring.NextPos(pos)))
	}
	for i := 0; i < k; i++ {
		for attempt := 0; attempt < maxDrawAttempts; attempt++ {
			d := HarmonicDraw(g.space, n, rng.Float64())
			target := ring.Owner(g.space.Add(m, d))
			if target == node {
				continue
			}
			if g.space.Clockwise(m, ring.IDAt(ring.PosOfMember(target))) >= bound {
				// Condition (b) rejects this draw; Symphony draws are
				// independent, so the link is simply not created.
				break
			}
			links = append(links, target)
			break
		}
	}
	return links
}

// Bound implements core.Geometry.
func (g *Geometry) Bound(own *core.Ring, node int, _ []id.ID) uint64 {
	pos := own.PosOfMember(node)
	if pos < 0 {
		return 0
	}
	return own.SuccessorDistance(pos)
}
