package lint

// checkFsyncBeforeAck enforces the fsync-on-ack contract of docs/STORAGE.md:
// a store handler's empty reply — transport.NewMessage(msgStore*, nil) — is
// a durability promise, so every such construction must be preceded, in the
// same function, by a call that reaches a durability barrier (a Sync/Flush-
// shaped primitive such as canonstore.Store.Sync) through the call graph.
// The barrier may sit behind helpers — the reachability bit is the
// ReachesSync summary computed to a fixpoint — but the ordering test is
// deliberately lexical: the barrier call must appear textually before the
// ack construction. That is conservative (a barrier issued after building
// the reply value but before returning it would be durable yet still
// reported), and the conservative fix — construct the ack last — is also
// the readable one, so the check does not chase that precision.
var checkFsyncBeforeAck = Check{
	Name:      "fsyncbeforeack",
	Doc:       "store acks (NewMessage(msgStore*, nil)) constructed with no preceding Sync/Flush-reaching call (lost-write class)",
	RunModule: runFsyncBeforeAck,
}

func runFsyncBeforeAck(mp *ModulePass) {
	isSync := func(n *FuncNode) bool { return n.IsSyncPrim }
	for _, n := range mp.Graph.SortedNodes() {
		for _, ack := range n.AckSites {
			satisfied := false
			for _, e := range n.Out {
				// Deferred barriers count: a handler's defers run before its
				// reply is written to the wire.
				if e.Kind != EdgeCall && e.Kind != EdgeDefer {
					continue
				}
				if e.Pos >= ack.Pos {
					continue
				}
				if e.Callee.IsSyncPrim || e.Callee.Sum.ReachesSync {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			chain := []string{mp.Graph.frame(n, ack.Pos)}
			if tail := mp.Graph.Chain(n, summaryKinds, isSync); tail != nil {
				// A barrier is reachable but only after the ack: show it.
				chain = append(chain, tail[1:]...)
			}
			mp.Report(ack.Pos, chain,
				"%s ack constructed without a preceding durability barrier: no Sync/Flush-reaching call before it in %s; fsync before acknowledging a store",
				ack.Msg, n.Name)
		}
	}
}
