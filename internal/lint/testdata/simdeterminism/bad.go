// Package simdeterminism is a canonvet fixture: the lint test registers this
// package as seed-reproducible (Config.SimPackages), so wall-clock reads and
// global-RNG draws must be flagged.
package simdeterminism

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock inside a simulation package.
func stamp() time.Time {
	return time.Now() // want `time.Now in pure-simulation package`
}

// settle sleeps, making the run time-dependent.
func settle() {
	time.Sleep(time.Millisecond) // want `time.Sleep in pure-simulation package`
}

// jitter draws from the global source, unreproducible from a seed.
func jitter() float64 {
	return rand.Float64() // want `rand.Float64 draws from math/rand's shared global source`
}

// suppressedStamp proves the pragma escape hatch works here too.
func suppressedStamp() time.Time {
	//canonvet:ignore simdeterminism -- fixture: prove the pragma suppresses the line below
	return time.Now()
}
