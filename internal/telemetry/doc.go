// Package telemetry is the observability core of the live Canon node: a
// lock-sharded metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus text exposition, and distributed route tracing — a compact
// trace context carried hop by hop through lookup messages so the paper's
// structural guarantees (intra-domain path locality, inter-domain proxy
// convergence, Section 3.2) become observable facts on a running cluster
// instead of simulation-only assertions.
//
// The package depends only on the standard library and is safe for heavily
// concurrent use: metric handles are cheap to cache and every mutation is a
// single atomic operation, so instrumenting a hot RPC path costs
// nanoseconds.
//
// # Registry
//
// Registry is the container: Counter, Gauge and Histogram get-or-create
// handles keyed by name plus sorted labels, so repeated registrations from
// independent call sites resolve to the same series. WritePrometheus (or
// Handler, for HTTP) renders every series in Prometheus text format; canond
// serves it at /metrics. Series names used by this module are declared as
// constants next to their instrumentation (see internal/transport and
// internal/netnode) — a canonvet rule keeps them greppable.
//
// # Route traces
//
// Trace and Span record one lookup's per-hop evidence: node, domain, the
// routing level each hop was taken at, route-arounds, and the terminal
// owner. Spans piggyback on lookup RPCs (see internal/netnode), costing no
// extra messages; completed traces land in a TraceStore ring buffer that
// canond serves at /debug/trace/. On the binary wire spans travel in the
// compact encoding of docs/WIRE.md §4.
package telemetry
