package experiments

import (
	"fmt"
	"math/rand"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/balance"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/metrics"
)

// Variants compares every Canonical construction of Section 3 against its
// flat version: average degree and average routing hops at one network size.
func Variants(cfg Config, n, levels int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Section 3 variants: degree and hops, %d nodes, %d levels", n, levels),
		XLabel: "row",
	}
	kinds := []canon.Kind{canon.Chord, canon.NondeterministicChord, canon.Symphony, canon.Kademlia, canon.CAN}
	degFlat := &metrics.Series{Name: "flat degree"}
	degHier := &metrics.Series{Name: "canonical degree"}
	hopsFlat := &metrics.Series{Name: "flat hops"}
	hopsHier := &metrics.Series{Name: "canonical hops"}
	for i, kind := range kinds {
		flat, err := buildHierNet(cfg, kind, n, 1)
		if err != nil {
			return nil, err
		}
		hier, err := buildHierNet(cfg, kind, n, levels)
		if err != nil {
			return nil, err
		}
		x := float64(i + 1)
		degFlat.Append(x, flat.AvgDegree())
		degHier.Append(x, hier.AvgDegree())
		hopsFlat.Append(x, avgHops(flat, cfg.RoutePairs, cfg.Seed+11))
		hopsHier.Append(x, avgHops(hier, cfg.RoutePairs, cfg.Seed+11))
		tbl.AddNote("row %d: %s -> %s", i+1, kind.String(), kind.CanonicalName())
	}
	tbl.AddSeries(degFlat)
	tbl.AddSeries(degHier)
	tbl.AddSeries(hopsFlat)
	tbl.AddSeries(hopsHier)
	return tbl, nil
}

// Lookahead quantifies Section 3.1's claim that greedy routing with a
// one-step lookahead cuts Symphony's (and Cacophony's) hop count by about
// 40% in practice.
func Lookahead(cfg Config, sizes []int, levels int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Section 3.1: Symphony lookahead routing (%d levels)", levels),
		XLabel: "nodes",
	}
	plain := &metrics.Series{Name: "greedy hops"}
	ahead := &metrics.Series{Name: "lookahead hops"}
	saving := &metrics.Series{Name: "saving fraction"}
	for _, n := range sizes {
		nw, err := buildHierNet(cfg, canon.Symphony, n, levels)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var ps, as metrics.Stream
		for i := 0; i < cfg.RoutePairs; i++ {
			from := rng.Intn(nw.Len())
			key := nw.Space().Random(rng)
			r1 := nw.RouteToKey(from, key)
			r2 := nw.RouteLookahead(from, key)
			if r1.Success && r2.Success {
				ps.Add(float64(r1.Hops()))
				as.Add(float64(r2.Hops()))
			}
		}
		plain.Append(float64(n), ps.Mean())
		ahead.Append(float64(n), as.Mean())
		saving.Append(float64(n), 1-as.Mean()/ps.Mean())
	}
	tbl.AddSeries(plain)
	tbl.AddSeries(ahead)
	tbl.AddSeries(saving)
	return tbl, nil
}

// Balance reproduces the Section 4.3 comparison: the max/min partition-size
// ratio under random ID selection (Theta(log^2 n)), the bisection scheme
// (small constant) and the hierarchical prefix-balanced variant.
func Balance(cfg Config, sizes []int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	space := id.DefaultSpace()
	tbl := &metrics.Table{
		Title:  "Section 4.3: partition balance (max/min partition ratio)",
		XLabel: "nodes",
	}
	randSeries := &metrics.Series{Name: "random ids"}
	bisectSeries := &metrics.Series{Name: "bisection"}
	hierSeries := &metrics.Series{Name: "hierarchical"}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		ids, err := balance.RandomIDs(rng, space, n)
		if err != nil {
			return nil, err
		}
		randSeries.Append(float64(n), balance.PartitionRatio(space, ids))

		b := balance.NewBisector(space)
		for i := 0; i < n; i++ {
			if _, err := b.Join(rng); err != nil {
				return nil, err
			}
		}
		bisectSeries.Append(float64(n), balance.PartitionRatio(space, b.IDs()))

		tree, err := hierarchy.Balanced(2, cfg.Fanout)
		if err != nil {
			return nil, err
		}
		leaves := tree.Leaves()
		h := balance.NewHierarchical(space, 5)
		hIDs := make([]id.ID, 0, n)
		for i := 0; i < n; i++ {
			v, err := h.Join(rng, leaves[i%len(leaves)])
			if err != nil {
				return nil, err
			}
			hIDs = append(hIDs, v)
		}
		hierSeries.Append(float64(n), balance.PartitionRatio(space, hIDs))
	}
	tbl.AddSeries(randSeries)
	tbl.AddSeries(bisectSeries)
	tbl.AddSeries(hierSeries)
	return tbl, nil
}

// Caching evaluates the Section 4.2 design: hierarchical proxy caching under
// a domain-local Zipf workload, comparing hit rates and hop costs of the
// level-aware replacement policy against plain LRU, and against no cache.
func Caching(cfg Config, n, capacity, keys, queries int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Section 4.2: caching, %d nodes, capacity %d, %d keys", n, capacity, keys),
		XLabel: "row",
	}
	hitRate := &metrics.Series{Name: "hit rate"}
	avgHopsSeries := &metrics.Series{Name: "avg hops"}
	policies := []struct {
		name   string
		policy int // 0 = none, 1 = level-aware, 2 = LRU
	}{
		{"no cache", 0},
		{"level-aware", 1},
		{"lru", 2},
	}
	for i, p := range policies {
		rate, hops, err := cachingRun(cfg, n, capacity, keys, queries, p.policy)
		if err != nil {
			return nil, err
		}
		hitRate.Append(float64(i+1), rate)
		avgHopsSeries.Append(float64(i+1), hops)
		tbl.AddNote("row %d: %s", i+1, p.name)
	}
	tbl.AddSeries(hitRate)
	tbl.AddSeries(avgHopsSeries)
	return tbl, nil
}

func cachingRun(cfg Config, n, capacity, keys, queries, policy int) (hitRate, avgHopCount float64, err error) {
	nw, err := buildHierNet(cfg, canon.Chord, n, 3)
	if err != nil {
		return 0, 0, err
	}
	st := nw.NewStore()
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	keyIDs := make([]canon.ID, keys)
	for i := range keyIDs {
		keyIDs[i] = nw.Space().Random(rng)
		if _, err := st.Put(rng.Intn(n), keyIDs[i], []byte("v"), nil, nil); err != nil {
			return 0, 0, err
		}
	}
	var c *canon.Cache
	switch policy {
	case 1:
		c = nw.NewCache(st, capacity, canon.CachePolicyLevelAware)
	case 2:
		c = nw.NewCache(st, capacity, canon.CachePolicyLRU)
	}
	// Domain-local workload: queries come from one level-1 domain, keys are
	// Zipf-popular.
	dom := nw.NodeDomain(0).AncestorAt(1)
	members := nw.NodesIn(dom)
	var hits, hops, total float64
	for i := 0; i < queries; i++ {
		origin := members[rng.Intn(len(members))]
		key := keyIDs[int(float64(keys)*rng.Float64()*rng.Float64())]
		if c == nil {
			res := st.Get(origin, key)
			if res.Found {
				hops += float64(res.Hops)
				total++
			}
			continue
		}
		res := c.Get(origin, key)
		if res.Found {
			if res.CacheHit {
				hits++
			}
			hops += float64(res.Hops)
			total++
		}
	}
	if total == 0 {
		return 0, 0, nil
	}
	return hits / total, hops / total, nil
}
