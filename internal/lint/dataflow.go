package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is canonvet v3's value-flow engine: an intraprocedural,
// SSA-lite def-use/escape analysis over the loader's typed ASTs, with
// interprocedural escape/retention summaries propagated over the call
// graph's fixpoint machinery. It feeds the poolescape, publishrace and
// durabilityerr checks (atomicmix rides the graph walker's access log
// instead — see callgraph.go).
//
// The abstraction is a cell per local pointer-ish value: assignments share
// cells (aliasing is by construction, not by solving), branches that fall
// through share the caller's environment (so facts union over paths —
// exactly the "on any path" semantics the checks want), and branches that
// terminate run on a cloned environment so their effects die with them.
// Loops are walked once; facts established in a body persist after it, but
// back-edge-only orderings are missed (a documented under-approximation).
//
// Interprocedural facts are four monotone bits per function (see Summary):
// ReturnsPooled, and per-parameter Puts/Retains/Publishes bitmasks. They
// are computed by re-running the intraprocedural scan to a fixpoint; Go and
// Ref edges deliberately propagate nothing, matching the v2 summary
// discipline (DESIGN.md).

// FlowFinding is one dataflow diagnostic produced by the value-flow pass,
// later filtered by check name and fed through the normal report sink.
type FlowFinding struct {
	Check string
	Pos   token.Pos
	Chain []string
	Msg   string
}

// flowState caches the findings pass so the four checks share one run.
type flowState struct {
	findings []FlowFinding
	summed   bool
}

// flowCell is the abstract state of one tracked value.
type flowCell struct {
	// pooled marks values obtained from a sync.Pool.Get (directly or via a
	// ReturnsPooled callee) and not yet returned.
	pooled bool
	// direct marks cells standing for a variable's own storage (created at
	// &v), where rebinding the variable is itself a write to the published
	// memory.
	direct bool
	// paramIdx is the declaring parameter's index, or -1.
	paramIdx int

	name    string
	src     token.Pos
	srcDesc string

	putPos   token.Pos
	putDesc  string
	deferPut bool

	pubPos  token.Pos
	pubDesc string

	// one-shot reporting latches, so a linear path reports each defect
	// class once per value.
	useReported, escReported, pubReported, dpReported bool
}

// label names the value for diagnostics: the bound variable when there is
// one, the origin description otherwise.
func (c *flowCell) label() string {
	if c.name != "" {
		return c.name
	}
	if c.srcDesc != "" {
		return c.srcDesc
	}
	return "value"
}

// errCell tracks one pending durability error: produced, not yet read.
type errCell struct {
	pos    token.Pos
	callee string
	read   bool
}

// flowWalker runs the value-flow scan over one function body.
type flowWalker struct {
	g      *CallGraph
	pkg    *Package
	fn     *FuncNode
	record bool

	env  map[*types.Var]*flowCell
	errs map[*types.Var]*errCell

	// errDepth counts enclosing error-path branches (if err != nil bodies);
	// deferDepth counts enclosing deferred regions. Both relax the
	// durability-discard rule (secondary errors on error/cleanup paths are
	// idiomatic best-effort).
	errDepth   int
	deferDepth int

	// summary accumulators (always computed; findings only when record).
	puts, retains, publishes uint64
	returnsPooled            bool

	findings []FlowFinding
}

func newFlowWalker(g *CallGraph, n *FuncNode, record bool) *flowWalker {
	fw := &flowWalker{
		g: g, pkg: n.pkgRef, fn: n, record: record,
		env:  make(map[*types.Var]*flowCell),
		errs: make(map[*types.Var]*errCell),
	}
	if n.ftype != nil && n.ftype.Params != nil {
		i := 0
		for _, field := range n.ftype.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if v, ok := fw.pkg.Info.Defs[name].(*types.Var); ok && v != nil {
					if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
						fw.env[v] = &flowCell{
							paramIdx: i, name: name.Name,
							src: name.Pos(), srcDesc: "parameter " + name.Name,
						}
					}
				}
				i++
			}
		}
	}
	return fw
}

// ComputeFlowSummaries iterates the intraprocedural scan over every
// module-local body until the four flow-summary bits stabilize. The lattice
// is finite (bits and 64-wide masks) and every transfer is a bitwise OR, so
// the usual Kleene argument bounds the iteration count.
func (g *CallGraph) ComputeFlowSummaries() {
	if g.flow == nil {
		g.flow = &flowState{}
	}
	if g.flow.summed {
		return
	}
	g.flow.summed = true
	nodes := g.SortedNodes()
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.body == nil || n.pkgRef == nil {
				continue
			}
			fw := newFlowWalker(g, n, false)
			fw.walk()
			if fw.returnsPooled && !n.Sum.ReturnsPooled {
				n.Sum.ReturnsPooled = true
				changed = true
			}
			if fw.puts&^n.Sum.PutsParam != 0 {
				n.Sum.PutsParam |= fw.puts
				changed = true
			}
			if fw.retains&^n.Sum.RetainsParam != 0 {
				n.Sum.RetainsParam |= fw.retains
				changed = true
			}
			if fw.publishes&^n.Sum.PublishesParam != 0 {
				n.Sum.PublishesParam |= fw.publishes
				changed = true
			}
		}
	}
}

// FlowFindings runs (once, cached) the recording pass over every
// module-local non-test body and returns the dataflow diagnostics sorted by
// position. Summaries are computed first if the caller has not already.
func (g *CallGraph) FlowFindings() []FlowFinding {
	if g.flow != nil && g.flow.findings != nil {
		return g.flow.findings
	}
	g.ComputeFlowSummaries()
	seen := make(map[string]bool)
	out := []FlowFinding{}
	for _, n := range g.SortedNodes() {
		if n.body == nil || n.pkgRef == nil || n.InTestFile {
			continue
		}
		fw := newFlowWalker(g, n, true)
		fw.walk()
		for _, f := range fw.findings {
			key := fmt.Sprintf("%s|%d|%s", f.Check, f.Pos, f.Msg)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Msg < out[j].Msg
	})
	g.flow.findings = out
	return out
}

// evidence renders one dataflow-chain frame: "what happened (file:line)".
func (g *CallGraph) evidence(desc string, pos token.Pos) string {
	p := g.Fset.Position(pos)
	if !p.IsValid() {
		return desc
	}
	return fmt.Sprintf("%s (%s:%d)", desc, shortPath(p.Filename), p.Line)
}

func (fw *flowWalker) walk() {
	if fw.fn.body != nil {
		fw.stmts(fw.fn.body.List)
	}
}

func (fw *flowWalker) finding(check string, pos token.Pos, chain []string, format string, args ...any) {
	if !fw.record {
		return
	}
	fw.findings = append(fw.findings, FlowFinding{
		Check: check, Pos: pos, Chain: chain, Msg: fmt.Sprintf(format, args...),
	})
}

func (fw *flowWalker) durScope() bool {
	return fw.g.Cfg.DurabilityPackages[fw.pkg.Path] && !fw.fn.InTestFile
}

// obj resolves an identifier to its variable object in this unit.
func (fw *flowWalker) obj(id *ast.Ident) *types.Var {
	if v, ok := fw.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := fw.pkg.Info.Defs[id].(*types.Var)
	return v
}

// rootIdent unwraps selector/star/index/slice/paren chains to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootCell returns the tracked cell behind e's base identifier, or nil.
func (fw *flowWalker) rootCell(e ast.Expr) *flowCell {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	v := fw.obj(id)
	if v == nil {
		return nil
	}
	return fw.env[v]
}

// cloneCells deep-copies an environment preserving aliasing (two variables
// sharing a cell keep sharing its clone).
func cloneCells(env map[*types.Var]*flowCell) map[*types.Var]*flowCell {
	out := make(map[*types.Var]*flowCell, len(env))
	copies := make(map[*flowCell]*flowCell, len(env))
	for v, c := range env {
		cc, ok := copies[c]
		if !ok {
			dup := *c
			cc = &dup
			copies[c] = cc
		}
		out[v] = cc
	}
	return out
}

func cloneErrs(errs map[*types.Var]*errCell) map[*types.Var]*errCell {
	out := make(map[*types.Var]*errCell, len(errs))
	for v, c := range errs {
		dup := *c
		out[v] = &dup
	}
	return out
}

// branch walks one conditional arm. Terminating arms run on cloned state so
// their effects die with them; fall-through arms share the environment,
// which unions facts over paths. errPath relaxes durability-discard inside.
func (fw *flowWalker) branch(body []ast.Stmt, errPath bool) {
	if errPath {
		fw.errDepth++
	}
	if terminates(body) {
		savedEnv, savedErrs := fw.env, fw.errs
		fw.env, fw.errs = cloneCells(fw.env), cloneErrs(fw.errs)
		fw.stmts(body)
		fw.env, fw.errs = savedEnv, savedErrs
	} else {
		fw.stmts(body)
	}
	if errPath {
		fw.errDepth--
	}
}

// errCond classifies an if condition against the error-path allowance:
// 1 when the then-arm is the error path (x != nil on an error), 2 when the
// else-arm is (x == nil), 0 otherwise.
func (fw *flowWalker) errCond(cond ast.Expr) int {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return 0
	}
	var other ast.Expr
	switch {
	case isNilIdent(be.Y):
		other = be.X
	case isNilIdent(be.X):
		other = be.Y
	default:
		return 0
	}
	if !isErrorType(typeOf(fw.pkg.Info, other)) {
		return 0
	}
	switch be.Op {
	case token.NEQ:
		return 1
	case token.EQL:
		return 2
	}
	return 0
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func (fw *flowWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		fw.stmt(s)
	}
}

func (fw *flowWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		fw.exprStmt(st.X)
	case *ast.AssignStmt:
		fw.assign(st)
	case *ast.DeferStmt:
		fw.deferStmt(st)
	case *ast.GoStmt:
		fw.goStmt(st)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c := fw.eval(r)
			if c != nil {
				fw.use(c, r.Pos())
				if c.pooled && !c.putPos.IsValid() && !c.deferPut {
					fw.returnsPooled = true
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					c := fw.eval(val)
					if c != nil && i < len(vs.Names) {
						fw.bind(vs.Names[i], c)
					}
				}
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			fw.stmt(st.Init)
		}
		ep := fw.errCond(st.Cond)
		fw.eval(st.Cond)
		fw.branch(st.Body.List, ep == 1)
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				fw.branch(e.List, ep == 2)
			default:
				fw.branch([]ast.Stmt{st.Else}, ep == 2)
			}
		}
	case *ast.BlockStmt:
		fw.stmts(st.List)
	case *ast.LabeledStmt:
		fw.stmt(st.Stmt)
	case *ast.ForStmt:
		if st.Init != nil {
			fw.stmt(st.Init)
		}
		if st.Cond != nil {
			fw.eval(st.Cond)
		}
		fw.branch(st.Body.List, false)
		if st.Post != nil {
			fw.stmt(st.Post)
		}
	case *ast.RangeStmt:
		fw.eval(st.X)
		fw.branch(st.Body.List, false)
	case *ast.SwitchStmt:
		if st.Init != nil {
			fw.stmt(st.Init)
		}
		if st.Tag != nil {
			fw.eval(st.Tag)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					fw.eval(e)
				}
				fw.branch(cc.Body, false)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			fw.stmt(st.Init)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				fw.branch(cc.Body, false)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					fw.stmt(cc.Comm)
				}
				fw.branch(cc.Body, false)
			}
		}
	case *ast.SendStmt:
		fw.eval(st.Chan)
		if c := fw.eval(st.Value); c != nil {
			fw.retainEvent(c, st.Value.Pos(), "sent on a channel")
		}
	case *ast.IncDecStmt:
		fw.writeThrough(st.X, st.X.Pos())
	}
}

// exprStmt handles a bare expression statement: the durability-discard rule
// (an error-returning durability call whose result vanishes) plus the
// normal evaluation.
func (fw *flowWalker) exprStmt(e ast.Expr) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && fw.durScope() {
		if desc, isDur := fw.durabilityCallee(call); isDur && fw.errDepth == 0 && fw.deferDepth == 0 {
			fw.finding("durabilityerr", call.Pos(),
				[]string{fw.g.evidence("durability call "+desc+" returns an error", call.Pos()),
					fw.g.evidence("result discarded (bare call)", call.Pos())},
				"error result of durability call %s is discarded in %s before reaching the latch/ack site",
				desc, fw.fn.Name)
		}
	}
	fw.eval(e)
}

// assign evaluates RHS values, applies the durability error bookkeeping,
// and binds/writes each LHS.
func (fw *flowWalker) assign(st *ast.AssignStmt) {
	cells := make([]*flowCell, len(st.Lhs))
	if len(st.Rhs) == len(st.Lhs) {
		for i, r := range st.Rhs {
			cells[i] = fw.eval(r)
		}
	} else {
		for _, r := range st.Rhs {
			fw.eval(r)
		}
	}

	// Durability: a single call RHS whose callee is a durability primitive
	// puts the error in the last LHS slot.
	durIdx, durDesc, durPos := -1, "", token.NoPos
	if fw.durScope() && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if desc, isDur := fw.durabilityCallee(call); isDur {
				durIdx, durDesc, durPos = len(st.Lhs)-1, desc, call.Pos()
			}
		}
	}

	for i, lhs := range st.Lhs {
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if !isIdent {
			fw.writeThrough(lhs, lhs.Pos())
			if cells[i] != nil {
				fw.heapStore(lhs, cells[i])
			}
			continue
		}
		if id.Name == "_" {
			if i == durIdx && fw.errDepth == 0 && fw.deferDepth == 0 {
				fw.finding("durabilityerr", durPos,
					[]string{fw.g.evidence("durability call "+durDesc+" returns an error", durPos),
						fw.g.evidence("result assigned to the blank identifier", id.Pos())},
					"error result of durability call %s is discarded in %s before reaching the latch/ack site",
					durDesc, fw.fn.Name)
			}
			continue
		}
		v := fw.obj(id)
		if v == nil {
			continue
		}
		// Shadow rule: plain-assigning over a pending unread durability
		// error loses it.
		if st.Tok == token.ASSIGN {
			if ec, ok := fw.errs[v]; ok && !ec.read {
				fw.finding("durabilityerr", id.Pos(),
					[]string{fw.g.evidence("durability error from "+ec.callee+" produced", ec.pos),
						fw.g.evidence("overwritten before being read", id.Pos())},
					"durability error from %s is shadowed before use in %s",
					ec.callee, fw.fn.Name)
			}
		}
		delete(fw.errs, v)
		if i == durIdx {
			fw.errs[v] = &errCell{pos: durPos, callee: durDesc}
		}
		// Rebinding a direct (published-storage) variable is a write to the
		// published memory.
		if c := fw.env[v]; c != nil && c.direct {
			fw.pubWrite(c, id.Pos())
		}
		fw.bind(id, cells[i])
	}
}

// bind points a variable at a cell (aliasing by sharing), or clears it.
func (fw *flowWalker) bind(id *ast.Ident, c *flowCell) {
	v := fw.obj(id)
	if v == nil {
		return
	}
	if c == nil {
		delete(fw.env, v)
		return
	}
	if c.name == "" {
		c.name = id.Name
	}
	fw.env[v] = c
	// Binding to a package-level variable is itself a heap store.
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		fw.retainEvent(c, id.Pos(), "stored to package-level variable "+id.Name)
	}
}

// writeThrough flags a store through a tracked pointer: after Put it is a
// use-after-put, after publish it is a post-publish mutation.
func (fw *flowWalker) writeThrough(lhs ast.Expr, pos token.Pos) {
	c := fw.rootCell(lhs)
	if c == nil {
		return
	}
	fw.use(c, pos)
	fw.pubWrite(c, pos)
}

func (fw *flowWalker) pubWrite(c *flowCell, pos token.Pos) {
	if !c.pubPos.IsValid() || c.pubReported {
		return
	}
	c.pubReported = true
	fw.finding("publishrace", pos,
		[]string{fw.g.evidence("value "+c.label()+" created", c.src),
			fw.g.evidence(c.pubDesc, c.pubPos),
			fw.g.evidence("written after publication", pos)},
		"value %q is written after being published via %s in %s; published snapshots must be immutable",
		c.label(), c.pubDesc, fw.fn.Name)
}

// heapStore flags storing a tracked value through an lvalue whose base is
// declared outside this function (receiver, parameter, global, captured):
// the value outlives the frame.
func (fw *flowWalker) heapStore(lhs ast.Expr, c *flowCell) {
	id := rootIdent(lhs)
	if id == nil || fw.fn.body == nil {
		return
	}
	v := fw.obj(id)
	if v == nil {
		return
	}
	if v.Pos() >= fw.fn.body.Pos() && v.Pos() < fw.fn.body.End() {
		return // local aggregate; the store does not outlive the frame
	}
	fw.retainEvent(c, lhs.Pos(), "stored to heap location "+exprString(lhs))
}

// use flags a read/deref of a value already returned to its pool.
func (fw *flowWalker) use(c *flowCell, pos token.Pos) {
	if !c.putPos.IsValid() || c.useReported {
		return
	}
	c.useReported = true
	fw.finding("poolescape", pos,
		[]string{fw.g.evidence("pooled value "+c.label()+" obtained", c.src),
			fw.g.evidence("returned to the pool by "+c.putDesc, c.putPos),
			fw.g.evidence("used after Put", pos)},
		"pooled value %q is used after being returned to the pool in %s",
		c.label(), fw.fn.Name)
}

// putEvent records a Put of the value: double-puts are reported, parameter
// puts feed the PutsParam summary, deferred puts do not block later uses.
func (fw *flowWalker) putEvent(c *flowCell, pos token.Pos, desc string) {
	if c == nil {
		return
	}
	if c.paramIdx >= 0 && c.paramIdx < 64 {
		fw.puts |= 1 << uint(c.paramIdx)
	}
	if (c.putPos.IsValid() || c.deferPut) && !c.dpReported {
		c.dpReported = true
		first := c.putPos
		if !first.IsValid() {
			first = c.src
		}
		fw.finding("poolescape", pos,
			[]string{fw.g.evidence("pooled value "+c.label()+" obtained", c.src),
				fw.g.evidence("first returned to the pool", first),
				fw.g.evidence("returned to the pool again by "+desc, pos)},
			"pooled value %q may be returned to the pool twice in %s",
			c.label(), fw.fn.Name)
	}
	if fw.deferDepth > 0 {
		c.deferPut = true
		return
	}
	if !c.putPos.IsValid() {
		c.putPos, c.putDesc = pos, desc
	}
}

// retainEvent records an escape of the value to memory that outlives the
// frame: pooled values report, parameters feed the RetainsParam summary.
func (fw *flowWalker) retainEvent(c *flowCell, pos token.Pos, how string) {
	if c == nil {
		return
	}
	if c.paramIdx >= 0 && c.paramIdx < 64 {
		fw.retains |= 1 << uint(c.paramIdx)
	}
	if c.pooled && !c.escReported {
		c.escReported = true
		fw.finding("poolescape", pos,
			[]string{fw.g.evidence("pooled value "+c.label()+" obtained", c.src),
				fw.g.evidence(how, pos)},
			"pooled value %q escapes its request scope (%s) in %s",
			c.label(), how, fw.fn.Name)
	}
}

// publishEvent marks the value immutable-from-here: it flowed into an
// atomic pointer store (or a publish-summary callee). Publishing a pooled
// value is also an escape.
func (fw *flowWalker) publishEvent(c *flowCell, pos token.Pos, desc string) {
	if c == nil {
		return
	}
	if c.paramIdx >= 0 && c.paramIdx < 64 {
		fw.publishes |= 1 << uint(c.paramIdx)
	}
	if c.pooled {
		fw.retainEvent(c, pos, desc)
	}
	if !c.pubPos.IsValid() {
		c.pubPos, c.pubDesc = pos, desc
	}
}

// captureScan flags tracked values referenced inside a function literal
// that outlives the frame (goroutine bodies, stored closures). Durability
// errors captured by a closure are conservatively considered read.
func (fw *flowWalker) captureScan(lit *ast.FuncLit, how string) {
	if lit.Body == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := fw.obj(id)
		if v == nil {
			return true
		}
		if c, ok := fw.env[v]; ok {
			fw.retainEvent(c, id.Pos(), how)
		}
		if ec, ok := fw.errs[v]; ok {
			ec.read = true
		}
		return true
	})
}

func (fw *flowWalker) deferStmt(st *ast.DeferStmt) {
	fw.deferDepth++
	defer func() { fw.deferDepth-- }()
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		// Deferred literal: runs in this frame at exit — walk inline on the
		// shared environment (puts inside are deferred puts).
		if lit.Body != nil {
			fw.stmts(lit.Body.List)
		}
		for _, a := range st.Call.Args {
			fw.eval(a)
		}
		return
	}
	fw.callExpr(st.Call)
}

func (fw *flowWalker) goStmt(st *ast.GoStmt) {
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		fw.captureScan(lit, "captured by a goroutine")
	}
	for _, a := range st.Call.Args {
		if c := fw.eval(a); c != nil {
			fw.retainEvent(c, a.Pos(), "passed to a goroutine")
		}
	}
}

// eval computes the cell (if any) an expression denotes, walking nested
// calls and literals on the way. Reads through a tracked pointer mark uses;
// reads of pending durability errors mark them consumed.
func (fw *flowWalker) eval(e ast.Expr) *flowCell {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Ident:
		v := fw.obj(x)
		if v == nil {
			return nil
		}
		if ec, ok := fw.errs[v]; ok {
			ec.read = true
		}
		return fw.env[v]
	case *ast.ParenExpr:
		return fw.eval(x.X)
	case *ast.TypeAssertExpr:
		return fw.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			inner := ast.Unparen(x.X)
			switch in := inner.(type) {
			case *ast.CompositeLit:
				fw.evalCompositeLit(in)
				return &flowCell{paramIdx: -1, src: x.Pos(), srcDesc: "composite literal"}
			case *ast.Ident:
				v := fw.obj(in)
				if v == nil {
					return nil
				}
				c := fw.env[v]
				if c == nil {
					c = &flowCell{paramIdx: -1, direct: true, name: in.Name, src: in.Pos(), srcDesc: "variable " + in.Name}
					fw.env[v] = c
				}
				return c
			}
			fw.eval(x.X)
			return nil
		}
		fw.eval(x.X)
		return nil
	case *ast.StarExpr:
		if c := fw.rootCell(x.X); c != nil {
			fw.use(c, x.Pos())
		}
		fw.eval(x.X)
		return nil
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := fw.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return nil
			}
		}
		if c := fw.rootCell(x.X); c != nil {
			fw.use(c, x.Pos())
		}
		fw.eval(x.X)
		return nil
	case *ast.IndexExpr:
		if c := fw.rootCell(x.X); c != nil {
			fw.use(c, x.Pos())
		}
		fw.eval(x.X)
		fw.eval(x.Index)
		return nil
	case *ast.SliceExpr:
		if c := fw.rootCell(x.X); c != nil {
			fw.use(c, x.Pos())
		}
		fw.eval(x.X)
		fw.eval(x.Low)
		fw.eval(x.High)
		fw.eval(x.Max)
		return nil
	case *ast.BinaryExpr:
		fw.eval(x.X)
		fw.eval(x.Y)
		return nil
	case *ast.KeyValueExpr:
		fw.eval(x.Value)
		return nil
	case *ast.CompositeLit:
		fw.evalCompositeLit(x)
		return nil
	case *ast.FuncLit:
		// A literal in value position outlives the expression: captures
		// escape. (Immediately-invoked and deferred literals are handled at
		// their call sites and never reach here.)
		fw.captureScan(x, "captured by a closure")
		return nil
	case *ast.CallExpr:
		return fw.callExpr(x)
	}
	return nil
}

// evalCompositeLit walks element expressions. Placing a tracked pointer
// inside a composite literal is deliberately NOT retention — constructing a
// response around a request body is ownership transfer, and flagging it
// would drown the checks in false positives (DESIGN.md).
func (fw *flowWalker) evalCompositeLit(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		fw.eval(el)
	}
}

// callExpr handles one call: sync.Pool Get/Put, atomic.Pointer publishes,
// summary-driven parameter effects, and plain uses.
func (fw *flowWalker) callExpr(call *ast.CallExpr) *flowCell {
	fun := ast.Unparen(call.Fun)

	// Immediately-invoked literal: runs now, in this frame — walk inline.
	if lit, ok := fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			fw.eval(a)
		}
		if lit.Body != nil {
			fw.stmts(lit.Body.List)
		}
		return nil
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		recvType := typeOf(fw.pkg.Info, sel.X)
		// sync.Pool.Get / sync.Pool.Put.
		if IsNamed(recvType, "sync", "Pool") {
			switch sel.Sel.Name {
			case "Get":
				fw.eval(sel.X)
				return &flowCell{
					pooled: true, paramIdx: -1,
					src: call.Pos(), srcDesc: exprString(sel.X) + ".Get result",
				}
			case "Put":
				fw.eval(sel.X)
				if len(call.Args) == 1 {
					fw.putEvent(fw.eval(call.Args[0]), call.Pos(), "sync.Pool.Put")
				}
				return nil
			}
		}
		// atomic.Pointer publish: Store(v), Swap(v), CompareAndSwap(old, new).
		if IsNamed(recvType, "sync/atomic", "Pointer") {
			newArg := -1
			switch sel.Sel.Name {
			case "Store", "Swap":
				newArg = 0
			case "CompareAndSwap":
				newArg = 1
			}
			if newArg >= 0 && newArg < len(call.Args) {
				fw.eval(sel.X)
				desc := "atomic store " + exprString(sel.X) + "." + sel.Sel.Name
				for i, a := range call.Args {
					c := fw.eval(a)
					if i == newArg {
						fw.publishEvent(c, call.Pos(), desc)
					} else if c != nil {
						fw.use(c, a.Pos())
					}
				}
				return nil
			}
		}
	}

	// Builtins that allocate.
	if id, ok := fun.(*ast.Ident); ok && fw.pkg.Info.Uses[id] == nil && fw.pkg.Info.Defs[id] == nil {
		if id.Name == "new" {
			for _, a := range call.Args {
				fw.eval(a)
			}
			return &flowCell{paramIdx: -1, src: call.Pos(), srcDesc: "new(...) result"}
		}
	}

	// Resolve the callee and its flow summary.
	obj := fw.calleeFunc(call)
	var sig *types.Signature
	var puts, retains, publishes uint64
	var retPooled bool
	name := ""
	if obj != nil {
		sig, _ = obj.Type().(*types.Signature)
		name = obj.Name()
		puts, retains, publishes, retPooled = fw.g.flowBits(fw.g.Nodes[funcID(obj)])
	} else if id, ok := fun.(*ast.Ident); ok {
		name = id.Name
	} else if sel, ok := fun.(*ast.SelectorExpr); ok {
		name = sel.Sel.Name
	}
	publishName := strings.HasPrefix(name, "publish") || strings.HasPrefix(name, "Publish")

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// Method receiver: a call through a tracked pointer is a use.
		if c := fw.rootCell(sel.X); c != nil {
			fw.use(c, call.Pos())
		}
		fw.eval(sel.X)
	}

	for i, a := range call.Args {
		c := fw.eval(a)
		if c == nil {
			continue
		}
		bit := paramBit(sig, i)
		switch {
		case bit >= 0 && bit < 64 && puts&(1<<uint(bit)) != 0:
			fw.putEvent(c, a.Pos(), name)
		case bit >= 0 && bit < 64 && publishes&(1<<uint(bit)) != 0:
			fw.publishEvent(c, call.Pos(), "publish helper "+name)
		case bit >= 0 && bit < 64 && retains&(1<<uint(bit)) != 0:
			fw.use(c, a.Pos())
			fw.retainEvent(c, a.Pos(), "retained by callee "+name)
		case publishName && isPointerish(typeOf(fw.pkg.Info, a)):
			fw.use(c, a.Pos())
			fw.publishEvent(c, call.Pos(), "publish helper "+name)
		default:
			fw.use(c, a.Pos())
		}
	}

	if retPooled {
		return &flowCell{
			pooled: true, paramIdx: -1,
			src: call.Pos(), srcDesc: "pooled result of " + name,
		}
	}
	return nil
}

// calleeFunc resolves a call to its *types.Func (methods via Selections,
// package functions via Uses), or nil for func-typed values and builtins.
func (fw *flowWalker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := fw.pkg.Info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		if selInfo, ok := fw.pkg.Info.Selections[f]; ok {
			obj, _ := selInfo.Obj().(*types.Func)
			return obj
		}
		obj, _ := fw.pkg.Info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// flowBits returns a callee's flow-summary bits; interface methods take the
// union over their Dispatch candidates (Go/Ref edges propagate nothing).
func (g *CallGraph) flowBits(n *FuncNode) (puts, retains, publishes uint64, retPooled bool) {
	if n == nil {
		return
	}
	if n.IsIfaceMethod {
		for _, e := range n.Out {
			if e.Kind != EdgeDispatch || e.Callee.IsIfaceMethod {
				continue
			}
			p, r, pb, rp := e.Callee.Sum.PutsParam, e.Callee.Sum.RetainsParam,
				e.Callee.Sum.PublishesParam, e.Callee.Sum.ReturnsPooled
			puts |= p
			retains |= r
			publishes |= pb
			retPooled = retPooled || rp
		}
		return
	}
	return n.Sum.PutsParam, n.Sum.RetainsParam, n.Sum.PublishesParam, n.Sum.ReturnsPooled
}

// paramBit maps an argument index to the callee parameter index (variadic
// arguments collapse onto the last parameter); -1 when unknown.
func paramBit(sig *types.Signature, i int) int {
	if sig == nil {
		return -1
	}
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	if sig.Variadic() && i >= n-1 {
		return n - 1
	}
	if i < n {
		return i
	}
	return -1
}

// isPointerish reports types whose values reference mutable shared memory
// for the publish-helper name heuristic.
func isPointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// durabilityNames are the method names whose error results the
// durabilityerr check refuses to see discarded (WAL appends match by the
// "append" prefix instead).
var durabilityNames = map[string]bool{
	"Sync": true, "Flush": true, "Close": true,
	"Write": true, "WriteString": true, "WriteByte": true, "Truncate": true,
}

// durabilityCallee classifies a call as a durability primitive: a
// Sync/Write/Close/Truncate/append*-named function whose last result is an
// error, owned by os, bufio, or a configured durability package.
func (fw *flowWalker) durabilityCallee(call *ast.CallExpr) (string, bool) {
	obj := fw.calleeFunc(call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != "os" && path != "bufio" && !fw.g.Cfg.DurabilityPackages[path] {
		return "", false
	}
	name := obj.Name()
	isAppend := strings.HasPrefix(strings.ToLower(name), "append")
	if !durabilityNames[name] && !isAppend {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return "", false
	}
	// encoding.BinaryAppender-shaped methods return the extended buffer:
	// they serialize, they do not persist. Only error-first append results
	// count as WAL appends.
	if isAppend && isByteSlice(sig.Results().At(0).Type()) {
		return "", false
	}
	return shortFuncName(obj), true
}
