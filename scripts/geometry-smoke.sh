#!/usr/bin/env bash
# geometry-smoke.sh — end-to-end smoke test of the pluggable routing
# geometries (docs/GEOMETRY.md).
#
# For each geometry (crescendo, kandy, cacophony), boots a real three-node
# canond cluster over TCP with -geometry set, then:
#   * puts a batch of values through different nodes and gets every value
#     back through every node (routing + hierarchical storage work
#     end to end under the geometry's links and next-hop rule),
#   * asserts all three nodes agree on each key's owner (the geometry
#     changed the links, not the ownership rule — the invariant that makes
#     mixed-geometry clusters correct).
#
# Usage: geometry-smoke.sh [path-to-canond] [path-to-canonctl]
set -euo pipefail

CANOND=${1:-./canond}
CANONCTL=${2:-./canonctl}
BASE=7271
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Fixed, spread node ids so each run is deterministic.
IDS=(1000000 1431655765 2863311531)
DOMAINS=(stanford/cs stanford/ee mit/csail)
KEYS=(42 7777 123456789 3405691582 18446744073709551615 31337)

for GEOM in crescendo kandy cacophony; do
  echo "== [$GEOM] booting a three-node cluster"
  "$CANOND" -listen "127.0.0.1:$BASE" -id "${IDS[0]}" -domain "${DOMAINS[0]}" \
    -geometry "$GEOM" -stabilize 200ms &
  PIDS+=($!)
  sleep 1
  for i in 1 2; do
    "$CANOND" -listen "127.0.0.1:$((BASE + i))" -id "${IDS[$i]}" \
      -domain "${DOMAINS[$i]}" -geometry "$GEOM" -stabilize 200ms \
      -join "127.0.0.1:$BASE" &
    PIDS+=($!)
    sleep 0.5
  done
  echo "== [$GEOM] letting stabilization and link building run"
  sleep 4

  echo "== [$GEOM] put through each node, get back through every node"
  for i in "${!KEYS[@]}"; do
    "$CANONCTL" -node "127.0.0.1:$((BASE + i % 3))" put "${KEYS[$i]}" "$GEOM-$i"
  done
  sleep 1
  for i in "${!KEYS[@]}"; do
    for j in 0 1 2; do
      got=$("$CANONCTL" -node "127.0.0.1:$((BASE + j))" get "${KEYS[$i]}")
      [ "$got" = "$GEOM-$i" ] || {
        echo "[$GEOM] GET MISMATCH: key ${KEYS[$i]} via node $j returned '$got', want '$GEOM-$i'" >&2
        exit 1
      }
    done
  done

  echo "== [$GEOM] all three nodes must agree on every key's owner"
  for key in "${KEYS[@]}"; do
    owner=""
    for j in 0 1 2; do
      # "owner of K in "": node <id> (<addr>) via <n> hops" -> "node <id> (<addr>)"
      got=$("$CANONCTL" -node "127.0.0.1:$((BASE + j))" lookup "$key" \
        | sed 's/.*: \(node [0-9]* ([^)]*)\).*/\1/')
      if [ -z "$owner" ]; then
        owner=$got
      elif [ "$got" != "$owner" ]; then
        echo "[$GEOM] OWNER DISAGREEMENT: key $key is '$owner' per node 0 but '$got' per node $j" >&2
        exit 1
      fi
    done
  done

  echo "== [$GEOM] OK; tearing the cluster down"
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  PIDS=()
  sleep 0.5
done

echo "geometry smoke: OK (crescendo, kandy and cacophony all route, store and agree on ownership)"
