package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxDatagramBytes bounds a UDP message; larger payloads belong on TCP.
const maxDatagramBytes = 60000

// udpRetryInterval is how long a call waits before resending its request.
const udpRetryInterval = 250 * time.Millisecond

// udpDefaultTimeout bounds a call when the context has no deadline.
const udpDefaultTimeout = 3 * time.Second

// udpReplayCacheSize bounds the served-request cache that absorbs retries.
const udpReplayCacheSize = 1024

// UDP is a Transport over UDP datagrams, the low-overhead option the paper
// suggests for LAN-level messaging (Section 3.5). Requests carry an ID and
// are retried until the response datagram arrives or the deadline passes; a
// bounded replay cache makes retried requests idempotent on the receiver.
type UDP struct {
	conn *net.UDPConn
	addr string

	mu       sync.Mutex
	handler  Handler
	pending  map[uint64]chan Message
	replay   map[replayKey]Message
	replayQ  []replayKey
	inflight map[replayKey]bool
	closed   bool

	nextID atomic.Uint64
	wg     sync.WaitGroup
}

type replayKey struct {
	from string
	id   uint64
}

var _ Transport = (*UDP)(nil)

// udpEnvelope frames one datagram.
type udpEnvelope struct {
	ID   uint64  `json:"id"`
	Resp bool    `json:"resp,omitempty"`
	Msg  Message `json:"msg"`
}

// ListenUDP starts a UDP transport on the given address (":0" picks a port).
func ListenUDP(addr string) (*UDP, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	t := &UDP{
		conn:     conn,
		addr:     conn.LocalAddr().String(),
		pending:  make(map[uint64]chan Message),
		replay:   make(map[replayKey]Message),
		inflight: make(map[replayKey]bool),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// Addr implements Transport.
func (t *UDP) Addr() string { return t.addr }

// Serve implements Transport.
func (t *UDP) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *UDP) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxDatagramBytes+1)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var env udpEnvelope
		if err := json.Unmarshal(buf[:n], &env); err != nil {
			continue // malformed datagram: drop
		}
		if env.Resp {
			t.mu.Lock()
			ch := t.pending[env.ID]
			t.mu.Unlock()
			if ch != nil {
				select {
				case ch <- env.Msg:
				default:
				}
			}
			continue
		}
		t.wg.Add(1)
		go t.serveRequest(env, from)
	}
}

func (t *UDP) serveRequest(env udpEnvelope, from *net.UDPAddr) {
	defer t.wg.Done()
	key := replayKey{from: from.String(), id: env.ID}
	t.mu.Lock()
	if cached, ok := t.replay[key]; ok {
		t.mu.Unlock()
		t.send(udpEnvelope{ID: env.ID, Resp: true, Msg: cached}, from)
		return
	}
	if t.inflight[key] {
		// A retry of a request still being handled: drop it; the client
		// keeps retrying and the original handler's response will answer.
		t.mu.Unlock()
		return
	}
	t.inflight[key] = true
	h := t.handler
	t.mu.Unlock()

	var resp Message
	if h == nil {
		resp = ErrorMessage(ErrNoHandler)
	} else {
		r, err := h(context.Background(), from.String(), env.Msg)
		if err != nil {
			resp = ErrorMessage(err)
		} else {
			resp = r
		}
	}
	t.mu.Lock()
	delete(t.inflight, key)
	if len(t.replayQ) >= udpReplayCacheSize {
		oldest := t.replayQ[0]
		t.replayQ = t.replayQ[1:]
		delete(t.replay, oldest)
	}
	t.replay[key] = resp
	t.replayQ = append(t.replayQ, key)
	t.mu.Unlock()
	t.send(udpEnvelope{ID: env.ID, Resp: true, Msg: resp}, from)
}

func (t *UDP) send(env udpEnvelope, to *net.UDPAddr) {
	raw, err := json.Marshal(env)
	if err != nil || len(raw) > maxDatagramBytes {
		return
	}
	_, _ = t.conn.WriteToUDP(raw, to)
}

// Call implements Transport: the request datagram is resent every retry
// interval until a response arrives or the deadline passes.
func (t *UDP) Call(ctx context.Context, addr string, msg Message) (Message, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return Message{}, ErrClosed
	}
	t.mu.Unlock()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return Message{}, fmt.Errorf("%w: resolve %s: %v", ErrUnreachable, addr, err)
	}
	id := t.nextID.Add(1)
	raw, err := json.Marshal(udpEnvelope{ID: id, Msg: msg})
	if err != nil {
		return Message{}, err
	}
	if len(raw) > maxDatagramBytes {
		return Message{}, errors.New("transport: message exceeds datagram size")
	}
	ch := make(chan Message, 1)
	t.mu.Lock()
	t.pending[id] = ch
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.pending, id)
		t.mu.Unlock()
	}()

	deadline := time.Now().Add(udpDefaultTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	for {
		if _, err := t.conn.WriteToUDP(raw, raddr); err != nil {
			return Message{}, fmt.Errorf("%w: send to %s: %v", ErrUnreachable, addr, err)
		}
		wait := udpRetryInterval
		if remaining := time.Until(deadline); remaining < wait {
			wait = remaining
		}
		if wait <= 0 {
			return Message{}, fmt.Errorf("%w: %s did not respond", ErrUnreachable, addr)
		}
		timer := time.NewTimer(wait)
		select {
		case resp := <-ch:
			timer.Stop()
			return resp, nil
		case <-ctx.Done():
			timer.Stop()
			return Message{}, ctx.Err()
		case <-timer.C:
			if time.Now().After(deadline) {
				return Message{}, fmt.Errorf("%w: %s did not respond", ErrUnreachable, addr)
			}
		}
	}
}

// Close implements Transport.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
