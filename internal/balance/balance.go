// Package balance implements the partition-balancing identifier selection of
// Section 4.3. Random ID choice leaves a Theta(log^2 n) ratio between the
// largest and smallest partition; the bisection scheme — join at a random
// point, then bisect the largest partition among the nodes sharing a B-bit
// prefix with the point's owner — reduces the ratio to a small constant
// while keeping joins at O(log n) messages. A hierarchical variant
// additionally spreads the nodes of every domain across the identifier
// space by balancing the top bits of new IDs within the joiner's domain.
package balance

import (
	"errors"
	"math"
	"math/rand"

	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

// ErrSpaceExhausted is returned when no further identifier can be assigned.
var ErrSpaceExhausted = errors.New("balance: identifier space exhausted")

// PartitionRatio returns the ratio of the largest to the smallest partition
// induced by the given identifiers on the ring: partition of a node = the
// clockwise gap from its ID to the next. It returns 0 for fewer than 2 ids.
func PartitionRatio(space id.Space, ids []id.ID) float64 {
	if len(ids) < 2 {
		return 0
	}
	sorted := make([]id.ID, len(ids))
	copy(sorted, ids)
	id.SortIDs(sorted)
	minGap, maxGap := space.Size(), uint64(0)
	for i := range sorted {
		next := sorted[(i+1)%len(sorted)]
		gap := space.Clockwise(sorted[i], next)
		if gap == 0 {
			gap = space.Size() // single distinct id: whole ring
		}
		if gap < minGap {
			minGap = gap
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	return float64(maxGap) / float64(minGap)
}

// Bisector assigns identifiers with the bisection scheme.
type Bisector struct {
	space id.Space
	ids   []id.ID // sorted
}

// NewBisector returns an empty bisector over space.
func NewBisector(space id.Space) *Bisector {
	return &Bisector{space: space}
}

// Len returns the number of identifiers assigned so far.
func (b *Bisector) Len() int { return len(b.ids) }

// IDs returns a copy of the assigned identifiers in ascending order.
func (b *Bisector) IDs() []id.ID {
	out := make([]id.ID, len(b.ids))
	copy(out, b.ids)
	return out
}

// prefixBits returns B, chosen so only a logarithmic number of nodes share a
// B-bit prefix.
func (b *Bisector) prefixBits() uint {
	n := len(b.ids)
	if n < 4 {
		return 0
	}
	logn := math.Log2(float64(n))
	bBits := uint(math.Floor(math.Log2(float64(n) / logn)))
	if bBits > b.space.Bits() {
		bBits = b.space.Bits()
	}
	return bBits
}

// Join assigns the next identifier: a random point selects an owner, and the
// largest partition among the nodes sharing the owner's B-bit prefix is
// bisected; the bisection point becomes the new identifier.
func (b *Bisector) Join(rng *rand.Rand) (id.ID, error) {
	if len(b.ids) == 0 {
		v := b.space.Random(rng)
		b.ids = append(b.ids, v)
		return v, nil
	}
	r := b.space.Random(rng)
	ownerIdx := b.ownerIndex(r)
	bBits := b.prefixBits()
	prefix := b.space.Prefix(b.ids[ownerIdx], bBits)

	// Scan the nodes sharing the prefix for the largest partition.
	loID, hiID := b.space.PrefixRange(prefix, bBits)
	lo := id.SearchIDs(b.ids, loID)
	hi := id.SearchAfter(b.ids, hiID)
	bestIdx, bestGap := -1, uint64(0)
	for i := lo; i < hi; i++ {
		next := b.ids[(i+1)%len(b.ids)]
		gap := b.space.Clockwise(b.ids[i], next)
		if len(b.ids) == 1 {
			gap = b.space.Size()
		}
		if gap > bestGap {
			bestIdx, bestGap = i, gap
		}
	}
	if bestIdx < 0 || bestGap < 2 {
		return 0, ErrSpaceExhausted
	}
	v := b.space.Add(b.ids[bestIdx], bestGap/2)
	b.insert(v)
	return v, nil
}

func (b *Bisector) ownerIndex(k id.ID) int {
	i := id.SearchAfter(b.ids, k)
	if i == 0 {
		return len(b.ids) - 1
	}
	return i - 1
}

func (b *Bisector) insert(v id.ID) {
	i := id.SearchIDs(b.ids, v)
	b.ids = append(b.ids, 0)
	copy(b.ids[i+1:], b.ids[i:])
	b.ids[i] = v
}

// Hierarchical assigns identifiers so that the hash space is evenly
// partitioned at every level of the hierarchy: a joiner first picks the top
// bits of its ID to be maximally far from the other nodes of its domain
// (balancing the domain's prefix tree), then bisects the largest global
// partition inside the chosen top-bit bucket. The top-bit balancing in the
// lowest-level domains provides balance through the hierarchy, and the
// bisection keeps the global ratio constant.
type Hierarchical struct {
	space   id.Space
	topBits uint
	// perDomain counts, for every domain and prefix, how many domain
	// members' IDs start with that prefix.
	perDomain map[int]map[prefixKey]int
	ids       []id.ID // global sorted identifiers
}

// prefixKey distinguishes prefixes of different lengths whose right-aligned
// values coincide (e.g. "01" and "1").
type prefixKey struct {
	plen uint
	val  uint64
}

// NewHierarchical returns a selector that balances the top topBits bits of
// new identifiers within every domain on the joiner's chain. The paper notes
// log log n bits suffice; 4-6 is typical for the network sizes evaluated.
func NewHierarchical(space id.Space, topBits uint) *Hierarchical {
	if topBits > space.Bits() {
		topBits = space.Bits()
	}
	return &Hierarchical{
		space:     space,
		topBits:   topBits,
		perDomain: make(map[int]map[prefixKey]int),
	}
}

// Join assigns an identifier for a node whose lowest-level domain is leaf,
// choosing each of the top bits to keep the leaf domain's members spread
// evenly and then bisecting the largest global partition within the chosen
// bucket. The choice is registered on the whole domain chain.
func (h *Hierarchical) Join(rng *rand.Rand, leaf *hierarchy.Domain) (id.ID, error) {
	counts := h.perDomain[leaf.ID()]
	var prefix uint64
	for bit := uint(0); bit < h.topBits; bit++ {
		zero := counts[prefixKey{plen: bit + 1, val: prefix << 1}]
		one := counts[prefixKey{plen: bit + 1, val: prefix<<1 | 1}]
		switch {
		case zero < one:
			prefix = prefix << 1
		case one < zero:
			prefix = prefix<<1 | 1
		default:
			prefix = prefix<<1 | uint64(rng.Intn(2))
		}
	}
	v, err := h.bisectInBucket(prefix)
	if err != nil {
		return 0, err
	}
	h.register(leaf, v)
	h.insert(v)
	return v, nil
}

// bisectInBucket returns the midpoint of the largest gap between global
// identifiers inside the top-bit bucket, clipped at the bucket boundaries.
func (h *Hierarchical) bisectInBucket(prefix uint64) (id.ID, error) {
	loID, hiID := h.space.PrefixRange(prefix, h.topBits)
	lo := id.SearchIDs(h.ids, loID)
	hi := id.SearchAfter(h.ids, hiID)
	if lo == hi {
		// Empty bucket: take its midpoint.
		return h.space.Add(loID, (uint64(hiID)-uint64(loID))/2), nil
	}
	// Gaps: [loID, first), between consecutive ids, and [last, hiID].
	bestStart, bestGap := uint64(loID), uint64(h.ids[lo])-uint64(loID)
	for i := lo; i < hi-1; i++ {
		if gap := uint64(h.ids[i+1]) - uint64(h.ids[i]); gap > bestGap {
			bestStart, bestGap = uint64(h.ids[i]), gap
		}
	}
	if gap := uint64(hiID) - uint64(h.ids[hi-1]) + 1; gap > bestGap {
		bestStart, bestGap = uint64(h.ids[hi-1]), gap
	}
	if bestGap < 2 {
		return 0, ErrSpaceExhausted
	}
	return h.space.Wrap(bestStart + bestGap/2), nil
}

func (h *Hierarchical) insert(v id.ID) {
	i := id.SearchIDs(h.ids, v)
	h.ids = append(h.ids, 0)
	copy(h.ids[i+1:], h.ids[i:])
	h.ids[i] = v
}

// register updates the prefix counts of every domain on the leaf's chain.
func (h *Hierarchical) register(leaf *hierarchy.Domain, v id.ID) {
	for d := leaf; d != nil; d = d.Parent() {
		counts := h.perDomain[d.ID()]
		if counts == nil {
			counts = make(map[prefixKey]int)
			h.perDomain[d.ID()] = counts
		}
		for plen := uint(1); plen <= h.topBits; plen++ {
			counts[prefixKey{plen: plen, val: h.space.Prefix(v, plen)}]++
		}
	}
}

// RandomIDs draws n identifiers uniformly at random — the baseline whose
// partition ratio is Theta(log^2 n).
func RandomIDs(rng *rand.Rand, space id.Space, n int) ([]id.ID, error) {
	return space.UniqueRandom(rng, n)
}
