package netnode

import (
	"encoding/binary"

	"github.com/canon-dht/canon/internal/transport"
)

// Binary marshaling for the payloads introduced at wire version 3: the
// geometry maintenance protocol (docs/WIRE.md §9) — Kandy's bucket-refresh
// probe and Cacophony's lookahead neighbor exchange. They follow the
// conventions documented in binwire.go. Like the v2 additions, these are new
// message types — a peer that does not know a type never parses it — so the
// layouts are unambiguous without any version byte in the payload.

// Compile-time interface checks for the v3 binary payloads.
var (
	_ transport.BinaryAppender = bucketRefReq{}
	_ transport.BinaryAppender = bucketRefResp{}
	_ transport.BinaryAppender = lookaheadReq{}
	_ transport.BinaryAppender = lookaheadResp{}
)

// ---- shared slice helpers ----

func appendInfos(b []byte, infos []Info) []byte {
	b = appendSliceLen(b, len(infos), infos == nil)
	for _, i := range infos {
		b = i.appendTo(b)
	}
	return b
}

func readInfos(r *binReader) []Info {
	n, present := r.sliceLen()
	if !present {
		return nil
	}
	out := make([]Info, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		var i Info
		i.readFrom(r)
		out = append(out, i)
	}
	return out
}

// appendUvarints encodes a slice of small counters (ring-size estimates) as
// uvarints.
func appendUvarints(b []byte, vs []uint64) []byte {
	b = appendSliceLen(b, len(vs), vs == nil)
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func readUvarints(r *binReader) []uint64 {
	n, present := r.sliceLen()
	if !present {
		return nil
	}
	out := make([]uint64, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		out = append(out, r.uvarint())
	}
	return out
}

// ---- bucketref ----

// AppendBinary implements transport.BinaryAppender.
func (q bucketRefReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendStr(b, q.Prefix)
	b = appendU64(b, q.Target)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q bucketRefReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *bucketRefReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Prefix = r.str()
	q.Target = r.u64()
	return r.done()
}

// AppendBinary implements transport.BinaryAppender.
func (p bucketRefResp) AppendBinary(b []byte) ([]byte, error) {
	return appendInfos(b, p.Contacts), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p bucketRefResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *bucketRefResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.Contacts = readInfos(r)
	return r.done()
}

// ---- lookahead ----

// AppendBinary implements transport.BinaryAppender.
func (q lookaheadReq) AppendBinary(b []byte) ([]byte, error) {
	b = binary.AppendVarint(b, int64(q.Levels))
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q lookaheadReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *lookaheadReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Levels = int(r.varint())
	return r.done()
}

// AppendBinary implements transport.BinaryAppender. Estimates are node
// counts, usually small, so they ride as uvarints.
func (p lookaheadResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendInfos(b, p.Succs)
	b = appendUvarints(b, p.Ests)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p lookaheadResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *lookaheadResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.Succs = readInfos(r)
	p.Ests = readUvarints(r)
	return r.done()
}
