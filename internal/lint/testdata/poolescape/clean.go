// Clean constructs for the pool-escape fixture: the idiomatic pooled
// lifecycles the check must stay silent on.
package poolescape

// getPutClean is the canonical shape: get, defer the return, use freely
// in between.
func getPutClean() int {
	q := getReq()
	defer putReq(q)
	q.id = 7
	return q.id
}

// handOut returns the pooled object to its caller: ownership transfer,
// not escape (the caller inherits the Put obligation and the summary
// marks handOut ReturnsPooled).
func handOut() *req { return getReq() }

// reuseBuffer mutates through the pointer before Put — the whole point
// of pooling.
func reuseBuffer() {
	q := getReq()
	q.spans = q.spans[:0]
	q.spans = append(q.spans, 1)
	putReq(q)
}

// fill plays a non-retaining helper: it writes through its argument but
// keeps no reference.
func fill(q *req) { q.id = 42 }

// useHelper passes the pooled value to the non-retaining helper.
func useHelper() {
	q := getReq()
	fill(q)
	putReq(q)
}

// errorPathPut returns the object early on the failure path; the put in
// the terminating branch must not poison the fall-through path.
func errorPathPut(fail bool) int {
	q := getReq()
	if fail {
		putReq(q)
		return 0
	}
	v := q.id
	putReq(q)
	return v
}
