package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrameBytes bounds a single message frame; larger frames indicate a
// protocol error or abuse.
const maxFrameBytes = 16 << 20

// defaultDialTimeout bounds connection establishment when the caller's
// context has no deadline.
const defaultDialTimeout = 5 * time.Second

// TCP is a Transport over TCP with length-prefixed JSON frames. Outbound
// connections are pooled and reused; each pooled connection carries one
// request at a time.
type TCP struct {
	listener net.Listener
	addr     string

	mu      sync.Mutex
	handler Handler
	pools   map[string][]*tcpConn
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
}

// ListenTCP starts a TCP transport on the given address ("host:port";
// ":0" picks a free port).
func ListenTCP(addr string) (*TCP, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		listener: l,
		addr:     l.Addr().String(),
		pools:    make(map[string][]*tcpConn),
		conns:    make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCP) Addr() string { return t.addr }

// Serve implements Transport.
func (t *TCP) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.conns[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, c)
		t.mu.Unlock()
		_ = c.Close()
	}()
	br := bufio.NewReader(c)
	for {
		msg, err := readFrame(br)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		var resp Message
		if h == nil {
			resp = ErrorMessage(ErrNoHandler)
		} else {
			r, herr := h(context.Background(), c.RemoteAddr().String(), msg)
			if herr != nil {
				resp = ErrorMessage(herr)
			} else {
				resp = r
			}
		}
		if err := writeFrame(c, resp); err != nil {
			return
		}
	}
}

// Call implements Transport.
func (t *TCP) Call(ctx context.Context, addr string, msg Message) (Message, error) {
	conn, err := t.getConn(ctx, addr)
	if err != nil {
		return Message{}, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.c.SetDeadline(deadline)
	} else {
		_ = conn.c.SetDeadline(time.Now().Add(defaultDialTimeout))
	}
	if err := writeFrame(conn.c, msg); err != nil {
		_ = conn.c.Close()
		return Message{}, fmt.Errorf("%w: write to %s: %v", ErrUnreachable, addr, err)
	}
	resp, err := readFrame(conn.br)
	if err != nil {
		_ = conn.c.Close()
		return Message{}, fmt.Errorf("%w: read from %s: %v", ErrUnreachable, addr, err)
	}
	_ = conn.c.SetDeadline(time.Time{})
	t.putConn(addr, conn)
	return resp, nil
}

func (t *TCP) getConn(ctx context.Context, addr string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	pool := t.pools[addr]
	if len(pool) > 0 {
		conn := pool[len(pool)-1]
		t.pools[addr] = pool[:len(pool)-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()

	d := net.Dialer{Timeout: defaultDialTimeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, addr, err)
	}
	return &tcpConn{c: c, br: bufio.NewReader(c)}, nil
}

func (t *TCP) putConn(addr string, conn *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.pools[addr]) >= 4 {
		_ = conn.c.Close()
		return
	}
	t.pools[addr] = append(t.pools[addr], conn)
}

// Close implements Transport: it stops accepting, closes all connections and
// waits for in-flight handlers to finish.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, pool := range t.pools {
		for _, conn := range pool {
			_ = conn.c.Close()
		}
	}
	t.pools = make(map[string][]*tcpConn)
	for c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

func writeFrame(w io.Writer, msg Message) error {
	raw, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	if len(raw) > maxFrameBytes {
		return errors.New("transport: frame too large")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

func readFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return Message{}, errors.New("transport: frame too large")
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Message{}, err
	}
	var msg Message
	if err := json.Unmarshal(raw, &msg); err != nil {
		return Message{}, err
	}
	return msg, nil
}
