package lint

import (
	"go/ast"
	"go/types"
	"reflect"
)

// checkWireCompat guards the wire format against silent drift. A "wire
// struct" is any struct with json-tagged fields — the request/response
// bodies in internal/netnode/wire.go, transport.Message, telemetry spans.
// Two rules:
//
//  1. Unkeyed composite literals of wire structs are flagged everywhere:
//     adding or reordering a field silently shifts every positional value
//     into the wrong JSON key while still compiling.
//  2. Envelope literals built outside the transport package (keyed literals
//     of a struct carrying both Type and Nonce fields — i.e.
//     transport.Message) that populate Type but not Nonce are flagged:
//     hand-rolled envelopes bypass transport.NewMessage and the
//     nonce-tagging call helpers, so receivers cannot deduplicate the
//     request and at-most-once semantics silently degrade.
var checkWireCompat = Check{
	Name: "wirecompat",
	Doc:  "unkeyed wire-struct literals, and hand-built message envelopes missing Nonce population",
	Run:  runWireCompat,
}

// wireStruct returns the struct type behind t when it has at least one
// json-tagged field, along with its named type (for the defining package).
func wireStruct(t types.Type) (*types.Struct, *types.Named) {
	named := namedOf(t)
	if named == nil {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if tag := reflect.StructTag(st.Tag(i)); tag.Get("json") != "" {
			return st, named
		}
	}
	return nil, nil
}

func runWireCompat(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			st, named := wireStruct(pass.TypeOf(lit))
			if st == nil {
				return true
			}
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
				pass.Reportf(lit.Pos(),
					"unkeyed composite literal of wire struct %s; field reordering would silently change the wire format — use keyed fields", named.Obj().Name())
				return true
			}
			checkEnvelopeNonce(pass, lit, st, named)
			return true
		})
	}
}

// checkEnvelopeNonce applies rule 2 to a keyed literal.
func checkEnvelopeNonce(pass *Pass, lit *ast.CompositeLit, st *types.Struct, named *types.Named) {
	if !hasField(st, "Type") || !hasField(st, "Nonce") {
		return
	}
	// Inside the defining package — its implementation, constructors
	// (NewMessage, ErrorMessage), and its own tests — envelopes are
	// legitimately built by hand; nonce tagging happens in the call helpers
	// downstream, and the transport tests exercise raw envelopes by design.
	if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pass.Pkg.Path {
		return
	}
	setsType, setsNonce := false, false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			switch key.Name {
			case "Type":
				setsType = true
			case "Nonce":
				setsNonce = true
			}
		}
	}
	if setsType && !setsNonce {
		pass.Reportf(lit.Pos(),
			"%s envelope built with Type but no Nonce; un-nonced requests bypass receiver dedup (at-most-once semantics) — use transport.NewMessage plus the nonce-tagging call helpers", named.Obj().Name())
	}
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
