package storage_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/chord"
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/storage"
)

type fixture struct {
	nw   *core.Network
	st   *storage.Store
	tree *hierarchy.Tree
	rng  *rand.Rand
}

// newFixture builds a 3-level network: root -> {stanford, mit} ->
// {stanford/cs, stanford/ee, mit/csail}, with nodes spread across leaves.
func newFixture(t *testing.T, seed int64, perLeaf int) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := id.DefaultSpace()
	tree := hierarchy.NewTree()
	var leaves []*hierarchy.Domain
	for _, p := range []string{"stanford/cs", "stanford/ee", "mit/csail"} {
		d, err := tree.EnsurePath(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perLeaf; i++ {
			leaves = append(leaves, d)
		}
	}
	pop, err := core.RandomPopulation(rng, space, tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, chord.NewDeterministic(space), rng)
	return &fixture{nw: nw, st: storage.New(nw), tree: tree, rng: rng}
}

func (f *fixture) nodeIn(t *testing.T, path string) int {
	t.Helper()
	d, ok := f.tree.Lookup(path)
	if !ok {
		t.Fatalf("domain %q missing", path)
	}
	ring := f.nw.RingOf(d)
	if ring == nil || ring.Len() == 0 {
		t.Fatalf("domain %q empty", path)
	}
	return ring.Member(f.rng.Intn(ring.Len()))
}

func (f *fixture) domain(t *testing.T, path string) *hierarchy.Domain {
	t.Helper()
	d, ok := f.tree.Lookup(path)
	if !ok {
		t.Fatalf("domain %q missing", path)
	}
	return d
}

func TestGlobalPutGet(t *testing.T) {
	f := newFixture(t, 1, 30)
	origin := f.nodeIn(t, "stanford/cs")
	key := id.ID(0x12345678)
	holder, err := f.st.Put(origin, key, []byte("hello"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if holder != f.nw.Population().OwnerOf(key) {
		t.Errorf("global put stored at %d, want global owner %d", holder, f.nw.Population().OwnerOf(key))
	}
	for _, from := range []string{"stanford/cs", "mit/csail"} {
		res := f.st.Get(f.nodeIn(t, from), key)
		if !res.Found || !bytes.Equal(res.Value, []byte("hello")) {
			t.Fatalf("get from %s failed: %+v", from, res)
		}
	}
}

func TestPutValidation(t *testing.T) {
	f := newFixture(t, 2, 30)
	csNode := f.nodeIn(t, "stanford/cs")
	mit := f.domain(t, "mit/csail")
	cs := f.domain(t, "stanford/cs")
	stanford := f.domain(t, "stanford")

	if _, err := f.st.Put(csNode, 1, nil, mit, nil); !errors.Is(err, storage.ErrOriginOutsideStorageDomain) {
		t.Errorf("put outside storage domain: err = %v", err)
	}
	// Access domain must contain storage domain: mit does not contain cs.
	if _, err := f.st.Put(csNode, 1, nil, cs, mit); !errors.Is(err, storage.ErrAccessNotSuperset) {
		t.Errorf("non-superset access domain: err = %v", err)
	}
	// Equal domains and proper supersets are fine.
	if _, err := f.st.Put(csNode, 1, nil, cs, cs); err != nil {
		t.Errorf("put with equal domains: %v", err)
	}
	if _, err := f.st.Put(csNode, 2, nil, cs, stanford); err != nil {
		t.Errorf("put with superset access: %v", err)
	}
}

func TestDomainStorageStaysLocal(t *testing.T) {
	f := newFixture(t, 3, 40)
	cs := f.domain(t, "stanford/cs")
	origin := f.nodeIn(t, "stanford/cs")
	key := id.ID(0xCAFEBABE)
	holder, err := f.st.Put(origin, key, []byte("cs-only"), cs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.IsAncestorOf(f.nw.Population().LeafOf(holder)) {
		t.Fatalf("item stored outside its storage domain (node %d)", holder)
	}
	// A CS node finds it without the query ever leaving CS.
	res := f.st.Get(f.nodeIn(t, "stanford/cs"), key)
	if !res.Found {
		t.Fatal("CS node could not find CS content")
	}
	for _, hop := range res.Path[:res.Hops+1] {
		if !cs.IsAncestorOf(f.nw.Population().LeafOf(hop)) {
			t.Fatalf("local query left CS at node %d", hop)
		}
	}
}

func TestAccessControl(t *testing.T) {
	f := newFixture(t, 4, 40)
	cs := f.domain(t, "stanford/cs")
	stanford := f.domain(t, "stanford")
	origin := f.nodeIn(t, "stanford/cs")
	key := id.ID(0xDEAD10CC)
	// Stored in CS, accessible throughout Stanford but not beyond.
	if _, err := f.st.Put(origin, key, []byte("stanford-wide"), cs, stanford); err != nil {
		t.Fatal(err)
	}
	if res := f.st.Get(f.nodeIn(t, "stanford/ee"), key); !res.Found {
		t.Error("EE node should access stanford-wide content")
	}
	if res := f.st.Get(f.nodeIn(t, "mit/csail"), key); res.Found {
		t.Error("MIT node must not access stanford-wide content")
	}
}

func TestPointerIndirection(t *testing.T) {
	f := newFixture(t, 5, 40)
	cs := f.domain(t, "stanford/cs")
	stanford := f.domain(t, "stanford")
	origin := f.nodeIn(t, "stanford/cs")
	key := id.ID(0x0BADF00D)
	holder, err := f.st.Put(origin, key, []byte("v"), cs, stanford)
	if err != nil {
		t.Fatal(err)
	}
	// A query from EE must be answered; if it was answered by a node other
	// than the holder, the answer came through the pointer.
	res := f.st.Get(f.nodeIn(t, "stanford/ee"), key)
	if !res.Found {
		t.Fatal("EE node could not find content")
	}
	if res.Node != holder && !res.Indirect {
		t.Errorf("answer from non-holder %d without indirection", res.Node)
	}
}

func TestGetAllMultiValue(t *testing.T) {
	f := newFixture(t, 6, 40)
	key := id.ID(0x77777777)
	cs := f.domain(t, "stanford/cs")
	ee := f.domain(t, "stanford/ee")
	csNode := f.nodeIn(t, "stanford/cs")
	eeNode := f.nodeIn(t, "stanford/ee")
	if _, err := f.st.Put(csNode, key, []byte("from-cs"), cs, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.st.Put(eeNode, key, []byte("from-ee"), ee, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.st.Put(csNode, key, []byte("global"), nil, nil); err != nil {
		t.Fatal(err)
	}
	all := f.st.GetAll(f.nodeIn(t, "mit/csail"), key, 0)
	if len(all) != 3 {
		t.Fatalf("GetAll found %d values, want 3", len(all))
	}
	// Limit respected.
	if got := f.st.GetAll(f.nodeIn(t, "mit/csail"), key, 2); len(got) != 2 {
		t.Fatalf("GetAll(max=2) returned %d", len(got))
	}
}

func TestDelete(t *testing.T) {
	f := newFixture(t, 7, 30)
	cs := f.domain(t, "stanford/cs")
	stanford := f.domain(t, "stanford")
	origin := f.nodeIn(t, "stanford/cs")
	key := id.ID(0x5EED)
	if _, err := f.st.Put(origin, key, []byte("v"), cs, stanford); err != nil {
		t.Fatal(err)
	}
	if removed := f.st.Delete(key, cs); removed != 1 {
		t.Fatalf("Delete removed %d, want 1", removed)
	}
	if res := f.st.Get(f.nodeIn(t, "stanford/ee"), key); res.Found {
		t.Error("content still visible after delete")
	}
	if removed := f.st.Delete(key, cs); removed != 0 {
		t.Error("second delete should remove nothing")
	}
}

func TestMissReturnsPath(t *testing.T) {
	f := newFixture(t, 8, 30)
	res := f.st.Get(f.nodeIn(t, "stanford/cs"), id.ID(0x404))
	if res.Found {
		t.Fatal("found nonexistent key")
	}
	if len(res.Path) == 0 || res.Hops != len(res.Path)-1 {
		t.Errorf("miss should report the full path: %+v", res)
	}
}

// TestResponsibilityUniqueness: the same (key, storage domain) always maps
// to exactly one holder, and re-putting lands on it.
func TestResponsibilityUniqueness(t *testing.T) {
	f := newFixture(t, 9, 40)
	cs := f.domain(t, "stanford/cs")
	for i := 0; i < 200; i++ {
		key := f.nw.Population().Space().Random(f.rng)
		h1, err := f.st.Put(f.nodeIn(t, "stanford/cs"), key, nil, cs, cs)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := f.st.Put(f.nodeIn(t, "stanford/cs"), key, nil, cs, cs)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("same key stored at %d then %d", h1, h2)
		}
		if h1 != f.nw.Proxy(cs, key) {
			t.Fatalf("holder %d != proxy %d", h1, f.nw.Proxy(cs, key))
		}
	}
}

func TestItemsAt(t *testing.T) {
	f := newFixture(t, 10, 30)
	cs := f.domain(t, "stanford/cs")
	origin := f.nodeIn(t, "stanford/cs")
	key := id.ID(0xABC)
	holder, err := f.st.Put(origin, key, []byte("x"), cs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.st.ItemsAt(holder); got != 1 {
		t.Errorf("ItemsAt(holder) = %d, want 1", got)
	}
}

// TestVisibilityMatchesAccessDomains is a property sweep: for random
// (storage, access) domain pairs, a value is visible from exactly the nodes
// inside its access domain.
func TestVisibilityMatchesAccessDomains(t *testing.T) {
	f := newFixture(t, 11, 40)
	pop := f.nw.Population()

	domains := []string{"", "stanford", "stanford/cs", "stanford/ee", "mit", "mit/csail"}
	lookup := func(p string) *hierarchy.Domain {
		d, ok := f.tree.Lookup(p)
		if !ok {
			t.Fatalf("domain %q missing", p)
		}
		return d
	}
	for trial := 0; trial < 120; trial++ {
		storage := lookup(domains[f.rng.Intn(len(domains))])
		access := storage.AncestorAt(f.rng.Intn(storage.Depth() + 1))
		ring := f.nw.RingOf(storage)
		if ring == nil || ring.Len() == 0 {
			continue
		}
		origin := ring.Member(f.rng.Intn(ring.Len()))
		key := pop.Space().Random(f.rng)
		if _, err := f.st.Put(origin, key, []byte("p"), storage, access); err != nil {
			t.Fatalf("put(storage=%q access=%q): %v", storage.Path(), access.Path(), err)
		}
		// Probe from a sample of nodes across the whole network.
		for probe := 0; probe < 15; probe++ {
			reader := f.rng.Intn(f.nw.Len())
			inAccess := access.IsAncestorOf(pop.LeafOf(reader))
			found := f.st.Get(reader, key).Found
			if found != inAccess {
				t.Fatalf("key %d (storage=%q access=%q): reader %q found=%v, inAccess=%v",
					key, storage.Path(), access.Path(),
					pop.LeafOf(reader).Path(), found, inAccess)
			}
		}
		// Clean up so later trials with coincidentally equal keys are exact.
		f.st.Delete(key, storage)
	}
}
