// Package analysis encodes the paper's analytic results (Theorems 1-5) as
// functions, so experiments and benchmarks can annotate measurements with
// the bound they are supposed to respect:
//
//	Theorem 1: E[degree] of Chord      <= log2(n-1) + 1
//	Theorem 2: E[degree] of Crescendo  <= log2(n-1) + min(l, log2 n)
//	Theorem 3: degree of any Crescendo node is O(log n) w.h.p.
//	Theorem 4: E[hops] of Chord        <= 0.5*log2(n-1) + 0.5
//	Theorem 5: E[hops] of Crescendo    <= log2(n-1) + 1
package analysis

import "math"

// ChordDegreeBound returns Theorem 1's bound on the expected out-degree of
// a flat Chord node in an n-node ring (n > 1).
func ChordDegreeBound(n int) float64 {
	if n <= 1 {
		return 0
	}
	if n == 2 {
		return 1
	}
	return math.Log2(float64(n-1)) + 1
}

// CrescendoDegreeBound returns Theorem 2's bound on the expected out-degree
// of a Crescendo node in an n-node network over a hierarchy with at most
// `levels` levels.
func CrescendoDegreeBound(n, levels int) float64 {
	if n <= 1 {
		return 0
	}
	extra := math.Min(float64(levels), math.Log2(float64(n)))
	return math.Log2(float64(n-1)) + extra
}

// ChordHopsBound returns Theorem 4's bound on the expected routing hops
// between two random nodes of a flat Chord ring.
func ChordHopsBound(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 0.5*math.Log2(float64(n-1)) + 0.5
}

// CrescendoHopsBound returns Theorem 5's bound on the expected routing hops
// in Crescendo, irrespective of the hierarchy's structure.
func CrescendoHopsBound(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n-1)) + 1
}

// WHPDegreeCeiling returns a practical ceiling for Theorem 3's "O(log n)
// with high probability" claim with the given constant factor: nodes above
// factor*log2(n) links should essentially never occur.
func WHPDegreeCeiling(n int, factor float64) float64 {
	if n <= 1 {
		return 0
	}
	return factor * math.Log2(float64(n))
}

// JoinMessagesBound returns the paper's O(log n) bound on the messages
// required for a node insertion, with the given constant factor: the join
// lookup, the new node's link setups and the eager repairs together.
func JoinMessagesBound(n int, factor float64) float64 {
	if n <= 1 {
		return 0
	}
	return factor * math.Log2(float64(n))
}
