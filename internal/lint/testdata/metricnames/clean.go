package metricnames

// The metric namespace, declared once — the pattern the check enforces.
const (
	mnFixtureTotal   = "canon_fixture_total"
	mnFixtureDepth   = "canon_fixture_depth"
	mnFixtureSeconds = "canon_fixture_seconds"
)

// constNames registers through named constants: idents resolve, no literal
// appears at the lookup site.
func constNames(reg *Registry) {
	reg.Counter(mnFixtureTotal, "a counter")
	reg.Gauge(mnFixtureDepth, "a gauge")
	reg.Histogram(mnFixtureSeconds, "a histogram", nil)
}

// otherReceiver has a Counter method but is not a Registry; the check must
// leave it alone (help strings and other arguments stay free-form).
type ledger struct{}

func (ledger) Counter(name, help string) *int { return nil }

func notARegistry(l ledger) {
	_ = l.Counter("not_a_metric_name", "different type entirely")
}
