package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests", L("type", "lookup"))
	c.Inc()
	c.Add(4)
	c.Add(-17) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same handle.
	if again := r.Counter("requests_total", "ignored", L("type", "lookup")); again != c {
		t.Fatal("same name+labels returned a different counter")
	}
	// Different labels are a different series.
	c2 := r.Counter("requests_total", "", L("type", "store"))
	if c2 == c {
		t.Fatal("different labels returned the same counter")
	}
	if got := r.CounterValue("requests_total", L("type", "lookup")); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("absent_total"); got != 0 {
		t.Fatalf("absent CounterValue = %d, want 0", got)
	}

	g := r.Gauge("items", "stored items")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %g, want 6.5", got)
	}
}

func TestLabelOrderIndependence(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "", L("a", "1"), L("b", "2"))
	b := r.Counter("m", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order produced distinct series")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hops", "lookup hops", []float64{1, 2, 4, 8})
	for _, v := range []float64{0, 1, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 121 {
		t.Fatalf("sum = %g, want 121", h.Sum())
	}
	// Buckets: <=1: {0,1,1} = 3; <=2: {2} = 1; <=4: {3} = 1; <=8: {5} = 1; +Inf: {9,100} = 2.
	want := []int64{3, 1, 1, 1, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	q := h.Quantile(0.5)
	if q < 1 || q > 4 {
		t.Fatalf("median estimate %g outside [1,4]", q)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("ops_total", "").Inc()
				r.Gauge("depth", "").Add(1)
				r.Histogram("lat", "", DefBuckets).Observe(float64(i%7) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total", "").Value(); got != 8000 {
		t.Fatalf("ops_total = %d, want 8000", got)
	}
	if got := r.Histogram("lat", "", DefBuckets).Count(); got != 8000 {
		t.Fatalf("lat count = %d, want 8000", got)
	}
	if got := r.Gauge("depth", "").Value(); got != 8000 {
		t.Fatalf("depth = %g, want 8000", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("canon_rpc_sent_total", "outgoing requests", L("type", "lookup")).Add(7)
	r.Counter("canon_rpc_sent_total", "outgoing requests", L("type", "store")).Add(2)
	r.Gauge("canon_store_items", "stored items").Set(3)
	h := r.Histogram("canon_lookup_hops", "hops per lookup", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE canon_lookup_hops histogram",
		`canon_lookup_hops_bucket{le="1"} 1`,
		`canon_lookup_hops_bucket{le="2"} 1`,
		`canon_lookup_hops_bucket{le="4"} 2`,
		`canon_lookup_hops_bucket{le="+Inf"} 3`,
		"canon_lookup_hops_sum 13",
		"canon_lookup_hops_count 3",
		"# TYPE canon_rpc_sent_total counter",
		"# HELP canon_rpc_sent_total outgoing requests",
		`canon_rpc_sent_total{type="lookup"} 7`,
		`canon_rpc_sent_total{type="store"} 2`,
		"# TYPE canon_store_items gauge",
		"canon_store_items 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// One HELP/TYPE pair per family even with several series.
	if strings.Count(out, "# TYPE canon_rpc_sent_total counter") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}

	// The HTTP handler serves the same thing with the prometheus content type.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("escaping wrong: %s", b.String())
	}
}
