// Command canonvet is the Canon DHT project's static analyzer: it loads
// every package in the module and reports violations of project invariants
// — circular-ID arithmetic outside the ring helpers, nondeterminism in
// seed-reproducible simulation packages, shared RNGs without locks, RPCs
// issued under a held mutex, raw metric-name strings, and wire-struct
// literals that can drift silently.
//
// Usage:
//
//	go run ./cmd/canonvet ./...            # whole module, human output
//	go run ./cmd/canonvet -json ./...      # machine-readable findings
//	go run ./cmd/canonvet -checks ringcmp,lockheldrpc ./internal/netnode
//	go run ./cmd/canonvet -list            # describe every check
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Deliberate
// exceptions are annotated in source with
//
//	//canonvet:ignore <check>[,<check>] -- <justification>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/canon-dht/canon/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("canonvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	verbose := fs.Bool("v", false, "report type-checking problems encountered while loading")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}

	dirs, err := targetDirs(root, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	pkgs, err := loader.LoadDirs(dirs)
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "canonvet: load %s: %v\n", pkg.Path, terr)
			}
		}
	}

	cfg := lint.DefaultConfig(loader.Module)
	if *checks != "" {
		cfg.Enabled = make(map[string]bool)
		known := make(map[string]bool)
		for _, c := range lint.AllChecks() {
			known[c.Name] = true
		}
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(stderr, "canonvet: unknown check %q (see -list)\n", name)
				return 2
			}
			cfg.Enabled[name] = true
		}
	}

	diags := lint.Run(cfg, loader.Fset, pkgs)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "canonvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "canonvet: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// targetDirs resolves command-line package patterns to directories. The
// pattern language is deliberately small: "./..." (or no argument) means the
// whole module; "dir/..." walks a subtree; anything else is a single
// directory relative to the working directory.
func targetDirs(root, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return lint.GoDirs(root)
	}
	seen := make(map[string]bool)
	var out []string
	add := func(dirs ...string) {
		for _, d := range dirs {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := lint.GoDirs(root)
			if err != nil {
				return nil, err
			}
			add(dirs...)
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
			dirs, err := lint.GoDirs(base)
			if err != nil {
				return nil, err
			}
			add(dirs...)
		default:
			add(filepath.Join(cwd, pat))
		}
	}
	return out, nil
}
