// Multicast: the union of converged query paths from many subscribers to a
// publisher forms a multicast tree (data flows along the reversed paths,
// Section 5.4). Crescendo's inter-domain path convergence keeps expensive
// cross-domain links rare; the example builds the same tree on flat Chord
// and on Crescendo and compares the bill.
package main

import (
	"fmt"
	"math/rand"
	"os"

	canon "github.com/canon-dht/canon"
)

// dotFile is where the Graphviz rendering of the Crescendo tree lands.
const dotFile = "multicast-tree.dot"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multicast-tree:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 4096
	tree, err := canon.BalancedHierarchy(3, 8)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(5))
	placement := canon.AssignZipf(rng, tree, n, 1.25)

	flatTree := canon.NewHierarchy()
	flatPlacement := make([]*canon.Domain, n)
	for i := range flatPlacement {
		flatPlacement[i] = flatTree.Root()
	}

	crescendo, err := canon.Build(tree, placement, canon.Options{Seed: 17})
	if err != nil {
		return err
	}
	chord, err := canon.Build(flatTree, flatPlacement, canon.Options{Seed: 17})
	if err != nil {
		return err
	}

	// 500 subscribers, one publisher.
	subscribers := make([]int, 500)
	for i := range subscribers {
		subscribers[i] = rng.Intn(n)
	}
	publisher := rng.Intn(n)

	crTree := crescendo.Multicast(subscribers, publisher)
	chTree := chord.Multicast(subscribers, publisher)

	fmt.Printf("multicast tree for %d subscribers over %d nodes\n\n", len(subscribers), n)
	fmt.Printf("%-22s %10s %10s\n", "", "crescendo", "flat chord")
	fmt.Printf("%-22s %10d %10d\n", "tree edges", crTree.NumEdges(), chTree.NumEdges())
	fmt.Printf("%-22s %10d %10d\n", "tree members", crTree.NumMembers(), chTree.NumMembers())
	for level := 1; level <= 2; level++ {
		// Flat Chord has no hierarchy of its own; its crossings are counted
		// against the same conceptual hierarchy via the Crescendo
		// placement, so compare Crescendo's counts with its own total as
		// the meaningful ratio, and show Chord's raw tree size.
		fmt.Printf("level-%d crossings      %10d %10s\n",
			level, crTree.InterDomainLinks(level), "-")
	}
	frac := float64(crTree.InterDomainLinks(1)) / float64(crTree.NumEdges())
	fmt.Printf("\nonly %.1f%% of crescendo's tree edges cross top-level domains;\n", 100*frac)
	fmt.Println("those are the expensive wide-area links a real multicast pays for.")

	// Per-domain fan-out: where the tree concentrates.
	// Export the Crescendo tree for Graphviz (dot -Tsvg multicast-tree.dot).
	f, err := os.Create(dotFile)
	if err != nil {
		return err
	}
	if err := crTree.WriteDOT(f, 1); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (red edges cross top-level domains)\n", dotFile)

	fmt.Println("\nsubscribers reached per top-level domain:")
	for _, d := range tree.Root().Children() {
		count := 0
		for _, s := range subscribers {
			if d.IsAncestorOf(crescendo.NodeDomain(s)) {
				count++
			}
		}
		if count > 0 {
			fmt.Printf("  %-6s %4d subscribers, ring of %d nodes\n",
				d.Path(), count, crescendo.DomainRingSize(d))
		}
	}
	return nil
}
