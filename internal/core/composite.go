package core

import (
	"math/rand"

	"github.com/canon-dht/canon/internal/id"
)

// CompleteGeometry links every ring member to every other — the Section 3.5
// observation that nodes sharing a LAN can exploit broadcast to maintain a
// complete graph instead of a Chord ring. It only makes sense as the
// lowest-level structure of a composite (see Compose): at higher levels its
// link count would explode.
type CompleteGeometry struct {
	space id.Space
}

var _ Geometry = (*CompleteGeometry)(nil)

// NewCompleteGeometry returns the complete-graph geometry over space.
func NewCompleteGeometry(space id.Space) *CompleteGeometry {
	return &CompleteGeometry{space: space}
}

// Name implements Geometry.
func (g *CompleteGeometry) Name() string { return "complete" }

// Metric implements Geometry.
func (g *CompleteGeometry) Metric() Metric { return MetricClockwise }

// Distance implements Geometry.
func (g *CompleteGeometry) Distance(a, b id.ID) uint64 { return g.space.Clockwise(a, b) }

// BaseLinks implements Geometry: links to every other ring member.
func (g *CompleteGeometry) BaseLinks(ring *Ring, node int, _ *rand.Rand) []int {
	if ring.Len() <= 1 {
		return nil
	}
	links := make([]int, 0, ring.Len()-1)
	for pos := 0; pos < ring.Len(); pos++ {
		if m := ring.Member(pos); m != node {
			links = append(links, m)
		}
	}
	return links
}

// MergeLinks implements Geometry. A complete graph is a leaf-level
// structure; merges fall back to the Chord rule bounded by condition (b),
// which keeps the composite's higher levels sane even if someone uses this
// geometry directly.
func (g *CompleteGeometry) MergeLinks(merged, own *Ring, node int, bound uint64, rng *rand.Rand) []int {
	det := &Deterministic{space: g.space}
	return det.MergeLinks(merged, own, node, bound, rng)
}

// Bound implements Geometry: the distance to the own-ring successor, as for
// any clockwise geometry.
func (g *CompleteGeometry) Bound(own *Ring, node int, _ []id.ID) uint64 {
	pos := own.PosOfMember(node)
	if pos < 0 {
		return 0
	}
	return own.SuccessorDistance(pos)
}

// Deterministic is a minimal internal copy of the Chord finger rule used by
// CompleteGeometry's merge fallback; the canonical implementation lives in
// internal/chord, which cannot be imported here without a cycle.
type Deterministic struct {
	space id.Space
}

// MergeLinks applies the Chord rule over the merged ring bounded by
// condition (b).
func (g *Deterministic) MergeLinks(merged, _ *Ring, node int, bound uint64, _ *rand.Rand) []int {
	pos := merged.PosOfMember(node)
	if pos < 0 || merged.Len() == 1 {
		return nil
	}
	m := merged.IDAt(pos)
	var links []int
	for k := uint(0); k < g.space.Bits(); k++ {
		step := uint64(1) << k
		if step >= bound {
			break
		}
		spos := merged.SuccessorPos(g.space.Add(m, step))
		d := g.space.Clockwise(m, merged.IDAt(spos))
		if d < step || d >= bound {
			continue
		}
		links = append(links, merged.Member(spos))
	}
	return links
}

// Compose builds a per-level geometry (Section 3.5): `leaf` creates the
// links inside lowest-level domains and `upper` handles every merge. Both
// must share the same metric. The classic use is a complete graph on LANs
// with Crescendo above:
//
//	core.Compose(core.NewCompleteGeometry(space), chord.NewDeterministic(space))
type composite struct {
	leaf, upper Geometry
}

var _ Geometry = (*composite)(nil)

// Compose returns a geometry using leaf for BaseLinks and upper for merges.
func Compose(leaf, upper Geometry) Geometry {
	return &composite{leaf: leaf, upper: upper}
}

func (c *composite) Name() string { return c.leaf.Name() + "/" + c.upper.Name() }

func (c *composite) Metric() Metric { return c.upper.Metric() }

func (c *composite) Distance(a, b id.ID) uint64 { return c.upper.Distance(a, b) }

func (c *composite) BaseLinks(ring *Ring, node int, rng *rand.Rand) []int {
	return c.leaf.BaseLinks(ring, node, rng)
}

func (c *composite) MergeLinks(merged, own *Ring, node int, bound uint64, rng *rand.Rand) []int {
	return c.upper.MergeLinks(merged, own, node, bound, rng)
}

func (c *composite) Bound(own *Ring, node int, linkIDs []id.ID) uint64 {
	return c.upper.Bound(own, node, linkIDs)
}
