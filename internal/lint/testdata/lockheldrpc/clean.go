package lockheldrpc

import "context"

// releaseFirst copies state under the lock, releases, then goes to the wire —
// the sanctioned shape.
func (n *node) releaseFirst(ctx context.Context) error {
	n.mu.Lock()
	peer := "peer"
	n.mu.Unlock()
	_, err := n.c.Call(ctx, peer, "ping")
	return err
}

// branchUnlock releases on the early path; the call after the unlock is in an
// unlocked region.
func (n *node) branchUnlock(ctx context.Context, fast bool) error {
	n.mu.Lock()
	if fast {
		n.mu.Unlock()
		_, err := n.c.Call(ctx, "peer", "ping")
		return err
	}
	n.mu.Unlock()
	return nil
}

// handoff spawns the wire call on its own goroutine: the goroutine does not
// inherit the caller's lexical lock.
func (n *node) handoff(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		_, _ = n.c.Call(ctx, "peer", "ping")
	}()
}

// closureRegion builds a closure under the lock but runs it later; function
// literals are scanned as their own (unlocked) regions.
func (n *node) closureRegion(ctx context.Context) func() {
	n.mu.Lock()
	defer n.mu.Unlock()
	return func() {
		_, _ = n.c.Call(ctx, "peer", "ping")
	}
}

// plainLocal keeps a non-RPC call under the lock: only wire-shaped calls are
// flagged.
func (n *node) plainLocal() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return local()
}

func local() int { return 1 }
