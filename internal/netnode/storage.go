package netnode

import (
	"context"
	"fmt"

	"github.com/canon-dht/canon/internal/transport"
)

// Put stores value under key with the given storage and access domains
// (Section 4.1): the storage domain must contain this node and the access
// domain must contain the storage domain; both are hierarchical name
// prefixes ("" = global). The value lands at the key's owner within the
// storage domain; a wider access domain additionally places a pointer at
// the access domain's owner.
func (n *Node) Put(ctx context.Context, key uint64, value []byte, storagePath, accessPath string) error {
	if !inDomain(n.self.Name, storagePath) {
		return fmt.Errorf("%w: storage %q does not contain %q", ErrBadDomain, storagePath, n.self.Name)
	}
	if !inDomain(storagePath, accessPath) {
		return fmt.Errorf("%w: access %q does not contain storage %q", ErrBadDomain, accessPath, storagePath)
	}
	owner, err := n.Lookup(ctx, key, storagePath)
	if err != nil {
		return fmt.Errorf("netnode: put lookup: %w", err)
	}
	if err := n.storeAt(ctx, owner, storeReq{
		Key: key, Value: value, Storage: storagePath, Access: accessPath,
	}); err != nil {
		return err
	}
	if accessPath != storagePath {
		ptrOwner, err := n.Lookup(ctx, key, accessPath)
		if err != nil {
			return fmt.Errorf("netnode: pointer lookup: %w", err)
		}
		if ptrOwner.Addr != owner.Addr {
			if err := n.storeAt(ctx, ptrOwner, storeReq{
				Key: key, Storage: storagePath, Access: accessPath, Pointer: owner,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (n *Node) storeAt(ctx context.Context, target Info, req storeReq) error {
	if target.Addr == n.self.Addr {
		n.storeLocal(req)
		return nil
	}
	msg, err := transport.NewMessage(msgStore, req)
	if err != nil {
		return err
	}
	resp, err := n.call(ctx, target.Addr, msg)
	if err != nil {
		return fmt.Errorf("netnode: store at %s: %w", target.Addr, err)
	}
	var empty struct{}
	return resp.Decode(&empty)
}

func (n *Node) storeLocal(req storeReq) {
	n.m.storeWrites.Inc()
	n.mu.Lock()
	defer n.mu.Unlock()
	isPtr := !req.Pointer.IsZero()
	for _, item := range n.items[req.Key] {
		if item.storage == req.Storage && item.access == req.Access &&
			(!item.pointer.IsZero()) == isPtr {
			item.value = req.Value
			item.pointer = req.Pointer
			return
		}
	}
	n.items[req.Key] = append(n.items[req.Key], &storedItem{
		key: req.Key, value: req.Value,
		storage: req.Storage, access: req.Access, pointer: req.Pointer,
	})
	n.m.storeItems.Set(float64(len(n.items)))
}

// Get retrieves the first value for key that this node may access, probing
// its domains from the most local outward so that locally stored content is
// found without the query leaving the domain.
func (n *Node) Get(ctx context.Context, key uint64) ([]byte, error) {
	asked := make(map[string]bool)
	for l := n.levels; l >= 0; l-- {
		prefix := prefixAt(n.self.Name, l)
		owner, err := n.Lookup(ctx, key, prefix)
		if err != nil {
			continue
		}
		if asked[owner.Addr] {
			continue
		}
		asked[owner.Addr] = true
		values, err := n.fetchFrom(ctx, owner, key)
		if err != nil {
			continue
		}
		for _, v := range values {
			if v.Pointer.IsZero() {
				return v.Value, nil
			}
			// Resolve the indirection at the storing node.
			resolved, err := n.fetchFrom(ctx, v.Pointer, key)
			if err != nil {
				continue
			}
			for _, rv := range resolved {
				if rv.Pointer.IsZero() && rv.Access == v.Access {
					return rv.Value, nil
				}
			}
		}
	}
	return nil, ErrNotFound
}

func (n *Node) fetchFrom(ctx context.Context, target Info, key uint64) ([]fetchValue, error) {
	req := fetchReq{Key: key, Origin: n.self.Name}
	if target.Addr == n.self.Addr {
		return n.fetchLocal(req), nil
	}
	msg, err := transport.NewMessage(msgFetch, req)
	if err != nil {
		return nil, err
	}
	raw, err := n.call(ctx, target.Addr, msg)
	if err != nil {
		return nil, err
	}
	var resp fetchResp
	if err := raw.Decode(&resp); err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// fetchLocal returns the values (and pointers) for key that a querier named
// origin may access: those whose access domain contains the querier.
func (n *Node) fetchLocal(req fetchReq) []fetchValue {
	n.m.fetchReads.Inc()
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []fetchValue
	for _, item := range n.items[req.Key] {
		if !inDomain(req.Origin, item.access) {
			continue
		}
		out = append(out, fetchValue{Value: item.value, Access: item.access, Pointer: item.pointer})
	}
	return out
}

// homeDomain returns the domain whose ring an item is placed by: the
// storage domain for values, the access domain for pointer records (which
// live at the access-domain owner, Section 4.1).
func (item *storedItem) homeDomain() string {
	if !item.pointer.IsZero() {
		return item.access
	}
	return item.storage
}

// StoredKeys returns how many keys this node currently holds.
func (n *Node) StoredKeys() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.items)
}

// ownsLocally reports whether, by the node's own neighbor state, it is the
// owner of key within the domain at the given chain level: keys in
// [self.ID, successor.ID) belong to it (footnote 3 of the paper).
func (n *Node) ownsLocally(key uint64, level int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if level < 0 || level > n.levels || len(n.succs[level]) == 0 {
		return false
	}
	succ := n.succs[level][0]
	if succ.Addr == n.self.Addr {
		return true
	}
	return n.clockwise(n.self.ID, key) < n.clockwise(n.self.ID, succ.ID)
}

// replicateOnce pushes every item the node currently owns to the
// ReplicationFactor-1 nearest predecessors within the item's storage domain.
// Under the paper's responsibility rule (greatest ID <= key) a dead node's
// range is inherited by its predecessor, so predecessors — found by walking
// pred pointers through neighbor queries — are the nodes that must hold the
// replicas. Called from StabilizeOnce so replicas follow ring repairs.
func (n *Node) replicateOnce(ctx context.Context) {
	// Snapshot item values, not pointers: concurrent stores mutate items in
	// place under the node lock.
	n.mu.Lock()
	var items []storedItem
	for _, list := range n.items {
		for _, it := range list {
			items = append(items, *it)
		}
	}
	n.mu.Unlock()
	for i := range items {
		item := &items[i]
		level := len(components(item.homeDomain()))
		if level > n.levels {
			continue
		}
		if !n.ownsLocally(item.key, level) {
			// Ownership moved — typically a new node spliced into the range
			// (Section 2.3 joins). Hand the item to the current owner; the
			// local copy stays behind as an extra replica.
			n.handOff(ctx, item, level)
			continue
		}
		if n.cfg.ReplicationFactor < 2 {
			continue
		}
		req, err := transport.NewMessage(msgStore, storeReq{
			Key: item.key, Value: item.value,
			Storage: item.storage, Access: item.access,
			Pointer: item.pointer, Replica: true,
		})
		if err != nil {
			continue
		}
		target := n.Predecessor(level)
		for i := 0; i < n.cfg.ReplicationFactor-1; i++ {
			if target.IsZero() || target.Addr == n.self.Addr {
				break
			}
			if _, err := n.call(ctx, target.Addr, req); err != nil {
				break
			}
			next, err := n.predecessorOf(ctx, target, level)
			if err != nil {
				break
			}
			target = next
		}
	}
}

// handOff pushes an item this node no longer owns to the current owner
// within the item's storage domain.
func (n *Node) handOff(ctx context.Context, item *storedItem, level int) {
	prefix := prefixAt(n.self.Name, level)
	if prefix != item.homeDomain() {
		return // the item's home domain is not on our chain; nothing to do
	}
	owner, err := n.Lookup(ctx, item.key, item.homeDomain())
	if err != nil || owner.Addr == n.self.Addr {
		return
	}
	req, err := transport.NewMessage(msgStore, storeReq{
		Key: item.key, Value: item.value,
		Storage: item.storage, Access: item.access,
		Pointer: item.pointer, Replica: true,
	})
	if err != nil {
		return
	}
	_, _ = n.call(ctx, owner.Addr, req)
}

// predecessorOf asks a remote node for its predecessor at a level.
func (n *Node) predecessorOf(ctx context.Context, who Info, level int) (Info, error) {
	req, err := transport.NewMessage(msgNeighbors, neighborsReq{Level: level})
	if err != nil {
		return Info{}, err
	}
	raw, err := n.call(ctx, who.Addr, req)
	if err != nil {
		return Info{}, err
	}
	var resp neighborsResp
	if err := raw.Decode(&resp); err != nil {
		return Info{}, err
	}
	return resp.Pred, nil
}
