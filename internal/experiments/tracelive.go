package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/canon-dht/canon/internal/metrics"
	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

// traceLiveDomains are the leaf domains the traced cluster spreads across:
// two regions of two departments, so both intra-domain locality and
// cross-domain convergence have something to bite on.
var traceLiveDomains = []string{"west/a", "west/b", "east/a", "east/b"}

// TraceLive makes the paper's two structural route guarantees (Section 3.2)
// observable on a live cluster: it builds n nodes across four leaf domains
// over the in-memory bus, runs distributed-traced lookups, and checks the
// per-hop span evidence — (1) lookups constrained to the querier's domain
// never leave it (path locality), and (2) traces from several sources inside
// one domain to the same outside key exit through a single proxy node
// (proxy convergence). Every number is counted from real wire spans, not
// the analytical model.
func TraceLive(cfg Config, n, sources int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	if sources < 2 {
		sources = 3
	}
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := context.Background()

	nodes := make([]*netnode.Node, 0, n)
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	byDomain := make(map[string][]*netnode.Node)
	for i := 0; i < n; i++ {
		name := traceLiveDomains[i%len(traceLiveDomains)]
		nd, err := netnode.New(netnode.Config{
			Name:      name,
			RandomID:  true,
			Rand:      rng,
			Transport: bus.Endpoint(fmt.Sprintf("trace-%d", i)),
			Geometry:  cfg.Geometry,
		})
		if err != nil {
			return nil, err
		}
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := nd.Join(ctx, contact); err != nil {
			return nil, fmt.Errorf("join node %d: %w", i, err)
		}
		nodes = append(nodes, nd)
		byDomain[name] = append(byDomain[name], nd)
		if i%8 == 7 {
			for _, m := range nodes {
				m.StabilizeOnce(ctx)
			}
		}
	}
	for r := 0; r < 6; r++ {
		for _, m := range nodes {
			m.StabilizeOnce(ctx)
		}
		for _, m := range nodes {
			m.FixFingers(ctx)
		}
	}

	// Claim 1 — intra-domain path locality: constrained traced lookups must
	// show zero out-of-domain hops in their span evidence.
	intraLookups := cfg.RoutePairs
	if intraLookups > 400 {
		intraLookups = 400
	}
	var intraHops metrics.Stream
	localityViolations := 0
	for i := 0; i < intraLookups; i++ {
		domain := traceLiveDomains[i%len(traceLiveDomains)]
		members := byDomain[domain]
		src := members[rng.Intn(len(members))]
		key := uint64(rng.Uint32())
		_, tr, err := src.TracedLookup(ctx, key, domain)
		if err != nil {
			return nil, fmt.Errorf("intra-domain traced lookup: %w", err)
		}
		intraHops.Add(float64(tr.Hops()))
		if tr.OutOfDomainHops(domain) > 0 {
			localityViolations++
		}
	}

	// Claim 2 — proxy convergence: for keys owned outside the domain, traces
	// from `sources` distinct members must share one exit proxy.
	convKeys := 0
	convViolations := 0
	var globalHops metrics.Stream
	for convKeys < 32 {
		domain := traceLiveDomains[convKeys%len(traceLiveDomains)]
		members := byDomain[domain]
		if len(members) < sources {
			break
		}
		key := uint64(rng.Uint32())
		// Ground truth owner; skip keys the domain itself owns, where the
		// proxy and the owner coincide and the claim is vacuous.
		owner, err := members[0].Lookup(ctx, key, "")
		if err != nil || inPrefix(owner.Name, domain) {
			continue
		}
		proxies := make(map[string]bool)
		perm := rng.Perm(len(members))
		for s := 0; s < sources; s++ {
			src := members[perm[s]]
			_, tr, err := src.TracedLookup(ctx, key, "")
			if err != nil {
				return nil, fmt.Errorf("convergence traced lookup: %w", err)
			}
			globalHops.Add(float64(tr.Hops()))
			if proxy, ok := tr.ExitProxy(domain); ok {
				proxies[proxy.Addr] = true
			}
		}
		convKeys++
		if len(proxies) != 1 {
			convViolations++
		}
	}

	tbl := &metrics.Table{
		Title:  "Live route tracing: locality and proxy convergence from wire spans",
		XLabel: "nodes",
	}
	add := func(name string, v float64) {
		s := &metrics.Series{Name: name}
		s.Append(float64(n), v)
		tbl.AddSeries(s)
	}
	add("intra-domain traced lookups", float64(intraLookups))
	add("out-of-domain hop violations", float64(localityViolations))
	add("intra-domain avg hops", intraHops.Mean())
	add("convergence keys tested", float64(convKeys))
	add("distinct-proxy violations", float64(convViolations))
	add("global avg hops", globalHops.Mean())
	tbl.AddNote(fmt.Sprintf("domains: %v; %d sources per convergence key; every hop is a wire span", traceLiveDomains, sources))
	tbl.AddNote("Section 3.2 live: locality and convergence violations must both be 0")
	if localityViolations > 0 || convViolations > 0 {
		return tbl, fmt.Errorf("trace-live: %d locality and %d convergence violations (want 0 and 0)",
			localityViolations, convViolations)
	}
	return tbl, nil
}

// inPrefix reports whether name lies inside the domain named prefix.
func inPrefix(name, prefix string) bool {
	return telemetry.SpanInDomain(telemetry.Span{Name: name}, prefix)
}
