package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/canon-dht/canon/internal/metrics"
	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// GeometryCompare puts the three live routing geometries (docs/GEOMETRY.md)
// side by side under identical conditions: for each of Crescendo, Kandy and
// Cacophony it builds the same n-node four-domain cluster from the same
// seed, then reports loss-free lookup hops, routing-state size (links per
// node), lookup success under the given message-loss rate, locality
// violations counted from wire spans, and lookup success after a churn
// batch crashes an eighth of the cluster. The workload (origins and keys)
// is identical across geometries, so every difference in a row is the
// geometry's doing.
func GeometryCompare(cfg Config, n int, loss float64) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Routing geometries compared, %d nodes, %.0f%% loss", n, loss*100),
		XLabel: "nodes",
	}
	geoms := []string{netnode.GeometryCrescendo, netnode.GeometryKandy, netnode.GeometryCacophony}
	for _, geom := range geoms {
		row, err := geometryCompareAt(cfg, geom, n, loss)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", geom, err)
		}
		add := func(metric string, v float64) {
			s := &metrics.Series{Name: geom + " " + metric}
			s.Append(float64(n), v)
			tbl.AddSeries(s)
		}
		add("hops (loss-free)", row.hops)
		add("links per node", row.links)
		add("success under loss", row.lossSuccess)
		add("locality violations", float64(row.localityViolations))
		add("post-churn success", row.churnSuccess)
	}
	tbl.AddNote("same seed, domains and workload per geometry; loss injected by seeded FaultyTransport")
	tbl.AddNote("churn batch crashes n/8 nodes; success measured after re-stabilization")
	tbl.AddNote("Section 3.2 locality must hold for every geometry: violations must be 0")
	return tbl, nil
}

// geometryRow is one geometry's measurements.
type geometryRow struct {
	hops               float64
	links              float64
	lossSuccess        float64
	localityViolations int
	churnSuccess       float64
}

func geometryCompareAt(cfg Config, geom string, n int, loss float64) (*geometryRow, error) {
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := context.Background()

	nodes := make([]*netnode.Node, 0, n)
	faulties := make([]*transport.Faulty, 0, n)
	closed := make([]bool, n)
	defer func() {
		for i, nd := range nodes {
			if !closed[i] {
				_ = nd.Close()
			}
		}
	}()
	byDomain := make(map[string][]*netnode.Node)
	for i := 0; i < n; i++ {
		name := traceLiveDomains[i%len(traceLiveDomains)]
		ft := transport.NewFaulty(bus.Endpoint(fmt.Sprintf("geom-%s-%d", geom, i)), cfg.Seed+int64(i), transport.Faults{})
		nd, err := netnode.New(netnode.Config{
			Name:      name,
			RandomID:  true,
			Rand:      rng,
			Transport: ft,
			Geometry:  geom,
			Retry: netnode.RetryPolicy{
				MaxAttempts: 3,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  4 * time.Millisecond,
			},
		})
		if err != nil {
			return nil, err
		}
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := nd.Join(ctx, contact); err != nil {
			_ = nd.Close()
			return nil, fmt.Errorf("join node %d: %w", i, err)
		}
		nodes = append(nodes, nd)
		faulties = append(faulties, ft)
		byDomain[name] = append(byDomain[name], nd)
		if i%8 == 7 {
			for _, m := range nodes {
				m.StabilizeOnce(ctx)
			}
		}
	}
	settle := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for i, m := range nodes {
				if !closed[i] {
					m.StabilizeOnce(ctx)
				}
			}
			for i, m := range nodes {
				if !closed[i] {
					m.FixFingers(ctx)
				}
			}
		}
	}
	settle(6)

	row := &geometryRow{}

	// Routing-state size: long links plus all per-level successor lists.
	var totalLinks int
	for _, nd := range nodes {
		totalLinks += len(nd.Fingers())
		for l := 0; l <= nd.Levels(); l++ {
			totalLinks += len(nd.Successors(l))
		}
	}
	row.links = float64(totalLinks) / float64(n)

	// Fixed workload so every phase and geometry resolves identical queries.
	lookups := cfg.RoutePairs
	if lookups > 300 {
		lookups = 300
	}
	wrng := rand.New(rand.NewSource(cfg.Seed + 1))
	origins := make([]int, lookups)
	keys := make([]uint64, lookups)
	for i := range keys {
		origins[i] = wrng.Intn(n)
		keys[i] = uint64(wrng.Uint32())
	}

	// Loss-free baseline: owners are ground truth for the loss phase.
	owners := make([]string, lookups)
	var hops metrics.Stream
	for i := 0; i < lookups; i++ {
		owner, h, err := nodes[origins[i]].LookupHops(ctx, keys[i], "")
		if err != nil {
			return nil, fmt.Errorf("loss-free lookup: %w", err)
		}
		owners[i] = owner.Addr
		hops.Add(float64(h))
	}
	row.hops = hops.Mean()

	// Locality: intra-domain traced lookups must never leave the domain.
	for i := 0; i < 100; i++ {
		domain := traceLiveDomains[i%len(traceLiveDomains)]
		members := byDomain[domain]
		src := members[wrng.Intn(len(members))]
		_, tr, err := src.TracedLookup(ctx, uint64(wrng.Uint32()), domain)
		if err != nil {
			return nil, fmt.Errorf("traced lookup: %w", err)
		}
		if tr.OutOfDomainHops(domain) > 0 {
			row.localityViolations++
		}
	}

	// Same workload under message loss; success = same owner as loss-free.
	for _, ft := range faulties {
		ft.SetFaults(transport.Faults{Drop: loss})
	}
	ok := 0
	for i := 0; i < lookups; i++ {
		owner, _, err := nodes[origins[i]].LookupHops(ctx, keys[i], "")
		if err == nil && owner.Addr == owners[i] {
			ok++
		}
	}
	row.lossSuccess = float64(ok) / float64(lookups)
	for _, ft := range faulties {
		ft.SetFaults(transport.Faults{})
	}

	// Churn batch: crash n/8 nodes (never the workload's contact node 0),
	// re-stabilize, and replay the workload from surviving origins. Success
	// now means the lookup completes and lands on a live node — ownership
	// legitimately moves when owners die.
	alive := make(map[string]bool, n)
	for _, nd := range nodes {
		alive[nd.Info().Addr] = true
	}
	for k := 0; k < n/8; k++ {
		victim := 1 + wrng.Intn(n-1)
		if closed[victim] {
			continue
		}
		delete(alive, nodes[victim].Info().Addr)
		_ = nodes[victim].Close()
		closed[victim] = true
	}
	settle(4)
	ok = 0
	for i := 0; i < lookups; i++ {
		src := origins[i]
		for closed[src] {
			src = (src + 1) % n
		}
		owner, _, err := nodes[src].LookupHops(ctx, keys[i], "")
		if err == nil && alive[owner.Addr] {
			ok++
		}
	}
	row.churnSuccess = float64(ok) / float64(lookups)
	return row, nil
}
