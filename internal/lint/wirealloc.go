package lint

// wirealloc.go is the wirebounds half of the v4 engine: a per-function
// taint scan over the wire packages that flags slice allocations sized by a
// wire-controlled count with no effective bound. Counts read as uvarints
// (binary.Uvarint/ReadUvarint or a reader method classified uvarint /
// sliceheader) taint the locals they flow into; a comparison against a
// constant always sanitizes, a comparison against len(...) of the remaining
// input sanitizes only 1-byte elements (the remaining-bytes bound is
// element-size-agnostic, so an attacker spends one wire byte per element —
// harmless for bytes, a multiplier for multi-byte elements); min() with a
// constant operand sanitizes at the allocation site itself.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wireSizes matches the target the DHT runs on (64-bit words).
var wireSizes = types.StdSizes{WordSize: 8, MaxAlign: 8}

// allocScan scans one function for unbounded wire-sized allocations and
// appends findings to the extraction's alloc list.
func (x *wirePkg) allocScan(decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	// Pass 1: propagate taint from count reads through assignments. Two
	// rounds pick up one level of reassignment (m := n + 1).
	tainted := make(map[types.Object]token.Pos)
	for round := 0; round < 2; round++ {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			taintPos := token.NoPos
			for _, rhs := range as.Rhs {
				if p := x.countReadPos(rhs, tainted); p.IsValid() {
					taintPos = p
				}
			}
			if !taintPos.IsValid() {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := objOfInfo(x.info, id); obj != nil {
					if _, seen := tainted[obj]; !seen {
						tainted[obj] = taintPos
					}
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}
	// Pass 2: collect sanitizing comparisons anywhere in the function.
	constGuard := make(map[types.Object]bool)
	lenGuard := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			guarded, bound := side[0], side[1]
			obj, _ := firstTaintedIn(x.info, guarded, tainted)
			if obj == nil {
				continue
			}
			if isConstExpr(x.info, bound) {
				constGuard[obj] = true
			}
			if containsLenCall(x.info, bound) {
				lenGuard[obj] = true
			}
		}
		return true
	})
	// Pass 3: judge every make sized by a tainted count.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinCall(x.info, call, "make") || len(call.Args) < 2 {
			return true
		}
		tv, ok := x.info.Types[call.Args[0]]
		if !ok || tv.Type == nil {
			return true
		}
		sl, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			return true
		}
		elemSize := wireSizes.Sizeof(sl.Elem())
		for _, szArg := range call.Args[1:] {
			if minSanitized(x.info, szArg) {
				continue
			}
			obj, countPos := firstTaintedIn(x.info, szArg, tainted)
			if obj == nil || constGuard[obj] {
				continue
			}
			if lenGuard[obj] && elemSize == 1 {
				continue
			}
			x.ext.allocs = append(x.ext.allocs, wireAlloc{
				pos:      call.Pos(),
				countPos: countPos,
				fn:       funcLabel(decl),
				elem:     types.TypeString(sl.Elem(), func(p *types.Package) string { return p.Name() }),
				elemSize: elemSize,
				count:    obj.Name(),
			})
			break
		}
		return true
	})
}

// countReadPos reports where expr reads a count from the wire (or uses an
// already-tainted local), or NoPos.
func (x *wirePkg) countReadPos(expr ast.Expr, tainted map[types.Object]token.Pos) token.Pos {
	found := token.NoPos
	ast.Inspect(expr, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBinaryUvarintCall(x.info, n) {
				found = n.Pos()
				return false
			}
			if callee := x.calleeOf(n); callee != nil {
				switch x.readerKind(callee) {
				case wireEncUvarint, "sliceheader":
					found = n.Pos()
					return false
				}
			}
		case *ast.Ident:
			if obj := objOfInfo(x.info, n); obj != nil {
				if p, ok := tainted[obj]; ok {
					found = p
					return false
				}
			}
		}
		return true
	})
	return found
}

// firstTaintedIn finds the first tainted local referenced in expr.
func firstTaintedIn(info *types.Info, expr ast.Expr, tainted map[types.Object]token.Pos) (types.Object, token.Pos) {
	var obj types.Object
	var pos token.Pos
	ast.Inspect(expr, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := objOfInfo(info, id); o != nil {
				if p, ok := tainted[o]; ok {
					obj, pos = o, p
				}
			}
		}
		return obj == nil
	})
	return obj, pos
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func containsLenCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(info, call, "len") {
			found = true
		}
		return !found
	})
	return found
}

// minSanitized reports whether a size expression is a min() with at least
// one constant operand — a bound applied at the allocation itself.
func minSanitized(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	// Unwrap a conversion around the min call: int(min(n, cap)).
	if tv, found := info.Types[call.Fun]; found && tv.IsType() && len(call.Args) == 1 {
		return minSanitized(info, call.Args[0])
	}
	if !isBuiltinCall(info, call, "min") {
		return false
	}
	for _, arg := range call.Args {
		if isConstExpr(info, arg) {
			return true
		}
	}
	return false
}

// funcLabel renders a function's display name ("(*fetchResp).readFrom").
func funcLabel(decl *ast.FuncDecl) string {
	name := decl.Name.Name
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return name
	}
	t := decl.Recv.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + name
	}
	return name
}
