package transport_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/transport"
)

func TestUDPRoundTrip(t *testing.T) {
	srv, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(echoHandler)

	cli, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 10; i++ {
		msg, _ := transport.NewMessage("echo", echoBody{Text: fmt.Sprintf("u%d", i)})
		resp, err := cli.Call(context.Background(), srv.Addr(), msg)
		if err != nil {
			t.Fatal(err)
		}
		var out echoBody
		if err := resp.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("echo:u%d", i); out.Text != want {
			t.Errorf("got %q, want %q", out.Text, want)
		}
	}
}

func TestUDPConcurrent(t *testing.T) {
	srv, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(echoHandler)

	cli, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg, _ := transport.NewMessage("echo", echoBody{Text: fmt.Sprintf("c%d", i)})
			resp, err := cli.Call(context.Background(), srv.Addr(), msg)
			if err != nil {
				errs <- err
				return
			}
			var out echoBody
			if err := resp.Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Text != fmt.Sprintf("echo:c%d", i) {
				errs <- fmt.Errorf("mismatch %q", out.Text)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestUDPRetryIdempotent: a handler that counts invocations must run once
// per request ID even when the client retries (replay cache).
func TestUDPRetryIdempotent(t *testing.T) {
	srv, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var invocations atomic.Int64
	var delayed atomic.Bool
	srv.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		invocations.Add(1)
		// Delay the first response past one retry interval so the client
		// resends; the resend must hit the replay cache, not the handler.
		if !delayed.Swap(true) {
			time.Sleep(400 * time.Millisecond)
		}
		return msg, nil
	})

	cli, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msg, _ := transport.NewMessage("once", echoBody{Text: "x"})
	if _, err := cli.Call(ctx, srv.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	// Let any straggler retry arrive.
	time.Sleep(100 * time.Millisecond)
	if n := invocations.Load(); n != 1 {
		t.Errorf("handler ran %d times, want 1", n)
	}
}

func TestUDPUnreachable(t *testing.T) {
	cli, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	_, err = cli.Call(ctx, "127.0.0.1:9", transport.Message{Type: "x"})
	if err == nil {
		t.Fatal("expected error for silent destination")
	}
	if !errors.Is(err, transport.ErrUnreachable) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestUDPOversizeMessage(t *testing.T) {
	cli, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	big := make([]byte, 70000)
	msg, _ := transport.NewMessage("big", echoBody{Text: string(big)})
	if _, err := cli.Call(context.Background(), "127.0.0.1:1", msg); err == nil {
		t.Error("oversize message should error")
	}
}

func TestUDPClose(t *testing.T) {
	tr, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := tr.Call(context.Background(), "127.0.0.1:1", transport.Message{}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("call after close: %v", err)
	}
}

// TestLiveNodesOverUDP: the full node protocol runs over UDP.
func TestUDPWithEcho(t *testing.T) {
	// Covered further by netnode tests over UDP; here verify handler errors
	// surface through Decode.
	srv, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(func(context.Context, string, transport.Message) (transport.Message, error) {
		return transport.Message{}, errors.New("kaboom")
	})
	cli, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(context.Background(), srv.Addr(), transport.Message{Type: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var out struct{}
	if derr := resp.Decode(&out); derr == nil {
		t.Error("handler error should surface through Decode")
	}
}
