package transport

import (
	"context"
	"encoding"
	"encoding/json"
	"errors"
	"fmt"
)

var (
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnreachable is returned when the destination cannot be contacted.
	ErrUnreachable = errors.New("transport: unreachable")
	// ErrNoHandler is returned when a message arrives before Serve.
	ErrNoHandler = errors.New("transport: no handler registered")
)

// Payload encodings carried by Message.PayloadCodec. The codec is a local,
// per-delivery property: it describes how the Payload bytes of THIS message
// copy are encoded, and is re-derived on every wire crossing (a binary-mux
// connection re-encodes from Body; a JSON connection materializes JSON).
const (
	// PayloadJSON marks a JSON-encoded payload — the legacy and default form.
	PayloadJSON byte = 0
	// PayloadBinary marks a payload in the compact binary form described in
	// docs/WIRE.md, produced from a Body implementing BinaryAppender or
	// encoding.BinaryMarshaler. Only binary-mux connections deliver it.
	PayloadBinary byte = 1
)

// BinaryAppender is the allocation-free flavor of encoding.BinaryMarshaler:
// implementations append their canonical binary form to buf and return the
// extended slice. Wire bodies that implement it (alongside
// encoding.BinaryUnmarshaler for the decode direction) travel in compact
// binary form over multiplexed connections; everything else rides as JSON.
// The signature matches Go 1.24's encoding.BinaryAppender, declared locally
// so the module keeps its go 1.22 floor.
type BinaryAppender interface {
	AppendBinary(buf []byte) ([]byte, error)
}

// Message is the request/response envelope. Type selects the handler logic;
// Payload carries the encoded body (JSON unless PayloadCodec says otherwise).
type Message struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Nonce, when set, identifies the logical request across retried and
	// duplicated deliveries: receivers that deduplicate (see Faulty.Serve)
	// execute the handler at most once per nonce and replay the cached
	// response afterwards. Empty nonces are never deduplicated.
	Nonce string `json:"nonce,omitempty"`
	// Error carries an application-level error string in responses.
	Error string `json:"error,omitempty"`

	// Body retains the typed value the message was built from (NewMessage).
	// It never crosses the wire itself; encoders prefer it so a body that
	// supports binary marshaling is encoded exactly once, in the form the
	// negotiated connection wants, instead of paying json.Marshal up front.
	Body any `json:"-"`
	// PayloadCodec identifies the encoding of the Payload bytes
	// (PayloadJSON or PayloadBinary). It is delivery-local state set by the
	// decoding transport, never serialized.
	PayloadCodec byte `json:"-"`
}

// NewMessage builds a Message of the given type around body. Bodies that
// implement BinaryAppender or encoding.BinaryMarshaler are kept unencoded
// until a connection needs them (binary frames encode straight from Body,
// JSON frames materialize lazily via MarshalJSON); other bodies are JSON-
// encoded eagerly so marshal errors surface at the call site.
func NewMessage(msgType string, body any) (Message, error) {
	if body == nil {
		return Message{Type: msgType}, nil
	}
	switch body.(type) {
	case BinaryAppender, encoding.BinaryMarshaler:
		return Message{Type: msgType, Body: body}, nil
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return Message{}, fmt.Errorf("transport: marshal %s: %w", msgType, err)
	}
	return Message{Type: msgType, Payload: raw, Body: body}, nil
}

// jsonPayload returns the payload as JSON bytes, materializing it from Body
// when the message was built lazily. Binary payloads cannot be re-rendered as
// JSON without the Body (the transport does not know the schema).
func (m Message) jsonPayload() (json.RawMessage, error) {
	if m.Body != nil && (len(m.Payload) == 0 || m.PayloadCodec != PayloadJSON) {
		raw, err := json.Marshal(m.Body)
		if err != nil {
			return nil, fmt.Errorf("transport: marshal %s payload: %w", m.Type, err)
		}
		return raw, nil
	}
	if m.PayloadCodec != PayloadJSON {
		return nil, fmt.Errorf("transport: %s payload is binary and has no Body to re-encode", m.Type)
	}
	return m.Payload, nil
}

// MarshalJSON renders the wire-visible JSON form, materializing a lazily
// built payload from Body first. This is what legacy JSON framing (and the
// UDP envelope) serializes.
func (m Message) MarshalJSON() ([]byte, error) {
	raw, err := m.jsonPayload()
	if err != nil {
		return nil, err
	}
	m.Payload = raw
	type messageAlias Message // drops methods: no recursion
	return json.Marshal(messageAlias(m))
}

// Decode unmarshals the message payload into out. Binary payloads (delivered
// over multiplexed connections) decode through out's
// encoding.BinaryUnmarshaler; JSON payloads through encoding/json. In-process
// deliveries of lazily built messages round-trip through the body's own
// encoding — the compact binary form when both ends support it (through a
// pooled scratch buffer, so the in-memory hot path allocates no encode
// buffer), JSON otherwise — so every transport observes identical semantics.
func (m Message) Decode(out any) error {
	if m.Error != "" {
		return fmt.Errorf("transport: remote error: %s", m.Error)
	}
	if m.PayloadCodec == PayloadBinary {
		u, ok := out.(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("transport: %s payload is binary but %T cannot decode it", m.Type, out)
		}
		return u.UnmarshalBinary(m.Payload)
	}
	if len(m.Payload) == 0 && m.Body != nil {
		if a, ok := m.Body.(BinaryAppender); ok {
			if u, ok := out.(encoding.BinaryUnmarshaler); ok {
				buf := getBuf()
				defer putBuf(buf)
				enc, err := a.AppendBinary((*buf)[:0])
				if err != nil {
					return fmt.Errorf("transport: marshal %s payload: %w", m.Type, err)
				}
				*buf = enc
				return u.UnmarshalBinary(enc)
			}
		}
		raw, err := json.Marshal(m.Body)
		if err != nil {
			return fmt.Errorf("transport: marshal %s payload: %w", m.Type, err)
		}
		return json.Unmarshal(raw, out)
	}
	if len(m.Payload) == 0 {
		return nil
	}
	return json.Unmarshal(m.Payload, out)
}

// ErrorMessage builds an error response.
func ErrorMessage(err error) Message {
	return Message{Type: "error", Error: err.Error()}
}

// Handler processes one request and produces a response.
type Handler func(ctx context.Context, from string, msg Message) (Message, error)

// Transport sends requests to remote endpoints and serves incoming ones.
// Implementations are safe for concurrent use.
type Transport interface {
	// Addr returns the endpoint's address as other endpoints dial it.
	Addr() string
	// Call sends msg to addr and waits for the response.
	Call(ctx context.Context, addr string, msg Message) (Message, error)
	// Serve registers the handler for incoming requests. It must be called
	// exactly once, before the first incoming message is expected.
	Serve(h Handler)
	// Close releases resources; pending calls fail with ErrClosed.
	Close() error
}
