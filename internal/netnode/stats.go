package netnode

import (
	"context"

	"github.com/canon-dht/canon/internal/transport"
)

// Stats is a snapshot of a node's wire-traffic counters, keyed by message
// type. Useful for verifying protocol costs (e.g. O(log n) lookups) on live
// deployments.
type Stats struct {
	// Sent counts outgoing requests by message type.
	Sent map[string]int64
	// Received counts incoming requests by message type.
	Received map[string]int64
}

// call wraps the transport send, counting the outgoing message.
func (n *Node) call(ctx context.Context, addr string, msg transport.Message) (transport.Message, error) {
	n.mu.Lock()
	if n.sent == nil {
		n.sent = make(map[string]int64)
	}
	n.sent[msg.Type]++
	n.mu.Unlock()
	return n.tr.Call(ctx, addr, msg)
}

// countReceived tallies an incoming request.
func (n *Node) countReceived(msgType string) {
	n.mu.Lock()
	if n.received == nil {
		n.received = make(map[string]int64)
	}
	n.received[msgType]++
	n.mu.Unlock()
}

// Stats returns a copy of the node's traffic counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := Stats{
		Sent:     make(map[string]int64, len(n.sent)),
		Received: make(map[string]int64, len(n.received)),
	}
	for k, v := range n.sent {
		out.Sent[k] = v
	}
	for k, v := range n.received {
		out.Received[k] = v
	}
	return out
}
