// Package canonstore is the node-local storage engine behind netnode's
// stored items: the paper's Section 4 storage/access domains need every
// node to hold key-value records (values, pointer records and replicas),
// and this package provides that holding layer behind one Store interface
// with two implementations.
//
//   - Mem: a map-backed volatile store. The default for tests and
//     simulations, and the reference semantics.
//   - Disk: a log-structured durable store — an append-only WAL of
//     CRC-framed records, a full in-memory memtable index (disk is for
//     durability, not capacity), segment rotation, background compaction
//     and crash recovery by log replay. See docs/STORAGE.md for the exact
//     record layout and the segment lifecycle.
//
// Entries are versioned: Put applies last-write-wins per record identity
// (key, storage domain, access domain, pointerness), refusing writes whose
// Version is below the stored one. Versions are Lamport-style stamps the
// node layer assigns; the store only compares them. Entries also carry the
// hierarchy level they were placed at (Level), following Sarshar &
// Roychowdhury's level-annotated caching analysis, so replica sets and
// future eviction policies can be level-preferential.
//
// Values handed to and returned from a Store are shared, not copied:
// callers must treat Entry.Value as immutable after Put and after Get.
package canonstore

import (
	"errors"
	"sync"
)

var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("canonstore: store closed")
	// ErrCorrupt is returned by Open when a sealed WAL segment fails its
	// CRC or framing checks: unlike a torn tail in the newest segment
	// (expected after a crash, silently discarded), damage to sealed
	// history means acked data may be gone and must not be papered over.
	ErrCorrupt = errors.New("canonstore: corrupt WAL segment")
)

// Entry is one stored record: a value, or a pointer record naming the node
// that actually holds the value (Section 4.1 places pointers at the access
// domain's owner when the access domain is wider than the storage domain).
type Entry struct {
	Key     uint64
	Value   []byte
	Storage string // storage domain prefix ("" = global)
	Access  string // access domain prefix ("" = global)

	// PtrID/PtrName/PtrAddr identify the node holding the value when this
	// entry is a pointer record; PtrAddr == "" means a value entry.
	PtrID   uint64
	PtrName string
	PtrAddr string

	// Level is the hierarchy level this copy was placed for: the depth of
	// the domain ring whose key-owner holds it (the entry's home level for
	// the primary, deeper levels for per-level replicas).
	Level int

	// Version orders writes to the same record identity: higher wins, and
	// equal versions are broken by content digest (see putEntry). The node
	// layer stamps it.
	Version uint64
}

// IsPointer reports whether the entry is a pointer record.
func (e Entry) IsPointer() bool { return e.PtrAddr != "" }

// sameIdentity reports whether two entries name the same stored record:
// one key can simultaneously hold a value and a pointer, or copies under
// different domain pairs, and they must not overwrite each other.
func (e Entry) sameIdentity(o Entry) bool {
	return e.Key == o.Key && e.Storage == o.Storage && e.Access == o.Access &&
		e.IsPointer() == o.IsPointer()
}

// Store is the node-local storage engine interface netnode writes through.
//
// Sync is the durability barrier: an implementation may buffer Put and
// Delete arbitrarily, but after Sync returns nil every prior write must
// survive a crash. Nodes call Sync before acknowledging a store RPC
// (canonvet's fsyncbeforeack check enforces that ordering mechanically).
type Store interface {
	// Put upserts e by record identity. It reports whether the write was
	// applied: false means a stored version newer than e.Version won.
	Put(e Entry) (applied bool, err error)
	// Get appends every entry stored under key to dst and returns it.
	Get(key uint64, dst []Entry) []Entry
	// Delete removes the record with the given identity, reporting whether
	// it existed.
	Delete(key uint64, storage, access string, pointer bool) (existed bool, err error)
	// Keys returns how many distinct keys the store currently holds.
	Keys() int
	// ForEach visits every entry until fn returns false. The store's lock
	// is held for the duration: fn must not call back into the store.
	ForEach(fn func(Entry) bool)
	// Sync makes every prior write durable.
	Sync() error
	// Close releases the store's resources. A Mem store forgets
	// everything; a Disk store seals its log for a later Open.
	Close() error
}

// putEntry applies e to a memtable with last-write-wins versioning and
// reports whether it was applied. Writes are totally ordered by
// (Version, Digest): a higher version always wins, and equal versions —
// concurrent stamps from different writers — fall back to the content
// digest, so every replica that sees both candidates picks the same winner
// and anti-entropy cannot ping-pong a conflicted record between replicas.
// An exact re-put (equal version, equal digest) applies, keeping replica
// pushes idempotent. Shared by Mem and Disk's index.
func putEntry(items map[uint64][]Entry, e Entry) bool {
	list := items[e.Key]
	for i := range list {
		if list[i].sameIdentity(e) {
			if e.Version < list[i].Version {
				return false
			}
			if e.Version == list[i].Version && e.Digest() < list[i].Digest() {
				return false
			}
			list[i] = e
			return true
		}
	}
	items[e.Key] = append(list, e)
	return true
}

// deleteEntry removes the identified record from a memtable.
func deleteEntry(items map[uint64][]Entry, key uint64, storage, access string, pointer bool) bool {
	list := items[key]
	for i := range list {
		if list[i].Key == key && list[i].Storage == storage && list[i].Access == access &&
			list[i].IsPointer() == pointer {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			if len(list) == 0 {
				delete(items, key)
			} else {
				items[key] = list
			}
			return true
		}
	}
	return false
}

// Mem is the volatile Store: a memtable with no log under it. Sync is a
// no-op because nothing outlives the process anyway — the interface
// contract ("durable after Sync") holds vacuously.
type Mem struct {
	mu    sync.RWMutex
	items map[uint64][]Entry
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{items: make(map[uint64][]Entry)}
}

// Put implements Store.
func (m *Mem) Put(e Entry) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return putEntry(m.items, e), nil
}

// Get implements Store.
func (m *Mem) Get(key uint64, dst []Entry) []Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append(dst, m.items[key]...)
}

// Delete implements Store.
func (m *Mem) Delete(key uint64, storage, access string, pointer bool) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return deleteEntry(m.items, key, storage, access, pointer), nil
}

// Keys implements Store.
func (m *Mem) Keys() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.items)
}

// ForEach implements Store.
func (m *Mem) ForEach(fn func(Entry) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, list := range m.items {
		for _, e := range list {
			if !fn(e) {
				return
			}
		}
	}
}

// Sync implements Store.
func (m *Mem) Sync() error { return nil }

// Close implements Store.
func (m *Mem) Close() error { return nil }
