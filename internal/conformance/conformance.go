// Package conformance provides a reusable invariant battery for Canon
// geometries: any implementation of core.Geometry can be checked for the
// structural properties the paper's construction promises — logarithmic
// degree, high routing success, intra-domain path locality, inter-domain
// path convergence, and condition-(b) discipline. The five shipped
// geometries all pass; a sixth DHT added to the library should too.
package conformance

import (
	"math"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

// Options tunes the battery for a geometry's characteristics.
type Options struct {
	// Seed drives the population and nondeterministic links.
	Seed int64
	// N is the network size (default 512).
	N int
	// Levels and Fanout shape the hierarchy (defaults 3 and 4).
	Levels, Fanout int
	// MaxDegreeFactor bounds max degree by factor*log2(n) (default 5).
	MaxDegreeFactor float64
	// AvgDegreeFactor bounds average degree by factor*log2(n) (default 4).
	// Composites with complete leaf graphs need more headroom.
	AvgDegreeFactor float64
	// MinRouteSuccess is the required node-to-node routing success rate
	// (default 0.99).
	MinRouteSuccess float64
	// SkipConvergence disables the proxy-convergence check, which is a
	// ring-metric property (XOR geometries converge per key, not per
	// clockwise predecessor).
	SkipConvergence bool
	// LocalityMaxViolationRate is the tolerated fraction of intra-domain
	// routes that leave their domain. Ring geometries guarantee strict
	// locality (0, the default): greedy clockwise always has an in-domain
	// candidate with maximal advance. The XOR metric offers no such
	// dominance, so Kandy and Can-Can keep locality only approximately.
	LocalityMaxViolationRate float64
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 512
	}
	if o.Levels == 0 {
		o.Levels = 3
	}
	if o.Fanout == 0 {
		o.Fanout = 4
	}
	if o.MaxDegreeFactor == 0 {
		o.MaxDegreeFactor = 5
	}
	if o.AvgDegreeFactor == 0 {
		o.AvgDegreeFactor = 4
	}
	if o.MinRouteSuccess == 0 {
		o.MinRouteSuccess = 0.99
	}
	return o
}

// Run executes the battery against the geometry produced by factory.
func Run(t *testing.T, factory func(space id.Space) core.Geometry, opts Options) {
	t.Helper()
	opts = opts.withDefaults()
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(opts.Seed))
	tree, err := hierarchy.Balanced(opts.Levels, opts.Fanout)
	if err != nil {
		t.Fatal(err)
	}
	leaves := hierarchy.AssignZipf(rng, tree, opts.N, 1.25)
	pop, err := core.RandomPopulation(rng, space, tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, factory(space), rng)

	t.Run("degree", func(t *testing.T) { checkDegree(t, nw, opts) })
	t.Run("routing", func(t *testing.T) { checkRouting(t, nw, opts) })
	t.Run("locality", func(t *testing.T) { checkLocality(t, nw, opts) })
	if !opts.SkipConvergence {
		t.Run("convergence", func(t *testing.T) { checkConvergence(t, nw, opts) })
	}
	t.Run("no-self-links", func(t *testing.T) { checkNoSelfLinks(t, nw) })
}

// checkDegree: average degree in the log2(n) ballpark, max degree bounded.
func checkDegree(t *testing.T, nw *core.Network, opts Options) {
	t.Helper()
	logN := math.Log2(float64(nw.Len()))
	avg := nw.AvgDegree()
	if avg < logN/2 || avg > opts.AvgDegreeFactor*logN {
		t.Errorf("avg degree %.2f outside [log n / 2, %.0f log n] for n=%d",
			avg, opts.AvgDegreeFactor, nw.Len())
	}
	maxDeg := 0
	for i := 0; i < nw.Len(); i++ {
		if d := nw.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if limit := opts.MaxDegreeFactor * logN; float64(maxDeg) > limit {
		t.Errorf("max degree %d exceeds %.0f", maxDeg, limit)
	}
}

// checkRouting: node-to-node routes succeed nearly always.
func checkRouting(t *testing.T, nw *core.Network, opts Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	ok, total := 0, 2000
	var hops float64
	for i := 0; i < total; i++ {
		from, to := rng.Intn(nw.Len()), rng.Intn(nw.Len())
		r := nw.RouteToNode(from, to)
		if r.Success && r.Last() == to {
			ok++
			hops += float64(r.Hops())
		}
	}
	if rate := float64(ok) / float64(total); rate < opts.MinRouteSuccess {
		t.Errorf("routing success %.4f below %.4f", rate, opts.MinRouteSuccess)
	}
	if ok > 0 {
		if avg := hops / float64(ok); avg > 3*math.Log2(float64(nw.Len())) {
			t.Errorf("avg hops %.2f superlogarithmic", avg)
		}
	}
}

// checkLocality: routes between same-domain nodes stay in the domain —
// strictly for ring geometries, within the tolerated rate otherwise.
func checkLocality(t *testing.T, nw *core.Network, opts Options) {
	t.Helper()
	pop := nw.Population()
	rng := rand.New(rand.NewSource(opts.Seed + 2))
	violations, total := 0, 0
	for i := 0; i < 1500; i++ {
		from, to := rng.Intn(nw.Len()), rng.Intn(nw.Len())
		lca := hierarchy.LCA(pop.LeafOf(from), pop.LeafOf(to))
		r := nw.RouteToNode(from, to)
		if !r.Success {
			continue
		}
		total++
		for _, hop := range r.Nodes {
			if !lca.IsAncestorOf(pop.LeafOf(hop)) {
				if opts.LocalityMaxViolationRate == 0 {
					t.Fatalf("route %d -> %d left %q at %d", from, to, lca.Path(), hop)
				}
				violations++
				break
			}
		}
	}
	if total > 0 {
		if rate := float64(violations) / float64(total); rate > opts.LocalityMaxViolationRate {
			t.Errorf("locality violation rate %.3f exceeds %.3f", rate, opts.LocalityMaxViolationRate)
		}
	}
}

// checkConvergence: all routes from a domain to the same outside key exit
// through the domain's proxy node (ring geometries).
func checkConvergence(t *testing.T, nw *core.Network, opts Options) {
	t.Helper()
	pop := nw.Population()
	rng := rand.New(rand.NewSource(opts.Seed + 3))
	checked := 0
	for trial := 0; trial < 400 && checked < 100; trial++ {
		dst := rng.Intn(nw.Len())
		src := rng.Intn(nw.Len())
		d := pop.LeafOf(src).AncestorAt(1)
		if d == nil || d.IsAncestorOf(pop.LeafOf(dst)) {
			continue
		}
		ring := nw.RingOf(d)
		if ring == nil || ring.Len() < 3 {
			continue
		}
		proxy := nw.Proxy(d, pop.IDOf(dst))
		for i := 0; i < 3; i++ {
			from := ring.Member(rng.Intn(ring.Len()))
			r := nw.RouteToNode(from, dst)
			if !r.Success {
				continue
			}
			exit := -1
			for _, hop := range r.Nodes {
				if d.IsAncestorOf(pop.LeafOf(hop)) {
					exit = hop
				} else {
					break
				}
			}
			if exit != proxy {
				t.Fatalf("route from %d exits %q at %d, want proxy %d", from, d.Path(), exit, proxy)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no convergence cases sampled")
	}
}

// checkNoSelfLinks: adjacency lists are sorted, unique and self-free.
func checkNoSelfLinks(t *testing.T, nw *core.Network) {
	t.Helper()
	for i := 0; i < nw.Len(); i++ {
		links := nw.Links(i)
		for j, l := range links {
			if int(l) == i {
				t.Fatalf("node %d links to itself", i)
			}
			if j > 0 && links[j-1] >= l {
				t.Fatalf("node %d adjacency not sorted/unique", i)
			}
		}
	}
}
