#!/usr/bin/env bash
# lint.sh — the project's full static-analysis gate, runnable locally and in
# CI: gofmt (fail on any unformatted file), go vet, and canonvet (the
# project-specific analyzer in cmd/canonvet).
#
# Usage:
#   ./scripts/lint.sh                # everything
#   ./scripts/lint.sh --no-canonvet  # formatting + go vet only (CI splits the
#                                    # canonvet step out to archive its JSON)
#
# Exit codes: 0 clean, 1 findings/format/vet failures, 2 canonvet could not
# even load or type-check the module (a broken analyzer or broken tree — CI
# must surface this differently from ordinary findings).
set -u

cd "$(dirname "$0")/.."

run_canonvet=1
for arg in "$@"; do
  case "$arg" in
    --no-canonvet) run_canonvet=0 ;;
    *)
      echo "lint.sh: unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

fail=0

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet =="
if ! go vet ./...; then
  fail=1
fi

if [ "$run_canonvet" = 1 ]; then
  echo "== canonvet =="
  SECONDS=0
  go run ./cmd/canonvet ./...
  vet_status=$?
  elapsed=$SECONDS
  # Timing budget: the v3 value-flow fixpoint must keep a full-module run
  # under 90 seconds, or the analyzer stops being something anyone runs
  # before committing. Budget breaches fail the gate like findings do.
  echo "canonvet: full-module run took ${elapsed}s (budget 90s)"
  if [ "$elapsed" -ge 90 ]; then
    echo "lint.sh: canonvet timing budget exceeded: ${elapsed}s >= 90s" >&2
    fail=1
  fi
  case "$vet_status" in
    0) ;;
    1)
      echo "lint.sh: canonvet reported findings" >&2
      fail=1
      ;;
    *)
      # Exit 2 (or anything unexpected) means the analyzer failed to load or
      # type-check the module: not a lint finding, a broken build. Propagate
      # it verbatim so CI can tell the two apart.
      echo "lint.sh: canonvet failed to run (exit $vet_status): load/type-check error, not a finding" >&2
      exit 2
      ;;
  esac
fi

if [ "$fail" != 0 ]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: ok"
