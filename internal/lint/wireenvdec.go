package lint

// wireenvdec.go interprets the envelope decoder, which differs from the
// body decoders in shape: it consumes a raw byte slice directly (a flags
// byte peeled off the front, a `rest` stream advanced in place) and reads
// strings through a locally-defined closure instead of a strict-reader
// method. The walker recognizes exactly those idioms; anything else that
// touches the stream becomes an extraction note.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type envDecInterp struct {
	x        *wirePkg
	data     types.Object            // the input []byte parameter
	stream   types.Object            // the advancing rest-of-input local
	flagsF   *WireField              // the emitted flags field
	flagsObj types.Object            // the flags byte local
	closures map[types.Object]string // read closures -> field encoding
	root     types.Object            // the message local being filled
	fields   []*WireField
	curCond  string
	notes    *[]wireNote
}

// interpEnvelopeDecoder interprets the package-level envelope decoder.
func (x *wirePkg) interpEnvelopeDecoder(decl *ast.FuncDecl) ([]*WireField, []wireNote) {
	var notes []wireNote
	d := &envDecInterp{x: x, closures: make(map[types.Object]string), notes: &notes}
	if decl.Type.Params != nil {
		for _, fl := range decl.Type.Params.List {
			for _, name := range fl.Names {
				if obj := x.info.Defs[name]; obj != nil && d.data == nil && isByteSlice(obj.Type()) {
					d.data = obj
				}
			}
		}
	}
	if d.data == nil {
		notes = append(notes, wireNote{decl.Pos(), "envelope decoder has no []byte parameter"})
		return nil, notes
	}
	d.stmts(decl.Body.List)
	return d.fields, notes
}

func (d *envDecInterp) note(pos token.Pos, msg string) {
	*d.notes = append(*d.notes, wireNote{pos, msg})
}

func (d *envDecInterp) emit(f *WireField) {
	if d.curCond != "" && f.Cond == "" {
		f.Cond = d.curCond
	}
	d.fields = append(d.fields, f)
}

func (d *envDecInterp) stmts(list []ast.Stmt) {
	for _, s := range list {
		d.stmt(s)
	}
}

func (d *envDecInterp) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		d.stmts(s.List)
	case *ast.DeclStmt:
		d.declStmt(s)
	case *ast.AssignStmt:
		d.assign(s)
	case *ast.IfStmt:
		d.ifStmt(s)
	case *ast.ReturnStmt:
		// Success and failure returns alike carry no layout information.
	default:
		if d.mentionsStream(s) {
			d.note(s.Pos(), "unsupported statement reads the envelope")
		}
	}
}

// declStmt registers the `var msg Message` destination.
func (d *envDecInterp) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) > 0 {
			continue
		}
		for _, name := range vs.Names {
			obj := d.x.info.Defs[name]
			if obj == nil || d.root != nil {
				continue
			}
			if _, isStruct := obj.Type().Underlying().(*types.Struct); isStruct && namedOf(obj.Type()) != nil {
				d.root = obj
			}
		}
	}
}

func (d *envDecInterp) assign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE && len(s.Rhs) == 1 {
		rhs := unparen(s.Rhs[0])
		// flags := data[0]
		if idx, ok := rhs.(*ast.IndexExpr); ok && len(s.Lhs) == 1 && d.exprIs(idx.X, d.data) {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				f := &WireField{Name: id.Name, Enc: wireEncFlags, Bits: []*WireBit{}}
				d.emit(f)
				d.flagsF = f
				d.flagsObj = d.x.info.Defs[id]
				return
			}
		}
		// rest := data[1:]
		if sl, ok := rhs.(*ast.SliceExpr); ok && len(s.Lhs) == 1 && d.exprIs(sl.X, d.data) {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				d.stream = d.x.info.Defs[id]
				return
			}
		}
		// readStr := func() (string, error) { ... }
		if lit, ok := rhs.(*ast.FuncLit); ok && len(s.Lhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				kind := d.closureKind(lit)
				if kind == "" {
					d.note(s.Pos(), "unrecognized envelope read closure "+id.Name)
					return
				}
				d.closures[d.x.info.Defs[id]] = kind
				return
			}
		}
		// n, sz := binary.Uvarint(rest): an inline length header; the bytes
		// that follow are recognized at their copy site.
		if call, ok := rhs.(*ast.CallExpr); ok && isBinaryUvarintCall(d.x.info, call) {
			return
		}
		if d.mentionsStream(s) {
			d.note(s.Pos(), "unrecognized envelope read")
		}
		return
	}

	if len(s.Lhs) == 0 || len(s.Rhs) != 1 {
		if d.mentionsStream(s) {
			d.note(s.Pos(), "unsupported assignment reads the envelope")
		}
		return
	}
	rhs := unparen(s.Rhs[0])
	switch lhs := s.Lhs[0].(type) {
	case *ast.SelectorExpr:
		if !d.exprIs(lhs.X, d.root) || d.root == nil {
			break
		}
		// msg.Type, err = readStr()
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if kind, ok := d.closures[objOfInfo(d.x.info, id)]; ok {
					d.emit(&WireField{Name: lhs.Sel.Name, Enc: kind})
					return
				}
			}
			// msg.Payload = append([]byte(nil), rest[sz:sz+int(n)]...)
			if isBuiltinCall(d.x.info, call, "append") && call.Ellipsis.IsValid() && d.copiesStream(call) {
				d.emit(&WireField{Name: lhs.Sel.Name, Enc: wireEncBytes})
				return
			}
		}
		// Assignments that decode nothing (msg.PayloadCodec = PayloadBinary).
		if !d.mentionsStream(s) {
			return
		}
	case *ast.Ident:
		// rest = rest[sz+int(n):]: the stream advancing.
		if objOfInfo(d.x.info, lhs) == d.stream && d.stream != nil {
			return
		}
	}
	if d.mentionsStream(s) {
		d.note(s.Pos(), "unrecognized envelope read")
	}
}

func (d *envDecInterp) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		d.stmt(s.Init)
	}
	cond := unparen(s.Cond)
	// if flags&C != 0 { conditional fields }
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op == token.NEQ && isZeroLit(d.x.info, be.Y) {
		if and, ok := unparen(be.X).(*ast.BinaryExpr); ok && and.Op == token.AND {
			if id, ok := unparen(and.X).(*ast.Ident); ok &&
				d.flagsObj != nil && objOfInfo(d.x.info, id) == d.flagsObj {
				if mask, name, ok := d.x.constBit(and.Y); ok && d.flagsF != nil {
					addBit(&d.flagsF.Bits, mask, name)
					saved := d.curCond
					d.curCond = name
					d.stmts(s.Body.List)
					d.curCond = saved
					return
				}
			}
		}
	}
	// Everything else is a bounds/error guard (err != nil, len(data) < 1,
	// len(rest) != 0, sz <= 0 || ...): the arms may only fail, not decode.
	before := len(d.fields)
	d.stmts(s.Body.List)
	switch el := s.Else.(type) {
	case *ast.BlockStmt:
		d.stmts(el.List)
	case *ast.IfStmt:
		d.stmt(el)
	}
	if len(d.fields) > before {
		d.note(s.Pos(), "conditional envelope read with an unrecognized condition")
	}
}

// closureKind classifies a locally-defined read closure by its results.
func (d *envDecInterp) closureKind(lit *ast.FuncLit) string {
	tv, ok := d.x.info.Types[lit]
	if !ok {
		return ""
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return ""
	}
	if !bodyPrims(d.x.info, lit.Body)["Uvarint"] {
		return ""
	}
	t := sig.Results().At(0).Type()
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		return wireEncString
	}
	if isByteSlice(t) {
		return wireEncBytes
	}
	return ""
}

// copiesStream reports whether an append call copies a slice of the stream.
func (d *envDecInterp) copiesStream(call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	if sl, ok := unparen(call.Args[1]).(*ast.SliceExpr); ok {
		return d.exprIs(sl.X, d.stream)
	}
	return false
}

func (d *envDecInterp) exprIs(e ast.Expr, obj types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && obj != nil && objOfInfo(d.x.info, id) == obj
}

// mentionsStream reports whether a node reads the raw input or the stream.
func (d *envDecInterp) mentionsStream(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := objOfInfo(d.x.info, id)
			if obj != nil && (obj == d.data || obj == d.stream) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBinaryUvarintCall matches binary.Uvarint / binary.ReadUvarint calls.
func isBinaryUvarintCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Uvarint" && sel.Sel.Name != "ReadUvarint") {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "encoding/binary"
}
