// The lock-sharded metrics registry; the package documentation lives in
// doc.go.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// numShards spreads metric registration and enumeration across independent
// locks. Mutating an existing metric never touches a shard lock — only
// get-or-create and Snapshot do.
const numShards = 16

// Label is one name=value dimension attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind enumerates the metric types a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// meta is the identity shared by every metric type.
type meta struct {
	name   string
	help   string
	labels []Label
	kind   Kind
}

// Name returns the metric's name.
func (m *meta) Name() string { return m.name }

// Labels returns the metric's label set (sorted by key).
func (m *meta) Labels() []Label { return append([]Label(nil), m.labels...) }

// key serializes name+labels into the registry map key.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('\x01')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing int64.
type Counter struct {
	meta
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	meta
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative on export,
// per-bucket internally). Bounds are upper bounds; an implicit +Inf bucket
// catches the tail.
type Histogram struct {
	meta
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last entry
// being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within the
// bucket that crosses it. Good enough for operator dashboards; not exact.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	lower := 0.0
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if seen+c >= rank && c > 0 {
			upper := math.Inf(1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := (rank - seen) / c
			return lower + (upper-lower)*frac
		}
		seen += c
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// shard is one lock domain of the registry.
type shard struct {
	mu      sync.RWMutex
	metrics map[string]any
}

// Registry is a lock-sharded collection of named metrics. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	shards [numShards]shard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].metrics = make(map[string]any)
	}
	return r
}

func (r *Registry) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &r.shards[h.Sum32()%numShards]
}

// getOrCreate returns the metric under key, creating it with mk on first use.
// A kind clash (same name registered as a different type) panics: that is a
// programming error, not a runtime condition.
func (r *Registry) getOrCreate(name, help string, kind Kind, labels []Label, mk func(meta) any) any {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := metricKey(name, sorted)
	s := r.shardFor(key)
	s.mu.RLock()
	m, ok := s.metrics[key]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		m, ok = s.metrics[key]
		if !ok {
			m = mk(meta{name: name, help: help, labels: sorted, kind: kind})
			s.metrics[key] = m
		}
		s.mu.Unlock()
	}
	switch got := m.(type) {
	case *Counter:
		if kind != KindCounter {
			panic(fmt.Sprintf("telemetry: %s already registered as counter, requested %s", name, kind))
		}
		return got
	case *Gauge:
		if kind != KindGauge {
			panic(fmt.Sprintf("telemetry: %s already registered as gauge, requested %s", name, kind))
		}
		return got
	case *Histogram:
		if kind != KindHistogram {
			panic(fmt.Sprintf("telemetry: %s already registered as histogram, requested %s", name, kind))
		}
		return got
	default:
		panic("telemetry: unknown metric type in registry")
	}
}

// Counter returns (creating on first use) the counter with the given name and
// labels. The help string is recorded on creation and ignored afterwards.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getOrCreate(name, help, KindCounter, labels, func(m meta) any {
		return &Counter{meta: m}
	}).(*Counter)
}

// Gauge returns (creating on first use) the gauge with the given name/labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getOrCreate(name, help, KindGauge, labels, func(m meta) any {
		return &Gauge{meta: m}
	}).(*Gauge)
}

// DefBuckets are general-purpose latency buckets in seconds, from 100µs to
// ~10s, roughly exponential.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// HopBuckets suit per-lookup forwarding hop counts (O(log n) expected).
var HopBuckets = []float64{0, 1, 2, 4, 6, 8, 12, 16, 24, 32, 64, 128}

// AttemptBuckets suit per-call RPC attempt counts.
var AttemptBuckets = []float64{1, 2, 3, 4, 6, 8}

// Histogram returns (creating on first use) the histogram with the given
// name/labels. buckets are upper bounds and must be sorted ascending; nil
// means DefBuckets. The bucket layout is fixed at creation.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.getOrCreate(name, help, KindHistogram, labels, func(m meta) any {
		bounds := append([]float64(nil), buckets...)
		h := &Histogram{meta: m, bounds: bounds}
		h.buckets = make([]atomic.Int64, len(bounds)+1)
		return h
	}).(*Histogram)
}

// Sample is one exported data point in a Snapshot.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value holds the counter value or gauge value; for histograms it is the
	// observation count, with Sum/Bounds/Buckets filled in.
	Value   float64
	Sum     float64
	Bounds  []float64
	Buckets []int64 // per-bucket counts, last is +Inf
}

// Snapshot returns a point-in-time copy of every metric, sorted by name then
// label signature — the stable order the Prometheus exposition uses.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, m := range s.metrics {
			switch v := m.(type) {
			case *Counter:
				out = append(out, Sample{
					Name: v.name, Help: v.help, Kind: KindCounter,
					Labels: v.Labels(), Value: float64(v.Value()),
				})
			case *Gauge:
				out = append(out, Sample{
					Name: v.name, Help: v.help, Kind: KindGauge,
					Labels: v.Labels(), Value: v.Value(),
				})
			case *Histogram:
				out = append(out, Sample{
					Name: v.name, Help: v.help, Kind: KindHistogram,
					Labels: v.Labels(), Value: float64(v.Count()),
					Sum: v.Sum(), Bounds: v.Bounds(), Buckets: v.BucketCounts(),
				})
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelSig(out[i].Labels) < labelSig(out[j].Labels)
	})
	return out
}

// CounterValue reads a counter by name+labels without creating it (0 when
// absent). Useful for assertions and Stats bridging.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := metricKey(name, sorted)
	s := r.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.metrics[key].(*Counter); ok {
		return c.Value()
	}
	return 0
}

func labelSig(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
