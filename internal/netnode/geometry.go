// The live Geometry abstraction: the axis along which the Canon construction
// is generic (paper Sections 5-6). A geometry owns everything about routing
// that is not the ring substrate itself:
//
//   - the link table: which long links the node builds and the merge rule
//     bounding links that leave a domain (fixLinks, the live analog of the
//     offline core.Geometry BaseLinks/MergeLinks);
//   - the admissibility predicate: the Section 2.2 link-retention verdict a
//     lookup applies before using a contact as a greedy candidate
//     (geomAdmissible);
//   - the next-hop choice: how one forwarding hop scores the candidates in
//     the advance-without-overshoot window (forwardSet / forwardSetScored in
//     snapshot.go, keyed on geomKind so the hot path stays free of dynamic
//     dispatch);
//   - geometry-specific maintenance RPCs (maintain): Kandy's bucket-refresh
//     probes and Cacophony's lookahead neighbor exchange (docs/WIRE.md §9).
//
// What a geometry does NOT change: the per-level clockwise rings
// (successor lists, predecessors, stabilization, notify), ownership (a key
// belongs to its clockwise predecessor within the domain), storage,
// replication and anti-entropy. Every geometry routes inside the clockwise
// advance-without-overshoot window, so lookups terminate and resolve to the
// same owner regardless of geometry — geometries differ in which links exist
// and which window candidate a hop prefers, not in what an answer means.
//
// The written contract a fourth geometry must satisfy lives in
// docs/GEOMETRY.md.
package netnode

import (
	"context"
	"fmt"

	"github.com/canon-dht/canon/internal/id"
)

// Geometry names accepted by Config.Geometry.
const (
	// GeometryCrescendo is the Canonical Chord of Section 3 (the default):
	// clockwise metric, powers-of-two fingers, maximal-advance next hop.
	GeometryCrescendo = "crescendo"
	// GeometryKandy is the Canonical Kademlia of Section 5.1: XOR metric,
	// one link per XOR bucket, XOR-nearest next hop within the clockwise
	// window.
	GeometryKandy = "kandy"
	// GeometryCacophony is the Canonical Symphony of Section 5.2: harmonic
	// long links drawn against an estimated ring size, 1-lookahead next hop.
	GeometryCacophony = "cacophony"
)

// geomKind is the hot-path identity of a geometry. The forwarding decision
// and the snapshot builder switch on it directly — an interface call there
// would be dynamic dispatch on the zero-alloc path for no benefit, since the
// set of geometries is closed at compile time.
type geomKind uint8

const (
	geomCrescendo geomKind = iota
	geomKandy
	geomCacophony
)

// geometry is the control-plane face of a routing geometry. Implementations
// are stateless: all state lives on the Node, so a geometry value is shared
// freely.
type geometry interface {
	// kind is the hot-path switch key.
	kind() geomKind
	// name is the Config.Geometry spelling, reported by Node.GeometryName.
	name() string
	// fixLinks rebuilds Node.fingers with the geometry's link-creation rule
	// under the Canon merge bound, leaf domain first and root last, and
	// publishes the result. It is the live analog of the offline
	// core.Geometry BaseLinks/MergeLinks pair.
	fixLinks(ctx context.Context, n *Node)
	// maintain runs the geometry's extra per-stabilization-round protocol
	// (bucket refresh, lookahead exchange); a no-op for geometries whose
	// links need nothing beyond fixLinks.
	maintain(ctx context.Context, n *Node)
}

// geometryByName resolves a Config.Geometry spelling; empty selects
// Crescendo.
func geometryByName(name string) (geometry, error) {
	switch name {
	case "", GeometryCrescendo:
		return crescendoGeometry{}, nil
	case GeometryKandy:
		return kandyGeometry{}, nil
	case GeometryCacophony:
		return cacophonyGeometry{}, nil
	default:
		return nil, fmt.Errorf("netnode: unknown geometry %q (want %s, %s or %s)",
			name, GeometryCrescendo, GeometryKandy, GeometryCacophony)
	}
}

// GeometryName returns the node's routing geometry ("crescendo", "kandy" or
// "cacophony").
func (n *Node) GeometryName() string { return n.geom.name() }

// geomAdmissible evaluates the Canon link-retention rule (Section 2.2) under
// a geometry's metric. It is the single source of truth for admissibility:
// the mutex-held reference (canonAdmissible) and the snapshot builder
// (admissibleInView) both delegate here, so the two can never drift.
//
// A contact whose lowest common domain with the node sits at depth s leaves
// the node's level-(s+1) domain, and the merge that created level s only
// retains such links when they are strictly shorter — in the geometry's
// metric — than the node's distance to its successor inside the level-(s+1)
// ring:
//
//   - Crescendo and Cacophony measure both sides in clockwise ring distance
//     (Chord fingers and Symphony draws are both clockwise constructions;
//     symphony.Geometry.Bound is the successor distance).
//   - Kandy measures in XOR distance (kademlia.Geometry.Bound: the shortest
//     existing link), but additionally admits contacts within the clockwise
//     bound: the ring substrate's own links (successors learned through
//     stabilization) are what guarantee forward progress, and the XOR
//     metric is not monotone along the ring, so without the clockwise
//     clause a node's ring successor could be inadmissible and strand a
//     lookup one hop short of its owner.
//
// dist is the precomputed clockwise distance from self to cand.
func geomAdmissible(g geomKind, space id.Space, self Info, levels int, succs [][]Info, cand Info, dist uint64) bool {
	s := sharedLevels(self.Name, cand.Name)
	if s >= levels {
		return true // same leaf domain: the geometry's full link table applies
	}
	for l := s + 1; l <= levels; l++ {
		if len(succs[l]) > 0 && succs[l][0].Addr != self.Addr {
			if dist < space.Clockwise(id.ID(self.ID), id.ID(succs[l][0].ID)) {
				return true
			}
			if g == geomKandy {
				return space.XOR(id.ID(self.ID), id.ID(cand.ID)) <
					space.XOR(id.ID(self.ID), id.ID(succs[l][0].ID))
			}
			return false
		}
	}
	return true // no deeper ring known yet (still joining): no bound to apply
}
