// Package lint implements canonvet, a project-specific static analyzer for
// the Canon DHT codebase. It mechanically enforces invariants the project
// has already been bitten by (or is structurally exposed to): circular-ID
// arithmetic must go through the ring-metric helpers in internal/id,
// pure-simulation packages must stay seed-reproducible, shared RNGs must be
// lock-adjacent, RPCs must not be issued while a node's mutex is held,
// metric names must be named constants, and wire-message structs must not
// drift silently.
//
// Checks are table-driven (see AllChecks); adding one is a ~30-line affair:
// write a Run function over a Pass, append a Check entry. Every check honors
// the per-file escape hatch
//
//	//canonvet:ignore <check>[,<check>...] -- <one-line justification>
//
// placed above the package clause (whole file) or on/above the offending
// line (that line only). The analyzer is stdlib-only: go/ast + go/parser +
// go/types + go/token, with go/importer resolving standard-library imports
// from source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, with a position that renders as file:line:col.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Column, d.Message, d.Check)
}

// Check is one named analysis over a package.
type Check struct {
	// Name is the identifier used by -checks and ignore pragmas.
	Name string
	// Doc is a one-line description shown by canonvet -list.
	Doc string
	// Run reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// AllChecks returns the check table, in reporting order. New checks are
// appended here.
func AllChecks() []Check {
	return []Check{
		checkRingCmp,
		checkGlobalRand,
		checkSimDeterminism,
		checkLockHeldRPC,
		checkMetricNames,
		checkWireCompat,
	}
}

// Config tunes the checks to the module under analysis.
type Config struct {
	// ModulePath is the module's import path prefix.
	ModulePath string
	// SimPackages is the set of import paths whose results must be
	// seed-reproducible (the simdeterminism check's scope). External test
	// units share their base package's path and scope.
	SimPackages map[string]bool
	// MetricExemptPackages may register metrics with literal names: the
	// telemetry registry's own package (its implementation and tests
	// exercise arbitrary names by design).
	MetricExemptPackages map[string]bool
	// Enabled restricts the run to the named checks; nil means all.
	Enabled map[string]bool
}

// DefaultConfig returns the Canon module's tuning: the pure-simulation
// packages from the paper's analytical side, and the telemetry registry as
// the only package allowed to touch raw metric-name strings.
func DefaultConfig(module string) *Config {
	sim := map[string]bool{
		module:                           true, // the analytical Canon model itself
		module + "/internal/chord":       true,
		module + "/internal/symphony":    true,
		module + "/internal/kademlia":    true,
		module + "/internal/can":         true,
		module + "/internal/core":        true,
		module + "/internal/dynamic":     true,
		module + "/internal/experiments": true,
	}
	return &Config{
		ModulePath:           module,
		SimPackages:          sim,
		MetricExemptPackages: map[string]bool{module + "/internal/telemetry": true},
	}
}

// Pass carries one check's view of one package.
type Pass struct {
	Cfg  *Config
	Fset *token.FileSet
	Pkg  *Package

	check   string
	ignores map[*ast.File]*fileIgnores
	sink    *[]Diagnostic
}

// Reportf records a finding at pos unless an ignore pragma suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, f := range p.Pkg.Files {
		if ig, ok := p.ignores[f]; ok && ig.suppressed(p.check, position) {
			return
		}
	}
	*p.sink = append(*p.sink, Diagnostic{
		Check:   p.check,
		File:    position.Filename,
		Line:    position.Line,
		Column:  position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when type information is
// incomplete (checks must degrade gracefully).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgFuncCall resolves call to a package-level function: it returns the
// imported package's path and the function name, or ok == false for method
// calls, conversions, locals and unresolved names.
func (p *Pass) PkgFuncCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsNamed reports whether t (through pointers) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedOf returns the named type behind t (through pointers), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fileIgnores is the parsed //canonvet:ignore pragmas of one file.
type fileIgnores struct {
	filename string
	all      map[string]bool         // file-wide suppressions
	byLine   map[int]map[string]bool // line-scoped suppressions
}

func (ig *fileIgnores) suppressed(check string, pos token.Position) bool {
	if ig.filename != pos.Filename {
		return false
	}
	if ig.all["all"] || ig.all[check] {
		return true
	}
	if m := ig.byLine[pos.Line]; m != nil && (m["all"] || m[check]) {
		return true
	}
	return false
}

// parseIgnores scans a file's comments for canonvet pragmas. A pragma above
// the package clause suppresses the named checks for the whole file; any
// other pragma suppresses them on its own line and the line below it.
func parseIgnores(fset *token.FileSet, f *ast.File) *fileIgnores {
	ig := &fileIgnores{
		filename: fset.Position(f.Pos()).Filename,
		all:      make(map[string]bool),
		byLine:   make(map[int]map[string]bool),
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			rest, ok := strings.CutPrefix(text, "canonvet:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			checks := strings.Split(fields[0], ",")
			if c.End() < f.Package {
				for _, name := range checks {
					ig.all[name] = true
				}
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, ln := range []int{line, line + 1} {
				if ig.byLine[ln] == nil {
					ig.byLine[ln] = make(map[string]bool)
				}
				for _, name := range checks {
					ig.byLine[ln][name] = true
				}
			}
		}
	}
	return ig
}

// Run executes the enabled checks over every package and returns the
// findings sorted by position.
func Run(cfg *Config, fset *token.FileSet, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := make(map[*ast.File]*fileIgnores, len(pkg.Files))
		for _, f := range pkg.Files {
			ignores[f] = parseIgnores(fset, f)
		}
		for _, chk := range AllChecks() {
			if cfg.Enabled != nil && !cfg.Enabled[chk.Name] {
				continue
			}
			pass := &Pass{
				Cfg: cfg, Fset: fset, Pkg: pkg,
				check: chk.Name, ignores: ignores, sink: &diags,
			}
			chk.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Check < b.Check
	})
	return diags
}
