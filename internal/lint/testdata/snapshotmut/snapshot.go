// Package snapshotmut is a canonvet fixture for the snapshot-mutation check:
// types marked //canonvet:immutable may only be written in their declaring
// file (where the builder lives); every other file must treat published
// snapshots as read-only and build fresh ones instead.
package snapshotmut

// routeView models a published copy-on-write snapshot. Readers load it
// through an atomic pointer and share it without synchronization.
//
//canonvet:immutable — mutate only in this file's builder; publish via swap.
type routeView struct {
	epoch uint64
	succs []contact
	inner innerState
}

// contact is an element type embedded in snapshots; it is marked too so
// writes through a view's fields are caught at any depth.
//
//canonvet:immutable
type contact struct {
	addr string
	dist uint64
}

// innerState is a nested struct inside the marked view.
type innerState struct {
	healthy int
}

// buildRouteView is the legal builder: it constructs and mutates a fresh
// view before anyone can see it. Same-file writes are allowed.
func buildRouteView(epoch uint64, addrs []string) *routeView {
	v := &routeView{epoch: epoch}
	v.succs = make([]contact, len(addrs))
	for i, a := range addrs {
		v.succs[i] = contact{addr: a}
		v.succs[i].dist = uint64(i)
	}
	v.inner.healthy = len(addrs)
	v.epoch++
	return v
}
