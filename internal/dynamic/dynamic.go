// Package dynamic simulates Crescendo's dynamic maintenance (Section 2.3):
// a network of deterministic-Chord Canon nodes that nodes join and leave one
// at a time, with incremental link repair instead of a full rebuild. The
// simulator counts maintenance messages — the join lookup, the new node's
// link setups, and the eager notification/repair of nodes whose links became
// stale — which the paper bounds at O(log n) per insertion.
//
// Because the deterministic geometry makes the link set a pure function of
// the membership, the incremental state can be validated exactly against
// core.Build on the same membership; the package's tests do exactly that
// after arbitrary churn.
package dynamic

import (
	"errors"
	"fmt"

	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

var (
	// ErrDuplicate is returned when a joining identifier is already present.
	ErrDuplicate = errors.New("dynamic: identifier already present")
	// ErrUnknown is returned when an identifier is not a member.
	ErrUnknown = errors.New("dynamic: unknown identifier")
	// ErrEmpty is returned when an operation needs a non-empty network.
	ErrEmpty = errors.New("dynamic: empty network")
)

// Network is a dynamically maintained Crescendo network.
type Network struct {
	space id.Space
	tree  *hierarchy.Tree
	rings map[int][]id.ID // per domain, ascending
	leaf  map[id.ID]*hierarchy.Domain
	out   map[id.ID]map[id.ID]struct{}
	in    map[id.ID]map[id.ID]struct{}
	msgs  int64
}

// New returns an empty dynamic network over the given space and hierarchy.
func New(space id.Space, tree *hierarchy.Tree) *Network {
	return &Network{
		space: space,
		tree:  tree,
		rings: make(map[int][]id.ID),
		leaf:  make(map[id.ID]*hierarchy.Domain),
		out:   make(map[id.ID]map[id.ID]struct{}),
		in:    make(map[id.ID]map[id.ID]struct{}),
	}
}

// Len returns the number of member nodes.
func (n *Network) Len() int { return len(n.leaf) }

// Messages returns the cumulative maintenance message count.
func (n *Network) Messages() int64 { return n.msgs }

// ResetMessages zeroes the message counter.
func (n *Network) ResetMessages() { n.msgs = 0 }

// Members returns all member identifiers in ascending order.
func (n *Network) Members() []id.ID {
	root := n.tree.Root()
	out := make([]id.ID, len(n.rings[root.ID()]))
	copy(out, n.rings[root.ID()])
	return out
}

// LeafOf returns a member's leaf domain.
func (n *Network) LeafOf(v id.ID) (*hierarchy.Domain, bool) {
	d, ok := n.leaf[v]
	return d, ok
}

// Links returns a member's out-links in ascending order.
func (n *Network) Links(v id.ID) []id.ID {
	set := n.out[v]
	out := make([]id.ID, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	id.SortIDs(out)
	return out
}

// Join inserts a node with the given identifier and leaf domain, performing
// the Section 2.3 protocol: look up the identifier through an existing node
// (each forwarding hop is a message), splice into every ring on the chain,
// set up the new node's links, and eagerly repair every node whose links
// became stale. Leaf must belong to the network's hierarchy.
func (n *Network) Join(v id.ID, leaf *hierarchy.Domain) error {
	if !n.space.Contains(v) {
		return fmt.Errorf("dynamic: id %d outside space", v)
	}
	if _, dup := n.leaf[v]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicate, v)
	}
	if leaf == nil {
		return errors.New("dynamic: nil leaf")
	}
	// Join lookup: route to the new identifier from an arbitrary existing
	// node (the paper's contact in the lowest-level domain; hop count is the
	// same in this simulation either way).
	if n.Len() > 0 {
		hops, _ := n.routeHops(n.Members()[0], v)
		n.msgs += int64(hops)
	}
	// Splice into every ring on the chain.
	n.leaf[v] = leaf
	for d := leaf; d != nil; d = d.Parent() {
		n.rings[d.ID()] = insertSorted(n.rings[d.ID()], v)
	}
	n.out[v] = make(map[id.ID]struct{})
	// The new node's own links.
	n.setLinks(v, n.computeLinks(v))
	// Successor notification at each level (one message per level).
	n.msgs += int64(leaf.Depth() + 1)
	// Eager repair of stale nodes.
	for _, x := range n.affectedByJoin(v) {
		n.setLinks(x, n.computeLinks(x))
	}
	return nil
}

// Leave removes a node, repairing every node that linked to it and every
// ring predecessor whose merge bound grew.
func (n *Network) Leave(v id.ID) error {
	leaf, ok := n.leaf[v]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknown, v)
	}
	// Collect the repair set before mutating: in-link holders plus the
	// predecessor of v in every ring on its chain.
	affected := make(map[id.ID]struct{})
	for x := range n.in[v] {
		affected[x] = struct{}{}
	}
	for d := leaf; d != nil; d = d.Parent() {
		ring := n.rings[d.ID()]
		if len(ring) > 1 {
			affected[n.predecessorIn(ring, v)] = struct{}{}
		}
	}
	delete(affected, v)
	// Remove the node.
	for l := range n.out[v] {
		delete(n.in[l], v)
	}
	delete(n.out, v)
	for x := range n.in[v] {
		delete(n.out[x], v)
	}
	delete(n.in, v)
	for d := leaf; d != nil; d = d.Parent() {
		n.rings[d.ID()] = removeSorted(n.rings[d.ID()], v)
	}
	delete(n.leaf, v)
	// Departure notifications along the chain.
	n.msgs += int64(leaf.Depth() + 1)
	for x := range affected {
		n.setLinks(x, n.computeLinks(x))
	}
	return nil
}

// computeLinks evaluates the Canon deterministic-Chord rule for one node
// over the current rings.
func (n *Network) computeLinks(v id.ID) map[id.ID]struct{} {
	links := make(map[id.ID]struct{})
	leaf := n.leaf[v]
	chain := hierarchy.DomainsOnPath(leaf)
	bound := n.space.Size()
	for i := len(chain) - 1; i >= 0; i-- {
		ring := n.rings[chain[i].ID()]
		if i < len(chain)-1 && len(ring) == len(n.rings[chain[i+1].ID()]) {
			continue
		}
		n.fingers(ring, v, bound, links)
		if len(ring) > 1 {
			if d := n.succDistance(ring, v); d < bound {
				bound = d
			}
		}
	}
	return links
}

// fingers adds the Chord fingers of v within ring whose distances fall in
// [2^k, bound).
func (n *Network) fingers(ring []id.ID, v id.ID, bound uint64, links map[id.ID]struct{}) {
	if len(ring) < 2 {
		return
	}
	for k := uint(0); k < n.space.Bits(); k++ {
		step := uint64(1) << k
		if step >= bound {
			break
		}
		c := ring[id.SuccessorIndex(ring, n.space.Add(v, step))]
		d := n.space.Clockwise(v, c)
		if d < step || d >= bound {
			continue
		}
		links[c] = struct{}{}
	}
}

// succDistance returns the clockwise distance from v to its successor in
// ring (which must contain v and at least one other member).
func (n *Network) succDistance(ring []id.ID, v id.ID) uint64 {
	i := id.SearchIDs(ring, v)
	return n.space.Clockwise(v, ring[(i+1)%len(ring)])
}

// predecessorIn returns the member preceding v in ring.
func (n *Network) predecessorIn(ring []id.ID, v id.ID) id.ID {
	i := id.SearchIDs(ring, v)
	return ring[(i-1+len(ring))%len(ring)]
}

// affectedByJoin returns the existing nodes whose link sets may change when
// v joins: in every ring on v's chain, the nodes whose Chord finger for some
// 2^k now selects v (their IDs lie in (pred - 2^k, v - 2^k]), plus v's ring
// predecessor, whose shrunken successor distance tightens its merge bounds.
func (n *Network) affectedByJoin(v id.ID) []id.ID {
	affected := make(map[id.ID]struct{})
	for d := n.leaf[v]; d != nil; d = d.Parent() {
		ring := n.rings[d.ID()]
		if len(ring) < 2 {
			continue
		}
		pred := n.predecessorIn(ring, v)
		affected[pred] = struct{}{}
		gap := n.space.Clockwise(pred, v)
		for k := uint(0); k < n.space.Bits(); k++ {
			step := uint64(1) << k
			// Candidates x with x + 2^k in (pred, v].
			lo := n.space.Sub(pred, step) // exclusive
			n.collectArc(ring, lo, gap, v, affected)
		}
	}
	delete(affected, v)
	out := make([]id.ID, 0, len(affected))
	for x := range affected {
		out = append(out, x)
	}
	id.SortIDs(out)
	return out
}

// collectArc adds the ring members in the clockwise interval (lo, lo+span]
// to set, excluding skip.
func (n *Network) collectArc(ring []id.ID, lo id.ID, span uint64, skip id.ID, set map[id.ID]struct{}) {
	if span == 0 {
		return
	}
	start := id.SuccessorIndex(ring, n.space.Add(lo, 1))
	for i := 0; i < len(ring); i++ {
		x := ring[(start+i)%len(ring)]
		d := n.space.Clockwise(lo, x)
		if d == 0 || d > span {
			break
		}
		if x != skip {
			set[x] = struct{}{}
		}
	}
}

// setLinks replaces a node's out-links, maintaining the reverse index and
// counting one message per changed link.
func (n *Network) setLinks(v id.ID, next map[id.ID]struct{}) {
	cur := n.out[v]
	for l := range cur {
		if _, keep := next[l]; !keep {
			delete(n.in[l], v)
			n.msgs++
		}
	}
	for l := range next {
		if _, had := cur[l]; !had {
			if n.in[l] == nil {
				n.in[l] = make(map[id.ID]struct{})
			}
			n.in[l][v] = struct{}{}
			n.msgs++
		}
	}
	n.out[v] = next
}

// RouteToKey routes greedily clockwise from a member toward a key using the
// current dynamic link state, returning the hop count and the final node.
func (n *Network) RouteToKey(from id.ID, key id.ID) (hops int, last id.ID, err error) {
	if _, ok := n.leaf[from]; !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknown, from)
	}
	return n.route(from, key)
}

func (n *Network) route(from, key id.ID) (int, id.ID, error) {
	cur := from
	hops := 0
	for iter := 0; iter <= n.Len(); iter++ {
		remaining := n.space.Clockwise(cur, key)
		if remaining == 0 {
			break
		}
		var best id.ID
		bestAdv := uint64(0)
		for l := range n.out[cur] {
			adv := n.space.Clockwise(cur, l)
			if adv <= remaining && adv > bestAdv {
				best, bestAdv = l, adv
			}
		}
		if bestAdv == 0 {
			break
		}
		cur = best
		hops++
	}
	return hops, cur, nil
}

// routeHops is route for internal accounting.
func (n *Network) routeHops(from, key id.ID) (int, id.ID) {
	h, last, _ := n.route(from, key)
	return h, last
}

// Owner returns the member responsible for key (greatest ID <= key).
func (n *Network) Owner(key id.ID) (id.ID, error) {
	root := n.tree.Root()
	ring := n.rings[root.ID()]
	if len(ring) == 0 {
		return 0, ErrEmpty
	}
	i := id.SearchAfter(ring, key)
	return ring[(i-1+len(ring))%len(ring)], nil
}

func insertSorted(ring []id.ID, v id.ID) []id.ID {
	i := id.SearchIDs(ring, v)
	ring = append(ring, 0)
	copy(ring[i+1:], ring[i:])
	ring[i] = v
	return ring
}

func removeSorted(ring []id.ID, v id.ID) []id.ID {
	i := id.SearchIDs(ring, v)
	if i < len(ring) && ring[i] == v {
		return append(ring[:i], ring[i+1:]...)
	}
	return ring
}
