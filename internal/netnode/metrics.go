package netnode

import (
	"sync"

	"github.com/canon-dht/canon/internal/telemetry"
)

// Metric names published by a live node. One canond process hosts one node,
// so names carry no node label; sharing a Registry across in-process nodes
// aggregates their series (see Config.Telemetry).
const (
	mnSent         = "canon_rpc_sent_total"
	mnReceived     = "canon_rpc_received_total"
	mnRetries      = "canon_rpc_retries_total"
	mnFailed       = "canon_rpc_failed_calls_total"
	mnRouteAround  = "canon_route_around_total"
	mnRPCLatency   = "canon_rpc_latency_seconds"
	mnRPCAttempts  = "canon_rpc_attempts"
	mnLookupHops   = "canon_lookup_hops"
	mnTraceStarted = "canon_traces_started_total"
	mnTraceDone    = "canon_traces_completed_total"
	mnStoreWrites  = "canon_store_writes_total"
	mnFetchReads   = "canon_fetch_reads_total"
	mnStoreItems   = "canon_store_items"
	mnSuspects     = "canon_suspect_peers"
	mnFetchErrors  = "canon_fetch_errors_total"
	mnReadRepairs  = "canon_read_repair_total"
	mnAERounds     = "canon_antientropy_rounds_total"
	mnAESyncs      = "canon_antientropy_syncs_total"
	mnAEPushed     = "canon_antientropy_keys_pushed_total"
	mnAEPulled     = "canon_antientropy_keys_pulled_total"
)

// knownMsgTypes is every wire message type the node itself sends or serves.
// Their per-type counters are pre-registered at construction into immutable
// maps, so the RPC hot path looks them up without taking any lock; only
// unknown types (arbitrary bytes a fuzzer or a hostile peer puts in the Type
// field) fall back to the lazily populated, mutex-guarded overflow maps.
var knownMsgTypes = [...]string{
	msgLookup, msgNeighbors, msgNotify, msgPing, msgStore,
	msgFetch, msgRegister, msgMembers, msgLeaving,
	msgStoreV2, msgSyncTree, msgSyncKeys, msgSyncPull, msgRepair,
	msgBucketRef, msgLookahead,
}

// nodeMetrics holds the node's cached handles into its telemetry registry.
type nodeMetrics struct {
	reg *telemetry.Registry

	retries      *telemetry.Counter
	failedCalls  *telemetry.Counter
	routedAround *telemetry.Counter
	rpcLatency   *telemetry.Histogram
	rpcAttempts  *telemetry.Histogram
	lookupHops   *telemetry.Histogram
	traceStarted *telemetry.Counter
	traceDone    *telemetry.Counter
	storeWrites  *telemetry.Counter
	fetchReads   *telemetry.Counter
	storeItems   *telemetry.Gauge
	suspects     *telemetry.Gauge

	fetchErrors       *telemetry.Counter
	readRepairs       *telemetry.Counter
	antiEntropyRounds *telemetry.Counter
	antiEntropySyncs  *telemetry.Counter
	antiEntropyPushed *telemetry.Counter
	antiEntropyPulled *telemetry.Counter

	// sentFixed/receivedFixed are immutable after construction: read-only
	// map lookups are safe for unsynchronized concurrent use.
	sentFixed     map[string]*telemetry.Counter
	receivedFixed map[string]*telemetry.Counter

	mu       sync.Mutex
	sent     map[string]*telemetry.Counter // unknown types only
	received map[string]*telemetry.Counter
}

func newNodeMetrics(reg *telemetry.Registry) *nodeMetrics {
	m := &nodeMetrics{
		reg:          reg,
		retries:      reg.Counter(mnRetries, "re-send attempts beyond each call's first"),
		failedCalls:  reg.Counter(mnFailed, "calls that exhausted every attempt"),
		routedAround: reg.Counter(mnRouteAround, "lookup forwards that skipped a distrusted best candidate"),
		rpcLatency:   reg.Histogram(mnRPCLatency, "outgoing RPC latency per completed call, seconds", telemetry.DefBuckets),
		rpcAttempts:  reg.Histogram(mnRPCAttempts, "transport attempts used per RPC call", telemetry.AttemptBuckets),
		lookupHops:   reg.Histogram(mnLookupHops, "forwarding hops per lookup answered for a local or remote originator", telemetry.HopBuckets),
		traceStarted: reg.Counter(mnTraceStarted, "route traces originated by this node"),
		traceDone:    reg.Counter(mnTraceDone, "route traces completed and archived at this node"),
		storeWrites:  reg.Counter(mnStoreWrites, "local store writes (values, pointers and replicas)"),
		fetchReads:   reg.Counter(mnFetchReads, "local fetch reads served"),
		storeItems:   reg.Gauge(mnStoreItems, "distinct keys currently stored"),
		suspects:     reg.Gauge(mnSuspects, "peers the failure detector currently distrusts"),
		fetchErrors:  reg.Counter(mnFetchErrors, "failed lookup or fetch probes during Get, previously swallowed"),
		readRepairs:  reg.Counter(mnReadRepairs, "replica copies pushed by read repair"),
		antiEntropyRounds: reg.Counter(mnAERounds,
			"anti-entropy rounds completed (every level and replica partner)"),
		antiEntropySyncs: reg.Counter(mnAESyncs,
			"anti-entropy scope comparisons whose Merkle roots diverged"),
		antiEntropyPushed: reg.Counter(mnAEPushed,
			"records pushed to replica partners by anti-entropy repair"),
		antiEntropyPulled: reg.Counter(mnAEPulled,
			"records pulled from replica partners by anti-entropy repair"),
		sentFixed:     make(map[string]*telemetry.Counter, len(knownMsgTypes)),
		receivedFixed: make(map[string]*telemetry.Counter, len(knownMsgTypes)),
		sent:          make(map[string]*telemetry.Counter),
		received:      make(map[string]*telemetry.Counter),
	}
	for _, t := range knownMsgTypes {
		m.sentFixed[t] = reg.Counter(mnSent, "outgoing requests by message type (first attempts only)",
			telemetry.L("type", t))
		m.receivedFixed[t] = reg.Counter(mnReceived, "incoming requests by message type",
			telemetry.L("type", t))
	}
	return m
}

// sentCounter returns the outgoing-request counter for a message type. Known
// types resolve lock-free through the immutable map.
func (m *nodeMetrics) sentCounter(msgType string) *telemetry.Counter {
	if c, ok := m.sentFixed[msgType]; ok {
		return c
	}
	m.mu.Lock()
	c, ok := m.sent[msgType]
	if !ok {
		c = m.reg.Counter(mnSent, "outgoing requests by message type (first attempts only)",
			telemetry.L("type", msgType))
		m.sent[msgType] = c
	}
	m.mu.Unlock()
	return c
}

// receivedCounter returns the incoming-request counter for a message type.
// Known types resolve lock-free through the immutable map.
func (m *nodeMetrics) receivedCounter(msgType string) *telemetry.Counter {
	if c, ok := m.receivedFixed[msgType]; ok {
		return c
	}
	m.mu.Lock()
	c, ok := m.received[msgType]
	if !ok {
		c = m.reg.Counter(mnReceived, "incoming requests by message type",
			telemetry.L("type", msgType))
		m.received[msgType] = c
	}
	m.mu.Unlock()
	return c
}

// counterSnapshot merges a fixed and an overflow counter map into per-type
// counts, skipping zero-valued series: pre-registered counters for types the
// node never actually sent or served must not surface in Stats (which
// historically only listed observed types).
func (m *nodeMetrics) counterSnapshot(fixed, lazy map[string]*telemetry.Counter) map[string]int64 {
	out := make(map[string]int64, len(fixed))
	for k, c := range fixed {
		if v := c.Value(); v != 0 {
			out[k] = v
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, c := range lazy {
		if v := c.Value(); v != 0 {
			out[k] = v
		}
	}
	return out
}

// sentSnapshot copies the per-type sent counts (the Stats bridge).
func (m *nodeMetrics) sentSnapshot() map[string]int64 {
	return m.counterSnapshot(m.sentFixed, m.sent)
}

// receivedSnapshot copies the per-type received counts.
func (m *nodeMetrics) receivedSnapshot() map[string]int64 {
	return m.counterSnapshot(m.receivedFixed, m.received)
}
