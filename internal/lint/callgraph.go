package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds canonvet's module-wide call graph: the substrate for the
// interprocedural checks (lockorder, lockheldrpc2, goroutineleak,
// nodeadline). Nodes are functions — declared functions, methods, and
// function literals — and edges record how control may flow between them.
//
// Cross-unit identity. The loader type-checks every analysis unit
// independently, so the same declared function is represented by *different*
// go/types objects depending on which unit observed it (a unit sees its own
// package fully checked, and other packages through memoized
// IgnoreFuncBodies imports). The graph therefore keys nodes by a stable
// symbol ID string — types.Func.FullName() of the Origin — rather than by
// object pointer, and compares signatures structurally (by fully-qualified
// type string) where go/types would demand pointer identity.

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind int

const (
	// EdgeCall is a plain synchronous call (or a funclit invoked where it
	// is written).
	EdgeCall EdgeKind = iota
	// EdgeDefer is a deferred call: it still executes within the caller's
	// activation, but after the body (held-lock state at the defer site is
	// not assumed to persist to execution).
	EdgeDefer
	// EdgeGo is a goroutine spawn: concurrent, inherits no locks.
	EdgeGo
	// EdgeRef records a function value taken without being called (stored,
	// passed as argument). Summaries do not propagate across Ref edges.
	EdgeRef
	// EdgeDispatch links an interface method to a module-local concrete
	// implementation (conservative: every loosely-matching implementation).
	EdgeDispatch
)

// String implements fmt.Stringer for DOT labels and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDefer:
		return "defer"
	case EdgeGo:
		return "go"
	case EdgeRef:
		return "ref"
	case EdgeDispatch:
		return "dispatch"
	}
	return "?"
}

// LockClass identifies a mutex by declaration site rather than by instance:
// a named struct field (Pkg, Type, Field), a package-level var (Pkg, "",
// Field), or a function-local mutex (only Field set). Only named classes
// (Pkg != "") participate in the lock-order graph; locals still count as
// "held" for lockheldrpc2.
type LockClass struct {
	Pkg   string
	Type  string
	Field string
}

// Named reports whether the class is stable across functions (a struct field
// or package var, not a local).
func (c LockClass) Named() bool { return c.Pkg != "" }

// String renders the class for diagnostics: pkg.Type.field, pkg.var, or
// local:name.
func (c LockClass) String() string {
	short := c.Pkg
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	switch {
	case c.Pkg == "":
		return "local:" + c.Field
	case c.Type == "":
		return short + "." + c.Field
	default:
		return short + "." + c.Type + "." + c.Field
	}
}

// HeldLock is one mutex held at a program point.
type HeldLock struct {
	Class LockClass
	Expr  string // source-ish rendering of the lock operand, e.g. "n.mu"
	RLock bool
	Pos   token.Pos
}

// Acquisition records one direct Lock/RLock call inside a function, together
// with the locks already held at that point (the lock-order evidence).
type Acquisition struct {
	Class LockClass
	Expr  string
	RLock bool
	Pos   token.Pos
	Held  []HeldLock
}

// FuncNode is one function in the call graph.
type FuncNode struct {
	// ID is the stable symbol ID: types.Func.FullName() for declared
	// functions/methods, "lit@file:line:col" for function literals.
	ID string
	// Name is a short human name ("netnode.(*Node).Start", "func literal").
	Name string
	// Ident is the bare declared identifier ("Start", "main"); empty for
	// function literals.
	Ident string
	// Pkg is the import path of the unit the body lives in.
	Pkg string
	// Pos is the declaration (or literal) position.
	Pos token.Pos
	// InTestFile marks bodies declared in _test.go files.
	InTestFile bool

	// IsIfaceMethod marks a node standing for an interface method; its body
	// is unknown and Dispatch edges point at candidate implementations.
	IsIfaceMethod bool
	// iface, when IsIfaceMethod, is the interface type (from whichever unit
	// first mentioned it) and mname the method name, for dispatch matching.
	iface types.Type
	mname string

	// IsRPCPrim marks a Transport.Call-shaped wire primitive: a function or
	// method named Call whose first parameter is context.Context.
	IsRPCPrim bool
	// IsSyncPrim marks a durability-barrier-shaped primitive: a function or
	// method named Sync or Flush (canonstore.Store.Sync and every concrete
	// engine behind it). fsyncbeforeack requires one to be reachable before
	// a store ack is constructed.
	IsSyncPrim bool
	// DirectTimed marks bodies that call context.WithTimeout/WithDeadline
	// (used path-insensitively by nodeadline).
	DirectTimed bool
	// EndlessLoop marks bodies containing a loop with no reachable exit
	// (for {} or for range <-chan time.Time with no return/break/panic).
	EndlessLoop bool
	// StopsOnSignal marks endless-loop bodies whose loop still selects on a
	// stop signal (ctx.Done / a done channel) — set only alongside
	// EndlessLoop and only when that select case escapes the loop, so it is
	// informational for diagnostics rather than a verdict.
	StopsOnSignal bool

	// Acquired are the body's direct Lock/RLock sites.
	Acquired []Acquisition
	// AckSites are the body's store-ack constructions: calls shaped like
	// NewMessage(msgStore*, nil), the empty reply that promises durability
	// (see check_fsyncbeforeack.go).
	AckSites []AckSite

	// Out and In are the adjacency lists.
	Out []*Edge
	In  []*Edge

	// Sum is filled by ComputeSummaries and ComputeFlowSummaries.
	Sum Summary

	// body, ftype and pkgRef retain the declaration's AST and analysis unit
	// for the v3 value-flow passes (dataflow.go), which re-walk module-local
	// bodies; all nil for out-of-module and interface-method nodes.
	body   *ast.BlockStmt
	ftype  *ast.FuncType
	pkgRef *Package
}

// AckSite is one store-ack construction site: the position of the
// NewMessage call and the message constant it acknowledges.
type AckSite struct {
	Pos token.Pos
	Msg string
}

// Edge is one caller→callee relationship observed at a source position.
type Edge struct {
	Caller *FuncNode
	Callee *FuncNode
	Kind   EdgeKind
	Pos    token.Pos
	// Held are the locks lexically held at the edge's site (Call edges
	// only; Defer/Go/Ref/Dispatch edges carry none — see DESIGN.md).
	Held []HeldLock
}

// CallGraph is the module-wide graph plus the config and fileset needed to
// render diagnostics from it.
type CallGraph struct {
	Cfg   *Config
	Fset  *token.FileSet
	Nodes map[string]*FuncNode

	// ifaceNodes indexes the interface-method nodes for dispatch resolution.
	ifaceNodes []*FuncNode

	// accesses are the atomic-capable field/var load-store sites collected
	// during the walk for atomicmix (see check_atomicmix.go).
	accesses []fieldAccess

	// flow caches the value-flow pass results (see dataflow.go).
	flow *flowState
}

// fieldAccess records one access to a struct field (or package-level var)
// whose type sync/atomic could also operate on: through a sync/atomic
// package function (Atomic=true) or a plain load/store/address-take
// (Atomic=false). Identity is by declaration site, like locks.
type fieldAccess struct {
	Class  LockClass
	Atomic bool
	Pos    token.Pos
	Held   []HeldLock
	InTest bool
	Fn     *FuncNode
}

// node returns (creating if needed) the node with the given ID.
func (g *CallGraph) node(id string) *FuncNode {
	if n, ok := g.Nodes[id]; ok {
		return n
	}
	n := &FuncNode{ID: id, Name: id}
	g.Nodes[id] = n
	return n
}

// edge appends one edge to both adjacency lists.
func (g *CallGraph) edge(caller, callee *FuncNode, kind EdgeKind, pos token.Pos, held []HeldLock) {
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Pos: pos, Held: held}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// funcID returns the stable symbol ID of a declared function or method.
func funcID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// shortFuncName renders fn for humans: pkg.Func or pkg.(*Type).Method with
// the package path shortened to its last element.
func shortFuncName(fn *types.Func) string {
	full := funcID(fn)
	// FullName uses full import paths; trim each path to its base.
	for {
		i := strings.Index(full, "github.com/")
		if i < 0 {
			break
		}
		j := i
		for j < len(full) && full[j] != ')' && full[j] != ' ' {
			if full[j] == '.' && strings.LastIndexByte(full[i:j], '/') >= 0 {
				break
			}
			j++
		}
		path := full[i:j]
		if k := strings.LastIndexByte(path, '/'); k >= 0 {
			full = full[:i] + path[k+1:] + full[j:]
		} else {
			break
		}
	}
	return full
}

// BuildCallGraph constructs the graph over every loaded package: one walk
// per function body creating nodes, lock-annotated edges, and the per-node
// direct facts, followed by a dispatch pass linking interface methods to
// module-local implementations.
func BuildCallGraph(cfg *Config, fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{Cfg: cfg, Fset: fset, Nodes: make(map[string]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			file := fset.Position(f.Pos()).Filename
			inTest := strings.HasSuffix(file, "_test.go")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := g.node(funcID(obj))
				n.Name = shortFuncName(obj)
				n.Ident = obj.Name()
				n.Pkg = pkg.Path
				n.Pos = fd.Pos()
				n.InTestFile = inTest
				n.IsRPCPrim = isRPCPrimSig(obj.Name(), obj.Type())
				n.IsSyncPrim = isSyncPrimName(obj.Name())
				n.body = fd.Body
				n.ftype = fd.Type
				n.pkgRef = pkg
				w := &graphWalker{g: g, pkg: pkg, fn: n, inTest: inTest}
				w.walkBody(fd.Body)
			}
		}
	}
	g.resolveDispatch(pkgs)
	return g
}

// isRPCPrimSig reports the Transport.Call shape: name "Call", first
// parameter context.Context.
func isRPCPrimSig(name string, t types.Type) bool {
	if name != "Call" {
		return false
	}
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() < 1 {
		return false
	}
	return IsNamed(sig.Params().At(0).Type(), "context", "Context")
}

// isSyncPrimName reports a durability-barrier-shaped name. Matching on the
// name alone is deliberately lenient: the bit only ever *satisfies*
// fsyncbeforeack's requirement, so a stray Sync-named helper can silence a
// finding but never invent one.
func isSyncPrimName(name string) bool { return name == "Sync" || name == "Flush" }

// graphWalker walks one function body, tracking lexically held locks (the
// same conservative discipline the v1 lexical check used: fall-through
// unlocks lower the set, terminating branches keep the caller's set, spawned
// goroutines and function literals inherit nothing).
type graphWalker struct {
	g      *CallGraph
	pkg    *Package
	fn     *FuncNode
	inTest bool

	// atomicSel marks &operand expressions already claimed as sync/atomic
	// call arguments, so the plain-access scan does not double-count them.
	atomicSel map[ast.Expr]bool
}

// walkBody drives the statement walk and derives the body-level facts.
func (w *graphWalker) walkBody(body *ast.BlockStmt) {
	w.stmts(body.List, nil)
}

// snapshot copies the held set for storage on an edge or acquisition.
func snapshot(held []HeldLock) []HeldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]HeldLock, len(held))
	copy(out, held)
	return out
}

// exprString renders a lock operand compactly (best effort).
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "?"
}

// lockOp classifies e as a Lock/RLock/Unlock/RUnlock call on a sync.Mutex or
// sync.RWMutex, returning the operand and class.
func (w *graphWalker) lockOp(e ast.Expr) (op string, operand ast.Expr, class LockClass, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", nil, LockClass{}, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, LockClass{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil, LockClass{}, false
	}
	t := typeOf(w.pkg.Info, sel.X)
	if t != nil {
		if !IsNamed(t, "sync", "Mutex") && !IsNamed(t, "sync", "RWMutex") {
			return "", nil, LockClass{}, false
		}
	} else {
		// Type info incomplete: fall back to the v1 name heuristic.
		name := ""
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.Ident:
			name = x.Name
		}
		if name != "mu" {
			return "", nil, LockClass{}, false
		}
	}
	return sel.Sel.Name, sel.X, w.classify(sel.X), true
}

// classify maps a lock operand to its LockClass.
func (w *graphWalker) classify(e ast.Expr) LockClass {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return w.classify(x.X)
	case *ast.SelectorExpr:
		// Field selector: class by the owning named struct type.
		if named := namedOf(typeOf(w.pkg.Info, x.X)); named != nil && named.Obj() != nil {
			pkg := ""
			if named.Obj().Pkg() != nil {
				pkg = named.Obj().Pkg().Path()
			}
			return LockClass{Pkg: pkg, Type: named.Obj().Name(), Field: x.Sel.Name}
		}
		// Qualified package var: pkg.mu.
		if id, okID := x.X.(*ast.Ident); okID {
			if pn, okPkg := w.pkg.Info.Uses[id].(*types.PkgName); okPkg {
				return LockClass{Pkg: pn.Imported().Path(), Field: x.Sel.Name}
			}
		}
		return LockClass{Field: x.Sel.Name}
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[x]; obj != nil {
			if v, okVar := obj.(*types.Var); okVar && v.Pkg() != nil &&
				v.Parent() == v.Pkg().Scope() {
				// Package-level mutex var.
				return LockClass{Pkg: v.Pkg().Path(), Field: x.Name}
			}
		}
		return LockClass{Field: x.Name}
	}
	return LockClass{Field: exprString(e)}
}

// acquire pushes a lock and records the acquisition.
func (w *graphWalker) acquire(held []HeldLock, op string, operand ast.Expr, class LockClass, pos token.Pos) []HeldLock {
	h := HeldLock{Class: class, Expr: exprString(operand), RLock: op == "RLock", Pos: pos}
	w.fn.Acquired = append(w.fn.Acquired, Acquisition{
		Class: class, Expr: h.Expr, RLock: h.RLock, Pos: pos, Held: snapshot(held),
	})
	return append(held, h)
}

// release pops the innermost held lock matching the operand (by rendered
// expression, falling back to class).
func release(held []HeldLock, operand ast.Expr, class LockClass) []HeldLock {
	es := exprString(operand)
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].Expr == es || held[i].Class == class {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// stmts walks a statement list with the held-lock discipline of the v1
// lexical scan and returns the held set after the list.
func (w *graphWalker) stmts(list []ast.Stmt, held []HeldLock) []HeldLock {
	branch := func(body []ast.Stmt) {
		after := w.stmts(body, snapshot(held))
		if !terminates(body) && len(after) < len(held) {
			held = after
		}
	}
	for _, s := range list {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if op, operand, class, ok := w.lockOp(st.X); ok {
				switch op {
				case "Lock", "RLock":
					held = w.acquire(held, op, operand, class, st.X.Pos())
				default:
					held = release(held, operand, class)
				}
				continue
			}
			w.expr(st.X, held)
		case *ast.DeferStmt:
			if op, _, _, ok := w.lockOp(st.Call); ok {
				_ = op // defer mu.Unlock() keeps the region held; defer mu.Lock() is nonsense — both leave held unchanged.
				continue
			}
			w.call(st.Call, held, EdgeDefer)
			for _, arg := range st.Call.Args {
				w.expr(arg, held)
			}
		case *ast.GoStmt:
			w.call(st.Call, held, EdgeGo)
			for _, arg := range st.Call.Args {
				w.expr(arg, held)
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				w.expr(rhs, held)
			}
			for _, lhs := range st.Lhs {
				w.expr(lhs, held)
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				w.expr(r, held)
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							w.expr(v, held)
						}
					}
				}
			}
		case *ast.IfStmt:
			if st.Init != nil {
				held = w.stmts([]ast.Stmt{st.Init}, held)
			}
			w.expr(st.Cond, held)
			branch(st.Body.List)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					branch(e.List)
				default:
					branch([]ast.Stmt{st.Else})
				}
			}
		case *ast.BlockStmt:
			held = w.stmts(st.List, held)
		case *ast.LabeledStmt:
			held = w.stmts([]ast.Stmt{st.Stmt}, held)
		case *ast.ForStmt:
			if st.Init != nil {
				held = w.stmts([]ast.Stmt{st.Init}, held)
			}
			if st.Cond != nil {
				w.expr(st.Cond, held)
			}
			if st.Post != nil {
				w.stmts([]ast.Stmt{st.Post}, snapshot(held))
			}
			w.stmts(st.Body.List, snapshot(held))
			if st.Cond == nil && !loopEscapes(st.Body) {
				w.fn.EndlessLoop = true
				w.fn.StopsOnSignal = w.fn.StopsOnSignal || loopHasStopCase(w.pkg.Info, st.Body)
			}
		case *ast.RangeStmt:
			w.expr(st.X, held)
			w.stmts(st.Body.List, snapshot(held))
			if isTimeChan(typeOf(w.pkg.Info, st.X)) && !loopEscapes(st.Body) {
				// for range ticker.C / time.Tick(...): the channel never
				// closes, so the loop is as endless as for {}.
				w.fn.EndlessLoop = true
				w.fn.StopsOnSignal = w.fn.StopsOnSignal || loopHasStopCase(w.pkg.Info, st.Body)
			}
		case *ast.SwitchStmt:
			if st.Init != nil {
				held = w.stmts([]ast.Stmt{st.Init}, held)
			}
			if st.Tag != nil {
				w.expr(st.Tag, held)
			}
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					w.stmts(cc.Body, snapshot(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					w.stmts(cc.Body, snapshot(held))
				}
			}
		case *ast.SelectStmt:
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if cc.Comm != nil {
						w.stmts([]ast.Stmt{cc.Comm}, snapshot(held))
					}
					w.stmts(cc.Body, snapshot(held))
				}
			}
		case *ast.SendStmt:
			w.expr(st.Chan, held)
			w.expr(st.Value, held)
		case *ast.IncDecStmt:
			w.expr(st.X, held)
		}
	}
	return held
}

// expr walks an expression tree emitting edges for every call, function
// literal, and function-value reference it contains. Function literals are
// walked as their own nodes (they inherit no lexical lock state).
func (w *graphWalker) expr(e ast.Expr, held []HeldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lit := w.litNode(x)
			w.g.edge(w.fn, lit, EdgeRef, x.Pos(), nil)
			return false
		case *ast.CallExpr:
			if op, _, _, ok := w.lockOp(x); ok && (op == "Lock" || op == "RLock") {
				// A lock call in expression position (rare; e.g. inside a
				// closure arg) — treated as opaque, not an acquisition.
				return true
			}
			w.call(x, held, EdgeCall)
			// Continue into arguments (nested calls, literals); the callee
			// expression itself was consumed by call().
			for _, arg := range x.Args {
				w.expr(arg, held)
			}
			if _, isLit := ast.Unparen(x.Fun).(*ast.FuncLit); !isLit {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					w.expr(sel.X, held)
				}
			}
			return false
		case *ast.SelectorExpr:
			// Method value taken without call: x.Method stored or passed.
			if fn, ok := w.pkg.Info.Uses[x.Sel].(*types.Func); ok {
				if callee := w.calleeNode(fn); callee != nil {
					w.g.edge(w.fn, callee, EdgeRef, x.Pos(), nil)
				}
			}
			w.notePlainAccess(x, held)
			w.expr(x.X, held)
			return false
		case *ast.Ident:
			if fn, ok := w.pkg.Info.Uses[x].(*types.Func); ok {
				if callee := w.calleeNode(fn); callee != nil {
					w.g.edge(w.fn, callee, EdgeRef, x.Pos(), nil)
				}
				return false
			}
			w.notePlainAccess(x, held)
			return false
		}
		return true
	})
}

// call resolves one call expression to a callee node and emits an edge of
// the given kind. Unresolvable callees (func-typed variables, builtins,
// conversions) emit nothing — a documented under-approximation.
func (w *graphWalker) call(call *ast.CallExpr, held []HeldLock, kind EdgeKind) {
	heldCopy := snapshot(held)
	if kind != EdgeCall {
		heldCopy = nil // Defer/Go edges execute outside the lexical region.
	}
	fun := ast.Unparen(call.Fun)
	w.markTimed(call)
	w.noteAtomicCall(call, held)
	if kind == EdgeCall {
		w.noteStoreAck(call)
	}
	switch fn := fun.(type) {
	case *ast.FuncLit:
		lit := w.litNode(fn)
		w.g.edge(w.fn, lit, kind, call.Pos(), heldCopy)
		return
	case *ast.Ident:
		if obj, ok := w.pkg.Info.Uses[fn].(*types.Func); ok {
			if callee := w.calleeNode(obj); callee != nil {
				w.g.edge(w.fn, callee, kind, call.Pos(), heldCopy)
			}
		}
		return
	case *ast.SelectorExpr:
		var obj *types.Func
		if selInfo, ok := w.pkg.Info.Selections[fn]; ok {
			obj, _ = selInfo.Obj().(*types.Func)
		} else if use, ok := w.pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			obj = use // qualified call: pkg.Func
		}
		if obj == nil {
			return
		}
		if callee := w.calleeNode(obj); callee != nil {
			w.g.edge(w.fn, callee, kind, call.Pos(), heldCopy)
		}
	}
}

// noteStoreAck records call sites shaped like NewMessage(msgStore*, nil):
// the empty reply a store handler returns as its durability promise. The
// shape is structural — any function named NewMessage, a first argument
// that is a msgStore*-named constant, a nil body — so fixture packages can
// play the transport, the way the other interprocedural fixtures do.
func (w *graphWalker) noteStoreAck(call *ast.CallExpr) {
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name != "NewMessage" || len(call.Args) != 2 {
		return
	}
	c, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || !strings.HasPrefix(c.Name, "msgStore") {
		return
	}
	if _, isConst := w.pkg.Info.Uses[c].(*types.Const); !isConst {
		return
	}
	if b, ok := ast.Unparen(call.Args[1]).(*ast.Ident); !ok || b.Name != "nil" {
		return
	}
	w.fn.AckSites = append(w.fn.AckSites, AckSite{Pos: call.Pos(), Msg: c.Name})
}

// markTimed flags the enclosing function when the call creates a deadline.
func (w *graphWalker) markTimed(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if sel.Sel.Name != "WithTimeout" && sel.Sel.Name != "WithDeadline" {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := w.pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" {
			w.fn.DirectTimed = true
		}
	}
}

// noteAtomicCall records every &field / &var operand of a sync/atomic
// package call as an atomic access site, and marks the operand so the
// plain-access scan over the same argument list skips it.
func (w *graphWalker) noteAtomicCall(call *ast.CallExpr, held []HeldLock) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := w.pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			continue
		}
		operand := ast.Unparen(ue.X)
		class := w.classify(operand)
		if !class.Named() {
			continue
		}
		if w.atomicSel == nil {
			w.atomicSel = make(map[ast.Expr]bool)
		}
		w.atomicSel[operand] = true
		w.g.accesses = append(w.g.accesses, fieldAccess{
			Class: class, Atomic: true, Pos: ue.Pos(),
			Held: snapshot(held), InTest: w.inTest, Fn: w.fn,
		})
	}
}

// notePlainAccess records a non-atomic load/store/address-take of a struct
// field or package-level var whose type a sync/atomic function could also
// touch. Operands already claimed by noteAtomicCall are skipped; unnamed
// classes (locals) never participate.
func (w *graphWalker) notePlainAccess(e ast.Expr, held []HeldLock) {
	if w.atomicSel[e] {
		return
	}
	var class LockClass
	switch x := e.(type) {
	case *ast.SelectorExpr:
		selInfo, ok := w.pkg.Info.Selections[x]
		if !ok || selInfo.Kind() != types.FieldVal {
			return
		}
		if !atomicCapable(selInfo.Obj().Type()) {
			return
		}
		class = w.classify(x)
	case *ast.Ident:
		v, ok := w.pkg.Info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() || !atomicCapable(v.Type()) {
			return
		}
		class = w.classify(x)
	default:
		return
	}
	if !class.Named() {
		return
	}
	w.g.accesses = append(w.g.accesses, fieldAccess{
		Class: class, Atomic: false, Pos: e.Pos(),
		Held: snapshot(held), InTest: w.inTest, Fn: w.fn,
	})
}

// atomicCapable reports whether t is a type the sync/atomic package
// functions operate on directly: fixed 32/64-bit integers, uintptr, and
// unsafe.Pointer. (The atomic.Int64-style wrapper types are excluded on
// purpose: the type system already prevents plain access to their values.)
func atomicCapable(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64,
		types.Uintptr, types.UnsafePointer:
		return true
	}
	return false
}

// calleeNode maps a resolved *types.Func to its graph node, creating
// interface-method placeholder nodes on first sight. Standard-library
// callees are represented too (their bodies are never walked, so they stay
// leaves) — except context/sync/fmt-style noise, which is dropped to keep
// the graph small.
func (w *graphWalker) calleeNode(fn *types.Func) *FuncNode {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil // builtins (error.Error on unnamed types, etc.)
	}
	inModule := pkg.Path() == w.g.Cfg.ModulePath ||
		strings.HasPrefix(pkg.Path(), w.g.Cfg.ModulePath+"/")
	sig, _ := fn.Type().(*types.Signature)
	ifaceMethod := false
	var ifaceType types.Type
	if sig != nil && sig.Recv() != nil {
		if rt := sig.Recv().Type(); rt != nil {
			if _, ok := rt.Underlying().(*types.Interface); ok {
				ifaceMethod = true
				ifaceType = rt
			}
		}
	}
	if !inModule && !ifaceMethod {
		// Out-of-module concrete callee: only RPC-prim-shaped ones matter
		// (none exist in the stdlib); drop the rest to keep the graph lean.
		return nil
	}
	id := funcID(fn)
	n, existed := w.g.Nodes[id], false
	if n != nil {
		existed = true
	} else {
		n = w.g.node(id)
	}
	if !existed {
		n.Name = shortFuncName(fn)
		n.Ident = fn.Name()
		n.Pos = fn.Pos()
		if fn.Pkg() != nil {
			n.Pkg = fn.Pkg().Path()
		}
		n.IsRPCPrim = isRPCPrimSig(fn.Name(), fn.Type())
		n.IsSyncPrim = isSyncPrimName(fn.Name())
		if ifaceMethod {
			n.IsIfaceMethod = true
			n.iface = ifaceType
			n.mname = fn.Name()
			w.g.ifaceNodes = append(w.g.ifaceNodes, n)
		}
	}
	return n
}

// litNode creates the node for a function literal and walks its body as an
// independent region.
func (w *graphWalker) litNode(lit *ast.FuncLit) *FuncNode {
	pos := w.g.Fset.Position(lit.Pos())
	id := fmt.Sprintf("lit@%s:%d:%d", pos.Filename, pos.Line, pos.Column)
	if n, ok := w.g.Nodes[id]; ok {
		return n
	}
	n := w.g.node(id)
	n.Name = fmt.Sprintf("func literal (%s:%d)", shortPath(pos.Filename), pos.Line)
	n.Pkg = w.pkg.Path
	n.Pos = lit.Pos()
	n.InTestFile = w.inTest
	n.body = lit.Body
	n.ftype = lit.Type
	n.pkgRef = w.pkg
	lw := &graphWalker{g: w.g, pkg: w.pkg, fn: n, inTest: w.inTest}
	if lit.Body != nil {
		lw.walkBody(lit.Body)
	}
	return n
}

// shortPath trims a filename to its last two path elements.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// loopEscapes reports whether a loop body contains any statement that can
// leave the loop or the function: return, break (any), goto, panic, or
// os.Exit/log.Fatal-shaped calls. Nested function literals are opaque.
func loopEscapes(body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			// break inside a nested loop doesn't escape this one, but a
			// return still does; keep walking and only trust returns below
			// nested loops.
			return true
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			if x.Tok.String() == "break" || x.Tok.String() == "goto" {
				// Conservative: any break may target this loop (labels not
				// resolved). Prefer missing a leak to inventing one.
				escapes = true
			}
		case *ast.CallExpr:
			switch f := x.Fun.(type) {
			case *ast.Ident:
				if f.Name == "panic" {
					escapes = true
				}
			case *ast.SelectorExpr:
				if f.Sel.Name == "Exit" || f.Sel.Name == "Fatal" || f.Sel.Name == "Fatalf" {
					escapes = true
				}
			}
		}
		return true
	})
	return escapes
}

// loopHasStopCase reports whether the loop body selects/receives on a
// context.Done() channel or a channel whose name suggests a stop signal.
func loopHasStopCase(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return true
		}
		switch x := ast.Unparen(ue.X).(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		case *ast.Ident:
			if stopName(x.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if stopName(x.Sel.Name) {
				found = true
			}
		}
		return true
	})
	return found
}

// stopName matches conventional stop-channel names.
func stopName(s string) bool {
	l := strings.ToLower(s)
	return strings.Contains(l, "stop") || strings.Contains(l, "done") ||
		strings.Contains(l, "quit") || strings.Contains(l, "close")
}

// isTimeChan reports whether t is a receive-capable channel of time.Time
// (time.Ticker.C, time.Tick results — channels that never close).
func isTimeChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	return IsNamed(ch.Elem(), "time", "Time")
}

// resolveDispatch links every interface-method node to the module-local
// concrete methods that may stand behind it. Matching is structural — same
// method names with identical fully-qualified signature strings — because
// types.Implements demands pointer-identical named types, which separately
// type-checked units do not share.
func (g *CallGraph) resolveDispatch(pkgs []*Package) {
	if len(g.ifaceNodes) == 0 {
		return
	}
	type concrete struct {
		named *types.Named
		pkg   *Package
	}
	var all []concrete
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			key := pkg.Path + "." + name
			if seen[key] {
				continue
			}
			seen[key] = true
			all = append(all, concrete{named: named, pkg: pkg})
		}
	}
	for _, ifn := range g.ifaceNodes {
		iface, ok := ifn.iface.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, c := range all {
			if !implementsLoose(c.named, iface) {
				continue
			}
			// Find the concrete method matching the interface method name.
			m := lookupMethod(c.named, ifn.mname)
			if m == nil {
				continue
			}
			id := funcID(m)
			callee, ok := g.Nodes[id]
			if !ok {
				continue // body not in the loaded set
			}
			g.edge(ifn, callee, EdgeDispatch, ifn.Pos, nil)
		}
	}
}

// lookupMethod finds a named type's method (pointer receiver included) by
// name, embedded promotions included.
func lookupMethod(named *types.Named, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}

// sigString renders a signature with full package paths, receiver excluded.
func sigString(sig *types.Signature) string {
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(noRecv, func(p *types.Package) string { return p.Path() })
}

// implementsLoose reports whether the named type (or its pointer) provides
// every method of iface with a structurally identical signature. It is the
// string-based stand-in for types.Implements across analysis units.
func implementsLoose(named *types.Named, iface *types.Interface) bool {
	if iface.NumMethods() == 0 {
		return false // interface{} matches everything; never dispatch on it
	}
	for i := 0; i < iface.NumMethods(); i++ {
		im := iface.Method(i)
		cm := lookupMethod(named, im.Name())
		if cm == nil {
			return false
		}
		is, iok := im.Type().(*types.Signature)
		cs, cok := cm.Type().(*types.Signature)
		if !iok || !cok || sigString(is) != sigString(cs) {
			return false
		}
	}
	return true
}

// SortedNodes returns the nodes sorted by ID for deterministic iteration.
func (g *CallGraph) SortedNodes() []*FuncNode {
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes
}

// frame renders one call-chain frame for diagnostics: "name (file:line)".
func (g *CallGraph) frame(n *FuncNode, pos token.Pos) string {
	p := g.Fset.Position(pos)
	if !p.IsValid() {
		return n.Name
	}
	return fmt.Sprintf("%s (%s:%d)", n.Name, shortPath(p.Filename), p.Line)
}

// Chain returns the call-chain evidence from start to the first node
// satisfying target, following the given edge kinds (BFS, so the chain is
// shortest). The returned frames are outermost-first; nil when unreachable.
func (g *CallGraph) Chain(start *FuncNode, kinds map[EdgeKind]bool, target func(*FuncNode) bool) []string {
	type hop struct {
		node *FuncNode
		via  *Edge
		prev *hop
	}
	if target(start) {
		return []string{g.frame(start, start.Pos)}
	}
	visited := map[*FuncNode]bool{start: true}
	queue := []*hop{{node: start}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, e := range h.node.Out {
			if !kinds[e.Kind] || visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			nh := &hop{node: e.Callee, via: e, prev: h}
			if target(e.Callee) {
				var frames []string
				for at := nh; at != nil; at = at.prev {
					pos := at.node.Pos
					if at.via != nil && at.via.Kind == EdgeDispatch {
						// Dispatch edges are synthetic; keep the decl pos.
						pos = at.node.Pos
					}
					frames = append(frames, g.frame(at.node, pos))
				}
				// Reverse to outermost-first.
				for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
					frames[i], frames[j] = frames[j], frames[i]
				}
				return frames
			}
			queue = append(queue, nh)
		}
	}
	return nil
}

// summaryKinds are the edges along which execution is synchronous enough to
// propagate summaries: plain calls, deferred calls (they run within the
// caller's activation), and interface dispatch.
var summaryKinds = map[EdgeKind]bool{EdgeCall: true, EdgeDefer: true, EdgeDispatch: true}

// DOT renders the graph in Graphviz format (module-local nodes only, Ref
// edges excluded) for canonvet -callgraph dot.
func (g *CallGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph canonvet {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	nodes := g.SortedNodes()
	idx := make(map[*FuncNode]int, len(nodes))
	emitted := make(map[*FuncNode]bool)
	emit := func(n *FuncNode) {
		if emitted[n] {
			return
		}
		emitted[n] = true
		attrs := ""
		switch {
		case n.IsRPCPrim:
			attrs = ", style=filled, fillcolor=lightsalmon"
		case n.IsIfaceMethod:
			attrs = ", style=dashed"
		case n.EndlessLoop:
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", idx[n], n.Name, attrs)
	}
	for i, n := range nodes {
		idx[n] = i
	}
	for _, n := range nodes {
		for _, e := range n.Out {
			if e.Kind == EdgeRef {
				continue
			}
			emit(e.Caller)
			emit(e.Callee)
			style := ""
			switch e.Kind {
			case EdgeGo:
				style = " [style=bold, color=blue, label=\"go\"]"
			case EdgeDefer:
				style = " [style=dotted, label=\"defer\"]"
			case EdgeDispatch:
				style = " [style=dashed, color=gray]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", idx[e.Caller], idx[e.Callee], style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
