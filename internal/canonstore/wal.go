// WAL record framing and the entry payload codec.
//
// A segment file is a plain concatenation of records, each framed as
//
//	u32 payload length (big-endian)
//	u32 CRC-32C over the type byte and the payload (big-endian)
//	u8  record type (1 = put, 2 = delete)
//	payload bytes
//
// and nothing else: no file header, no footer, no padding. Replay scans
// records front to back; the first frame that is truncated, oversized or
// fails its checksum ends the scan. In the newest segment that is the torn
// tail a crash mid-write leaves behind — expected, and discarded. In any
// sealed segment it is corruption of acked history and Open refuses to
// proceed (ErrCorrupt).
//
// The payload codec follows the conventions of netnode's binary wire
// format (docs/WIRE.md Section 5): fixed 8-byte big-endian ring ids,
// uvarint lengths and counts, zigzag varints for small signed ints, and a
// nil/present scheme for optional byte slices (0 = nil, n = length n-1).
// Decoders are strict — trailing bytes are an error — so one byte of
// payload damage cannot silently decode, and re-encoding a decoded payload
// reproduces it byte for byte (the FuzzWALRecordDecode invariant).
package canonstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	recPut    byte = 1
	recDelete byte = 2
)

// walHeaderLen is the fixed frame header: length, checksum, type.
const walHeaderLen = 4 + 4 + 1

// maxWALRecordBytes bounds one record's payload: larger lengths are
// treated as frame damage, so a flipped length byte cannot demand a
// gigantic allocation during replay.
const maxWALRecordBytes = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks the point where a segment stops parsing; whether that is
// benign (newest segment) or fatal (sealed segment) is the caller's call.
var errTorn = errors.New("canonstore: torn WAL record")

// appendRecord frames one record onto b.
func appendRecord(b []byte, typ byte, payload []byte) []byte {
	var hdr [walHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[8] = typ
	c := crc32.Update(0, crcTable, hdr[8:9])
	c = crc32.Update(c, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], c)
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// scanRecords walks the records of one segment, calling fn for each intact
// frame. It returns how many bytes formed intact records. err is nil when
// the data ends exactly on a record boundary, wraps errTorn when the tail
// fails framing or checksum, and carries fn's error through unchanged.
func scanRecords(data []byte, fn func(typ byte, payload []byte) error) (consumed int, err error) {
	off := 0
	for off < len(data) {
		if off+walHeaderLen > len(data) {
			return off, fmt.Errorf("%w: truncated header at offset %d", errTorn, off)
		}
		n := binary.BigEndian.Uint32(data[off : off+4])
		if n > maxWALRecordBytes {
			return off, fmt.Errorf("%w: payload length %d exceeds limit at offset %d", errTorn, n, off)
		}
		want := binary.BigEndian.Uint32(data[off+4 : off+8])
		end := off + walHeaderLen + int(n)
		if end > len(data) {
			return off, fmt.Errorf("%w: truncated payload at offset %d", errTorn, off)
		}
		typ := data[off+8]
		payload := data[off+walHeaderLen : end]
		c := crc32.Update(0, crcTable, data[off+8:off+9])
		c = crc32.Update(c, crcTable, payload)
		if c != want {
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", errTorn, off)
		}
		if err := fn(typ, payload); err != nil {
			return off, err
		}
		off = end
	}
	return off, nil
}

// ---- payload codec ----

var errWALDecode = errors.New("canonstore: malformed WAL payload")

func appendU64(b []byte, v uint64) []byte {
	var x [8]byte
	binary.BigEndian.PutUint64(x[:], v)
	return append(b, x[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendOptBytes encodes nil as 0 and a present slice p as uvarint(len+1)+p.
func appendOptBytes(b, p []byte) []byte {
	if p == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(p))+1)
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// walReader decodes the conventions above; the first failure latches.
type walReader struct {
	data []byte
	off  int
	err  error
}

func (r *walReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", errWALDecode, what, r.off)
	}
}

func (r *walReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *walReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *walReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *walReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("string overflows buffer")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *walReader) optBytes() []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(len(r.data)-r.off) {
		r.fail("bytes overflow buffer")
		return nil
	}
	p := make([]byte, n)
	copy(p, r.data[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

func (r *walReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail("truncated bool")
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.fail("bad bool")
		return false
	}
	return b == 1
}

func (r *walReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", errWALDecode, len(r.data)-r.off)
	}
	return nil
}

// appendEntry encodes a put payload.
func appendEntry(b []byte, e Entry) []byte {
	b = appendU64(b, e.Key)
	b = appendOptBytes(b, e.Value)
	b = appendStr(b, e.Storage)
	b = appendStr(b, e.Access)
	b = appendU64(b, e.PtrID)
	b = appendStr(b, e.PtrName)
	b = appendStr(b, e.PtrAddr)
	b = binary.AppendVarint(b, int64(e.Level))
	b = binary.AppendUvarint(b, e.Version)
	return b
}

// decodeEntry decodes a put payload.
func decodeEntry(data []byte) (Entry, error) {
	r := &walReader{data: data}
	var e Entry
	e.Key = r.u64()
	e.Value = r.optBytes()
	e.Storage = r.str()
	e.Access = r.str()
	e.PtrID = r.u64()
	e.PtrName = r.str()
	e.PtrAddr = r.str()
	e.Level = int(r.varint())
	e.Version = r.uvarint()
	return e, r.done()
}

// appendDelete encodes a delete (tombstone) payload.
func appendDelete(b []byte, key uint64, storage, access string, pointer bool) []byte {
	b = appendU64(b, key)
	b = appendStr(b, storage)
	b = appendStr(b, access)
	b = appendBool(b, pointer)
	return b
}

// decodeDelete decodes a delete payload.
func decodeDelete(data []byte) (key uint64, storage, access string, pointer bool, err error) {
	r := &walReader{data: data}
	key = r.u64()
	storage = r.str()
	access = r.str()
	pointer = r.bool()
	return key, storage, access, pointer, r.done()
}
