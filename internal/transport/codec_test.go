package transport_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/canon-dht/canon/internal/transport"
)

// TestBinaryMessageRoundTrip covers the envelope codec across every flag
// combination: type only, nonce, error, JSON payload, and combinations.
func TestBinaryMessageRoundTrip(t *testing.T) {
	cases := []transport.Message{
		{Type: "ping"},
		{Type: "lookup", Nonce: "abc123"},
		{Type: "error", Error: "boom: something broke"},
		{Type: "echo", Payload: []byte(`{"text":"hello"}`)},
		{Type: "full", Nonce: "n-1", Error: "partial failure", Payload: []byte(`[1,2,3]`)},
		{Type: strings.Repeat("t", 300), Nonce: strings.Repeat("n", 300)}, // multi-byte varint lengths
		{Type: "big", Payload: bytes.Repeat([]byte(`x`), 100_000)},
	}
	for _, want := range cases {
		enc, err := transport.AppendBinaryMessage(nil, want)
		if err != nil {
			t.Fatalf("encode %q: %v", want.Type, err)
		}
		got, err := transport.DecodeBinaryMessage(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Nonce != want.Nonce || got.Error != want.Error {
			t.Errorf("round trip of %q changed header fields: got %+v", want.Type, got)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip of %q changed payload: got %d bytes, want %d", want.Type, len(got.Payload), len(want.Payload))
		}
		if got.PayloadCodec != transport.PayloadJSON {
			t.Errorf("JSON payload decoded with codec %d", got.PayloadCodec)
		}
	}
}

// binBody is a payload implementing the binary codec interfaces, for
// exercising the payload-binary envelope path without importing netnode.
type binBody struct {
	X uint32 `json:"x"`
}

func (b binBody) AppendBinary(buf []byte) ([]byte, error) {
	return append(buf, byte(b.X>>24), byte(b.X>>16), byte(b.X>>8), byte(b.X)), nil
}

func (b binBody) MarshalBinary() ([]byte, error) { return b.AppendBinary(nil) }

func (b *binBody) UnmarshalBinary(data []byte) error {
	if len(data) != 4 {
		return transport.ErrUnreachable // any error will do for the test
	}
	b.X = uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3])
	return nil
}

// TestBinaryMessageBinaryBody verifies that a Body implementing
// BinaryAppender travels in binary form and decodes through
// encoding.BinaryUnmarshaler.
func TestBinaryMessageBinaryBody(t *testing.T) {
	msg, err := transport.NewMessage("bin", binBody{X: 0xDEADBEEF})
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Payload) != 0 {
		t.Fatalf("binary-capable body should not be eagerly JSON-encoded, got %q", msg.Payload)
	}
	enc, err := transport.AppendBinaryMessage(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := transport.DecodeBinaryMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadCodec != transport.PayloadBinary {
		t.Fatalf("payload codec = %d, want binary", got.PayloadCodec)
	}
	var out binBody
	if err := got.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.X != 0xDEADBEEF {
		t.Errorf("decoded %#x", out.X)
	}

	// The same message must also render as JSON (lazy materialization) for
	// legacy connections.
	var jsonOut binBody
	if err := msg.Decode(&jsonOut); err != nil {
		t.Fatal(err)
	}
	if jsonOut.X != 0xDEADBEEF {
		t.Errorf("JSON fallback decoded %#x", jsonOut.X)
	}
}

// TestBinaryMessageTruncations ensures every truncation of a valid envelope
// errors instead of panicking or silently decoding.
func TestBinaryMessageTruncations(t *testing.T) {
	msg := transport.Message{Type: "lookup", Nonce: "nonce-1", Error: "err", Payload: []byte(`{"k":1}`)}
	enc, err := transport.AppendBinaryMessage(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := transport.DecodeBinaryMessage(enc[:i]); err == nil {
			// A prefix that happens to be a complete envelope is only
			// acceptable if it really parses shorter fields; the payload
			// flag makes trailing-byte checks strict, so any nil error here
			// is a bug.
			t.Errorf("truncation to %d bytes decoded without error", i)
		}
	}
}
