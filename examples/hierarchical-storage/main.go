// Hierarchical storage: a campus file store where content can be pinned to
// a department (storage domain) while remaining visible campus-wide (access
// domain), per Section 4 of the paper. Demonstrates local retrieval that
// never leaves the domain, pointer indirection, and access control.
package main

import (
	"fmt"
	"math/rand"
	"os"

	canon "github.com/canon-dht/canon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchical-storage:", err)
		os.Exit(1)
	}
}

func run() error {
	tree := canon.NewHierarchy()
	departments := []string{"campus/cs", "campus/ee", "campus/bio", "offsite/partner"}
	var leaves []*canon.Domain
	for _, path := range departments {
		d, err := tree.EnsurePath(path)
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			leaves = append(leaves, d)
		}
	}
	nw, err := canon.Build(tree, leaves, canon.Options{Seed: 11})
	if err != nil {
		return err
	}
	st := nw.NewStore()
	rng := rand.New(rand.NewSource(2))

	cs, _ := tree.Lookup("campus/cs")
	campus, _ := tree.Lookup("campus")
	csNodes := nw.NodesIn(cs)
	author := csNodes[rng.Intn(len(csNodes))]

	// 1. A CS-only dataset: stored and visible only within campus/cs.
	dataset := nw.HashKey("cs/private-dataset.tar")
	if _, err := st.Put(author, dataset, []byte("raw measurements"), cs, cs); err != nil {
		return err
	}
	// 2. A campus-wide paper: stored in CS, readable by the whole campus.
	paper := nw.HashKey("cs/tech-report-42.pdf")
	holder, err := st.Put(author, paper, []byte("canon in g major"), cs, campus)
	if err != nil {
		return err
	}
	fmt.Printf("tech report stored at node %d in %q, visible in %q\n",
		nw.NodeID(holder), nw.NodeDomain(holder).Path(), campus.Path())
	// 3. A public announcement: global storage and access.
	announce := nw.HashKey("campus/announcement")
	if _, err := st.Put(author, announce, []byte("colloquium friday"), nil, nil); err != nil {
		return err
	}

	// CS reader: finds the dataset without leaving the department.
	reader := csNodes[rng.Intn(len(csNodes))]
	res := st.Get(reader, dataset)
	fmt.Printf("\nCS reader fetches dataset: found=%v hops=%d; path stayed in %q: %v\n",
		res.Found, res.Hops, cs.Path(), pathInside(nw, res.Path[:res.Hops+1], cs))

	// EE reader: the paper is visible (through a pointer if needed), the
	// dataset is not.
	ee, _ := tree.Lookup("campus/ee")
	eeNodes := nw.NodesIn(ee)
	eeReader := eeNodes[rng.Intn(len(eeNodes))]
	paperRes := st.Get(eeReader, paper)
	fmt.Printf("\nEE reader fetches tech report: found=%v (indirect=%v, value=%q)\n",
		paperRes.Found, paperRes.Indirect, paperRes.Value)
	dsRes := st.Get(eeReader, dataset)
	fmt.Printf("EE reader fetches CS-only dataset: found=%v (access control)\n", dsRes.Found)

	// Off-site partner: only global content is visible.
	offsite, _ := tree.Lookup("offsite/partner")
	partner := nw.NodesIn(offsite)[0]
	fmt.Printf("\npartner fetches tech report: found=%v\n", st.Get(partner, paper).Found)
	fmt.Printf("partner fetches announcement: found=%v value=%q\n",
		st.Get(partner, announce).Found, st.Get(partner, announce).Value)

	// Multi-value keys: each department publishes under one "directory" key.
	directory := nw.HashKey("campus/directory")
	for _, path := range departments[:3] {
		d, _ := tree.Lookup(path)
		member := nw.NodesIn(d)[0]
		if _, err := st.Put(member, directory, []byte(path), d, nil); err != nil {
			return err
		}
	}
	all := st.GetAll(partner, directory, 0)
	fmt.Printf("\ndirectory entries visible to the partner: %d\n", len(all))
	for _, entry := range all {
		fmt.Printf("  %s (answered by node %d)\n", entry.Value, nw.NodeID(entry.Node))
	}
	return nil
}

func pathInside(nw *canon.Network, path []int, d *canon.Domain) bool {
	for _, hop := range path {
		if !d.IsAncestorOf(nw.NodeDomain(hop)) {
			return false
		}
	}
	return true
}
