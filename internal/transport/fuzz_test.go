package transport_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/lint"
	"github.com/canon-dht/canon/internal/transport"
)

// envelopeSchemaSeed synthesizes a minimal valid envelope — every flag bit
// set, every conditional field present — from the committed wire-schema
// baseline, so the fuzz corpus always covers the full envelope layout and
// TestEnvelopeSchemaSeedDecodes proves the baseline matches the decoder.
func envelopeSchemaSeed(tb testing.TB) []byte {
	tb.Helper()
	s, err := lint.LoadWireSchema("../../docs/wire.schema.json")
	if err != nil {
		tb.Fatalf("load wire schema baseline: %v", err)
	}
	m := s.MessageByName("envelope")
	if m == nil {
		tb.Fatal("wire schema baseline has no envelope entry; regenerate it with canonvet -write-schema")
	}
	return m.Seed()
}

// TestEnvelopeSchemaSeedDecodes proves the schema-synthesized envelope seed
// is accepted by the real decoder with all optional fields populated.
func TestEnvelopeSchemaSeedDecodes(t *testing.T) {
	seed := envelopeSchemaSeed(t)
	msg, err := transport.DecodeBinaryMessage(seed)
	if err != nil {
		t.Fatalf("schema envelope seed (% x) does not decode: %v", seed, err)
	}
	if msg.Type == "" || msg.Nonce == "" || msg.Error == "" || len(msg.Payload) == 0 {
		t.Errorf("schema envelope seed decoded with optional fields missing: %+v", msg)
	}
}

// FuzzMessageDecode ensures arbitrary payload bytes never panic Decode.
func FuzzMessageDecode(f *testing.F) {
	f.Add([]byte(`{"x":1}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		msg := transport.Message{Type: "fuzz", Payload: payload}
		var out map[string]any
		_ = msg.Decode(&out) // must not panic
		var s struct {
			X int `json:"x"`
		}
		_ = msg.Decode(&s)
	})
}

// FuzzBinaryJSONDifferential round-trips the same message through both wire
// codecs — the binary envelope and the legacy JSON framing — and requires
// them to agree on every header field and payload byte. Payload bytes are
// JSON-quoted first so the legacy path (which requires valid JSON) can carry
// arbitrary fuzzed content.
func FuzzBinaryJSONDifferential(f *testing.F) {
	f.Add("lookup", "nonce-1", "", []byte("hello"), true)
	f.Add("", "", "remote boom", []byte{}, false)
	f.Add("t", "n", "e", []byte{0x00, 0xff, 0xc4, 'C', 'N'}, true)
	f.Fuzz(func(t *testing.T, msgType, nonce, errStr string, payload []byte, hasPayload bool) {
		msg := transport.Message{Type: msgType, Nonce: nonce, Error: errStr}
		if hasPayload {
			quoted, err := json.Marshal(string(payload))
			if err != nil {
				t.Skip("unquotable payload")
			}
			msg.Payload = quoted
		}

		// Binary envelope round trip.
		enc, err := transport.AppendBinaryMessage(nil, msg)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		binOut, err := transport.DecodeBinaryMessage(enc)
		if err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}

		// Legacy JSON round trip.
		raw, err := json.Marshal(msg)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var jsonOut transport.Message
		if err := json.Unmarshal(raw, &jsonOut); err != nil {
			t.Fatalf("json decode of own encoding: %v", err)
		}

		if binOut.Type != jsonOut.Type || binOut.Nonce != jsonOut.Nonce || binOut.Error != jsonOut.Error {
			t.Errorf("codecs disagree on headers:\n  binary: %+v\n  json:   %+v", binOut, jsonOut)
		}
		if !bytes.Equal(binOut.Payload, jsonOut.Payload) {
			t.Errorf("codecs disagree on payload: binary %q vs json %q", binOut.Payload, jsonOut.Payload)
		}
	})
}

// rawBinary re-encodes already-binary payload bytes verbatim, standing in
// for the typed Body a decoded envelope no longer has.
type rawBinary []byte

func (r rawBinary) AppendBinary(buf []byte) ([]byte, error) { return append(buf, r...), nil }

// FuzzBinaryMessageDecode ensures arbitrary envelope bytes never panic the
// binary decoder, and that anything it accepts re-encodes losslessly.
func FuzzBinaryMessageDecode(f *testing.F) {
	if enc, err := transport.AppendBinaryMessage(nil, transport.Message{
		Type: "seed", Nonce: "n", Error: "e", Payload: []byte(`{"x":1}`),
	}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0x0f, 0x01, 'a'})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(envelopeSchemaSeed(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := transport.DecodeBinaryMessage(data)
		if err != nil {
			return
		}
		// Accepted envelopes must survive a second round trip unchanged. A
		// decoded binary payload carries no typed Body, and the codec
		// (deliberately) refuses to re-encode without one — stand in the raw
		// bytes, which is what a relaying transport would forward.
		reencIn := msg
		if msg.PayloadCodec == transport.PayloadBinary {
			reencIn.Body = rawBinary(msg.Payload)
			reencIn.Payload = nil
		}
		reenc, err := transport.AppendBinaryMessage(nil, reencIn)
		if err != nil {
			t.Fatalf("re-encode of accepted envelope: %v", err)
		}
		again, err := transport.DecodeBinaryMessage(reenc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Type != msg.Type || again.Nonce != msg.Nonce || again.Error != msg.Error || !bytes.Equal(again.Payload, msg.Payload) {
			t.Errorf("unstable round trip: %+v vs %+v", msg, again)
		}
	})
}

// FuzzMuxFrame completes a valid mux handshake and then throws raw bytes at
// the server's frame reader: malformed frames must be rejected without
// panics, hangs or resource leaks.
func FuzzMuxFrame(f *testing.F) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = srv.Close() })
	srv.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		return msg, nil
	})

	// kind + request ID + uvarint length + minimal envelope (flags=0, type "a")
	good := []byte{0x01, 0, 0, 0, 0, 0, 0, 0, 1, 3, 0x00, 1, 'a'}
	f.Add(good)
	f.Add([]byte{0x02, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0x00})    // response kind at server
	f.Add([]byte{0x01, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff}) // absurd length varint
	f.Add([]byte{0xc4, 'C', 'N', 1})                        // a second hello mid-stream
	f.Fuzz(func(t *testing.T, raw []byte) {
		conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			t.Skip("dial failed")
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := conn.Write([]byte{0xc4, 'C', 'N', 1}); err != nil {
			t.Skip("handshake write failed")
		}
		var accept [4]byte
		if _, err := io.ReadFull(conn, accept[:]); err != nil {
			t.Skip("handshake read failed")
		}
		_, _ = conn.Write(raw)
		buf := make([]byte, 1024)
		_, _ = conn.Read(buf) // response, close or timeout; all fine
	})
}

// FuzzTCPFrame throws raw bytes at a live TCP server: malformed frames must
// be rejected without panics, hangs or resource leaks.
func FuzzTCPFrame(f *testing.F) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = srv.Close() })
	srv.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		return msg, nil
	})

	good := func(body string) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(good(`{"type":"echo"}`))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})           // absurd length
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'})             // truncated body
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0, 0, 0, 0}) // frame + empty frame

	f.Fuzz(func(t *testing.T, raw []byte) {
		conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			t.Skip("dial failed")
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
		_, _ = conn.Write(raw)
		buf := make([]byte, 1024)
		_, _ = conn.Read(buf) // response or error; either is fine
	})
}
