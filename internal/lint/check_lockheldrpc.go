package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkLockHeldRPC flags transport/RPC calls made while a mutex is lexically
// held. A netnode RPC can block for the full retry budget (seconds); issuing
// one with n.mu held stalls every other operation on the node and — because
// the remote peer's handler may call back — can deadlock the pair. The
// analysis is lexical and per-function: it tracks mu.Lock()/mu.Unlock()
// pairs in statement order (a deferred Unlock keeps the region locked to the
// end of the function, which is precisely the dangerous pattern), treats
// branches conservatively, and looks for calls that reach the wire:
// Transport.Call-shaped methods, netnode's call* helpers, and any method on
// netnode.Client.
var checkLockHeldRPC = Check{
	Name: "lockheldrpc",
	Doc:  "transport/RPC calls issued while a mutex is lexically held (deadlock/latency class)",
	Run:  runLockHeldRPC,
}

func runLockHeldRPC(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanLockRegion(pass, fn.Body.List, 0)
				}
			case *ast.FuncLit:
				// Function literals are scanned as their own regions: the
				// closure may run on another goroutine or after the caller
				// released the lock, so the caller's lock state does not
				// lexically extend into it.
				if fn.Body != nil {
					scanLockRegion(pass, fn.Body.List, 0)
				}
			}
			return true
		})
	}
}

// mutexMethodCall matches x.<sel>.Name() where the operand is a mutex: its
// type is sync.Mutex/RWMutex, or (when type info is incomplete) it is a
// field or variable named "mu".
func mutexMethodCall(pass *Pass, e ast.Expr, names ...string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	matched := false
	for _, name := range names {
		if sel.Sel.Name == name {
			matched = true
		}
	}
	if !matched {
		return false
	}
	if t := pass.TypeOf(sel.X); t != nil {
		return IsNamed(t, "sync", "Mutex") || IsNamed(t, "sync", "RWMutex")
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "mu"
	case *ast.Ident:
		return x.Name == "mu"
	}
	return false
}

func isLock(pass *Pass, e ast.Expr) bool {
	return mutexMethodCall(pass, e, "Lock", "RLock")
}

func isUnlock(pass *Pass, e ast.Expr) bool {
	return mutexMethodCall(pass, e, "Unlock", "RUnlock")
}

// terminates reports whether a statement list ends in a statement that never
// falls through (return, panic, continue, break, goto).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanLockRegion walks stmts in lexical order tracking how many mutex locks
// are held, reporting RPC calls in held regions. It returns the lock count
// after the list. Branch bodies that unlock and fall through lower the count
// (conservative: prefer missing a finding to inventing one); bodies ending
// in return/break keep the caller's count.
func scanLockRegion(pass *Pass, stmts []ast.Stmt, held int) int {
	scanBranch := func(body []ast.Stmt) {
		after := scanLockRegion(pass, body, held)
		if !terminates(body) && after < held {
			held = after
		}
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			switch {
			case isLock(pass, st.X):
				held++
			case isUnlock(pass, st.X):
				if held > 0 {
					held--
				}
			default:
				reportRPCInExpr(pass, st.X, held)
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region locked until return; a
			// deferred RPC call would run with whatever locks remain held at
			// return, so flag it under the current region too.
			if !isUnlock(pass, st.Call) && !isLock(pass, st.Call) {
				reportRPCInExpr(pass, st.Call, held)
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				reportRPCInExpr(pass, rhs, held)
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				reportRPCInExpr(pass, r, held)
			}
		case *ast.DeclStmt:
			reportRPCInNode(pass, st, held)
		case *ast.IfStmt:
			if st.Init != nil {
				held = scanLockRegion(pass, []ast.Stmt{st.Init}, held)
			}
			reportRPCInExpr(pass, st.Cond, held)
			scanBranch(st.Body.List)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					scanBranch(e.List)
				default:
					scanBranch([]ast.Stmt{st.Else})
				}
			}
		case *ast.BlockStmt:
			held = scanLockRegion(pass, st.List, held)
		case *ast.LabeledStmt:
			held = scanLockRegion(pass, []ast.Stmt{st.Stmt}, held)
		case *ast.ForStmt:
			if st.Init != nil {
				held = scanLockRegion(pass, []ast.Stmt{st.Init}, held)
			}
			if st.Cond != nil {
				reportRPCInExpr(pass, st.Cond, held)
			}
			scanLockRegion(pass, st.Body.List, held)
		case *ast.RangeStmt:
			reportRPCInExpr(pass, st.X, held)
			scanLockRegion(pass, st.Body.List, held)
		case *ast.SwitchStmt:
			if st.Tag != nil {
				reportRPCInExpr(pass, st.Tag, held)
			}
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanLockRegion(pass, cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanLockRegion(pass, cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					scanLockRegion(pass, cc.Body, held)
				}
			}
		case *ast.GoStmt:
			// The spawned goroutine does not inherit the lexical lock.
		}
	}
	return held
}

// reportRPCInExpr reports RPC-shaped calls inside e when a lock is held,
// without descending into function literals (separate regions).
func reportRPCInExpr(pass *Pass, e ast.Expr, held int) {
	if e == nil || held == 0 {
		return
	}
	reportRPCInNode(pass, e, held)
}

func reportRPCInNode(pass *Pass, n ast.Node, held int) {
	if held == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why := rpcCallKind(pass, call); why != "" {
			pass.Reportf(call.Pos(), "%s while a mutex is lexically held; release the lock before going to the wire", why)
		}
		return true
	})
}

// netRPCHelpers are netnode.Node methods that wrap transport calls; calling
// one under the node lock blocks the wire just the same.
var netRPCHelpers = map[string]bool{
	"pingAddr": true, "lookupFrom": true, "lookupReqFrom": true,
	"findMember": true,
}

// rpcCallKind classifies a call that reaches the network, returning a short
// description ("" when it does not).
func rpcCallKind(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	// Methods on netnode.Client all issue RPCs.
	recv := pass.TypeOf(sel.X)
	if IsNamed(recv, pass.Cfg.ModulePath+"/internal/netnode", "Client") {
		return "netnode.Client." + name + " call"
	}
	// node.call / node.callFoo and the RPC helper wrappers.
	if name == "call" || (strings.HasPrefix(name, "call") && len(name) > 4 && name[4] >= 'A' && name[4] <= 'Z') {
		return "RPC helper ." + name + " call"
	}
	if netRPCHelpers[name] && IsNamed(recv, pass.Cfg.ModulePath+"/internal/netnode", "Node") {
		return "netnode RPC helper ." + name + " call"
	}
	// Transport.Call-shaped methods: named Call, first parameter a
	// context.Context (matches the transport.Transport interface and every
	// wrapper implementing it).
	if name == "Call" {
		if sig, ok := pass.TypeOf(call.Fun).(*types.Signature); ok && sig.Params().Len() >= 1 {
			if IsNamed(sig.Params().At(0).Type(), "context", "Context") {
				return "Transport.Call"
			}
		} else if pass.TypeOf(call.Fun) == nil && len(call.Args) == 3 {
			return "Transport.Call" // type info missing: match on shape
		}
	}
	return ""
}
