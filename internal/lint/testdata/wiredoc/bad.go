package wiredoc

// driftReq's codec sends B as a length-prefixed string, but the WIRE.md
// table next to this fixture still documents the old u64 form — the spec
// rotted while the code moved on, which is the drift wiredoc reports.
type driftReq struct {
	A uint64
	B string
}

func (q driftReq) AppendBinary(b []byte) ([]byte, error) { // want `WIRE.md drift for drift request: field 2 \("B"\) is documented as u64 but encoded as string`
	b = appendU64(b, q.A)
	b = appendStr(b, q.B)
	return b, nil
}

func (q *driftReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.A = r.u64()
	q.B = r.str()
	return r.done()
}
