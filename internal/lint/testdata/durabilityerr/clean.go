// Clean constructs for the durability error-path fixture: the error
// disciplines the check must stay silent on.
package durabilityerr

// checked propagates every barrier error to the caller.
func (d *disk) checked() error {
	if err := d.f.Sync(); err != nil {
		return err
	}
	return d.f.Close()
}

// latched parks the error where the ack path reads it — the sticky-error
// pattern the storage engine uses.
func (d *disk) latched() {
	if err := d.f.Sync(); err != nil {
		d.werr = err
	}
}

// errorPathClose: a best-effort Close on a path that already failed is
// idiomatic cleanup, not a lost barrier.
func (d *disk) errorPathClose(p []byte) error {
	if _, err := d.f.Write(p); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Sync()
}

// deferredClose: deferred cleanup errors are out of scope by design.
func (d *disk) deferredClose() {
	defer d.f.Close()
	d.f.dirty = true
}
