package simdeterminism

import (
	"math/rand"
	"time"
)

// step advances simulated time arithmetically; duration constants and
// arithmetic on time values are fine — only wall-clock reads are banned.
func step(now time.Duration) time.Duration {
	return now + 50*time.Millisecond
}

// draw uses a caller-seeded generator: reproducible from the seed alone.
func draw(rng *rand.Rand) int {
	return rng.Intn(100)
}

// seeded constructs the generator explicitly.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
