// Package lockorder is the golden fixture for the lockorder check: every
// want line below must fire, and clean.go must stay silent.
package lockorder

import "sync"

// A and B are two named lock classes.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// abPath acquires A then B: one direction of the cycle.
func abPath(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle .*A\.mu.*B\.mu.*deadlock`
	b.mu.Unlock()
}

// baPath acquires B then A: the reverse direction, closing the cycle. The
// diagnostic is reported once, at the lexicographically-first edge witness.
func baPath(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// C and D close a cycle through a call: cdPath holds C and *calls* a helper
// that acquires D, while dcPath nests the other way directly.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func cdPath(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(d) // want `lock-order cycle .*C\.mu.*D\.mu.*deadlock`
}

func dcPath(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
