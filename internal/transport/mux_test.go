package transport_test

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

// newTCPPair returns a served binary-capable server and a binary-mode client
// whose mux metrics land in the returned registry.
func newTCPPair(t *testing.T, h transport.Handler) (*transport.TCP, *transport.TCP, *telemetry.Registry) {
	t.Helper()
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	srv.Serve(h)

	reg := telemetry.NewRegistry()
	cli, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return srv, cli, reg
}

// TestMuxConcurrentInFlight drives 64 concurrent callers at one peer over the
// binary mux wire and checks that every response reaches its caller untangled,
// that the peer negotiated binary, and that the connection count stayed at the
// configured ConnsPerPeer (multiplexing, not conn-per-call).
func TestMuxConcurrentInFlight(t *testing.T) {
	srv, cli, reg := newTCPPair(t, echoHandler)

	const callers = 64
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				msg, _ := transport.NewMessage("echo", echoBody{Text: fmt.Sprintf("c%d-%d", i, j)})
				resp, err := cli.Call(context.Background(), srv.Addr(), msg)
				if err != nil {
					errs <- err
					return
				}
				var out echoBody
				if err := resp.Decode(&out); err != nil {
					errs <- err
					return
				}
				if want := fmt.Sprintf("echo:c%d-%d", i, j); out.Text != want {
					errs <- fmt.Errorf("caller %d got %q, want %q", i, out.Text, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if w := cli.PeerWire(srv.Addr()); w != transport.WireBinary {
		t.Errorf("negotiated wire = %q, want %q", w, transport.WireBinary)
	}
	if dials := reg.CounterValue("canon_transport_mux_dials_total"); dials > 2 {
		t.Errorf("dials = %d, want <= ConnsPerPeer (2): calls must multiplex", dials)
	}
	if reuse := reg.CounterValue("canon_transport_mux_conn_reuse_total"); reuse == 0 {
		t.Error("conn reuse counter stayed 0 across 512 calls")
	}
	sent := reg.CounterValue("canon_transport_mux_frames_total", telemetry.L("dir", "send"))
	recv := reg.CounterValue("canon_transport_mux_frames_total", telemetry.L("dir", "recv"))
	if sent < callers || recv < callers {
		t.Errorf("frame counters sent=%d recv=%d, want >= %d each", sent, recv, callers)
	}
}

// runLegacyJSONServer hand-rolls a pre-mux peer: length-prefixed JSON frames
// only, oversized frame lengths rejected by closing the connection. New builds
// always sniff both protocols, so simulating an old build requires going
// straight to the socket.
func runLegacyJSONServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					var hdr [4]byte
					if _, err := io.ReadFull(br, hdr[:]); err != nil {
						return
					}
					n := binary.BigEndian.Uint32(hdr[:])
					if n > 16<<20 {
						// The mux hello decodes as a ~3.3 GiB length; an old
						// build rejects it and closes — the downgrade signal.
						return
					}
					raw := make([]byte, n)
					if _, err := io.ReadFull(br, raw); err != nil {
						return
					}
					var msg transport.Message
					if err := json.Unmarshal(raw, &msg); err != nil {
						return
					}
					resp, err := json.Marshal(transport.Message{Type: "legacy-reply", Payload: msg.Payload})
					if err != nil {
						return
					}
					var rh [4]byte
					binary.BigEndian.PutUint32(rh[:], uint32(len(resp)))
					if _, err := c.Write(append(rh[:], resp...)); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return l.Addr().String()
}

// TestMuxDowngradeToLegacyPeer dials a hand-rolled legacy JSON server with a
// binary-mode client: the rejected hello must downgrade the peer to JSON
// framing (once — the decision is cached) and calls must succeed.
func TestMuxDowngradeToLegacyPeer(t *testing.T) {
	addr := runLegacyJSONServer(t)

	reg := telemetry.NewRegistry()
	cli, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 3; i++ {
		msg, _ := transport.NewMessage("echo", echoBody{Text: fmt.Sprintf("legacy%d", i)})
		resp, err := cli.Call(context.Background(), addr, msg)
		if err != nil {
			t.Fatalf("call %d through downgraded wire: %v", i, err)
		}
		if resp.Type != "legacy-reply" {
			t.Fatalf("call %d: response type %q", i, resp.Type)
		}
		var out echoBody
		if err := resp.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("legacy%d", i); out.Text != want {
			t.Errorf("call %d echoed %q, want %q", i, out.Text, want)
		}
	}
	if w := cli.PeerWire(addr); w != transport.WireJSON {
		t.Errorf("negotiated wire = %q, want %q", w, transport.WireJSON)
	}
	if n := reg.CounterValue("canon_transport_mux_downgrades_total"); n != 1 {
		t.Errorf("downgrades = %d, want exactly 1 (the decision is cached)", n)
	}
}

// TestMuxJSONModeClient forces a client to legacy JSON framing against a
// binary-capable server: the server must sniff and serve the old protocol.
func TestMuxJSONModeClient(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(echoHandler)

	cli, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{Wire: transport.WireJSON})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	msg, _ := transport.NewMessage("echo", echoBody{Text: "old-school"})
	resp, err := cli.Call(context.Background(), srv.Addr(), msg)
	if err != nil {
		t.Fatal(err)
	}
	var out echoBody
	if err := resp.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "echo:old-school" {
		t.Errorf("got %q", out.Text)
	}
}

// TestMuxBinaryBodyPayload sends a BinaryAppender body over the mux and checks
// the payload traveled in binary form both ways (request decoded by the
// handler, response decoded by the caller), with the codec counters agreeing.
func TestMuxBinaryBodyPayload(t *testing.T) {
	h := func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		if msg.PayloadCodec != transport.PayloadBinary {
			return transport.Message{}, fmt.Errorf("request payload codec = %d, want binary", msg.PayloadCodec)
		}
		var in binBody
		if err := msg.Decode(&in); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("bin-reply", binBody{X: in.X + 1})
	}
	srv, cli, reg := newTCPPair(t, h)

	msg, err := transport.NewMessage("bin", binBody{X: 41})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Call(context.Background(), srv.Addr(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.PayloadCodec != transport.PayloadBinary {
		t.Fatalf("response payload codec = %d, want binary", resp.PayloadCodec)
	}
	var out binBody
	if err := resp.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.X != 42 {
		t.Errorf("round trip produced %d, want 42", out.X)
	}
	if n := reg.CounterValue("canon_transport_mux_codec_payloads_total", telemetry.L("codec", "binary")); n == 0 {
		t.Error("binary payload codec counter stayed 0")
	}

	// A plain JSON body must still ride the same binary envelope.
	jmsg, _ := transport.NewMessage("echo", echoBody{Text: "json-over-mux"})
	jresp, err := cli.Call(context.Background(), srv.Addr(), jmsg)
	if err == nil {
		// handler rejects non-binary codec; the error travels as an envelope
		var o echoBody
		if derr := jresp.Decode(&o); derr == nil {
			t.Error("handler should have rejected the JSON payload codec")
		}
	}
	if n := reg.CounterValue("canon_transport_mux_codec_payloads_total", telemetry.L("codec", "json")); n == 0 {
		t.Error("json payload codec counter stayed 0")
	}
}

// TestMuxResilienceUnderLoss is the shared-connection retry/dedup soak: a
// faulty wrapper drops 20% of calls (half request drops, half response drops)
// over a multiplexed binary transport, callers retry with stable nonces, and
// the server's dedup layer must keep handler execution at-most-once per nonce
// even though all requests share a handful of connections.
func TestMuxResilienceUnderLoss(t *testing.T) {
	var (
		mu   sync.Mutex
		runs = make(map[string]int) // nonce -> handler executions
	)
	inner := func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		mu.Lock()
		runs[msg.Nonce]++
		mu.Unlock()
		return transport.NewMessage("ok", echoBody{Text: msg.Nonce})
	}
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(transport.DedupHandler(inner, 4096))

	tcp, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	cli := transport.NewFaulty(tcp, 42, transport.Faults{Drop: 0.20})

	const (
		requests = 512
		workers  = 16
		maxTries = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < requests; i += workers {
				nonce := fmt.Sprintf("req-%04d", i)
				msg, _ := transport.NewMessage("work", echoBody{Text: nonce})
				msg.Nonce = nonce
				var lastErr error
				ok := false
				for try := 0; try < maxTries; try++ {
					resp, err := cli.Call(context.Background(), srv.Addr(), msg)
					if err != nil {
						lastErr = err
						continue
					}
					var out echoBody
					if err := resp.Decode(&out); err != nil {
						lastErr = err
						continue
					}
					if out.Text != nonce {
						errs <- fmt.Errorf("nonce %s answered with %q", nonce, out.Text)
					}
					ok = true
					break
				}
				if !ok {
					errs <- fmt.Errorf("nonce %s never succeeded: %v", nonce, lastErr)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(runs) != requests {
		t.Errorf("handler saw %d distinct nonces, want %d", len(runs), requests)
	}
	for nonce, n := range runs {
		if n != 1 {
			t.Errorf("nonce %s executed %d times, want exactly 1 (dedup must hold on shared conns)", nonce, n)
		}
	}
	if tcp.PeerWire(srv.Addr()) != transport.WireBinary {
		t.Errorf("soak ran on wire %q, want %q", tcp.PeerWire(srv.Addr()), transport.WireBinary)
	}
}

// TestMuxServerSurvivesGarbage completes a valid handshake, then writes junk:
// the server must drop the connection without disturbing other peers.
func TestMuxServerSurvivesGarbage(t *testing.T) {
	srv, cli, _ := newTCPPair(t, echoHandler)

	c, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	hello := []byte{0xC4, 'C', 'N', 1}
	if _, err := c.Write(hello); err != nil {
		t.Fatal(err)
	}
	var accept [4]byte
	if _, err := io.ReadFull(c, accept[:]); err != nil {
		t.Fatalf("handshake accept: %v", err)
	}
	if accept[0] != 0xC4 || accept[3] != 1 {
		t.Fatalf("accept = % x", accept)
	}
	// Not a request frame: the server must hang up, not crash or stall.
	if _, err := c.Write([]byte{0xFF, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err == nil {
		t.Error("server answered a garbage frame instead of closing")
	}

	// The listener and other connections keep working.
	msg, _ := transport.NewMessage("echo", echoBody{Text: "still-alive"})
	resp, err := cli.Call(context.Background(), srv.Addr(), msg)
	if err != nil {
		t.Fatalf("call after garbage connection: %v", err)
	}
	var out echoBody
	if err := resp.Decode(&out); err != nil || out.Text != "echo:still-alive" {
		t.Errorf("got %q, err %v", out.Text, err)
	}
}

// TestMuxRedialAfterPeerDeath kills the server mid-conversation and checks
// that calls to the dead peer fail with ErrUnreachable instead of hanging on
// the broken multiplexed connection.
func TestMuxRedialAfterPeerDeath(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(echoHandler)
	addr := srv.Addr()

	cli, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	msg, _ := transport.NewMessage("echo", echoBody{Text: "a"})
	if _, err := cli.Call(context.Background(), addr, msg); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err = cli.Call(ctx, addr, msg)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls to a dead peer kept succeeding")
		}
	}
	if !errors.Is(err, transport.ErrUnreachable) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("dead peer error = %v, want ErrUnreachable", err)
	}
}
