package hierarchy

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewTreeRootOnly(t *testing.T) {
	tr := NewTree()
	r := tr.Root()
	if !r.IsRoot() || !r.IsLeaf() {
		t.Fatal("fresh root should be both root and leaf")
	}
	if r.Depth() != 0 || r.Path() != "" {
		t.Fatalf("root depth/path = %d/%q, want 0/\"\"", r.Depth(), r.Path())
	}
	if tr.Levels() != 1 {
		t.Fatalf("Levels() = %d, want 1 for flat tree", tr.Levels())
	}
}

func TestEnsurePathAndLookup(t *testing.T) {
	tr := NewTree()
	db, err := tr.EnsurePath("stanford/cs/db")
	if err != nil {
		t.Fatalf("EnsurePath: %v", err)
	}
	if db.Path() != "stanford/cs/db" {
		t.Errorf("Path() = %q", db.Path())
	}
	if db.Depth() != 3 {
		t.Errorf("Depth() = %d, want 3", db.Depth())
	}
	// Idempotent.
	db2, err := tr.EnsurePath("stanford/cs/db")
	if err != nil {
		t.Fatalf("EnsurePath again: %v", err)
	}
	if db2 != db {
		t.Error("EnsurePath not idempotent")
	}
	cs, ok := tr.Lookup("stanford/cs")
	if !ok {
		t.Fatal("Lookup(stanford/cs) failed")
	}
	if db.Parent() != cs {
		t.Error("db.Parent() != cs")
	}
	if _, ok := tr.Lookup("stanford/ee"); ok {
		t.Error("Lookup(stanford/ee) should fail")
	}
	if root, ok := tr.Lookup(""); !ok || root != tr.Root() {
		t.Error("Lookup(\"\") should return root")
	}
}

func TestEnsurePathEmptyComponent(t *testing.T) {
	tr := NewTree()
	if _, err := tr.EnsurePath("a//b"); !errors.Is(err, ErrEmptyComponent) {
		t.Fatalf("EnsurePath(a//b) error = %v, want ErrEmptyComponent", err)
	}
	if _, err := tr.EnsurePath("/a"); !errors.Is(err, ErrEmptyComponent) {
		t.Fatalf("EnsurePath(/a) error = %v, want ErrEmptyComponent", err)
	}
}

func TestBalanced(t *testing.T) {
	tests := []struct {
		levels, fanout int
		wantLeaves     int
		wantDomains    int
	}{
		{1, 10, 1, 1},
		{2, 3, 3, 4},
		{3, 3, 9, 13},
		{4, 2, 8, 15},
	}
	for _, tt := range tests {
		tr, err := Balanced(tt.levels, tt.fanout)
		if err != nil {
			t.Fatalf("Balanced(%d,%d): %v", tt.levels, tt.fanout, err)
		}
		if got := len(tr.Leaves()); got != tt.wantLeaves {
			t.Errorf("Balanced(%d,%d) leaves = %d, want %d", tt.levels, tt.fanout, got, tt.wantLeaves)
		}
		if got := tr.NumDomains(); got != tt.wantDomains {
			t.Errorf("Balanced(%d,%d) domains = %d, want %d", tt.levels, tt.fanout, got, tt.wantDomains)
		}
		if got := tr.Levels(); got != tt.levels {
			t.Errorf("Balanced(%d,%d) levels = %d", tt.levels, tt.fanout, got)
		}
	}
	if _, err := Balanced(0, 2); err == nil {
		t.Error("Balanced(0,2): expected error")
	}
	if _, err := Balanced(2, 0); err == nil {
		t.Error("Balanced(2,0): expected error")
	}
}

func TestLCA(t *testing.T) {
	tr := NewTree()
	mustPath := func(p string) *Domain {
		d, err := tr.EnsurePath(p)
		if err != nil {
			t.Fatalf("EnsurePath(%q): %v", p, err)
		}
		return d
	}
	db := mustPath("stanford/cs/db")
	ai := mustPath("stanford/cs/ai")
	ee := mustPath("stanford/ee")
	mit := mustPath("mit/csail")

	tests := []struct {
		a, b *Domain
		want string
	}{
		{db, ai, "stanford/cs"},
		{db, ee, "stanford"},
		{db, mit, ""},
		{db, db, "stanford/cs/db"},
		{db, db.Parent(), "stanford/cs"},
	}
	for _, tt := range tests {
		got := LCA(tt.a, tt.b)
		if got == nil || got.Path() != tt.want {
			t.Errorf("LCA(%q,%q) = %v, want %q", tt.a.Path(), tt.b.Path(), got, tt.want)
		}
		// Symmetry.
		if LCA(tt.b, tt.a) != got {
			t.Errorf("LCA not symmetric for %q,%q", tt.a.Path(), tt.b.Path())
		}
	}
	if LCA(nil, db) != nil {
		t.Error("LCA(nil, x) should be nil")
	}
}

func TestAncestorAtAndIsAncestorOf(t *testing.T) {
	tr := NewTree()
	db, _ := tr.EnsurePath("stanford/cs/db")
	if got := db.AncestorAt(0); got != tr.Root() {
		t.Error("AncestorAt(0) != root")
	}
	if got := db.AncestorAt(1).Path(); got != "stanford" {
		t.Errorf("AncestorAt(1) = %q", got)
	}
	if got := db.AncestorAt(3); got != db {
		t.Error("AncestorAt(own depth) != self")
	}
	if db.AncestorAt(4) != nil || db.AncestorAt(-1) != nil {
		t.Error("out-of-range AncestorAt should be nil")
	}
	cs, _ := tr.Lookup("stanford/cs")
	if !cs.IsAncestorOf(db) {
		t.Error("cs should be ancestor of db")
	}
	if !db.IsAncestorOf(db) {
		t.Error("IsAncestorOf should be inclusive")
	}
	if db.IsAncestorOf(cs) {
		t.Error("db is not an ancestor of cs")
	}
}

func TestDomainsOnPath(t *testing.T) {
	tr := NewTree()
	db, _ := tr.EnsurePath("a/b/c")
	chain := DomainsOnPath(db)
	if len(chain) != 4 {
		t.Fatalf("chain length = %d, want 4", len(chain))
	}
	wantPaths := []string{"", "a", "a/b", "a/b/c"}
	for i, want := range wantPaths {
		if chain[i].Path() != want {
			t.Errorf("chain[%d] = %q, want %q", i, chain[i].Path(), want)
		}
	}
}

func TestAssignUniform(t *testing.T) {
	tr, _ := Balanced(3, 4)
	rng := rand.New(rand.NewSource(7))
	const n = 10000
	assign := AssignUniform(rng, tr, n)
	if len(assign) != n {
		t.Fatalf("assigned %d, want %d", len(assign), n)
	}
	counts := make(map[int]int)
	for _, d := range assign {
		if !d.IsLeaf() {
			t.Fatal("assigned to non-leaf")
		}
		counts[d.ID()]++
	}
	// 16 leaves, expect ~625 each; allow generous slack.
	for id, c := range counts {
		if c < 400 || c > 900 {
			t.Errorf("leaf %d count %d far from uniform expectation 625", id, c)
		}
	}
}

func TestAssignZipfExactTotalAndSkew(t *testing.T) {
	tr, _ := Balanced(2, 10)
	rng := rand.New(rand.NewSource(3))
	const n = 10000
	assign := AssignZipf(rng, tr, n, 1.25)
	if len(assign) != n {
		t.Fatalf("assigned %d, want %d", len(assign), n)
	}
	counts := make(map[int]int)
	for _, d := range assign {
		counts[d.ID()]++
	}
	// The largest branch should hold roughly w1/sum = 1/sum of the total.
	max, min := 0, n
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	// With exponent 1.25 and 10 branches, largest/smallest ≈ 10^1.25 ≈ 17.8.
	ratio := float64(max) / math.Max(float64(min), 1)
	if ratio < 5 || ratio > 40 {
		t.Errorf("zipf skew ratio = %.1f, want within [5,40]", ratio)
	}
}

func TestApportionZipfSumsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(rk uint8, rtotal uint16) bool {
		k := int(rk)%12 + 1
		total := int(rtotal) % 5000
		counts := apportionZipf(rng, k, total, 1.25)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LCA depth never exceeds either argument's depth, and the LCA is
// an ancestor of both.
func TestLCAProperty(t *testing.T) {
	tr, _ := Balanced(4, 3)
	leaves := tr.Leaves()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a := leaves[rng.Intn(len(leaves))]
		b := leaves[rng.Intn(len(leaves))]
		l := LCA(a, b)
		if l == nil {
			t.Fatal("LCA nil for same-tree leaves")
		}
		if !l.IsAncestorOf(a) || !l.IsAncestorOf(b) {
			t.Fatal("LCA is not a common ancestor")
		}
		// Lowest: no child of l is a common ancestor.
		for _, c := range l.Children() {
			if c.IsAncestorOf(a) && c.IsAncestorOf(b) {
				t.Fatal("LCA is not lowest")
			}
		}
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tr, _ := Balanced(3, 2)
	visited := 0
	tr.Walk(func(d *Domain) { visited++ })
	if visited != tr.NumDomains() {
		t.Fatalf("Walk visited %d, want %d", visited, tr.NumDomains())
	}
}

func TestLoadPlacement(t *testing.T) {
	spec := `
# campus file store
stanford/cs/db 3
stanford/cs/ai 2
mit/csail      4
stanford/cs/db 1
`
	tree, placement, err := LoadPlacement(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != 10 {
		t.Fatalf("placement = %d nodes, want 10", len(placement))
	}
	counts := make(map[string]int)
	for _, d := range placement {
		counts[d.Path()]++
	}
	if counts["stanford/cs/db"] != 4 || counts["stanford/cs/ai"] != 2 || counts["mit/csail"] != 4 {
		t.Errorf("counts = %v", counts)
	}
	if tree.Levels() != 4 {
		t.Errorf("Levels = %d", tree.Levels())
	}
}

func TestLoadPlacementErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"missing count", "a/b\n"},
		{"bad count", "a/b x\n"},
		{"negative count", "a/b -1\n"},
		{"empty component", "a//b 2\n"},
		{"empty placement", "# nothing\n"},
		{"internal with nodes", "a 2\na/b 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := LoadPlacement(strings.NewReader(tc.spec)); err == nil {
				t.Errorf("spec %q should fail", tc.spec)
			}
		})
	}
}
