package netnode

import (
	"context"
	"fmt"
	"sort"

	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

// candidates snapshots every known contact inside the named domain: fingers,
// per-level successors and predecessors.
//
// Since the epoch-snapshot refactor the forwarding hot path no longer calls
// this (it reads the precomputed candidate sets of the published
// routingView); candidates stays as the mutex-held reference implementation
// that the snapshot equivalence suite checks buildRoutingView against.
func (n *Node) candidates(prefix string) []Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := make(map[string]bool)
	out := make([]Info, 0, len(n.fingers)+2*(n.levels+1))
	add := func(i Info) {
		if i.IsZero() || i.Addr == n.self.Addr || seen[i.Addr] {
			return
		}
		if !inDomain(i.Name, prefix) {
			return
		}
		seen[i.Addr] = true
		out = append(out, i)
	}
	for _, f := range n.fingers {
		add(f)
	}
	for l := 0; l <= n.levels; l++ {
		for _, s := range n.succs[l] {
			add(s)
		}
		add(n.preds[l])
	}
	return out
}

// canonAdmissible reports whether the Canon link-retention rule (Section 2.2)
// admits cand as a greedy routing candidate from this node, under the node's
// geometry's metric (geomAdmissible is the shared rule). FixFingers already
// builds long links under this bound; applying the same bound to
// successor-list and predecessor entries at lookup time is what makes the
// proxy-convergence theorem (Section 3.2) hold on the live path: without it
// a node could jump past its own domain's spine through a far global
// successor-list entry, and different sources would then exit a domain
// through different nodes.
func (n *Node) canonAdmissible(cand Info) bool {
	d := n.clockwise(n.self.ID, cand.ID)
	n.mu.Lock()
	defer n.mu.Unlock()
	return geomAdmissible(n.geom.kind(), n.space, n.self, n.levels, n.succs, cand, d)
}

// succInDomain returns the node's successor within the domain named prefix,
// which must be one of the node's own domains.
func (n *Node) succInDomain(prefix string) Info {
	level := len(components(prefix))
	n.mu.Lock()
	defer n.mu.Unlock()
	if level > n.levels || prefixAt(n.self.Name, level) != prefix {
		return Info{}
	}
	if len(n.succs[level]) == 0 {
		return n.self
	}
	return n.succs[level][0]
}

// handleLookup implements greedy clockwise forwarding constrained to a
// domain: the receiving node either forwards to its neighbor closest to the
// key without overshooting, or — being the key's closest predecessor within
// the domain — answers with itself as the owner.
//
// On traced lookups (req.Trace != "") the node appends exactly one span to
// the context before forwarding — recording the routing level of the hop and
// whether the distance-best candidate was skipped — or a terminal Owner span
// when it answers. The node that entered the route (req.Hops == 0) archives
// the completed trace in its TraceStore and feeds the hop histogram, so both
// self-originated and client-originated lookups leave evidence where the
// route began.
//
// The forwarding decision is lock-free and allocation-free: the node loads
// its published routing snapshot once (one complete epoch — never a torn mix
// of two stabilization rounds), reads the precomputed candidate sets, and
// queries the failure detector's atomics. The untraced path also allocates
// no request objects — the forwarded request comes from a pool and candidate
// staging lives on the stack. Traced lookups additionally build span lists,
// whose backing arrays are pool-recycled per hop.
func (n *Node) handleLookup(ctx context.Context, req *lookupReq) (lookupResp, error) {
	if req.Hops >= lookupHopLimit {
		return lookupResp{}, fmt.Errorf("netnode: lookup exceeded %d hops", lookupHopLimit)
	}
	v := n.routing.Load()
	level, ok := v.levelOf(req.Prefix)
	if !ok {
		return lookupResp{}, fmt.Errorf("netnode: lookup for %q reached node outside it", req.Prefix)
	}
	// Candidates that advance without overshooting, health-preferred first
	// and distance-best within each class; a dead best candidate falls
	// through to the next (the crash-recovery behaviour of a real deployment
	// — stabilization prunes it later). Distrusted peers sink behind every
	// healthy one but remain last-resort options, so a wrongly accused peer
	// cannot partition the lookup.
	var order [forwardAttemptLimit]viewCandidate
	cnt, bestAddr, routedAround := v.forwardSet(n.health, req.Key, level, order[:])
	if routedAround {
		n.m.routedAround.Inc()
	}
	if cnt > 0 {
		fwd := getLookupReq()
		defer putLookupReq(fwd)
		for i := 0; i < cnt; i++ {
			cand := order[i]
			fwd.Key, fwd.Prefix, fwd.Hops, fwd.Trace = req.Key, req.Prefix, req.Hops+1, req.Trace
			if req.Trace != "" {
				// The hop's routing level is the depth of the lowest common
				// domain with the next node: leaf-deep hops stay local,
				// level-0 hops cross top-level boundaries (Section 3.2).
				spans := fwd.Spans
				if spans == nil {
					spans = telemetry.GetSpans()
				}
				spans = append(spans[:0], req.Spans...)
				fwd.Spans = append(spans, telemetry.Span{
					Hop: req.Hops, Name: v.self.Name, ID: v.self.ID,
					Addr: v.self.Addr, Level: cand.level,
					RouteAround: cand.info.Addr != bestAddr,
				})
			}
			msg, err := transport.NewMessage(msgLookup, fwd)
			if err != nil {
				return lookupResp{}, err
			}
			raw, err := n.call(ctx, cand.info.Addr, msg)
			if err != nil {
				continue
			}
			var resp lookupResp
			if err := raw.Decode(&resp); err != nil {
				continue
			}
			n.finishLookup(req, &resp)
			return resp, nil
		}
		// Every forward failed: answer best-effort as the closest reachable
		// predecessor, the liveness-over-accuracy choice real deployments
		// make; stabilization repairs the stale links that got us here.
	}
	resp := lookupResp{Pred: v.self, Succ: v.succAt(level), Hops: req.Hops}
	if req.Trace != "" {
		resp.Trace = req.Trace
		// The response spans are freshly allocated, never pooled: they are
		// retained past this call (archived in the TraceStore, cached by
		// receiver-side dedup) and must not be recycled under a reader.
		resp.Spans = append(append([]telemetry.Span(nil), req.Spans...), telemetry.Span{
			Hop: req.Hops, Name: v.self.Name, ID: v.self.ID,
			Addr: v.self.Addr, Level: -1, Owner: true,
		})
	}
	n.finishLookup(req, &resp)
	return resp, nil
}

// finishLookup runs the entry-hop bookkeeping for a lookup answer about to
// travel back toward the originator: the route's entry node (req.Hops == 0)
// observes the hop count and archives a completed trace.
func (n *Node) finishLookup(req *lookupReq, resp *lookupResp) {
	if req.Hops != 0 {
		return
	}
	n.m.lookupHops.Observe(float64(resp.Hops))
	if req.Trace != "" && len(resp.Spans) > 0 {
		n.traces.Record(telemetry.Trace{
			ID: req.Trace, Key: req.Key, Prefix: req.Prefix, Spans: resp.Spans,
		})
		n.m.traceDone.Inc()
	}
}

// lookupFrom runs a constrained lookup starting at seed (possibly self).
func (n *Node) lookupFrom(ctx context.Context, seed Info, key uint64, prefix string) (lookupResp, error) {
	return n.lookupReqFrom(ctx, seed, lookupReq{Key: key, Prefix: prefix})
}

// lookupReqFrom dispatches a fully built lookup request through seed.
func (n *Node) lookupReqFrom(ctx context.Context, seed Info, req lookupReq) (lookupResp, error) {
	if seed.Addr == n.self.Addr {
		return n.handleLookup(ctx, &req)
	}
	msg, err := transport.NewMessage(msgLookup, &req)
	if err != nil {
		return lookupResp{}, err
	}
	raw, err := n.call(ctx, seed.Addr, msg)
	if err != nil {
		return lookupResp{}, err
	}
	var resp lookupResp
	if err := raw.Decode(&resp); err != nil {
		return lookupResp{}, err
	}
	return resp, nil
}

// newTraceID draws a reproducible trace identifier from the node's RNG.
func (n *Node) newTraceID() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return telemetry.NewTraceID(n.rng)
}

// sampleTrace decides whether an untraced public lookup should carry a trace
// context, per Config.TraceSampleRate.
func (n *Node) sampleTrace() bool {
	rate := n.cfg.TraceSampleRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < rate
}

// Lookup returns the node responsible for key within the domain named by
// prefix (the key's closest predecessor there). The node must itself belong
// to the domain. When Config.TraceSampleRate is set, a sampled fraction of
// calls additionally record a route trace into the node's TraceStore.
func (n *Node) Lookup(ctx context.Context, key uint64, prefix string) (Info, error) {
	if !inDomain(n.self.Name, prefix) {
		return Info{}, fmt.Errorf("%w: %q does not contain this node", ErrBadDomain, prefix)
	}
	req := lookupReq{Key: key, Prefix: prefix}
	if n.sampleTrace() {
		req.Trace = n.newTraceID()
		n.m.traceStarted.Inc()
	}
	resp, err := n.lookupReqFrom(ctx, n.self, req)
	if err != nil {
		return Info{}, err
	}
	return resp.Pred, nil
}

// LookupHops is Lookup plus the number of forwarding hops used, for
// measurements.
func (n *Node) LookupHops(ctx context.Context, key uint64, prefix string) (Info, int, error) {
	if !inDomain(n.self.Name, prefix) {
		return Info{}, 0, fmt.Errorf("%w: %q does not contain this node", ErrBadDomain, prefix)
	}
	resp, err := n.lookupFrom(ctx, n.self, key, prefix)
	if err != nil {
		return Info{}, 0, err
	}
	return resp.Pred, resp.Hops, nil
}

// TracedLookup runs a lookup with distributed route tracing always on: every
// hop appends a span (node, domain, routing level, route-around flag) and
// the completed trace — archived in the node's TraceStore under its ID — is
// returned alongside the owner. This is the live counterpart of the paper's
// path analyses: intra-domain locality and proxy convergence (Section 3.2)
// become assertions over the returned spans.
func (n *Node) TracedLookup(ctx context.Context, key uint64, prefix string) (Info, telemetry.Trace, error) {
	if !inDomain(n.self.Name, prefix) {
		return Info{}, telemetry.Trace{}, fmt.Errorf("%w: %q does not contain this node", ErrBadDomain, prefix)
	}
	req := lookupReq{Key: key, Prefix: prefix, Trace: n.newTraceID()}
	n.m.traceStarted.Inc()
	resp, err := n.lookupReqFrom(ctx, n.self, req)
	if err != nil {
		return Info{}, telemetry.Trace{}, err
	}
	tr := telemetry.Trace{ID: req.Trace, Key: key, Prefix: prefix, Spans: resp.Spans}
	return resp.Pred, tr, nil
}

// StabilizeOnce runs one round of the per-level stabilization protocol:
// refresh successor lists, adopt closer successors learned from them, prune
// dead predecessors, and notify successors of our presence. It also
// re-registers the node in its domains' membership registries (whose owners
// drift as the key space repartitions) and uses the registry to escape
// level-isolation when the node wrongly believes it is alone in a domain.
func (n *Node) StabilizeOnce(ctx context.Context) {
	for l := 0; l <= n.levels; l++ {
		n.stabilizeLevel(ctx, l)
	}
	_ = n.registerSelf(ctx)
	n.replicateOnce(ctx)
	n.geom.maintain(ctx, n)
	n.m.suspects.Set(float64(len(n.health.snapshot())))
	for l := 1; l <= n.levels; l++ {
		n.mu.Lock()
		alone := len(n.succs[l]) == 0 ||
			(len(n.succs[l]) == 1 && n.succs[l][0].Addr == n.self.Addr &&
				(n.preds[l].IsZero() || n.preds[l].Addr == n.self.Addr))
		n.mu.Unlock()
		if !alone {
			continue
		}
		prefix := prefixAt(n.self.Name, l)
		member, err := n.findMember(ctx, n.self, prefix)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.succs[l] = []Info{member}
		n.publishRoutingLocked()
		n.mu.Unlock()
	}
}

func (n *Node) stabilizeLevel(ctx context.Context, level int) {
	n.mu.Lock()
	prefix := prefixAt(n.self.Name, level)
	list := append([]Info(nil), n.succs[level]...)
	// Every known contact inside this level's domain is a successor
	// candidate for this level's ring, wherever we learned it: deeper-level
	// successors (nested domains are subsets), shallower-level successors
	// that happen to share the prefix, and in-domain fingers. Folding them
	// all in and keeping clockwise order matters twice over. A ring whose
	// list went stale snaps back to the true successor in one round — and a
	// correct successor is what the Canon link bound (FixFingers,
	// canonAdmissible) measures against. More fundamentally, a ring that
	// partitioned into disjoint consistent cycles after a join burst is a
	// stable fixpoint of pure successor/predecessor stabilization; only
	// cross-level evidence like this merges the cycles back together.
	for l := 0; l <= n.levels; l++ {
		if l == level {
			continue
		}
		for _, s := range n.succs[l] {
			if inDomain(s.Name, prefix) {
				list = append(list, s)
			}
		}
	}
	for _, f := range n.fingers {
		if inDomain(f.Name, prefix) {
			list = append(list, f)
		}
	}
	pred := n.preds[level]
	n.mu.Unlock()
	deduped := dedupeInfos(list)
	kept := deduped[:0]
	for _, s := range deduped {
		if s.Addr != n.self.Addr {
			kept = append(kept, s)
		}
	}
	list = kept
	sort.Slice(list, func(i, j int) bool {
		return n.clockwise(n.self.ID, list[i].ID) < n.clockwise(n.self.ID, list[j].ID)
	})

	// Find the first live successor; stop probing once a full successor
	// list's worth of live candidates is in hand.
	var succ Info
	alive := make([]Info, 0, len(list))
	for _, s := range list {
		if len(alive) >= n.cfg.SuccessorListLen && n.cfg.SuccessorListLen > 0 {
			break
		}
		if _, err := n.pingAddr(ctx, s.Addr); err == nil {
			alive = append(alive, s)
		}
	}
	if len(alive) == 0 {
		alive = []Info{n.self}
	}
	succ = alive[0]

	if succ.Addr != n.self.Addr {
		// Ask the successor for its predecessor and successor list at this
		// level (nodes sharing a domain share its level number); adopt its
		// predecessor when it sits between us — and keep walking the
		// predecessor chain to a fixpoint rather than one step per round.
		// After a batch of joins a ring can be off by many nodes, and a
		// single-step walk leaves the successor (and with it the Canon link
		// bound that FixFingers and canonAdmissible measure against) wrong
		// for O(ring size) rounds; the full walk repairs it in one.
		for walk := 0; walk < stabilizeWalkLimit; walk++ {
			req, err := transport.NewMessage(msgNeighbors, neighborsReq{Level: level})
			if err != nil {
				break
			}
			nbRaw, err := n.call(ctx, succ.Addr, req)
			if err != nil {
				break
			}
			var nb neighborsResp
			if derr := nbRaw.Decode(&nb); derr != nil {
				break
			}
			p := nb.Pred
			closer := !p.IsZero() && p.Addr != n.self.Addr && p.Addr != succ.Addr &&
				inDomain(p.Name, prefixAt(n.self.Name, level)) &&
				n.space.Between(id.ID(p.ID), id.ID(n.self.ID), id.ID(succ.ID)) && p.ID != succ.ID
			if closer {
				if _, err := n.pingAddr(ctx, p.Addr); err == nil {
					// Keep the old successor as the next list entry while we
					// interrogate the closer one.
					nb.Succs = append([]Info{succ}, nb.Succs...)
					alive = mergeSuccList(n.self, succ, nb.Succs, n.cfg.SuccessorListLen)
					succ = p
					continue
				}
			}
			alive = mergeSuccList(n.self, succ, nb.Succs, n.cfg.SuccessorListLen)
			break
		}
		// Notify the successor that we may be its predecessor.
		if note, err := transport.NewMessage(msgNotify, notifyReq{
			Level: level, From: n.self,
		}); err == nil {
			_, _ = n.call(ctx, succ.Addr, note)
		}
	} else {
		// Alone at this level unless a notify told us otherwise.
		if !pred.IsZero() && pred.Addr != n.self.Addr {
			if _, err := n.pingAddr(ctx, pred.Addr); err == nil {
				succ = pred
				alive = []Info{pred}
			}
		}
	}

	n.mu.Lock()
	if len(alive) == 0 || alive[0].Addr != succ.Addr {
		alive = append([]Info{succ}, alive...)
	}
	n.succs[level] = capList(dedupeInfos(alive), n.cfg.SuccessorListLen)
	// Drop a dead predecessor so notify can replace it.
	p := n.preds[level]
	n.publishRoutingLocked()
	n.mu.Unlock()
	if !p.IsZero() && p.Addr != n.self.Addr {
		if _, err := n.pingAddr(ctx, p.Addr); err != nil {
			n.mu.Lock()
			if n.preds[level].Addr == p.Addr {
				n.preds[level] = Info{}
				n.publishRoutingLocked()
			}
			n.mu.Unlock()
		}
	}
}

// mergeSuccList builds [succ] + tail of the successor's own list, excluding
// ourselves.
func mergeSuccList(self, succ Info, succsOfSucc []Info, cap int) []Info {
	out := []Info{succ}
	for _, s := range succsOfSucc {
		if s.Addr == self.Addr || s.Addr == succ.Addr {
			continue
		}
		out = append(out, s)
	}
	return capList(dedupeInfos(out), cap)
}

func dedupeInfos(in []Info) []Info {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, i := range in {
		if i.IsZero() || seen[i.Addr] {
			continue
		}
		seen[i.Addr] = true
		out = append(out, i)
	}
	return out
}

func capList(in []Info, max int) []Info {
	if len(in) > max {
		return in[:max]
	}
	return in
}

// FixFingers rebuilds the node's long links with its geometry's link rule
// under the Canon merge bound (Section 2.2): full links within the leaf
// domain, and at every higher level only links the geometry's metric ranks
// strictly shorter than the bound inherited from the level below. The name
// is Chord's; the work is the geometry's (geometry.fixLinks — Chord fingers
// for Crescendo, XOR buckets for Kandy, harmonic draws for Cacophony).
func (n *Node) FixFingers(ctx context.Context) {
	n.geom.fixLinks(ctx, n)
}
