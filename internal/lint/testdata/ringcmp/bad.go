// Package ringcmp is a canonvet fixture: every `want` comment names a
// diagnostic the ringcmp check must produce on that line, and the pragma
// block proves the escape hatch suppresses an otherwise-flagged line.
package ringcmp

import "github.com/canon-dht/canon/internal/id"

// before compares circular identifiers with a raw operator — broken at the
// zero-wrap, which is exactly what the check exists to catch.
func before(a, b id.ID) bool {
	return a < b // want `raw "<" on circular id.ID values`
}

// width subtracts identifiers directly; the conversion wraps the flagged
// expression rather than the operands, so the subtraction is still raw.
func width(a, b id.ID) uint64 {
	return uint64(b - a) // want `raw "-" on circular id.ID values`
}

// atMost uses <= against an untyped constant; the constant takes the id.ID
// type, so the comparison is still circular arithmetic.
func atMost(a id.ID) bool {
	return a <= 1<<20 // want `raw "<=" on circular id.ID values`
}

// farSide demonstrates the per-line escape hatch: the pragma suppresses the
// finding on the next line, so no want comment appears.
func farSide(a id.ID) bool {
	//canonvet:ignore ringcmp -- fixture: prove the pragma suppresses the line below
	return a >= 1<<31
}
