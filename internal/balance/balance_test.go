package balance_test

import (
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/balance"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

func TestPartitionRatioBasics(t *testing.T) {
	space := id.MustSpace(4)
	if got := balance.PartitionRatio(space, []id.ID{3}); got != 0 {
		t.Errorf("single id ratio = %v, want 0", got)
	}
	// IDs 0 and 8 split the 16-space evenly: ratio 1.
	if got := balance.PartitionRatio(space, []id.ID{0, 8}); got != 1 {
		t.Errorf("even split ratio = %v, want 1", got)
	}
	// IDs 0 and 4: gaps 4 and 12: ratio 3.
	if got := balance.PartitionRatio(space, []id.ID{0, 4}); got != 3 {
		t.Errorf("uneven split ratio = %v, want 3", got)
	}
}

func TestRandomIDsRatioGrows(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(1))
	const n = 4096
	ids, err := balance.RandomIDs(rng, space, n)
	if err != nil {
		t.Fatal(err)
	}
	ratio := balance.PartitionRatio(space, ids)
	// Theta(log^2 n) with high probability: log2(4096)=12, so expect a ratio
	// of roughly 144 within a generous band.
	if ratio < 20 {
		t.Errorf("random ratio %.1f implausibly small", ratio)
	}
}

func TestBisectionRatioBounded(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(2))
	b := balance.NewBisector(space)
	const n = 4096
	for i := 0; i < n; i++ {
		if _, err := b.Join(rng); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	ratio := balance.PartitionRatio(space, b.IDs())
	// The paper's scheme achieves ratio 4 w.h.p.; allow up to 8 for the
	// simplified prefix-bucketed scan.
	if ratio > 8 {
		t.Errorf("bisection ratio %.1f exceeds 8", ratio)
	}
	// It must crush the random baseline.
	randIDs, err := balance.RandomIDs(rng, space, n)
	if err != nil {
		t.Fatal(err)
	}
	if randRatio := balance.PartitionRatio(space, randIDs); ratio > randRatio/3 {
		t.Errorf("bisection ratio %.1f not well below random %.1f", ratio, randRatio)
	}
}

func TestBisectorUniqueIDs(t *testing.T) {
	space := id.MustSpace(16)
	rng := rand.New(rand.NewSource(3))
	b := balance.NewBisector(space)
	seen := make(map[id.ID]bool)
	for i := 0; i < 1000; i++ {
		v, err := b.Join(rng)
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate id %d at join %d", v, i)
		}
		seen[v] = true
	}
}

func TestBisectorExhaustion(t *testing.T) {
	space := id.MustSpace(3)
	rng := rand.New(rand.NewSource(4))
	b := balance.NewBisector(space)
	issued := 0
	for i := 0; i < 8; i++ {
		if _, err := b.Join(rng); err != nil {
			break
		}
		issued++
	}
	if issued < 4 {
		t.Errorf("only issued %d ids in an 8-id space", issued)
	}
	// Eventually exhausts.
	var lastErr error
	for i := 0; i < 16; i++ {
		if _, lastErr = b.Join(rng); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Error("bisector never exhausted a 3-bit space")
	}
}

func TestHierarchicalSpreadsDomains(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(5))
	tree, err := hierarchy.Balanced(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	h := balance.NewHierarchical(space, 4)

	// 64 nodes per leaf domain.
	perLeaf := make(map[int][]id.ID)
	for _, leaf := range leaves {
		for i := 0; i < 64; i++ {
			v, err := h.Join(rng, leaf)
			if err != nil {
				t.Fatal(err)
			}
			perLeaf[leaf.ID()] = append(perLeaf[leaf.ID()], v)
		}
	}
	// Within every leaf domain, each of the 16 top-4-bit buckets must hold
	// exactly 64/16 = 4 nodes (perfect top-bit balance).
	for leafID, ids := range perLeaf {
		buckets := make(map[uint64]int)
		for _, v := range ids {
			buckets[space.Prefix(v, 4)]++
		}
		for b, c := range buckets {
			if c != 4 {
				t.Errorf("leaf %d bucket %d holds %d nodes, want 4", leafID, b, c)
			}
		}
	}
}

func TestHierarchicalBeatsRandomPerDomain(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(6))
	tree, err := hierarchy.Balanced(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tree.Leaves()[0]
	h := balance.NewHierarchical(space, 5)
	const n = 256
	hIDs := make([]id.ID, n)
	for i := range hIDs {
		v, err := h.Join(rng, leaf)
		if err != nil {
			t.Fatal(err)
		}
		hIDs[i] = v
	}
	rIDs, err := balance.RandomIDs(rng, space, n)
	if err != nil {
		t.Fatal(err)
	}
	hRatio := balance.PartitionRatio(space, hIDs)
	rRatio := balance.PartitionRatio(space, rIDs)
	// The paper omits the scheme's details; the implementation's bucketed
	// bisection leaves small partitions at bucket boundaries, so assert a
	// solid improvement over random selection rather than the constant
	// ratio of the flat bisection scheme.
	if hRatio > rRatio/2 {
		t.Errorf("hierarchical ratio %.1f not well below random %.1f", hRatio, rRatio)
	}
}
