package netnode_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// newReplicatedCluster builds a flat cluster with replication enabled.
func newReplicatedCluster(t *testing.T, seed int64, size, replicas int) *cluster {
	t.Helper()
	c := &cluster{bus: transport.NewBus(), rng: rand.New(rand.NewSource(seed))}
	ctx := context.Background()
	for i := 0; i < size; i++ {
		ep := c.bus.Endpoint(fmt.Sprintf("rep-%d", i))
		n, err := netnode.New(netnode.Config{
			RandomID:          true,
			Rand:              c.rng,
			Transport:         ep,
			ReplicationFactor: replicas,
		})
		if err != nil {
			t.Fatal(err)
		}
		contact := ""
		if i > 0 {
			contact = c.nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
	}
	c.settle(t, 12)
	return c
}

func TestReplicationSurvivesOwnerCrash(t *testing.T) {
	c := newReplicatedCluster(t, 31, 8, 3)
	defer c.close(t)
	ctx := context.Background()

	key := uint64(0x51515151)
	if err := c.nodes[0].Put(ctx, key, []byte("replicated"), "", ""); err != nil {
		t.Fatal(err)
	}
	// Let a stabilization round push the replicas.
	c.settle(t, 2)

	owner, err := c.nodes[0].Lookup(ctx, key, "")
	if err != nil {
		t.Fatal(err)
	}
	// At least ReplicationFactor nodes must hold the key.
	holders := 0
	for _, n := range c.nodes {
		if n.StoredKeys() > 0 {
			holders++
		}
	}
	if holders < 3 {
		t.Fatalf("only %d nodes hold data, want >= 3", holders)
	}

	// Crash the owner without a graceful leave.
	c.bus.SetDown(owner.Addr, true)
	var survivors []*netnode.Node
	for _, n := range c.nodes {
		if n.Info().Addr != owner.Addr {
			survivors = append(survivors, n)
		}
	}
	old := c.nodes
	c.nodes = survivors
	c.settle(t, 10)
	c.nodes = old // restore so close() shuts everything down

	got, err := survivors[0].Get(ctx, key)
	if err != nil || string(got) != "replicated" {
		t.Fatalf("value lost after owner crash: %q, %v", got, err)
	}
}

func TestNoReplicationByDefault(t *testing.T) {
	c := newReplicatedCluster(t, 32, 6, 0)
	defer c.close(t)
	ctx := context.Background()
	key := uint64(0x61616161)
	if err := c.nodes[0].Put(ctx, key, []byte("single"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.settle(t, 2)
	holders := 0
	for _, n := range c.nodes {
		if n.StoredKeys() > 0 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d holders with replication disabled, want 1", holders)
	}
}

func TestReplicationFollowsRepair(t *testing.T) {
	// After a crash and repair, the new owner re-replicates so a SECOND
	// crash is also survivable.
	c := newReplicatedCluster(t, 33, 10, 3)
	defer c.close(t)
	ctx := context.Background()
	key := uint64(0x71717171)
	if err := c.nodes[2].Put(ctx, key, []byte("durable"), "", ""); err != nil {
		t.Fatal(err)
	}
	c.settle(t, 2)

	alive := append([]*netnode.Node(nil), c.nodes...)
	for round := 0; round < 2; round++ {
		owner, err := alive[0].Lookup(ctx, key, "")
		if err != nil {
			t.Fatal(err)
		}
		c.bus.SetDown(owner.Addr, true)
		next := alive[:0]
		for _, n := range alive {
			if n.Info().Addr != owner.Addr {
				next = append(next, n)
			}
		}
		alive = next
		saved := c.nodes
		c.nodes = alive
		c.settle(t, 10)
		c.nodes = saved
		got, err := alive[0].Get(ctx, key)
		if err != nil || string(got) != "durable" {
			t.Fatalf("round %d: value lost: %q, %v", round, got, err)
		}
	}
}

// TestPointerSurvivesOwnerLeave: a pointer record (stored at the ACCESS
// domain's owner) must be handed to the right ring when its holder leaves.
func TestPointerSurvivesOwnerLeave(t *testing.T) {
	c := &cluster{bus: transport.NewBus(), rng: rand.New(rand.NewSource(34))}
	ctx := context.Background()
	// Two departments under one org; pointers for org-wide content live on
	// the org ring.
	names := []string{"org/a", "org/a", "org/a", "org/b", "org/b", "org/b"}
	for i, name := range names {
		ep := c.bus.Endpoint(fmt.Sprintf("ptr-%d", i))
		n, err := netnode.New(netnode.Config{
			Name: name, RandomID: true, Rand: c.rng, Transport: ep,
		})
		if err != nil {
			t.Fatal(err)
		}
		contact := ""
		if i > 0 {
			contact = c.nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
	}
	c.settle(t, 12)
	defer c.close(t)

	// Stored in org/a, visible org-wide: a pointer sits at the org-ring
	// owner of the key.
	var aNode, bNode *netnode.Node
	for _, n := range c.nodes {
		switch n.Info().Name {
		case "org/a":
			aNode = n
		case "org/b":
			bNode = n
		}
	}
	key := uint64(0x9999)
	if err := aNode.Put(ctx, key, []byte("shared"), "org/a", "org"); err != nil {
		t.Fatal(err)
	}
	if v, err := bNode.Get(ctx, key); err != nil || string(v) != "shared" {
		t.Fatalf("initial get via pointer: %q, %v", v, err)
	}
	// Make the pointer holder leave gracefully.
	ptrOwner, err := aNode.Lookup(ctx, key, "org")
	if err != nil {
		t.Fatal(err)
	}
	var leaver *netnode.Node
	survivors := c.nodes[:0:0]
	for _, n := range c.nodes {
		if n.Info().Addr == ptrOwner.Addr {
			leaver = n
		} else {
			survivors = append(survivors, n)
		}
	}
	if leaver == nil {
		t.Fatal("pointer owner not in cluster")
	}
	if leaver == bNode {
		// The reader is itself the pointer owner; pick another reader.
		for _, n := range survivors {
			if n.Info().Name == "org/b" {
				bNode = n
				break
			}
		}
		if bNode == leaver {
			t.Skip("all org/b nodes would leave; rerun with different seed")
		}
	}
	if err := leaver.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	c.bus.SetDown(leaver.Info().Addr, true)
	saved := c.nodes
	c.nodes = survivors
	c.settle(t, 10)
	c.nodes = saved

	if leaver == aNode {
		aNode = nil
	}
	if v, err := bNode.Get(ctx, key); err != nil || string(v) != "shared" {
		t.Fatalf("pointer lost after owner leave: %q, %v", v, err)
	}
}
