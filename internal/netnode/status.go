package netnode

import (
	"encoding/json"
	"net/http"
)

// LevelStatus describes a node's neighbor state at one level of its chain.
type LevelStatus struct {
	Level       int    `json:"level"`
	Prefix      string `json:"prefix"`
	Predecessor Info   `json:"predecessor"`
	Successors  []Info `json:"successors"`
}

// Status is a JSON-serializable snapshot of a node's state for operations
// tooling (canond serves it over HTTP when -status is set).
type Status struct {
	Info       Info          `json:"info"`
	Levels     []LevelStatus `json:"levels"`
	Fingers    []Info        `json:"fingers"`
	StoredKeys int           `json:"storedKeys"`
	Traffic    Stats         `json:"traffic"`
}

// Status returns a snapshot of the node's state.
func (n *Node) Status() Status {
	st := Status{
		Info:       n.self,
		Fingers:    n.Fingers(),
		StoredKeys: n.StoredKeys(),
		Traffic:    n.Stats(),
	}
	for l := 0; l <= n.levels; l++ {
		st.Levels = append(st.Levels, LevelStatus{
			Level:       l,
			Prefix:      prefixAt(n.self.Name, l),
			Predecessor: n.Predecessor(l),
			Successors:  n.Successors(l),
		})
	}
	return st
}

// ServeHTTP implements http.Handler: GET returns the node's Status as JSON.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(n.Status()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var _ http.Handler = (*Node)(nil)
