package canon_test

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	canon "github.com/canon-dht/canon"
)

func buildNet(t testing.TB, kind canon.Kind, n, levels, fanout int, seed int64) *canon.Network {
	t.Helper()
	tree, err := canon.BalancedHierarchy(levels, fanout)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	placement := canon.AssignZipf(rng, tree, n, 1.25)
	nw, err := canon.Build(tree, placement, canon.Options{Kind: kind, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildValidation(t *testing.T) {
	tree := canon.NewHierarchy()
	if _, err := canon.Build(nil, nil, canon.Options{}); err == nil {
		t.Error("nil hierarchy should error")
	}
	if _, err := canon.Build(tree, nil, canon.Options{}); err == nil {
		t.Error("empty placement should error")
	}
	placement := []*canon.Domain{tree.Root()}
	if _, err := canon.Build(tree, placement, canon.Options{Kind: canon.Kind(99)}); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := canon.Build(tree, placement, canon.Options{Proximity: &canon.ProximityOptions{}}); err == nil {
		t.Error("proximity without latency should error")
	}
	if _, err := canon.Build(tree, placement, canon.Options{
		Kind:      canon.Kademlia,
		Proximity: &canon.ProximityOptions{Latency: func(a, b int) float64 { return 0 }},
	}); err == nil {
		t.Error("proximity over XOR geometry should error")
	}
}

func TestAllKindsRoute(t *testing.T) {
	kinds := []canon.Kind{canon.Chord, canon.NondeterministicChord, canon.Symphony, canon.Kademlia, canon.CAN}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			nw := buildNet(t, kind, 256, 3, 4, 42)
			rng := rand.New(rand.NewSource(7))
			ok := 0
			const routes = 500
			for i := 0; i < routes; i++ {
				from, to := rng.Intn(nw.Len()), rng.Intn(nw.Len())
				r := nw.RouteToNode(from, to)
				if r.Success && r.Last() == to {
					ok++
				}
			}
			if float64(ok) < 0.99*routes {
				t.Errorf("%s: only %d/%d routes succeeded", kind.CanonicalName(), ok, routes)
			}
		})
	}
}

func TestKindNames(t *testing.T) {
	tests := []struct {
		kind      canon.Kind
		name      string
		canonical string
	}{
		{canon.Chord, "chord", "crescendo"},
		{canon.NondeterministicChord, "ndchord", "nd-crescendo"},
		{canon.Symphony, "symphony", "cacophony"},
		{canon.Kademlia, "kademlia", "kandy"},
		{canon.CAN, "can", "can-can"},
	}
	for _, tt := range tests {
		if tt.kind.String() != tt.name || tt.kind.CanonicalName() != tt.canonical {
			t.Errorf("kind %d: %s/%s", int(tt.kind), tt.kind.String(), tt.kind.CanonicalName())
		}
	}
}

func TestDegreeNearLogN(t *testing.T) {
	nw := buildNet(t, canon.Chord, 2048, 3, 10, 1)
	logN := math.Log2(2048)
	if avg := nw.AvgDegree(); avg < logN-2 || avg > logN+1 {
		t.Errorf("avg degree %.2f not near log n = %.1f", avg, logN)
	}
}

func TestStoreCacheIntegration(t *testing.T) {
	nw := buildNet(t, canon.Chord, 512, 3, 4, 2)
	st := nw.NewStore()
	c := nw.NewCache(st, 32, canon.CachePolicyLevelAware)

	key := nw.HashKey("hello-world")
	origin := 0
	if _, err := st.Put(origin, key, []byte("v"), nil, nil); err != nil {
		t.Fatal(err)
	}
	r1 := c.Get(100, key)
	if !r1.Found {
		t.Fatal("miss on stored key")
	}
	r2 := c.Get(100, key)
	if !r2.Found {
		t.Fatal("second get failed")
	}
	if r2.Hops > r1.Hops {
		t.Errorf("cached query took more hops (%d > %d)", r2.Hops, r1.Hops)
	}
}

func TestMulticastIntegration(t *testing.T) {
	nw := buildNet(t, canon.Chord, 512, 3, 4, 3)
	rng := rand.New(rand.NewSource(9))
	sources := make([]int, 100)
	for i := range sources {
		sources[i] = rng.Intn(nw.Len())
	}
	tree := nw.Multicast(sources, rng.Intn(nw.Len()))
	if tree.Failed() != 0 || tree.NumEdges() == 0 {
		t.Fatalf("multicast tree: %d edges, %d failed", tree.NumEdges(), tree.Failed())
	}
	if l1, l2 := tree.InterDomainLinks(1), tree.InterDomainLinks(2); l1 > l2 {
		t.Errorf("inter-domain links not monotone: %d > %d", l1, l2)
	}
}

func TestFixedIDs(t *testing.T) {
	tree := canon.NewHierarchy()
	placement := []*canon.Domain{tree.Root(), tree.Root(), tree.Root()}
	ids := []canon.ID{10, 20, 30}
	nw, err := canon.Build(tree, placement, canon.Options{IDs: ids, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ids {
		if nw.NodeID(i) != want {
			t.Errorf("NodeID(%d) = %d, want %d", i, nw.NodeID(i), want)
		}
	}
	if nw.Owner(25) != 1 {
		t.Errorf("Owner(25) = %d, want node index 1 (ID 20)", nw.Owner(25))
	}
	// Tags map back to placement order: placement order was already
	// ascending here.
	for i := range ids {
		if nw.NodeTag(i) != i {
			t.Errorf("NodeTag(%d) = %d", i, nw.NodeTag(i))
		}
	}
}

func TestLiveFacade(t *testing.T) {
	bus := canon.NewBus()
	rng := rand.New(rand.NewSource(4))
	ctx := context.Background()
	a, err := canon.NewLiveNode(canon.LiveConfig{
		Name: "x/y", RandomID: true, Rand: rng, Transport: bus.Endpoint("a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Join(ctx, ""); err != nil {
		t.Fatal(err)
	}
	b, err := canon.NewLiveNode(canon.LiveConfig{
		Name: "x/y", RandomID: true, Rand: rng, Transport: bus.Endpoint("b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Join(ctx, a.Info().Addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(ctx, 123, []byte("live"), "x", "x"); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(ctx, 123)
	if err != nil || string(got) != "live" {
		t.Fatalf("live get: %q, %v", got, err)
	}
}

func TestProximityFacade(t *testing.T) {
	tree := canon.NewHierarchy()
	const n = 256
	placement := make([]*canon.Domain, n)
	for i := range placement {
		placement[i] = tree.Root()
	}
	nw, err := canon.Build(tree, placement, canon.Options{
		Seed: 5,
		Proximity: &canon.ProximityOptions{
			Latency: func(a, b int) float64 { return float64((a - b) * (a - b) % 97) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nw.GroupBits() == 0 {
		t.Error("expected non-zero group bits for 256 nodes")
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		key := nw.Space().Random(rng)
		r := nw.RouteToKey(rng.Intn(n), key)
		if !r.Success || r.Last() != nw.Owner(key) {
			t.Fatalf("grouped route failed for key %d", key)
		}
	}
}

func TestCompleteLeafDomains(t *testing.T) {
	tree, err := canon.BalancedHierarchy(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	placement := canon.AssignUniform(rng, tree, 256)
	nw, err := canon.Build(tree, placement, canon.Options{Seed: 12, CompleteLeafDomains: true})
	if err != nil {
		t.Fatal(err)
	}
	// Intra-LAN routes are one hop.
	for i := 0; i < 200; i++ {
		from := rng.Intn(nw.Len())
		members := nw.NodesIn(nw.NodeDomain(from))
		to := members[rng.Intn(len(members))]
		if to == from {
			continue
		}
		if r := nw.RouteToNode(from, to); !r.Success || r.Hops() != 1 {
			t.Fatalf("LAN route took %d hops", r.Hops())
		}
	}
	// XOR kinds reject the option.
	if _, err := canon.Build(tree, placement, canon.Options{Kind: canon.CAN, CompleteLeafDomains: true}); err == nil {
		t.Error("CAN with complete leaf domains should error")
	}
}

func TestWorkersOption(t *testing.T) {
	tree, err := canon.BalancedHierarchy(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	placement := canon.AssignUniform(rng, tree, 200)
	seq, err := canon.Build(tree, placement, canon.Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	par, err := canon.Build(tree, placement, canon.Options{Seed: 14, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic chord: identical output.
	for i := 0; i < seq.Len(); i++ {
		a, b := seq.Links(i), par.Links(i)
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d link %d differs", i, j)
			}
		}
	}
}

func TestDynamicFacade(t *testing.T) {
	tree, err := canon.BalancedHierarchy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dn := canon.NewDynamicNetwork(tree)
	trace, err := canon.NewChurnTrace(tree.Leaves(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 200; i++ {
		op := trace.Next(rng)
		if op.Join {
			if err := dn.Join(op.ID, op.Leaf); err != nil {
				t.Fatal(err)
			}
		} else if err := dn.Leave(op.ID); err != nil {
			t.Fatal(err)
		}
	}
	if dn.Len() == 0 || dn.Messages() == 0 {
		t.Fatalf("churn left no state: len=%d msgs=%d", dn.Len(), dn.Messages())
	}
	members := dn.Members()
	key := canon.DefaultSpace().Random(rng)
	_, last, err := dn.RouteToKey(members[0], key)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := dn.Owner(key)
	if err != nil || last != owner {
		t.Fatalf("route ended at %d, owner %d (%v)", last, owner, err)
	}
}

func TestLoadPlacementFacade(t *testing.T) {
	tree, placement, err := canon.LoadPlacement(strings.NewReader("a/x 5\na/y 5\nb 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := canon.Build(tree, placement, canon.Options{Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Len() != 16 {
		t.Fatalf("Len = %d", nw.Len())
	}
	r := nw.RouteToNode(0, nw.Len()-1)
	if !r.Success {
		t.Fatal("routing failed on loaded placement")
	}
}
