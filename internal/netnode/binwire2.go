package netnode

import (
	"encoding/binary"

	"github.com/canon-dht/canon/internal/transport"
)

// Binary marshaling for the payloads introduced at wire version 2: the
// versioned store and the anti-entropy protocol (docs/WIRE.md). They follow
// the conventions documented in binwire.go. These are new message types —
// the v1 layouts (storeReq, fetchValue) are frozen, and a v1 peer never
// parses a type it does not know — so the layouts here are unambiguous
// without any version byte in the payload. repairResp intentionally has no
// binary form: repair is a rare operations RPC and rides JSON.

// Compile-time interface checks for the v2 binary payloads.
var (
	_ transport.BinaryAppender = storeReq2{}
	_ transport.BinaryAppender = syncTreeReq{}
	_ transport.BinaryAppender = syncTreeResp{}
	_ transport.BinaryAppender = syncKeysReq{}
	_ transport.BinaryAppender = syncKeysResp{}
	_ transport.BinaryAppender = syncPullReq{}
	_ transport.BinaryAppender = syncPullResp{}
)

// ---- store2 ----

func (q storeReq2) appendTo(b []byte) []byte {
	b = appendU64(b, q.Key)
	b = appendOptBytes(b, q.Value)
	b = appendStr(b, q.Storage)
	b = appendStr(b, q.Access)
	b = q.Pointer.appendTo(b)
	b = appendBool(b, q.Replica)
	b = binary.AppendVarint(b, int64(q.Level))
	b = binary.AppendUvarint(b, q.Version)
	return b
}

func (q *storeReq2) readFrom(r *binReader) {
	q.Key = r.u64()
	q.Value = r.optBytes()
	q.Storage = r.str()
	q.Access = r.str()
	q.Pointer.readFrom(r)
	q.Replica = r.bool()
	q.Level = int(r.varint())
	q.Version = r.uvarint()
}

// AppendBinary implements transport.BinaryAppender.
func (q storeReq2) AppendBinary(b []byte) ([]byte, error) { return q.appendTo(b), nil }

// MarshalBinary implements encoding.BinaryMarshaler.
func (q storeReq2) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *storeReq2) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.readFrom(r)
	return r.done()
}

// ---- synctree ----

// AppendBinary implements transport.BinaryAppender.
func (q syncTreeReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendStr(b, q.Prefix)
	b = appendU64(b, q.Lo)
	b = appendU64(b, q.Hi)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q syncTreeReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *syncTreeReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Prefix = r.str()
	q.Lo = r.u64()
	q.Hi = r.u64()
	return r.done()
}

// AppendBinary implements transport.BinaryAppender. Leaf digests are
// uniformly distributed, so they ride as fixed 8-byte words.
func (p syncTreeResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, p.Root)
	b = appendSliceLen(b, len(p.Leaves), p.Leaves == nil)
	for _, l := range p.Leaves {
		b = appendU64(b, l)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p syncTreeResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *syncTreeResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.Root = r.u64()
	n, present := r.sliceLen()
	if !present {
		p.Leaves = nil
		return r.done()
	}
	p.Leaves = make([]uint64, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		p.Leaves = append(p.Leaves, r.u64())
	}
	return r.done()
}

// ---- synckeys ----

// AppendBinary implements transport.BinaryAppender.
func (q syncKeysReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendStr(b, q.Prefix)
	b = appendU64(b, q.Lo)
	b = appendU64(b, q.Hi)
	b = appendSliceLen(b, len(q.Buckets), q.Buckets == nil)
	for _, bk := range q.Buckets {
		b = binary.AppendUvarint(b, uint64(bk))
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q syncKeysReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *syncKeysReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Prefix = r.str()
	q.Lo = r.u64()
	q.Hi = r.u64()
	n, present := r.sliceLen()
	if !present {
		q.Buckets = nil
		return r.done()
	}
	q.Buckets = make([]int, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		q.Buckets = append(q.Buckets, int(r.uvarint()))
	}
	return r.done()
}

func appendSyncItem(b []byte, it syncItem) []byte {
	b = appendU64(b, it.Key)
	b = appendStr(b, it.Storage)
	b = appendStr(b, it.Access)
	b = appendBool(b, it.Pointer)
	b = binary.AppendUvarint(b, it.Version)
	b = appendU64(b, it.Digest)
	return b
}

func readSyncItem(r *binReader) syncItem {
	var it syncItem
	it.Key = r.u64()
	it.Storage = r.str()
	it.Access = r.str()
	it.Pointer = r.bool()
	it.Version = r.uvarint()
	it.Digest = r.u64()
	return it
}

// AppendBinary implements transport.BinaryAppender.
func (p syncKeysResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendSliceLen(b, len(p.Items), p.Items == nil)
	for _, it := range p.Items {
		b = appendSyncItem(b, it)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p syncKeysResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *syncKeysResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	n, present := r.sliceLen()
	if !present {
		p.Items = nil
		return r.done()
	}
	p.Items = make([]syncItem, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		p.Items = append(p.Items, readSyncItem(r))
	}
	return r.done()
}

// ---- syncpull ----

// AppendBinary implements transport.BinaryAppender.
func (q syncPullReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendStr(b, q.Prefix)
	b = appendU64(b, q.Lo)
	b = appendU64(b, q.Hi)
	b = appendU64(b, q.Key)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q syncPullReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *syncPullReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Prefix = r.str()
	q.Lo = r.u64()
	q.Hi = r.u64()
	q.Key = r.u64()
	return r.done()
}

// AppendBinary implements transport.BinaryAppender.
func (p syncPullResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendSliceLen(b, len(p.Entries), p.Entries == nil)
	for _, e := range p.Entries {
		b = e.appendTo(b)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p syncPullResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *syncPullResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	n, present := r.sliceLen()
	if !present {
		p.Entries = nil
		return r.done()
	}
	p.Entries = make([]storeReq2, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		var e storeReq2
		e.readFrom(r)
		p.Entries = append(p.Entries, e)
	}
	return r.done()
}
