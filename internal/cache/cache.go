// Package cache implements the hierarchical query-answer caching of
// Section 4.2. The convergence of inter-domain paths means that, in every
// domain D, all queries for the same key exit D through a single proxy node;
// answers are therefore cached at the proxy of each domain on the querying
// node's chain, annotated with the domain's level. Because a cached copy
// lost at a deep (large-numbered) level is likely to be re-found one level
// up, the level-aware replacement policy preferentially evicts entries with
// larger level numbers — the package also offers plain LRU for comparison.
package cache

import (
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/storage"
)

// Policy selects the cache replacement policy.
type Policy int

const (
	// PolicyLevelAware evicts the entry with the deepest level annotation
	// first (ties broken by least recent use), the paper's proposal.
	PolicyLevelAware Policy = iota + 1
	// PolicyLRU evicts the least recently used entry, the baseline.
	PolicyLRU
	// PolicyCoordinated extends PolicyLevelAware with the paper's
	// coordinated variant: caches at different levels interact, so an entry
	// whose key is also cached at the next-higher-level proxy is evicted
	// first — the content stays findable one level up.
	PolicyCoordinated
)

// entry is one cached answer.
type entry struct {
	key      id.ID
	value    []byte
	level    int // depth of the domain this node proxies for the key
	lastUsed int64
}

// Cache layers per-node answer caches over a store.
type Cache struct {
	st       *storage.Store
	nw       *core.Network
	policy   Policy
	capacity int
	nodes    []map[id.ID]*entry
	clock    int64

	// Stats.
	hits   int64
	misses int64
}

// New returns a cache over st where every node can hold up to capacity
// answers, replaced according to policy.
func New(st *storage.Store, capacity int, policy Policy) *Cache {
	nw := st.Network()
	return &Cache{
		st:       st,
		nw:       nw,
		policy:   policy,
		capacity: capacity,
		nodes:    make([]map[id.ID]*entry, nw.Len()),
	}
}

// Result describes a cached-path lookup.
type Result struct {
	// Found reports whether a value was located (cached or stored).
	Found bool
	// Value is the answer.
	Value []byte
	// Hops is the number of routing hops until the answer.
	Hops int
	// CacheHit reports whether the answer came from a cache.
	CacheHit bool
	// HitLevel is the level annotation of the cache entry on a hit.
	HitLevel int
	// Path is the route walked, ending at the answering node.
	Path []int
}

// Get answers the query for key from origin, consulting caches along the
// hierarchical route before falling back to stored content, then populates
// the proxy caches of every domain level between origin and the answer.
func (c *Cache) Get(origin int, key id.ID) Result {
	c.clock++
	route := c.nw.RouteToKey(origin, key)

	var res Result
	for idx, node := range route.Nodes {
		res.Path = append(res.Path, node)
		if e, ok := c.nodes[node][key]; ok {
			e.lastUsed = c.clock
			res.Found, res.Value, res.Hops = true, e.value, idx
			res.CacheHit, res.HitLevel = true, e.level
			break
		}
	}
	if !res.Found {
		sres := c.st.Get(origin, key)
		if !sres.Found {
			c.misses++
			return Result{Path: sres.Path, Hops: sres.Hops}
		}
		res.Found, res.Value, res.Hops = true, sres.Value, sres.Hops
		res.Path = sres.Path
		c.misses++
	} else {
		c.hits++
	}
	answerNode := res.Path[len(res.Path)-1]
	c.populate(origin, answerNode, key, res.Value)
	return res
}

// populate caches the answer at the proxy node of every domain on origin's
// chain strictly below the lowest common ancestor of origin and the answer
// node, annotating each copy with the domain's level. If one node proxies
// several levels it keeps the smallest (highest) level.
func (c *Cache) populate(origin, answerNode int, key id.ID, value []byte) {
	pop := c.nw.Population()
	lca := hierarchy.LCA(pop.LeafOf(origin), pop.LeafOf(answerNode))
	for d := pop.LeafOf(origin); d != nil && d.Depth() > lca.Depth(); d = d.Parent() {
		proxy := c.nw.Proxy(d, key)
		if proxy < 0 || proxy == answerNode {
			continue
		}
		c.insert(proxy, key, value, d.Depth())
	}
}

func (c *Cache) insert(node int, key id.ID, value []byte, level int) {
	if c.capacity <= 0 {
		return
	}
	if c.nodes[node] == nil {
		c.nodes[node] = make(map[id.ID]*entry, c.capacity)
	}
	if e, ok := c.nodes[node][key]; ok {
		if level < e.level {
			e.level = level
		}
		e.lastUsed = c.clock
		e.value = value
		return
	}
	if len(c.nodes[node]) >= c.capacity {
		c.evict(node)
	}
	c.nodes[node][key] = &entry{key: key, value: value, level: level, lastUsed: c.clock}
}

// evict removes one entry from node's cache according to the policy.
func (c *Cache) evict(node int) {
	var victim *entry
	victimCovered := false
	for _, e := range c.nodes[node] {
		if victim == nil {
			victim = e
			victimCovered = c.policy == PolicyCoordinated && c.coveredAbove(node, e)
			continue
		}
		switch c.policy {
		case PolicyCoordinated:
			covered := c.coveredAbove(node, e)
			better := false
			switch {
			case covered != victimCovered:
				better = covered
			case e.level != victim.level:
				better = e.level > victim.level
			default:
				better = e.lastUsed < victim.lastUsed
			}
			if better {
				victim, victimCovered = e, covered
			}
		case PolicyLevelAware:
			if e.level > victim.level || (e.level == victim.level && e.lastUsed < victim.lastUsed) {
				victim = e
			}
		default: // PolicyLRU
			if e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
	}
	if victim != nil {
		delete(c.nodes[node], victim.key)
	}
}

// coveredAbove reports whether the entry's key is also cached at the proxy
// of the next-higher-level domain (so evicting it here only costs one extra
// level of routing). The entry's domain is the node's ancestor at the
// entry's level, since a proxy is always a member of the domain it proxies.
func (c *Cache) coveredAbove(node int, e *entry) bool {
	if e.level == 0 {
		return false
	}
	pop := c.nw.Population()
	parent := pop.LeafOf(node).AncestorAt(e.level - 1)
	if parent == nil {
		return false
	}
	proxy := c.nw.Proxy(parent, e.key)
	if proxy < 0 || proxy == node {
		return false
	}
	_, ok := c.nodes[proxy][e.key]
	return ok
}

// Contains reports whether node currently caches key, and at what level.
func (c *Cache) Contains(node int, key id.ID) (level int, ok bool) {
	e, found := c.nodes[node][key]
	if !found {
		return 0, false
	}
	return e.level, true
}

// Stats returns the number of cache hits and misses served so far.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Size returns the number of entries cached at node.
func (c *Cache) Size(node int) int { return len(c.nodes[node]) }
