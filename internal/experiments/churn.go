package experiments

import (
	"fmt"
	"math/rand"

	"github.com/canon-dht/canon/internal/dynamic"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/metrics"
)

// Churn measures Section 2.3's maintenance cost: the average number of
// messages per join (lookup hops + link setups + eager repairs) and per
// leave, as the network grows — the paper bounds insertions at O(log n)
// messages. It also verifies routing consistency after the churn by routing
// sample keys on the final state.
func Churn(cfg Config, sizes []int, levels int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	space := id.DefaultSpace()
	tree, err := hierarchy.Balanced(levels, cfg.Fanout)
	if err != nil {
		return nil, err
	}
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Section 2.3: maintenance messages per operation (%d levels)", levels),
		XLabel: "nodes",
	}
	joinSeries := &metrics.Series{Name: "messages/join"}
	leaveSeries := &metrics.Series{Name: "messages/leave"}
	perLog := &metrics.Series{Name: "join messages / log2 n"}

	dn := dynamic.New(space, tree)
	rng := rand.New(rand.NewSource(cfg.Seed))
	leaves := tree.Leaves()
	join := func() error {
		for {
			v := space.Random(rng)
			if _, ok := dn.LeafOf(v); ok {
				continue
			}
			return dn.Join(v, leaves[rng.Intn(len(leaves))])
		}
	}
	for _, n := range sizes {
		// Grow to n-window, then measure the last `window` joins.
		window := n / 8
		if window < 16 {
			window = 16
		}
		for dn.Len() < n-window {
			if err := join(); err != nil {
				return nil, err
			}
		}
		dn.ResetMessages()
		joins := 0
		for dn.Len() < n {
			if err := join(); err != nil {
				return nil, err
			}
			joins++
		}
		perJoin := float64(dn.Messages()) / float64(joins)
		joinSeries.Append(float64(n), perJoin)
		perLog.Append(float64(n), perJoin/log2f(n))

		// Measure leaves (then rejoin to keep growing).
		members := dn.Members()
		dn.ResetMessages()
		removals := window / 2
		for i := 0; i < removals; i++ {
			if err := dn.Leave(members[rng.Intn(len(members))]); err != nil {
				return nil, err
			}
			members = dn.Members()
		}
		leaveSeries.Append(float64(n), float64(dn.Messages())/float64(removals))
		for dn.Len() < n {
			if err := join(); err != nil {
				return nil, err
			}
		}
	}
	tbl.AddSeries(joinSeries)
	tbl.AddSeries(leaveSeries)
	tbl.AddSeries(perLog)
	tbl.AddNote("messages = join-lookup hops + link setups/teardowns + per-level notifications")
	return tbl, nil
}

func log2f(n int) float64 {
	v, r := float64(n), 0.0
	for v > 1 {
		v /= 2
		r++
	}
	return r
}
