// Package lockheldrpc2 is the golden fixture for the interprocedural
// lock-held-RPC check. Conn.Call has the Transport.Call shape (named Call,
// first parameter context.Context), so any call edge that can reach it while
// a mutex is held must fire — whether the RPC is lexically visible or buried
// behind helpers.
package lockheldrpc2

import (
	"context"
	"sync"
)

// Conn stands in for a transport: Call is the RPC primitive.
type Conn struct{}

func (c *Conn) Call(ctx context.Context, addr string, msg string) (string, error) {
	return msg, nil
}

// Caller is the interface shape of the same primitive.
type Caller interface {
	Call(ctx context.Context, addr string, msg string) (string, error)
}

// Node mixes a mutex with a connection, the netnode.Node layout.
type Node struct {
	mu   sync.Mutex
	conn *Conn
	tr   Caller
	peer string
}

// direct fires exactly as v1 did: the RPC is lexically inside the region.
func (n *Node) direct(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conn.Call(ctx, n.peer, "ping") // want `Call.*is called with n\.mu held`
}

// viaInterface fires on the interface method: Transport.Call-shaped.
func (n *Node) viaInterface(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tr.Call(ctx, n.peer, "ping") // want `Call.*is called with n\.mu held`
}

// oneHop is what v1 could never see: the RPC sits one call away.
func (n *Node) oneHop(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ping(ctx) // want `ping.*reaches.*Call.*with n\.mu held`
}

func (n *Node) ping(ctx context.Context) {
	n.conn.Call(ctx, n.peer, "ping")
}

// twoHops pushes the RPC two frames down; the chain still carries evidence.
func (n *Node) twoHops(ctx context.Context) {
	n.mu.Lock()
	n.probe(ctx) // want `probe.*reaches.*Call.*with n\.mu held`
	n.mu.Unlock()
}

func (n *Node) probe(ctx context.Context) {
	n.ping(ctx)
}
