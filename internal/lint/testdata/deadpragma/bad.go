// Package deadpragma is the golden fixture for the suppression
// meta-check: pragmas naming checks that do not fire at their scope are
// themselves findings. The code below is deliberately clean under every
// real check, so the only diagnostics are about the pragmas.
package deadpragma

// addClean does nothing a check cares about; the pragma above it is dead.
func addClean(a, b int) int {
	//canonvet:ignore ringcmp -- leftover from a refactor; nothing circular here // want `stale //canonvet:ignore: check "ringcmp" no longer fires at this scope`
	return a + b
}

// typo'd check names are flagged no matter what.
func typoPragma(a, b int) int {
	//canonvet:ignore ringcmpp -- misspelled check name // want `names unknown check "ringcmpp"`
	return a - b
}

// a dead blanket suppression is the worst kind: it hides future findings of
// every check. Judged only when the full check set runs.
func blanket(a int) int {
	//canonvet:ignore all -- silence everything // want `stale //canonvet:ignore all: no check fires at this scope`
	return a * 2
}

// the v3 value-flow checks participate in staleness like any other: a
// pragma naming one of them on clean code is dead weight.
func pooledClean(a int) int {
	//canonvet:ignore poolescape -- leftover: this helper stopped pooling long ago // want `stale //canonvet:ignore: check "poolescape" no longer fires at this scope`
	return a + 1
}

func publishClean(a int) int {
	//canonvet:ignore publishrace -- leftover: the snapshot is built elsewhere now // want `stale //canonvet:ignore: check "publishrace" no longer fires at this scope`
	return a + 2
}

func counterClean(a int) int {
	//canonvet:ignore atomicmix -- leftover: the counter went fully atomic // want `stale //canonvet:ignore: check "atomicmix" no longer fires at this scope`
	return a + 3
}

func barrierClean(a int) int {
	//canonvet:ignore durabilityerr -- leftover: the barrier moved into the store // want `stale //canonvet:ignore: check "durabilityerr" no longer fires at this scope`
	return a + 4
}

// the v4 wire checks participate too: this package has no binary codecs,
// so a pragma naming any of them can never suppress anything.
func wireSymClean(a int) int {
	//canonvet:ignore wiresym -- leftover from the v4 rollout // want `stale //canonvet:ignore: check "wiresym" no longer fires at this scope`
	return a + 5
}

func wireBreakClean(a int) int {
	//canonvet:ignore wirebreak -- leftover: the baseline was refreshed // want `stale //canonvet:ignore: check "wirebreak" no longer fires at this scope`
	return a + 6
}

func wireBoundsClean(a int) int {
	//canonvet:ignore wirebounds -- leftover: the decoder grew its cap // want `stale //canonvet:ignore: check "wirebounds" no longer fires at this scope`
	return a + 7
}

func wireDocClean(a int) int {
	//canonvet:ignore wiredoc -- leftover: the tables were re-synced // want `stale //canonvet:ignore: check "wiredoc" no longer fires at this scope`
	return a + 8
}
