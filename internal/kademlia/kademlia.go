// Package kademlia implements the Kademlia link-creation geometry
// (Maymounkov & Mazieres, IPTPS 2002): for every 0 <= k < N a node links to
// some node at XOR distance in [2^k, 2^(k+1)) — one representative per
// bucket, as the paper's Section 3.3 discussion assumes. Plugged into the
// Canon framework it yields Kandy, the Canonical Kademlia: at every merge a
// node keeps only candidates whose XOR distance is smaller than the shortest
// link it already possesses.
package kademlia

import (
	"math/rand"

	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/id"
)

// enumerationCap bounds how many bucket members MergeLinks will enumerate
// when filtering by bound; beyond the cap it falls back to rejection
// sampling. In practice merge buckets hold only a handful of nodes.
const enumerationCap = 8192

// Geometry is the Kademlia link rule.
type Geometry struct {
	space id.Space
	width int // links kept per bucket
}

var _ core.Geometry = (*Geometry)(nil)

// New returns the Kademlia geometry over space with one link per bucket,
// as the paper's discussion assumes.
func New(space id.Space) *Geometry {
	return &Geometry{space: space, width: 1}
}

// NewWithWidth keeps up to width links per bucket — the redundancy real
// Kademlia maintains for resilience ("Kademlia actually maintains multiple
// links for each of these distances", Section 3.3).
func NewWithWidth(space id.Space, width int) *Geometry {
	if width < 1 {
		width = 1
	}
	return &Geometry{space: space, width: width}
}

// Name implements core.Geometry.
func (g *Geometry) Name() string { return "kademlia" }

// Metric implements core.Geometry.
func (g *Geometry) Metric() core.Metric { return core.MetricXOR }

// Distance implements core.Geometry.
func (g *Geometry) Distance(a, b id.ID) uint64 { return g.space.XOR(a, b) }

// BucketTarget returns the canonical identifier of bucket k as seen from m:
// m with its k-th bit (counting from the least significant) flipped, the
// identifier at XOR distance exactly 2^k. Every member of the bucket — XOR
// distance in [2^k, 2^(k+1)) — shares the target's top Bits()-k-1 bits, so
// it is the natural probe target for a live bucket-refresh lookup (Kandy's
// bucketProbe) as well as the anchor of the offline bucketRange enumeration.
func BucketTarget(space id.Space, m id.ID, k uint) id.ID {
	return space.FlipBit(m, space.Bits()-1-k)
}

// bucketRange returns the member-position range of ring members at XOR
// distance in [2^k, 2^(k+1)) from m: those sharing m's top (bits-k-1) bits
// and differing at the next bit — a contiguous identifier range.
func (g *Geometry) bucketRange(ring *core.Ring, m id.ID, k uint) (lo, hi int) {
	j := g.space.Bits() - 1 - k // MSB-first index of the differing bit
	prefix := g.space.Prefix(BucketTarget(g.space, m, k), j+1)
	return ring.PrefixRangePos(prefix, j+1)
}

// BaseLinks implements core.Geometry: up to `width` uniformly chosen
// representatives from every non-empty bucket.
func (g *Geometry) BaseLinks(ring *core.Ring, node int, rng *rand.Rand) []int {
	pos := ring.PosOfMember(node)
	if pos < 0 || ring.Len() == 1 {
		return nil
	}
	m := ring.IDAt(pos)
	links := make([]int, 0, g.space.Bits()*uint(g.width))
	for k := uint(0); k < g.space.Bits(); k++ {
		lo, hi := g.bucketRange(ring, m, k)
		if lo >= hi {
			continue
		}
		if hi-lo <= g.width {
			for p := lo; p < hi; p++ {
				links = append(links, ring.Member(p))
			}
			continue
		}
		for i := 0; i < g.width; i++ {
			links = append(links, ring.Member(lo+rng.Intn(hi-lo)))
		}
	}
	return links
}

// MergeLinks implements core.Geometry: the Kademlia rule over the merged
// ring, discarding candidates at XOR distance >= bound (the node's shortest
// existing link) or inside the node's own ring.
func (g *Geometry) MergeLinks(merged, own *core.Ring, node int, bound uint64, rng *rand.Rand) []int {
	pos := merged.PosOfMember(node)
	if pos < 0 || merged.Len() == 1 {
		return nil
	}
	m := merged.IDAt(pos)
	var links []int
	for k := uint(0); k < g.space.Bits(); k++ {
		if uint64(1)<<k >= bound {
			break
		}
		lo, hi := g.bucketRange(merged, m, k)
		if lo >= hi {
			continue
		}
		if cand := g.pickBounded(merged, own, m, lo, hi, bound, rng); cand >= 0 {
			links = append(links, cand)
		}
	}
	if len(links) == 0 {
		// Condition (b) excluded every candidate. Crescendo keeps ring
		// connectivity for free (the merged-ring successor is always within
		// the bound); the XOR analog needs the nearest outside node added
		// explicitly or the node has no way out of its own ring at this
		// level.
		if cand := merged.XORNearestOutside(pos, own); cand >= 0 {
			links = append(links, cand)
		}
	}
	return links
}

// pickBounded picks a uniform member of merged[lo:hi) whose XOR distance
// from m is below bound and that is not in the node's own ring; -1 if none.
func (g *Geometry) pickBounded(merged, own *core.Ring, m id.ID, lo, hi int, bound uint64, rng *rand.Rand) int {
	if hi-lo > enumerationCap {
		// Rejection-sample a handful of times; the qualifying fraction is
		// tiny only when no candidate matters anyway.
		for attempt := 0; attempt < 16; attempt++ {
			p := lo + rng.Intn(hi-lo)
			cand := merged.Member(p)
			if g.space.XOR(m, merged.IDAt(p)) < bound && own.PosOfMember(cand) < 0 {
				return cand
			}
		}
		return -1
	}
	candidates := make([]int, 0, hi-lo)
	for p := lo; p < hi; p++ {
		cand := merged.Member(p)
		if g.space.XOR(m, merged.IDAt(p)) >= bound {
			continue
		}
		if own.PosOfMember(cand) >= 0 {
			continue
		}
		candidates = append(candidates, cand)
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}

// Bound implements core.Geometry: the XOR distance of the node's shortest
// existing link (Section 3.3), or the whole space when it has none.
func (g *Geometry) Bound(own *core.Ring, node int, linkIDs []id.ID) uint64 {
	pos := own.PosOfMember(node)
	if pos < 0 {
		return 0
	}
	m := own.IDAt(pos)
	bound := g.space.Size()
	for _, lid := range linkIDs {
		if d := g.space.XOR(m, lid); d < bound {
			bound = d
		}
	}
	return bound
}
