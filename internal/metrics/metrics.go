// Package metrics provides the small statistics toolkit used by the
// experiment harness: streaming mean/variance (Welford), integer histograms
// for degree PDFs, percentiles, and tabular series formatting matching the
// rows and curves reported in the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates a running mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Stream struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 if none).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 if none).
func (s *Stream) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Merge folds other into s, as if all of other's observations had been added
// to s directly.
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// IntHistogram counts occurrences of small non-negative integers, such as
// node degrees. The zero value is ready to use.
type IntHistogram struct {
	counts map[int]int64
	total  int64
}

// Add records one occurrence of v.
func (h *IntHistogram) Add(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *IntHistogram) Total() int64 { return h.total }

// Count returns the number of occurrences of v.
func (h *IntHistogram) Count(v int) int64 { return h.counts[v] }

// Fraction returns the empirical probability of v.
func (h *IntHistogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Values returns the distinct observed values in ascending order.
func (h *IntHistogram) Values() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Mean returns the histogram mean.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Max returns the largest observed value (0 if empty).
func (h *IntHistogram) Max() int {
	max := 0
	first := true
	for v := range h.counts {
		if first || v > max {
			max = v
			first = false
		}
	}
	return max
}

// PDF returns (value, fraction) pairs in ascending value order.
func (h *IntHistogram) PDF() ([]int, []float64) {
	vals := h.Values()
	fracs := make([]float64, len(vals))
	for i, v := range vals {
		fracs[i] = h.Fraction(v)
	}
	return vals, fracs
}

// Percentile returns the p-th percentile (p in [0,100]) of the data using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Series is a named sequence of (x, y) points, one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders a set of series sharing the same X values as an aligned
// text table with one row per X value, in the spirit of the paper's figures.
type Table struct {
	Title  string
	XLabel string
	Series []*Series
	Notes  []string
}

// AddSeries appends a curve to the table.
func (t *Table) AddSeries(s *Series) { t.Series = append(t.Series, s) }

// AddNote appends a free-form annotation printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table. Series may have different X sets; the union of
// X values is used and missing cells are left blank.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	xsSet := make(map[float64]struct{})
	for _, s := range t.Series {
		for _, x := range s.X {
			xsSet[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = formatNum(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
