// Command canonvet is the Canon DHT project's static analyzer: it loads
// every package in the module, builds a module-wide call graph, and reports
// violations of project invariants — circular-ID arithmetic outside the ring
// helpers, nondeterminism in seed-reproducible simulation packages, shared
// RNGs without locks, lock-order deadlock cycles, RPCs reachable while a
// mutex is held, goroutines with no stop path, entry-point call paths with
// no deadline, raw metric-name strings, wire-struct literals that can drift
// silently, and stale suppression pragmas.
//
// Since v3 a value-flow engine (internal/lint/dataflow.go) adds four
// dataflow checks: poolescape (sync.Pool values that escape their request
// scope, are used after Put, or are Put twice), publishrace (writes to a
// value after it flowed into an atomic pointer store), atomicmix (fields
// accessed both through sync/atomic and by plain loads/stores with no
// common mutex), and durabilityerr (Sync/Write/Close/WAL-append error
// results discarded or shadowed before the latch/ack site). Their findings
// carry the dataflow evidence chain — where the value was born, where it
// was put/published, where it was misused — rendered by -why exactly like
// the call-chain evidence of the interprocedural checks.
//
// Since v4 a symbolic wire-schema engine (internal/lint/wireextract.go and
// friends) abstractly executes every AppendBinary/UnmarshalBinary pair in
// the wire packages and extracts a byte-level schema — field order, fixed
// widths, varint kinds, flag-conditional fields, length-prefixed sequences —
// per message type and wire version. Four checks consume it: wiresym
// (encoder and decoder disagree on layout), wirebreak (schema drifted from
// the committed docs/wire.schema.json baseline without a version bump),
// wirebounds (decoder preallocates from a wire-controlled count with no
// cap — a remote-OOM vector), and wiredoc (docs/WIRE.md field tables drift
// from the code). The extracted schema itself is available with -schema,
// and -write-schema refreshes the committed baseline after an intentional,
// version-bumped wire change.
//
// Usage:
//
//	go run ./cmd/canonvet ./...              # whole module, human output
//	go run ./cmd/canonvet -json ./...        # machine-readable findings
//	go run ./cmd/canonvet -checks lockorder,goroutineleak ./internal/netnode
//	go run ./cmd/canonvet -list              # describe every check
//	go run ./cmd/canonvet -why a1b2c3 ./...  # call-chain evidence for a finding
//	go run ./cmd/canonvet -callgraph dot ./... > callgraph.dot
//	go run ./cmd/canonvet -write-baseline .canonvet-baseline ./...
//	go run ./cmd/canonvet -baseline .canonvet-baseline ./...  # fail on NEW findings only
//	go run ./cmd/canonvet -schema ./...       # extracted wire schema as JSON
//	go run ./cmd/canonvet -write-schema ./... # refresh docs/wire.schema.json
//
// Exit status: 0 clean, 1 findings (new findings when -baseline is given),
// 2 usage or load failure. Deliberate exceptions are annotated in source with
//
//	//canonvet:ignore <check>[,<check>] -- <justification>
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/canon-dht/canon/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("canonvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (always newline-terminated)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	verbose := fs.Bool("v", false, "report type-checking problems encountered while loading")
	why := fs.String("why", "", "print call-chain evidence for the finding with this fingerprint (prefix accepted)")
	callgraph := fs.String("callgraph", "", "export the module call graph instead of findings (formats: dot)")
	baseline := fs.String("baseline", "", "fingerprint file of known findings; exit 1 only on findings not in it")
	writeBaseline := fs.String("write-baseline", "", "write the current findings' fingerprints to this file and exit 0")
	schema := fs.Bool("schema", false, "print the extracted wire schema as JSON and exit (v4 symbolic engine)")
	writeSchema := fs.Bool("write-schema", false, "write the extracted wire schema to the configured baseline path and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	if *callgraph != "" && *callgraph != "dot" {
		fmt.Fprintf(stderr, "canonvet: unknown -callgraph format %q (supported: dot)\n", *callgraph)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}

	dirs, err := targetDirs(root, cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	pkgs, err := loader.LoadDirs(dirs)
	if err != nil {
		fmt.Fprintln(stderr, "canonvet:", err)
		return 2
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "canonvet: load %s: %v\n", pkg.Path, terr)
			}
		}
	}

	cfg := lint.DefaultConfig(loader.Module)
	cfg.Root = root
	if *checks != "" {
		cfg.Enabled = make(map[string]bool)
		known := make(map[string]bool)
		for _, c := range lint.AllChecks() {
			known[c.Name] = true
		}
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(stderr, "canonvet: unknown check %q (see -list)\n", name)
				return 2
			}
			cfg.Enabled[name] = true
		}
	}

	if *callgraph == "dot" {
		g := lint.BuildCallGraph(cfg, loader.Fset, pkgs)
		g.ComputeSummaries()
		fmt.Fprint(stdout, g.DOT())
		return 0
	}

	if *schema || *writeSchema {
		out, err := lint.ExtractWireSchema(cfg, loader.Fset, pkgs).EncodeJSON()
		if err != nil {
			fmt.Fprintln(stderr, "canonvet:", err)
			return 2
		}
		if *writeSchema {
			path := cfg.WireBaselinePath
			if path == "" {
				fmt.Fprintln(stderr, "canonvet: no wire schema baseline path configured")
				return 2
			}
			if !filepath.IsAbs(path) {
				path = filepath.Join(root, path)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				fmt.Fprintln(stderr, "canonvet:", err)
				return 2
			}
			fmt.Fprintf(stderr, "canonvet: wrote wire schema to %s\n", path)
			return 0
		}
		stdout.Write(out)
		return 0
	}

	diags := lint.Run(cfg, loader.Fset, pkgs)

	if *why != "" {
		matched := 0
		for _, d := range diags {
			if !strings.HasPrefix(d.Fingerprint, *why) {
				continue
			}
			matched++
			fmt.Fprintf(stdout, "%s\n  fingerprint %s\n", d.String(), d.Fingerprint)
			if len(d.Chain) == 0 {
				fmt.Fprintln(stdout, "  (no call-chain evidence: per-package check)")
				continue
			}
			for i, frame := range d.Chain {
				fmt.Fprintf(stdout, "  %s%s\n", strings.Repeat("  ", i), frame)
			}
		}
		if matched == 0 {
			fmt.Fprintf(stderr, "canonvet: no finding matches fingerprint %q\n", *why)
			return 2
		}
		return 0
	}

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, diags); err != nil {
			fmt.Fprintln(stderr, "canonvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "canonvet: wrote %d fingerprint(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	known := make(map[string]bool)
	if *baseline != "" {
		known, err = readBaselineFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "canonvet:", err)
			return 2
		}
	}
	var fresh []lint.Diagnostic
	baselined := 0
	for _, d := range diags {
		if known[d.Fingerprint] {
			baselined++
			continue
		}
		fresh = append(fresh, d)
	}

	if *jsonOut {
		// json.Encoder.Encode terminates its output with '\n', so the
		// artifact is always newline-terminated and safe to concatenate.
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []lint.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(stderr, "canonvet:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d.String())
		}
		if len(fresh) > 0 {
			fmt.Fprintf(stderr, "canonvet: %d finding(s)\n", len(fresh))
		}
	}
	if baselined > 0 {
		fmt.Fprintf(stderr, "canonvet: %d baselined finding(s) suppressed (burn them down)\n", baselined)
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// writeBaselineFile records one fingerprint per line with a human-readable
// trailing comment; readBaselineFile only consumes the first field.
func writeBaselineFile(path string, diags []lint.Diagnostic) error {
	var b strings.Builder
	b.WriteString("# canonvet baseline: fingerprints of known findings; first field per line is authoritative.\n")
	for _, d := range diags {
		fmt.Fprintf(&b, "%s %s %s:%d %s\n", d.Fingerprint, d.Check, filepath.Base(d.File), d.Line, d.Message)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaselineFile parses a baseline file: blank lines and #-comments are
// skipped, the first whitespace-separated field of every other line is a
// fingerprint.
func readBaselineFile(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	known := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		known[strings.Fields(line)[0]] = true
	}
	return known, sc.Err()
}

// targetDirs resolves command-line package patterns to directories. The
// pattern language is deliberately small: "./..." (or no argument) means the
// whole module; "dir/..." walks a subtree; anything else is a single
// directory relative to the working directory.
func targetDirs(root, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		return lint.GoDirs(root)
	}
	seen := make(map[string]bool)
	var out []string
	add := func(dirs ...string) {
		for _, d := range dirs {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := lint.GoDirs(root)
			if err != nil {
				return nil, err
			}
			add(dirs...)
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
			dirs, err := lint.GoDirs(base)
			if err != nil {
				return nil, err
			}
			add(dirs...)
		default:
			add(filepath.Join(cwd, pat))
		}
	}
	return out, nil
}
