// Package storage implements hierarchical content storage and retrieval
// (Section 4.1). Content inserted by a node carries a storage domain — a
// domain containing the inserter within which the key-value pair must be
// stored — and an access domain, a superset of the storage domain to whose
// nodes the content is visible. A pair with storage domain D is stored at
// the proxy node for its key in D's ring; if the access domain is larger, a
// pointer is additionally placed at the access domain's proxy.
//
// Retrieval is plain hierarchical greedy routing with two twists: every node
// along the path answers from its local content when the content's access
// domain is no smaller than the current routing level (the lowest common
// ancestor of the query source and the current node), and pointers are
// resolved transparently. A query for locally stored content therefore never
// leaves its domain, and a node automatically retrieves exactly the content
// it is permitted to access.
package storage

import (
	"errors"
	"fmt"

	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

var (
	// ErrOriginOutsideStorageDomain is returned when the inserting node does
	// not belong to the requested storage domain.
	ErrOriginOutsideStorageDomain = errors.New("storage: origin not inside storage domain")
	// ErrAccessNotSuperset is returned when the access domain does not
	// contain the storage domain.
	ErrAccessNotSuperset = errors.New("storage: access domain must contain storage domain")
)

// Item is one stored key-value pair.
type Item struct {
	Key     id.ID
	Value   []byte
	Storage *hierarchy.Domain
	Access  *hierarchy.Domain
}

// pointer is the indirection record placed at the access-domain proxy when
// the access domain is wider than the storage domain.
type pointer struct {
	key    id.ID
	target int // node holding the item
	access *hierarchy.Domain
}

// Store is a hierarchical key-value store over a built network. It is not
// safe for concurrent use.
type Store struct {
	nw    *core.Network
	items []map[id.ID][]*Item
	ptrs  []map[id.ID][]*pointer
}

// New returns an empty store over nw.
func New(nw *core.Network) *Store {
	return &Store{
		nw:    nw,
		items: make([]map[id.ID][]*Item, nw.Len()),
		ptrs:  make([]map[id.ID][]*pointer, nw.Len()),
	}
}

// Network returns the network the store runs on.
func (s *Store) Network() *core.Network { return s.nw }

// Put inserts a key-value pair from origin with the given storage and access
// domains and returns the node the item was stored at. A nil storage or
// access domain means the root (global storage / global access).
func (s *Store) Put(origin int, key id.ID, value []byte, storage, access *hierarchy.Domain) (int, error) {
	pop := s.nw.Population()
	root := pop.Tree().Root()
	if storage == nil {
		storage = root
	}
	if access == nil {
		access = root
	}
	if !storage.IsAncestorOf(pop.LeafOf(origin)) {
		return -1, fmt.Errorf("%w: node %d, domain %q", ErrOriginOutsideStorageDomain, origin, storage.Path())
	}
	if !access.IsAncestorOf(storage) {
		return -1, fmt.Errorf("%w: access %q, storage %q", ErrAccessNotSuperset, access.Path(), storage.Path())
	}
	holder := s.nw.Proxy(storage, key)
	if holder < 0 {
		return -1, fmt.Errorf("storage: domain %q has no nodes", storage.Path())
	}
	item := &Item{Key: key, Value: value, Storage: storage, Access: access}
	if s.items[holder] == nil {
		s.items[holder] = make(map[id.ID][]*Item)
	}
	s.items[holder][key] = append(s.items[holder][key], item)

	if access != storage {
		ptrNode := s.nw.Proxy(access, key)
		if ptrNode >= 0 && ptrNode != holder {
			if s.ptrs[ptrNode] == nil {
				s.ptrs[ptrNode] = make(map[id.ID][]*pointer)
			}
			s.ptrs[ptrNode][key] = append(s.ptrs[ptrNode][key],
				&pointer{key: key, target: holder, access: access})
		}
	}
	return holder, nil
}

// Result describes the outcome of a Get.
type Result struct {
	// Found reports whether an accessible value was located.
	Found bool
	// Value is the retrieved value.
	Value []byte
	// Node is the node that answered (the pointer holder when Indirect).
	Node int
	// Hops is the number of routing hops taken until the answer.
	Hops int
	// Indirect reports whether the answer was reached through a pointer,
	// which costs an extra fetch from the storing node.
	Indirect bool
	// Path is the routing path walked, ending at the answering node (or the
	// full path on a miss).
	Path []int
}

// Get retrieves the first value for key that origin is permitted to access,
// walking the hierarchical route and answering at the earliest node holding
// accessible content or a pointer to it (single-value semantics).
func (s *Store) Get(origin int, key id.ID) Result {
	res := s.collect(origin, key, 1)
	if len(res.values) == 0 {
		return Result{Path: res.path, Hops: len(res.path) - 1}
	}
	first := res.values[0]
	return Result{
		Found:    true,
		Value:    first.item.Value,
		Node:     first.node,
		Hops:     first.hops,
		Indirect: first.indirect,
		Path:     res.path,
	}
}

// GetAll retrieves up to max accessible values for key along the query path
// (the paper's partial-list semantics; max <= 0 means no limit).
func (s *Store) GetAll(origin int, key id.ID, max int) []Result {
	res := s.collect(origin, key, max)
	out := make([]Result, 0, len(res.values))
	for _, v := range res.values {
		out = append(out, Result{
			Found:    true,
			Value:    v.item.Value,
			Node:     v.node,
			Hops:     v.hops,
			Indirect: v.indirect,
			Path:     res.path,
		})
	}
	return out
}

type hit struct {
	item     *Item
	node     int
	hops     int
	indirect bool
}

type collection struct {
	values []hit
	path   []int
}

// collect walks the greedy route from origin toward key, gathering
// accessible values until max are found (max <= 0: all). Routing stops as
// soon as the quota is met, so local queries never leave their domain.
func (s *Store) collect(origin int, key id.ID, max int) collection {
	pop := s.nw.Population()
	route := s.nw.RouteToKey(origin, key)
	var out collection
	for idx, node := range route.Nodes {
		out.path = append(out.path, node)
		level := hierarchy.LCA(pop.LeafOf(origin), pop.LeafOf(node))
		for _, item := range s.items[node][key] {
			if !item.Access.IsAncestorOf(level) {
				continue
			}
			out.values = append(out.values, hit{item: item, node: node, hops: idx})
			if max > 0 && len(out.values) >= max {
				return out
			}
		}
		for _, p := range s.ptrs[node][key] {
			if !p.access.IsAncestorOf(level) {
				continue
			}
			// Resolve the indirection: fetch from the storing node.
			for _, item := range s.items[p.target][key] {
				if item.Access != p.access {
					continue
				}
				out.values = append(out.values, hit{item: item, node: node, hops: idx, indirect: true})
				if max > 0 && len(out.values) >= max {
					return out
				}
			}
		}
	}
	return out
}

// Delete removes all values stored for key under the given storage domain
// and any pointers to them, returning how many items were removed.
func (s *Store) Delete(key id.ID, storage *hierarchy.Domain) int {
	if storage == nil {
		storage = s.nw.Population().Tree().Root()
	}
	holder := s.nw.Proxy(storage, key)
	if holder < 0 || s.items[holder] == nil {
		return 0
	}
	kept := s.items[holder][key][:0]
	removed := 0
	for _, item := range s.items[holder][key] {
		if item.Storage == storage {
			removed++
			if item.Access != storage {
				s.removePointer(key, item.Access, holder)
			}
			continue
		}
		kept = append(kept, item)
	}
	if len(kept) == 0 {
		delete(s.items[holder], key)
	} else {
		s.items[holder][key] = kept
	}
	return removed
}

func (s *Store) removePointer(key id.ID, access *hierarchy.Domain, target int) {
	ptrNode := s.nw.Proxy(access, key)
	if ptrNode < 0 || s.ptrs[ptrNode] == nil {
		return
	}
	kept := s.ptrs[ptrNode][key][:0]
	for _, p := range s.ptrs[ptrNode][key] {
		if p.target == target && p.access == access {
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		delete(s.ptrs[ptrNode], key)
	} else {
		s.ptrs[ptrNode][key] = kept
	}
}

// ItemsAt returns the number of values stored at a node, used by partition
// balance experiments.
func (s *Store) ItemsAt(node int) int {
	total := 0
	for _, items := range s.items[node] {
		total += len(items)
	}
	return total
}
