package netnode

import (
	"context"
	"errors"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/canon-dht/canon/internal/transport"
)

// RetryPolicy governs how Node.call re-sends failed RPCs. The zero value is
// replaced by defaults in New: 3 attempts, 5ms base backoff doubling to a
// 100ms cap with jitter, and a 2s per-attempt timeout.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (first send
	// included). Values below 1 mean the default of 3; 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (exponential backoff), up to MaxBackoff. The actual sleep
	// is jittered uniformly in [backoff/2, backoff).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt; the caller's context
	// still bounds the whole call. Zero means the default of 2s; negative
	// disables the per-attempt bound.
	AttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 2 * time.Second
	} else if p.AttemptTimeout < 0 {
		p.AttemptTimeout = 0
	}
	return p
}

// Stats is a snapshot of a node's wire-traffic and resilience counters.
// Useful for verifying protocol costs (e.g. O(log n) lookups) and failure
// handling on live deployments. Since PR 2 the counters live in the node's
// telemetry registry (see Telemetry()); Stats is a stable bridge reading the
// same registry series, so existing callers keep working unchanged.
type Stats struct {
	// Sent counts outgoing requests by message type (first attempts only).
	Sent map[string]int64
	// Received counts incoming requests by message type.
	Received map[string]int64
	// Retries counts re-send attempts beyond each call's first.
	Retries int64
	// FailedCalls counts calls that exhausted every attempt.
	FailedCalls int64
	// RoutedAround counts lookup forwards where a suspect/dead best
	// candidate was skipped in favor of a healthy one.
	RoutedAround int64
	// SuspectPeers maps peer address to "suspect" or "dead" for peers the
	// failure detector currently distrusts.
	SuspectPeers map[string]string
}

// call wraps the transport send with the node's resilience machinery: it
// counts the outgoing message, tags it with a nonce (so receivers that
// deduplicate execute it at most once across retries and duplicated
// deliveries), bounds each attempt, and retries transport-level failures
// with exponential backoff and jitter while honoring the caller's context.
// Every outcome feeds the per-peer failure detector.
func (n *Node) call(ctx context.Context, addr string, msg transport.Message) (transport.Message, error) {
	if msg.Nonce == "" {
		// Hand-built "<addr>#<hex seq>" (same format Sprintf produced): one
		// string allocation instead of the fmt machinery, since every
		// forwarded lookup hop passes through here.
		var scratch [64]byte
		b := append(scratch[:0], n.self.Addr...)
		b = append(b, '#')
		b = strconv.AppendUint(b, atomic.AddUint64(&n.nonceSeq, 1), 16)
		msg.Nonce = string(b)
	}
	n.m.sentCounter(msg.Type).Inc()
	start := time.Now()

	pol := n.retry
	var lastErr error
	attempts := 0
	defer func() {
		n.m.rpcAttempts.Observe(float64(attempts))
		n.m.rpcLatency.Observe(time.Since(start).Seconds())
	}()
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			n.m.retries.Inc()
			backoff := pol.BaseBackoff << (attempt - 1)
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			backoff = backoff/2 + n.jitter(backoff/2)
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				n.m.failedCalls.Inc()
				return transport.Message{}, ctx.Err()
			}
		}
		attempts = attempt + 1
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if pol.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, pol.AttemptTimeout)
		}
		resp, err := n.tr.Call(attemptCtx, addr, msg)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			n.health.recordSuccess(addr)
			return resp, nil
		}
		lastErr = err
		n.health.recordFailure(addr)
		if errors.Is(err, transport.ErrClosed) || ctx.Err() != nil {
			break // the transport is gone or the caller gave up: stop early
		}
	}
	n.m.failedCalls.Inc()
	return transport.Message{}, lastErr
}

// jitter draws a uniform duration in [0, max) from the node's RNG.
func (n *Node) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Duration(n.rng.Int63n(int64(max)))
}

// countReceived tallies an incoming request. It runs inside the nonce-dedup
// wrapper, so replayed duplicates never double-count.
func (n *Node) countReceived(msgType string) {
	n.m.receivedCounter(msgType).Inc()
}

// Health returns the failure detector's classification of a peer address.
func (n *Node) Health(addr string) PeerState { return n.health.state(addr) }

// Stats returns a copy of the node's traffic and resilience counters, read
// from the telemetry registry.
func (n *Node) Stats() Stats {
	out := Stats{
		Sent:         n.m.sentSnapshot(),
		Received:     n.m.receivedSnapshot(),
		Retries:      n.m.retries.Value(),
		FailedCalls:  n.m.failedCalls.Value(),
		RoutedAround: n.m.routedAround.Value(),
		SuspectPeers: n.health.snapshot(),
	}
	n.m.suspects.Set(float64(len(out.SuspectPeers)))
	return out
}
