// Package wirebounds is the golden fixture for the wire-controlled
// allocation check: a decoder that reserves memory proportional to a count
// an attacker chose is a one-line remote OOM.
package wirebounds

import "encoding/binary"

// decodeList trusts the wire count completely: a 10-byte header claiming
// 2^60 elements reserves 8 EiB of capacity before a single element decodes.
func decodeList(data []byte) []uint64 {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil
	}
	data = data[sz:]
	out := make([]uint64, 0, n) // want `decodeList preallocates \[\]uint64 from wire-controlled count "n" with no cap`
	for len(data) >= 8 && uint64(len(out)) < n {
		out = append(out, binary.BigEndian.Uint64(data))
		data = data[8:]
	}
	return out
}
