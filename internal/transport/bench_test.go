package transport_test

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/canon-dht/canon/internal/transport"
)

// benchBody mirrors the shape of the hot netnode payloads (lookup responses:
// two node identities plus routing metadata) without importing netnode.
type benchBody struct {
	PredID   uint64 `json:"predId"`
	PredName string `json:"predName"`
	PredAddr string `json:"predAddr"`
	SuccID   uint64 `json:"succId"`
	SuccName string `json:"succName"`
	SuccAddr string `json:"succAddr"`
	Hops     int    `json:"hops"`
}

func (b benchBody) AppendBinary(buf []byte) ([]byte, error) {
	var x [8]byte
	app := func(v uint64) {
		binary.BigEndian.PutUint64(x[:], v)
		buf = append(buf, x[:]...)
	}
	str := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	app(b.PredID)
	str(b.PredName)
	str(b.PredAddr)
	app(b.SuccID)
	str(b.SuccName)
	str(b.SuccAddr)
	buf = binary.AppendVarint(buf, int64(b.Hops))
	return buf, nil
}

func (b benchBody) MarshalBinary() ([]byte, error) { return b.AppendBinary(nil) }

func (b *benchBody) UnmarshalBinary(data []byte) error {
	u64 := func() uint64 {
		v := binary.BigEndian.Uint64(data)
		data = data[8:]
		return v
	}
	str := func() string {
		n, sz := binary.Uvarint(data)
		s := string(data[sz : sz+int(n)])
		data = data[sz+int(n):]
		return s
	}
	b.PredID = u64()
	b.PredName = str()
	b.PredAddr = str()
	b.SuccID = u64()
	b.SuccName = str()
	b.SuccAddr = str()
	hops, _ := binary.Varint(data)
	b.Hops = int(hops)
	return nil
}

var benchMsgBody = benchBody{
	PredID: 0xDEADBEEFCAFEF00D, PredName: "stanford/cs/db", PredAddr: "10.1.2.3:7001",
	SuccID: 0x0123456789ABCDEF, SuccName: "stanford/cs/graphics", SuccAddr: "10.1.2.4:7001",
	Hops: 5,
}

// BenchmarkEnvelopeEncodeJSON measures the legacy frame body encoding: the
// full JSON materialization of a typical lookup-response message.
func BenchmarkEnvelopeEncodeJSON(b *testing.B) {
	msg, err := transport.NewMessage("lookup", benchMsgBody)
	if err != nil {
		b.Fatal(err)
	}
	msg.Nonce = "bench-nonce-0001"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeEncodeBinary measures the binary envelope encoding of the
// same message into a reused buffer — the steady-state mux send path.
func BenchmarkEnvelopeEncodeBinary(b *testing.B) {
	msg, err := transport.NewMessage("lookup", benchMsgBody)
	if err != nil {
		b.Fatal(err)
	}
	msg.Nonce = "bench-nonce-0001"
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := transport.AppendBinaryMessage(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		buf = enc[:0]
	}
}

// BenchmarkEnvelopeDecodeJSON measures legacy decode: frame JSON to Message,
// then payload JSON to the typed body.
func BenchmarkEnvelopeDecodeJSON(b *testing.B) {
	msg, err := transport.NewMessage("lookup", benchMsgBody)
	if err != nil {
		b.Fatal(err)
	}
	msg.Nonce = "bench-nonce-0001"
	raw, err := json.Marshal(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m transport.Message
		if err := json.Unmarshal(raw, &m); err != nil {
			b.Fatal(err)
		}
		var body benchBody
		if err := m.Decode(&body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeDecodeBinary measures binary decode: envelope parse, then
// the payload's UnmarshalBinary.
func BenchmarkEnvelopeDecodeBinary(b *testing.B) {
	msg, err := transport.NewMessage("lookup", benchMsgBody)
	if err != nil {
		b.Fatal(err)
	}
	msg.Nonce = "bench-nonce-0001"
	enc, err := transport.AppendBinaryMessage(nil, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := transport.DecodeBinaryMessage(enc)
		if err != nil {
			b.Fatal(err)
		}
		var body benchBody
		if err := m.Decode(&body); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRoundTrips drives concurrent same-peer RPCs through a client in the
// given wire mode against a binary-capable server. With 64 concurrent callers
// this is the ISSUE's headline comparison: 64-deep multiplexing on 2
// persistent connections versus the legacy pool (cap 4) dialing under churn.
func benchRoundTrips(b *testing.B, wire string, callers int) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		return transport.NewMessage("lookup-reply", benchMsgBody)
	})

	cli, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{Wire: wire})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	// Warm the connection path (and, in binary mode, the negotiation cache).
	warm, _ := transport.NewMessage("lookup", benchMsgBody)
	if _, err := cli.Call(context.Background(), srv.Addr(), warm); err != nil {
		b.Fatal(err)
	}

	par := callers / runtime.GOMAXPROCS(0)
	if par < 1 {
		par = 1
	}
	b.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			msg, _ := transport.NewMessage("lookup", benchMsgBody)
			resp, err := cli.Call(ctx, srv.Addr(), msg)
			if err != nil {
				b.Error(err)
				return
			}
			var body benchBody
			if err := resp.Decode(&body); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRoundTrip64JSON(b *testing.B)   { benchRoundTrips(b, transport.WireJSON, 64) }
func BenchmarkRoundTrip64Binary(b *testing.B) { benchRoundTrips(b, transport.WireBinary, 64) }

func BenchmarkRoundTrip1JSON(b *testing.B)   { benchRoundTrips(b, transport.WireJSON, 1) }
func BenchmarkRoundTrip1Binary(b *testing.B) { benchRoundTrips(b, transport.WireBinary, 1) }
