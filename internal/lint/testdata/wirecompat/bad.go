// Package wirecompat is a canonvet fixture: unkeyed wire-struct literals and
// hand-rolled envelopes that populate Type but not Nonce must be flagged.
package wirecompat

import "github.com/canon-dht/canon/internal/lint/testdata/wirecompat/wire"

// unkeyed builds a wire struct positionally: inserting or reordering a field
// silently shifts every value into the wrong JSON key.
func unkeyed() wire.Ping {
	return wire.Ping{7, 1} // want `unkeyed composite literal of wire struct Ping`
}

// handRolled builds an envelope by hand with no nonce, so receivers cannot
// deduplicate a retried delivery.
func handRolled(payload []byte) wire.Envelope {
	return wire.Envelope{Type: "ping", Payload: payload} // want `Envelope envelope built with Type but no Nonce`
}

// suppressed proves the pragma escape hatch for deliberate raw envelopes
// (the netnode dispatcher fuzzer does exactly this).
func suppressed(payload []byte) wire.Envelope {
	//canonvet:ignore wirecompat -- fixture: prove the pragma suppresses the line below
	return wire.Envelope{Type: "ping", Payload: payload}
}
