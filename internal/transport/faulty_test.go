package transport_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/transport"
)

// echoPair wires two Faulty endpoints on a fresh bus; the destination counts
// and echoes every request its handler actually executes.
func echoPair(seed int64, def transport.Faults) (src, dst *transport.Faulty, handled *int64) {
	bus := transport.NewBus()
	src = transport.NewFaulty(bus.Endpoint("src"), seed, def)
	dst = transport.NewFaulty(bus.Endpoint("dst"), seed+1000, transport.Faults{})
	var count int64
	dst.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		atomic.AddInt64(&count, 1)
		return msg, nil
	})
	return src, dst, &count
}

// schedule runs n calls through a fresh wrapper and records each outcome.
func schedule(t *testing.T, seed int64, def transport.Faults, n int) []bool {
	t.Helper()
	src, _, _ := echoPair(seed, def)
	out := make([]bool, n)
	for i := range out {
		msg, err := transport.NewMessage("echo", map[string]int{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		msg.Nonce = fmt.Sprintf("n-%d", i)
		_, err = src.Call(context.Background(), "dst", msg)
		out[i] = err == nil
	}
	return out
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	def := transport.Faults{Drop: 0.3, Dup: 0.1}
	a := schedule(t, 42, def, 400)
	b := schedule(t, 42, def, 400)
	c := schedule(t, 43, def, 400)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
		if !a[i] {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("30% drop rate injected no drops in 400 calls")
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical schedule")
	}
}

func TestFaultyDelayDeterministicAndBounded(t *testing.T) {
	def := transport.Faults{DelayMin: 2 * time.Millisecond, DelayMax: 10 * time.Millisecond}
	src, _, _ := echoPair(7, def)
	msg, _ := transport.NewMessage("echo", nil)
	start := time.Now()
	if _, err := src.Call(context.Background(), "dst", msg); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("call returned after %v, below DelayMin", d)
	}
	if st := src.FaultStats(); st.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", st.Delayed)
	}
	// A canceled context must cut the injected delay short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := src.Call(ctx, "dst", msg); !errors.Is(err, context.Canceled) {
		t.Fatalf("delayed call under canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestFaultyPartitionHeals(t *testing.T) {
	src, _, handled := echoPair(1, transport.Faults{})
	msg, _ := transport.NewMessage("echo", nil)
	if _, err := src.Call(context.Background(), "dst", msg); err != nil {
		t.Fatalf("pre-partition call failed: %v", err)
	}
	src.Partition("dst")
	_, err := src.Call(context.Background(), "dst", msg)
	if !errors.Is(err, transport.ErrInjectedFault) || !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("partitioned call: err = %v, want injected+unreachable", err)
	}
	if got := atomic.LoadInt64(handled); got != 1 {
		t.Fatalf("handler ran %d times during partition, want 1 (pre-partition only)", got)
	}
	src.Heal("dst")
	if _, err := src.Call(context.Background(), "dst", msg); err != nil {
		t.Fatalf("post-heal call failed: %v", err)
	}
	if st := src.FaultStats(); st.Partitioned != 1 {
		t.Fatalf("Partitioned = %d, want 1", st.Partitioned)
	}
}

func TestFaultyDuplicateDoesNotDoubleApply(t *testing.T) {
	src, dst, handled := echoPair(5, transport.Faults{Dup: 1.0})
	msg, err := transport.NewMessage("echo", map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	msg.Nonce = "logical-request-1"
	resp, err := src.Call(context.Background(), "dst", msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != "echo" {
		t.Fatalf("resp type = %q", resp.Type)
	}
	if got := atomic.LoadInt64(handled); got != 1 {
		t.Fatalf("handler executed %d times for a duplicated request, want 1", got)
	}
	sst, dst2 := src.FaultStats(), dst.FaultStats()
	if sst.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", sst.Duplicated)
	}
	if dst2.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", dst2.DedupHits)
	}
	// Without a nonce there is no dedup: the handler legitimately runs twice.
	bare, _ := transport.NewMessage("echo", nil)
	if _, err := src.Call(context.Background(), "dst", bare); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(handled); got != 3 {
		t.Fatalf("handler executed %d times total, want 3 (1 deduped + 2 bare)", got)
	}
}

func TestFaultyPerPeerOverrides(t *testing.T) {
	bus := transport.NewBus()
	src := transport.NewFaulty(bus.Endpoint("src"), 9, transport.Faults{})
	for _, name := range []string{"a", "b"} {
		ep := transport.NewFaulty(bus.Endpoint(name), 10, transport.Faults{})
		ep.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
			return msg, nil
		})
	}
	src.SetPeerFaults("a", transport.Faults{Drop: 1.0})
	msg, _ := transport.NewMessage("echo", nil)
	if _, err := src.Call(context.Background(), "a", msg); err == nil {
		t.Fatal("call to fully-lossy peer a succeeded")
	}
	if _, err := src.Call(context.Background(), "b", msg); err != nil {
		t.Fatalf("call to clean peer b failed: %v", err)
	}
	src.ClearPeerFaults("a")
	if _, err := src.Call(context.Background(), "a", msg); err != nil {
		t.Fatalf("call to healed peer a failed: %v", err)
	}
}

func TestFaultyResponseDropRunsHandler(t *testing.T) {
	// With Drop=1 every call fails, but roughly half are response drops:
	// the handler must have run for those. Distinguish via FaultStats.
	src, _, handled := echoPair(11, transport.Faults{Drop: 1.0})
	msg, _ := transport.NewMessage("echo", nil)
	for i := 0; i < 50; i++ {
		if _, err := src.Call(context.Background(), "dst", msg); err == nil {
			t.Fatal("call under 100% drop succeeded")
		}
	}
	st := src.FaultStats()
	if st.DroppedReq+st.DroppedResp != 50 {
		t.Fatalf("dropped %d+%d, want 50 total", st.DroppedReq, st.DroppedResp)
	}
	if st.DroppedResp == 0 || st.DroppedReq == 0 {
		t.Fatalf("drop direction never varied: req=%d resp=%d", st.DroppedReq, st.DroppedResp)
	}
	if got := atomic.LoadInt64(handled); got != st.DroppedResp {
		t.Fatalf("handler ran %d times, want %d (one per response drop)", got, st.DroppedResp)
	}
}

func TestDedupHandlerReplaysCachedResponse(t *testing.T) {
	var runs int64
	h := transport.DedupHandler(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		n := atomic.AddInt64(&runs, 1)
		return transport.NewMessage("resp", map[string]int64{"run": n})
	}, 8)
	ctx := context.Background()
	first, err := h(ctx, "x", transport.Message{Type: "q", Nonce: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := h(ctx, "x", transport.Message{Type: "q", Nonce: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&runs) != 1 {
		t.Fatalf("handler ran %d times for one nonce, want 1", runs)
	}
	if string(first.Payload) != string(second.Payload) {
		t.Fatalf("replayed response differs: %s vs %s", first.Payload, second.Payload)
	}
	if _, err := h(ctx, "x", transport.Message{Type: "q", Nonce: "n2"}); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&runs) != 2 {
		t.Fatalf("handler ran %d times for two nonces, want 2", runs)
	}
}

// TestFaultyWrapsTCP exercises the wrapper around a real TCP transport to
// keep the "any inner transport" claim honest.
func TestFaultyWrapsTCP(t *testing.T) {
	inner, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewFaulty(inner, 3, transport.Faults{})
	defer srv.Close()
	srv.Serve(func(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
		return msg, nil
	})
	cliInner, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewFaulty(cliInner, 4, transport.Faults{})
	defer cli.Close()
	msg, _ := transport.NewMessage("echo", map[string]string{"over": "tcp"})
	msg.Nonce = "tcp-1"
	resp, err := cli.Call(context.Background(), srv.Addr(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != string(msg.Payload) {
		t.Fatalf("echo mismatch: %s", resp.Payload)
	}
	cli.Partition(srv.Addr())
	if _, err := cli.Call(context.Background(), srv.Addr(), msg); !errors.Is(err, transport.ErrInjectedFault) {
		t.Fatalf("partitioned TCP call: err = %v", err)
	}
}
