// Command canonctl is the client for a running canond node: it pings nodes,
// resolves key ownership, stores and retrieves values, dumps neighbor
// state, and runs traced lookups that print the per-hop route tree.
//
// Usage:
//
//	canonctl -node host:port ping
//	canonctl -node host:port lookup <key> [domain]
//	canonctl -node host:port trace <key> [domain]
//	canonctl -node host:port put <key> <value> [storage [access]]
//	canonctl -node host:port get <key>
//	canonctl -node host:port neighbors <level>
//	canonctl -node host:port repair
//	canonctl status http://host:statusport/
//
// Keys are unsigned integers (use canond's hash of your choice upstream).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	canon "github.com/canon-dht/canon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "canonctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("canonctl", flag.ContinueOnError)
	var (
		node      = fs.String("node", "127.0.0.1:7001", "address of a live node")
		timeout   = fs.Duration("timeout", 10*time.Second, "operation timeout")
		raw       = fs.Bool("raw", false, "status: dump the raw JSON instead of a summary")
		wire      = fs.String("wire", "binary", "wire protocol toward the node: binary (auto-downgrades to json) or json")
		connsPeer = fs.Int("conns-per-peer", 0, "multiplexed connections toward the node (0 = default 2)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: canonctl [flags] ping|lookup|trace|put|get|neighbors|repair|status ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("a command is required")
	}
	tr, err := canon.ListenTCPOpts("127.0.0.1:0", canon.TCPTransportOptions{
		Wire:         *wire,
		ConnsPerPeer: *connsPeer,
	})
	if err != nil {
		return err
	}
	defer tr.Close()
	client := canon.NewLiveClient(tr)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "ping":
		info, err := client.Ping(ctx, *node)
		if err != nil {
			return err
		}
		fmt.Printf("node %d domain=%q addr=%s\n", info.ID, info.Name, info.Addr)
		return nil

	case "lookup":
		if len(rest) < 1 {
			return fmt.Errorf("lookup needs a key")
		}
		key, err := parseKey(rest[0])
		if err != nil {
			return err
		}
		domain := ""
		if len(rest) > 1 {
			domain = rest[1]
		}
		owner, hops, err := client.Lookup(ctx, *node, key, domain)
		if err != nil {
			return err
		}
		fmt.Printf("owner of %d in %q: node %d (%s) via %d hops\n", key, domain, owner.ID, owner.Addr, hops)
		return nil

	case "trace":
		if len(rest) < 1 {
			return fmt.Errorf("trace needs a key")
		}
		key, err := parseKey(rest[0])
		if err != nil {
			return err
		}
		domain := ""
		if len(rest) > 1 {
			domain = rest[1]
		}
		owner, tr2, err := client.TracedLookup(ctx, *node, key, domain, "")
		if err != nil {
			return err
		}
		printTrace(os.Stdout, owner, tr2)
		return nil

	case "put":
		if len(rest) < 2 {
			return fmt.Errorf("put needs a key and a value")
		}
		key, err := parseKey(rest[0])
		if err != nil {
			return err
		}
		storage, access := "", ""
		if len(rest) > 2 {
			storage = rest[2]
			access = storage
		}
		if len(rest) > 3 {
			access = rest[3]
		}
		if err := client.Put(ctx, *node, key, []byte(rest[1]), storage, access); err != nil {
			return err
		}
		fmt.Printf("stored key %d (storage=%q access=%q)\n", key, storage, access)
		return nil

	case "get":
		if len(rest) < 1 {
			return fmt.Errorf("get needs a key")
		}
		key, err := parseKey(rest[0])
		if err != nil {
			return err
		}
		value, err := client.Get(ctx, *node, key)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", value)
		return nil

	case "repair":
		stats, err := client.Repair(ctx, *node)
		if err != nil {
			return err
		}
		fmt.Printf("repair: %d partners, %d records pushed, %d pulled\n",
			stats.Partners, stats.Pushed, stats.Pulled)
		return nil

	case "status":
		if len(rest) < 1 {
			return fmt.Errorf("status needs the node's HTTP status URL")
		}
		return fetchStatus(ctx, rest[0], *raw)

	case "neighbors":
		level := 0
		if len(rest) > 0 {
			v, err := strconv.Atoi(rest[0])
			if err != nil {
				return fmt.Errorf("bad level %q: %w", rest[0], err)
			}
			level = v
		}
		pred, succs, err := client.Neighbors(ctx, *node, level)
		if err != nil {
			return err
		}
		fmt.Printf("level %d predecessor: %d (%s)\n", level, pred.ID, pred.Addr)
		for i, s := range succs {
			fmt.Printf("level %d successor[%d]: %d (%s)\n", level, i, s.ID, s.Addr)
		}
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// fetchStatus GETs a canond status endpoint and prints either the raw JSON
// or a human-readable summary including the node's resilience counters.
func fetchStatus(ctx context.Context, url string, raw bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status endpoint returned %s", resp.Status)
	}
	if raw {
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
	var st canon.LiveStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode status: %w", err)
	}
	printStatus(os.Stdout, st)
	return nil
}

// printStatus renders a status snapshot for operators.
func printStatus(w io.Writer, st canon.LiveStatus) {
	fmt.Fprintf(w, "node %d domain=%q addr=%s\n", st.Info.ID, st.Info.Name, st.Info.Addr)
	for _, lv := range st.Levels {
		fmt.Fprintf(w, "level %d %-20q pred=%d succs=%d\n",
			lv.Level, lv.Prefix, lv.Predecessor.ID, len(lv.Successors))
	}
	fmt.Fprintf(w, "fingers: %d   stored keys: %d\n", len(st.Fingers), st.StoredKeys)
	var sent, recv int64
	for _, v := range st.Traffic.Sent {
		sent += v
	}
	for _, v := range st.Traffic.Received {
		recv += v
	}
	fmt.Fprintf(w, "traffic: sent=%d received=%d\n", sent, recv)
	fmt.Fprintf(w, "resilience: retries=%d failed-calls=%d routed-around=%d\n",
		st.Traffic.Retries, st.Traffic.FailedCalls, st.Traffic.RoutedAround)
	if len(st.Traffic.SuspectPeers) > 0 {
		addrs := make([]string, 0, len(st.Traffic.SuspectPeers))
		for a := range st.Traffic.SuspectPeers {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			fmt.Fprintf(w, "peer %s: %s\n", a, st.Traffic.SuspectPeers[a])
		}
	}
}

// printTrace renders a traced lookup as a per-hop tree: each line is one
// span, indented by hop, showing the node, its domain, the routing level the
// hop was taken at, and route-around / owner markers. The trace stays
// queryable afterwards at the entry node's /debug/trace/<id>.
func printTrace(w io.Writer, owner canon.LiveInfo, tr canon.RouteTrace) {
	fmt.Fprintf(w, "trace %s key %d domain %q: owner node %d (%s) via %d hops\n",
		tr.ID, tr.Key, tr.Prefix, owner.ID, owner.Addr, tr.Hops())
	for i, s := range tr.Spans {
		indent := strings.Repeat("  ", i)
		branch := ""
		if i > 0 {
			branch = "└▶ "
		}
		detail := fmt.Sprintf("level %d", s.Level)
		if s.Owner {
			detail = "owner"
		}
		marks := ""
		if s.RouteAround {
			marks = "  (route-around)"
		}
		name := s.Name
		if name == "" {
			name = "<root>"
		}
		fmt.Fprintf(w, "  %s%shop %d  node %-12d %-24s [%s]%s\n",
			indent, branch, s.Hop, s.ID, name, detail, marks)
	}
	if len(tr.Spans) == 0 {
		fmt.Fprintln(w, "  (no spans returned — is the contacted node running a pre-telemetry build?)")
	}
}

func parseKey(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q: %w", s, err)
	}
	return v, nil
}
