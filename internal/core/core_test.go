package core_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/chord"
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

// figure2 builds the paper's Figure 2 scenario: two Chord rings A and B in a
// 4-bit space, merged into one Crescendo ring.
//
//	Ring A: 0, 5, 10, 12
//	Ring B: 2, 3, 8, 13
func figure2(t *testing.T) (*core.Network, map[id.ID]int) {
	t.Helper()
	space := id.MustSpace(4)
	tree := hierarchy.NewTree()
	a, err := tree.EnsurePath("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.EnsurePath("B")
	if err != nil {
		t.Fatal(err)
	}
	ids := []id.ID{0, 5, 10, 12, 2, 3, 8, 13}
	leaves := []*hierarchy.Domain{a, a, a, a, b, b, b, b}
	pop, err := core.NewPopulation(space, tree, ids, leaves)
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, chord.NewDeterministic(space), nil)
	byID := make(map[id.ID]int)
	for i := 0; i < pop.Len(); i++ {
		byID[pop.IDOf(i)] = i
	}
	return nw, byID
}

func linkIDs(nw *core.Network, node int) map[id.ID]bool {
	out := make(map[id.ID]bool)
	for _, l := range nw.Links(node) {
		out[nw.Population().IDOf(int(l))] = true
	}
	return out
}

// TestFigure2Links verifies the exact link sets the paper walks through when
// merging rings A and B.
func TestFigure2Links(t *testing.T) {
	nw, byID := figure2(t)
	tests := []struct {
		node id.ID
		want []id.ID
	}{
		// Node 0 keeps ring-A links {5, 10} and gains only node 2 from the
		// merge; node 8 is ruled out by condition (b), and no link to 3.
		{node: 0, want: []id.ID{5, 10, 2}},
		// Node 8 keeps ring-B links {13, 2} and gains 10 and 12; node 0 is
		// ruled out by condition (b).
		{node: 8, want: []id.ID{13, 2, 10, 12}},
		// Node 2's own-ring successor (3) is at distance 1, so condition (b)
		// rules out every inter-ring link.
		{node: 2, want: []id.ID{3, 8, 13}},
	}
	for _, tt := range tests {
		got := linkIDs(nw, byID[tt.node])
		if len(got) != len(tt.want) {
			t.Errorf("node %d links = %v, want %v", tt.node, got, tt.want)
			continue
		}
		for _, w := range tt.want {
			if !got[w] {
				t.Errorf("node %d missing link to %d (links %v)", tt.node, w, got)
			}
		}
	}
}

// TestFigure2Routing verifies the paper's routing walk-through: node 2
// routing to node 12 stays in ring B until node 8 (the closest predecessor
// of 12 in B), then switches to the merged ring.
func TestFigure2Routing(t *testing.T) {
	nw, byID := figure2(t)
	r := nw.RouteToNode(byID[2], byID[12])
	if !r.Success {
		t.Fatal("route 2 -> 12 failed")
	}
	if len(r.Nodes) < 2 || r.Nodes[1] != byID[8] {
		t.Errorf("route 2 -> 12 should pass through 8 first, got path %v", r.Nodes)
	}
	if r.Last() != byID[12] {
		t.Errorf("route should end at 12, ended at node %d", nw.Population().IDOf(r.Last()))
	}
}

func buildRandom(t testing.TB, seed int64, n, levels, fanout int, g func(id.Space) core.Geometry) *core.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := id.DefaultSpace()
	tree, err := hierarchy.Balanced(levels, fanout)
	if err != nil {
		t.Fatal(err)
	}
	leaves := hierarchy.AssignZipf(rng, tree, n, 1.25)
	pop, err := core.RandomPopulation(rng, space, tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return core.Build(pop, g(space), rng)
}

func detChord(s id.Space) core.Geometry { return chord.NewDeterministic(s) }

func TestFlatChordEqualsOneLevelCrescendo(t *testing.T) {
	// Flat Chord is the special case of a one-level hierarchy: the degree of
	// every node must match the classic finger-table construction.
	nw := buildRandom(t, 1, 256, 1, 10, detChord)
	n := nw.Len()
	// Every node must link to its global successor.
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		if !nw.HasLink(i, succ) {
			t.Fatalf("node %d does not link to its successor %d", i, succ)
		}
	}
}

func TestAllPairsRoutingSucceeds(t *testing.T) {
	for _, levels := range []int{1, 2, 3} {
		nw := buildRandom(t, 2, 128, levels, 4, detChord)
		n := nw.Len()
		for from := 0; from < n; from++ {
			for to := 0; to < n; to += 7 {
				r := nw.RouteToNode(from, to)
				if !r.Success || r.Last() != to {
					t.Fatalf("levels=%d: route %d -> %d failed (path %v)", levels, from, to, r.Nodes)
				}
			}
		}
	}
}

func TestRouteToKeyEndsAtOwner(t *testing.T) {
	nw := buildRandom(t, 3, 200, 3, 4, detChord)
	rng := rand.New(rand.NewSource(9))
	space := nw.Population().Space()
	for i := 0; i < 500; i++ {
		from := rng.Intn(nw.Len())
		key := space.Random(rng)
		r := nw.RouteToKey(from, key)
		if !r.Success {
			t.Fatalf("route to key %d from %d did not reach owner (path %v)", key, from, r.Nodes)
		}
		if r.Last() != nw.Population().OwnerOf(key) {
			t.Fatalf("route ended at %d, owner is %d", r.Last(), nw.Population().OwnerOf(key))
		}
	}
}

// TestIntraDomainPathLocality checks the paper's first crucial property:
// the route between two nodes never leaves the lowest domain containing
// both.
func TestIntraDomainPathLocality(t *testing.T) {
	nw := buildRandom(t, 4, 512, 4, 3, detChord)
	pop := nw.Population()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		from := rng.Intn(nw.Len())
		to := rng.Intn(nw.Len())
		lca := hierarchy.LCA(pop.LeafOf(from), pop.LeafOf(to))
		r := nw.RouteToNode(from, to)
		for _, hop := range r.Nodes {
			if !lca.IsAncestorOf(pop.LeafOf(hop)) {
				t.Fatalf("route %d -> %d left domain %q at node %d", from, to, lca.Path(), hop)
			}
		}
	}
}

// TestInterDomainPathConvergence checks the second crucial property: all
// routes from inside a domain D to the same outside destination exit D
// through the proxy node, the closest predecessor of the destination in D.
func TestInterDomainPathConvergence(t *testing.T) {
	nw := buildRandom(t, 5, 512, 3, 4, detChord)
	pop := nw.Population()
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 200; trial++ {
		dst := rng.Intn(nw.Len())
		// Pick a depth-1 domain not containing the destination.
		src := rng.Intn(nw.Len())
		d := pop.LeafOf(src).AncestorAt(1)
		if d.IsAncestorOf(pop.LeafOf(dst)) {
			continue
		}
		ring := nw.RingOf(d)
		if ring == nil || ring.Len() < 2 {
			continue
		}
		proxy := nw.Proxy(d, pop.IDOf(dst))
		// Route from several members of d; the last in-domain node on every
		// path must be the proxy.
		for i := 0; i < 5; i++ {
			from := ring.Member(rng.Intn(ring.Len()))
			r := nw.RouteToNode(from, dst)
			exit := -1
			for _, hop := range r.Nodes {
				if d.IsAncestorOf(pop.LeafOf(hop)) {
					exit = hop
				} else {
					break
				}
			}
			if exit != proxy {
				t.Fatalf("route from %d exits %q at %d, want proxy %d", from, d.Path(), exit, proxy)
			}
		}
	}
}

// TestTheorem1ChordDegree checks E[degree] <= log2(n-1) + 1 for flat Chord.
func TestTheorem1ChordDegree(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		var total float64
		const trials = 3
		for s := int64(0); s < trials; s++ {
			nw := buildRandom(t, 100+s, n, 1, 10, detChord)
			total += nw.AvgDegree()
		}
		avg := total / trials
		bound := math.Log2(float64(n-1)) + 1
		if avg > bound {
			t.Errorf("n=%d: avg chord degree %.3f exceeds theorem bound %.3f", n, avg, bound)
		}
		// Sanity: it should not be wildly below log2(n) - 2 either.
		if avg < math.Log2(float64(n))-2 {
			t.Errorf("n=%d: avg chord degree %.3f implausibly low", n, avg)
		}
	}
}

// TestTheorem2CrescendoDegree checks E[degree] <= log2(n-1) + min(l, log n)
// and the paper's empirical observation that Crescendo's average degree is
// below Chord's.
func TestTheorem2CrescendoDegree(t *testing.T) {
	const n = 1024
	flat := buildRandom(t, 200, n, 1, 10, detChord)
	for _, levels := range []int{2, 3, 4} {
		nw := buildRandom(t, 200, n, levels, 10, detChord)
		avg := nw.AvgDegree()
		bound := math.Log2(float64(n-1)) + math.Min(float64(levels), math.Log2(float64(n)))
		if avg > bound {
			t.Errorf("levels=%d: avg crescendo degree %.3f exceeds bound %.3f", levels, avg, bound)
		}
		if avg > flat.AvgDegree()+0.5 {
			t.Errorf("levels=%d: crescendo degree %.3f should not exceed chord's %.3f", levels, avg, flat.AvgDegree())
		}
	}
}

// TestTheorem4ChordHops checks E[hops] <= 0.5*log2(n-1) + 0.5 for flat Chord.
func TestTheorem4ChordHops(t *testing.T) {
	const n = 1024
	nw := buildRandom(t, 300, n, 1, 10, detChord)
	rng := rand.New(rand.NewSource(12))
	var hops, routes float64
	for i := 0; i < 4000; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		r := nw.RouteToNode(from, to)
		hops += float64(r.Hops())
		routes++
	}
	avg := hops / routes
	bound := 0.5*math.Log2(float64(n-1)) + 0.5
	if avg > bound {
		t.Errorf("avg chord hops %.3f exceeds theorem bound %.3f", avg, bound)
	}
}

// TestTheorem5CrescendoHops checks E[hops] <= log2(n-1) + 1 regardless of
// hierarchy, and the empirical claim that it stays within ~0.7 of Chord.
func TestTheorem5CrescendoHops(t *testing.T) {
	const n = 1024
	measure := func(nw *core.Network, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var hops float64
		const routes = 4000
		for i := 0; i < routes; i++ {
			r := nw.RouteToNode(rng.Intn(n), rng.Intn(n))
			hops += float64(r.Hops())
		}
		return hops / routes
	}
	flatAvg := measure(buildRandom(t, 400, n, 1, 10, detChord), 13)
	for _, levels := range []int{2, 4} {
		nw := buildRandom(t, 400, n, levels, 10, detChord)
		avg := measure(nw, 13)
		if bound := math.Log2(float64(n-1)) + 1; avg > bound {
			t.Errorf("levels=%d: avg hops %.3f exceeds theorem bound %.3f", levels, avg, bound)
		}
		if avg > flatAvg+0.9 {
			t.Errorf("levels=%d: avg hops %.3f too far above flat chord's %.3f", levels, avg, flatAvg)
		}
	}
}

func TestPopulationValidation(t *testing.T) {
	space := id.MustSpace(8)
	tree := hierarchy.NewTree()
	leaf := tree.Root()

	if _, err := core.NewPopulation(space, tree, nil, nil); err == nil {
		t.Error("empty population should error")
	}
	if _, err := core.NewPopulation(space, tree, []id.ID{1, 1}, []*hierarchy.Domain{leaf, leaf}); err == nil {
		t.Error("duplicate IDs should error")
	}
	if _, err := core.NewPopulation(space, tree, []id.ID{1}, []*hierarchy.Domain{leaf, leaf}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := core.NewPopulation(space, tree, []id.ID{300}, []*hierarchy.Domain{leaf}); err == nil {
		t.Error("out-of-space ID should error")
	}
	if _, err := core.NewPopulation(space, tree, []id.ID{1}, []*hierarchy.Domain{nil}); err == nil {
		t.Error("nil leaf should error")
	}
}

func TestOwnerOf(t *testing.T) {
	space := id.MustSpace(4)
	tree := hierarchy.NewTree()
	leaf := tree.Root()
	ids := []id.ID{2, 5, 9}
	pop, err := core.NewPopulation(space, tree, ids, []*hierarchy.Domain{leaf, leaf, leaf})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		key  id.ID
		want id.ID
	}{
		{2, 2}, {3, 2}, {4, 2}, {5, 5}, {8, 5}, {9, 9}, {15, 9}, {0, 9}, {1, 9},
	}
	for _, tt := range tests {
		got := pop.IDOf(pop.OwnerOf(tt.key))
		if got != tt.want {
			t.Errorf("OwnerOf(%d) = node %d, want %d", tt.key, got, tt.want)
		}
	}
}

func TestRingQueries(t *testing.T) {
	space := id.MustSpace(4)
	tree := hierarchy.NewTree()
	leaf := tree.Root()
	ids := []id.ID{2, 5, 9, 14}
	pop, err := core.NewPopulation(space, tree, ids, []*hierarchy.Domain{leaf, leaf, leaf, leaf})
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, chord.NewDeterministic(space), nil)
	r := nw.RingOf(tree.Root())
	if r.Len() != 4 {
		t.Fatalf("ring len = %d", r.Len())
	}
	if got := pop.IDOf(r.Successor(10)); got != 14 {
		t.Errorf("Successor(10) = %d, want 14", got)
	}
	if got := pop.IDOf(r.Owner(10)); got != 9 {
		t.Errorf("Owner(10) = %d, want 9", got)
	}
	if got := pop.IDOf(r.Owner(1)); got != 14 {
		t.Errorf("Owner(1) = %d, want 14 (wrap)", got)
	}
	// CountInArc from node 2: distances are 5->3, 9->7, 14->12.
	tests := []struct {
		lo, hi uint64
		want   int
	}{
		{1, 16, 3},
		{3, 4, 1},
		{4, 8, 1},
		{3, 13, 3},
		{8, 12, 0},
		{13, 16, 0},
	}
	for _, tt := range tests {
		got, _ := r.CountInArc(2, tt.lo, tt.hi)
		if got != tt.want {
			t.Errorf("CountInArc(2,%d,%d) = %d, want %d", tt.lo, tt.hi, got, tt.want)
		}
	}
	// XOR closest.
	if got := pop.IDOf(r.Member(r.XORClosestPos(4))); got != 5 {
		t.Errorf("XORClosest(4) = %d, want 5", got)
	}
	if got := pop.IDOf(r.Member(r.XORClosestPos(14))); got != 14 {
		t.Errorf("XORClosest(14) = %d, want 14", got)
	}
	// Unique prefix lengths: ids are 0010, 0101, 1001, 1110.
	wantPlen := []uint{2, 2, 2, 2}
	for pos, want := range wantPlen {
		if got := r.UniquePrefixLen(pos); got != want {
			t.Errorf("UniquePrefixLen(pos %d) = %d, want %d", pos, got, want)
		}
	}
}

func TestPathDomains(t *testing.T) {
	nw, byID := figure2(t)
	r := nw.RouteToNode(byID[2], byID[12])
	depths := nw.PathDomains(r)
	if len(depths) != r.Hops() {
		t.Fatalf("PathDomains length %d, want %d", len(depths), r.Hops())
	}
	// Path 2 -> 8 stays in B (LCA depth 1); 8 -> 12 crosses to A (depth 0).
	if depths[0] != 1 {
		t.Errorf("first hop LCA depth = %d, want 1", depths[0])
	}
	if depths[len(depths)-1] != 0 {
		t.Errorf("last hop LCA depth = %d, want 0", depths[len(depths)-1])
	}
}

func TestAccessors(t *testing.T) {
	nw, byID := figure2(t)
	pop := nw.Population()

	// Population accessors.
	if got := pop.Node(0); got.Index != 0 || got.ID != pop.IDOf(0) {
		t.Errorf("Node(0) = %+v", got)
	}
	ids := pop.IDs()
	if len(ids) != pop.Len() || ids[0] != pop.IDOf(0) {
		t.Errorf("IDs() inconsistent")
	}
	// SuccessorOf: first node with ID >= key.
	if got := pop.IDOf(pop.SuccessorOf(4)); got != 5 {
		t.Errorf("SuccessorOf(4) = %d, want node 5", got)
	}
	if got := pop.IDOf(pop.SuccessorOf(14)); got != 0 {
		t.Errorf("SuccessorOf(14) = %d, want wrap to node 0", got)
	}
	// Ring accessors.
	ring := nw.RingOf(pop.Tree().Root())
	if ring.Domain() != pop.Tree().Root() {
		t.Error("Ring.Domain mismatch")
	}
	if ring.Space().Bits() != 4 {
		t.Errorf("Ring.Space bits = %d", ring.Space().Bits())
	}
	if !ring.Contains(8) || ring.Contains(9) {
		t.Error("Ring.Contains wrong")
	}
	if got := ring.IDAt(ring.PosOf(8)); got != 8 {
		t.Errorf("PosOf/IDAt roundtrip = %d", got)
	}
	// Network accessors.
	if nw.Geometry().Name() != "chord" {
		t.Errorf("Geometry() = %q", nw.Geometry().Name())
	}
	_ = byID
}

func TestCompleteGeometryDirect(t *testing.T) {
	space := id.MustSpace(6)
	g := core.NewCompleteGeometry(space)
	if g.Name() != "complete" || g.Metric() != core.MetricClockwise {
		t.Error("metadata wrong")
	}
	if g.Distance(5, 2) != space.Clockwise(5, 2) {
		t.Error("Distance wrong")
	}
	// Used directly (not composed) on a 2-level hierarchy: merges fall back
	// to the Chord rule, so routing still works.
	tree, err := hierarchy.Balanced(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	leaves := hierarchy.AssignUniform(rng, tree, 48)
	pop, err := core.RandomPopulation(rng, id.DefaultSpace(), tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, core.NewCompleteGeometry(id.DefaultSpace()), rng)
	for i := 0; i < 300; i++ {
		from, to := rng.Intn(48), rng.Intn(48)
		r := nw.RouteToNode(from, to)
		if !r.Success || r.Last() != to {
			t.Fatalf("route %d -> %d failed", from, to)
		}
	}
}

func TestCompositeDelegation(t *testing.T) {
	space := id.DefaultSpace()
	g := core.Compose(core.NewCompleteGeometry(space), chord.NewDeterministic(space))
	if g.Distance(9, 4) != space.Clockwise(9, 4) {
		t.Error("composite Distance should come from the upper geometry")
	}
}
