package fsyncbeforeack

// ackAfterSync is the contract done right: barrier, then ack.
func (n *node) ackAfterSync() (Message, error) {
	n.st.put(10)
	if err := n.st.Sync(); err != nil {
		return Message{}, err
	}
	return NewMessage(msgStore, nil)
}

// ackAfterHelperSync reaches the barrier through a helper: the ReachesSync
// summary propagates over call edges, so flushAll counts.
func (n *node) ackAfterHelperSync() (Message, error) {
	n.st.put(11)
	if err := n.flushAll(); err != nil {
		return Message{}, err
	}
	return NewMessage(msgStoreV2, nil)
}

func (n *node) flushAll() error { return n.st.Sync() }

// ackAfterDeferredSync relies on a deferred barrier: handler defers run
// before the reply goes to the wire, so this is durable too.
func (n *node) ackAfterDeferredSync() (Message, error) {
	defer n.st.Sync()
	n.st.put(12)
	return NewMessage(msgStore, nil)
}

// pingReply is not a store ack: no durability promise, no barrier needed.
func (n *node) pingReply() (Message, error) {
	return NewMessage(msgPing, nil)
}

// storeRequest carries a body, so it is a request, not an ack.
func (n *node) storeRequest() (Message, error) {
	return NewMessage(msgStore, struct{ K uint64 }{13})
}
