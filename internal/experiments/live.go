package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/canon-dht/canon/internal/metrics"
	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// Live measures the wire protocol itself (Section 2.3 made real): in-process
// clusters of live Crescendo nodes over the in-memory bus, reporting average
// lookup forwarding hops versus log2(n) and the number of maintenance
// messages a stabilization round costs per node. Unlike the analytical
// experiments, every number here comes from counted RPCs.
func Live(cfg Config, sizes []int, levelsPath string) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &metrics.Table{
		Title:  "Live protocol: lookup hops and maintenance traffic",
		XLabel: "nodes",
	}
	hopsSeries := &metrics.Series{Name: "lookup hops"}
	perLog := &metrics.Series{Name: "hops / log2 n"}
	maint := &metrics.Series{Name: "messages per stabilize round per node"}

	for _, n := range sizes {
		h, m, err := liveAt(cfg, n, levelsPath)
		if err != nil {
			return nil, err
		}
		hopsSeries.Append(float64(n), h)
		perLog.Append(float64(n), h/log2f(n))
		maint.Append(float64(n), m)
	}
	tbl.AddSeries(hopsSeries)
	tbl.AddSeries(perLog)
	tbl.AddSeries(maint)
	tbl.AddNote("in-process cluster over the in-memory bus; every number is a counted RPC")
	return tbl, nil
}

func liveAt(cfg Config, n int, levelsPath string) (avgHopCount, maintPerNode float64, err error) {
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := context.Background()

	nodes := make([]*netnode.Node, 0, n)
	defer func() {
		for _, node := range nodes {
			_ = node.Close()
		}
	}()
	for i := 0; i < n; i++ {
		node, nerr := netnode.New(netnode.Config{
			Name:      levelsPath,
			RandomID:  true,
			Rand:      rng,
			Transport: bus.Endpoint(fmt.Sprintf("live-%d-%d", n, i)),
			Geometry:  cfg.Geometry,
		})
		if nerr != nil {
			return 0, 0, nerr
		}
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if jerr := node.Join(ctx, contact); jerr != nil {
			return 0, 0, fmt.Errorf("join node %d: %w", i, jerr)
		}
		nodes = append(nodes, node)
		// Periodic settling keeps join lookups accurate as the ring grows.
		if i%8 == 7 {
			for _, nd := range nodes {
				nd.StabilizeOnce(ctx)
			}
		}
	}
	for r := 0; r < 6; r++ {
		for _, nd := range nodes {
			nd.StabilizeOnce(ctx)
		}
		for _, nd := range nodes {
			nd.FixFingers(ctx)
		}
	}

	// Measure lookups.
	var hops metrics.Stream
	for i := 0; i < cfg.RoutePairs; i++ {
		from := nodes[rng.Intn(len(nodes))]
		key := uint64(rng.Uint32())
		if _, h, lerr := from.LookupHops(ctx, key, ""); lerr == nil {
			hops.Add(float64(h))
		}
	}

	// Measure one more stabilization round's traffic.
	var before, after int64
	for _, nd := range nodes {
		for _, v := range nd.Stats().Sent {
			before += v
		}
	}
	for _, nd := range nodes {
		nd.StabilizeOnce(ctx)
	}
	for _, nd := range nodes {
		for _, v := range nd.Stats().Sent {
			after += v
		}
	}
	return hops.Mean(), float64(after-before) / float64(n), nil
}
