package lint

import (
	"fmt"
	"sort"
)

// atomicmix: a struct field (or package-level var) accessed through
// sync/atomic anywhere and through a plain load/store anywhere else is a
// data race unless every access site holds a common mutex class from the
// lock lattice — the atomic half synchronizes only with other atomics.
// Access sites are collected by the graph walker (callgraph.go:
// noteAtomicCall / notePlainAccess), identified by declaration site like
// lock classes, and carry the lexically held lock set, so "modulo a held
// common mutex class" is an intersection over the sites. _test.go sites are
// excluded: tests routinely poke counters single-threaded.

var checkAtomicMix = Check{
	Name: "atomicmix",
	Doc:  "struct fields accessed both through sync/atomic and by plain loads/stores with no common mutex held",
	RunModule: func(mp *ModulePass) {
		type group struct {
			atomic, plain []fieldAccess
		}
		groups := make(map[LockClass]*group)
		var order []LockClass
		for _, a := range mp.Graph.accesses {
			if a.InTest {
				continue
			}
			g, ok := groups[a.Class]
			if !ok {
				g = &group{}
				groups[a.Class] = g
				order = append(order, a.Class)
			}
			if a.Atomic {
				g.atomic = append(g.atomic, a)
			} else {
				g.plain = append(g.plain, a)
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
		for _, class := range order {
			g := groups[class]
			if len(g.atomic) == 0 || len(g.plain) == 0 {
				continue
			}
			if commonHeld(append(append([]fieldAccess(nil), g.atomic...), g.plain...)) {
				continue
			}
			sort.Slice(g.atomic, func(i, j int) bool { return g.atomic[i].Pos < g.atomic[j].Pos })
			sort.Slice(g.plain, func(i, j int) bool { return g.plain[i].Pos < g.plain[j].Pos })
			at, pl := g.atomic[0], g.plain[0]
			chain := []string{
				mp.Graph.evidence(fmt.Sprintf("atomic access in %s", at.Fn.Name), at.Pos),
				mp.Graph.evidence(fmt.Sprintf("plain access in %s", pl.Fn.Name), pl.Pos),
			}
			mp.Report(pl.Pos, chain,
				"field %s is accessed both through sync/atomic and by plain load/store with no common mutex class held across the sites",
				class)
		}
	},
}

// commonHeld reports whether some named lock class is held at every one of
// the given access sites.
func commonHeld(sites []fieldAccess) bool {
	if len(sites) == 0 {
		return false
	}
	common := make(map[LockClass]bool)
	for _, h := range sites[0].Held {
		if h.Class.Named() {
			common[h.Class] = true
		}
	}
	for _, s := range sites[1:] {
		if len(common) == 0 {
			return false
		}
		here := make(map[LockClass]bool)
		for _, h := range s.Held {
			if h.Class.Named() && common[h.Class] {
				here[h.Class] = true
			}
		}
		common = here
	}
	return len(common) > 0
}
