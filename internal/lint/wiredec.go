package lint

// wiredec.go is the decoder half of the v4 symbolic engine. Decoders in
// this codebase pull from a latching strict reader (binReader), so the
// interpreter's job is different from the encoder's: classify each reader
// method once by its signature and the encoding/binary primitives in its
// body (u64, uvarint, varint, string, optbytes, slice header, bool), then
// walk the decoder body emitting one field per read in stream order.
// Helper decoders (readSpan-style value builders, readSpans-style slice
// builders, readFrom-style struct fillers) are interpreted once and their
// summaries spliced or referenced at call sites. The envelope decoder —
// which reads a raw byte slice through a closure instead of a reader — has
// its own small interpreter at the bottom of the file.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ---- reader-method classification ----

// readerKind classifies a reader method by the value it decodes; "" means
// the method is not a recognized read primitive.
func (x *wirePkg) readerKind(fn types.Object) string {
	if k, ok := x.readerKinds[fn]; ok {
		return k
	}
	x.readerKinds[fn] = "" // cycle guard
	k := x.classifyReader(fn)
	x.readerKinds[fn] = k
	return k
}

func (x *wirePkg) classifyReader(fn types.Object) string {
	decl := x.decls[fn]
	if decl == nil || decl.Recv == nil || decl.Body == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	res := sig.Results()
	switch res.Len() {
	case 0:
		return "noop"
	case 1:
		t := res.At(0).Type()
		if isErrorType(t) {
			return "done"
		}
		if isByteSlice(t) {
			// optBytes-style readers decrement the count (the nil/present
			// scheme); a plain length-prefixed reader does not.
			if bodyHasDec(decl.Body) {
				return wireEncOpt
			}
			return wireEncBytes
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return ""
		}
		prims := bodyPrims(x.info, decl.Body)
		switch {
		case b.Info()&types.IsString != 0:
			return wireEncString
		case b.Kind() == types.Bool:
			return wireEncBool
		case b.Kind() == types.Int64 && prims["Varint"]:
			return wireEncVarint
		case prims["Uvarint"]:
			return wireEncUvarint
		case prims["Varint"]:
			return wireEncVarint
		case prims["Uint64"]:
			return wireEncU64
		case prims["Uint32"]:
			return wireEncU32
		case prims["Uint16"]:
			return wireEncU16
		}
		return ""
	case 2:
		b0, ok0 := res.At(0).Type().Underlying().(*types.Basic)
		b1, ok1 := res.At(1).Type().Underlying().(*types.Basic)
		if ok0 && ok1 && b0.Info()&types.IsInteger != 0 && b1.Kind() == types.Bool {
			return "sliceheader"
		}
	}
	return ""
}

// bodyPrims records which encoding/binary decode primitives a body calls.
func bodyPrims(info *types.Info, body *ast.BlockStmt) map[string]bool {
	prims := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Uvarint", "Varint", "Uint64", "Uint32", "Uint16", "ReadUvarint":
				prims[sel.Sel.Name] = true
				if sel.Sel.Name == "ReadUvarint" {
					prims["Uvarint"] = true
				}
			}
		}
		return true
	})
	return prims
}

func bodyHasDec(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inc, ok := n.(*ast.IncDecStmt); ok && inc.Tok == token.DEC {
			has = true
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.SUB {
			has = true
		}
		return !has
	})
	return has
}

// ---- decoder interpretation ----

// decInterp walks one decoder body, emitting fields in read order.
type decInterp struct {
	x      *wirePkg
	reader types.Object // the strict-reader local
	root   types.Object // receiver being filled (nil in value helpers)
	accum  types.Object // local struct accumulator (value helpers)
	fields []*WireField // emission sink (swapped during loop bodies)

	counts  map[types.Object]token.Pos  // slice-count locals from slice headers
	present map[types.Object]bool       // presence locals from slice headers
	flagsAt map[types.Object]*WireField // flag-byte locals -> their emitted field
	locals  map[types.Object]*WireField // locals holding decoded values
	result  *WireField                  // what a value/slice helper returns

	sliceName string // destination name for the pending slice field
	curCond   string // active flag condition
	inLoop    bool
	notes     *[]wireNote
	depth     int
}

func (x *wirePkg) newDecInterp(notes *[]wireNote, depth int) *decInterp {
	return &decInterp{
		x:       x,
		counts:  make(map[types.Object]token.Pos),
		present: make(map[types.Object]bool),
		flagsAt: make(map[types.Object]*WireField),
		locals:  make(map[types.Object]*WireField),
		notes:   notes,
		depth:   depth,
	}
}

// interpDecoder interprets an UnmarshalBinary-style method body.
func (x *wirePkg) interpDecoder(decl *ast.FuncDecl) ([]*WireField, []wireNote) {
	var notes []wireNote
	d := x.newDecInterp(&notes, 0)
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		d.root = x.info.Defs[decl.Recv.List[0].Names[0]]
	}
	d.stmts(decl.Body.List)
	return d.fields, notes
}

func (d *decInterp) note(pos token.Pos, msg string) {
	*d.notes = append(*d.notes, wireNote{pos, msg})
}

func (d *decInterp) emit(f *WireField) {
	if d.curCond != "" && f.Cond == "" {
		f.Cond = d.curCond
	}
	d.fields = append(d.fields, f)
}

func (d *decInterp) stmts(list []ast.Stmt) {
	for _, s := range list {
		d.stmt(s)
	}
}

func (d *decInterp) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		d.stmts(s.List)
	case *ast.DeclStmt:
		d.declStmt(s)
	case *ast.AssignStmt:
		d.assign(s)
	case *ast.ExprStmt:
		d.exprStmt(s)
	case *ast.IfStmt:
		d.ifStmt(s)
	case *ast.ForStmt:
		d.forStmt(s)
	case *ast.IncDecStmt:
		// r.off++ and friends: reader-internal bookkeeping.
	case *ast.ReturnStmt:
		d.returnStmt(s)
	default:
		if d.mentionsReader(s) {
			d.note(s.Pos(), "unsupported statement reads from the wire")
		}
	}
}

// declStmt registers `var s T` struct accumulators and loop element vars.
func (d *decInterp) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) > 0 {
			continue
		}
		for _, name := range vs.Names {
			obj := d.x.info.Defs[name]
			if obj == nil || namedOf(obj.Type()) == nil {
				continue
			}
			if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
				continue
			}
			if d.inLoop {
				d.locals[obj] = nil // loop element var, filled by readFrom
			} else if d.root == nil && d.accum == nil {
				d.accum = obj
			}
		}
	}
}

func (d *decInterp) assign(s *ast.AssignStmt) {
	// r := &binReader{data: data}
	if s.Tok == token.DEFINE && len(s.Lhs) == 1 && len(s.Rhs) == 1 && d.reader == nil {
		if un, ok := unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
			if _, isLit := un.X.(*ast.CompositeLit); isLit {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					d.reader = d.x.info.Defs[id]
					return
				}
			}
		}
	}
	// n, present := r.sliceLen()
	if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if callee := d.x.calleeOf(call); callee != nil &&
				d.readerField(call.Fun) && d.x.readerKind(callee) == "sliceheader" {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if obj := objOfInfo(d.x.info, id); obj != nil {
						d.counts[obj] = call.Pos()
					}
				}
				if id, ok := s.Lhs[1].(*ast.Ident); ok {
					if obj := objOfInfo(d.x.info, id); obj != nil {
						d.present[obj] = true
					}
				}
				return
			}
		}
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		if d.mentionsReader(s) {
			d.note(s.Pos(), "unsupported multi-assignment reads from the wire")
		}
		return
	}
	lhs, rhs := s.Lhs[0], unparen(s.Rhs[0])

	// flags := r.data[r.off]  (a raw flag byte peeked off the stream)
	if s.Tok == token.DEFINE {
		if idx, ok := rhs.(*ast.IndexExpr); ok && d.readerField(idx.X) {
			if id, ok := lhs.(*ast.Ident); ok {
				f := &WireField{Name: id.Name, Enc: wireEncFlags, Bits: []*WireBit{}}
				d.emit(f)
				if obj := d.x.info.Defs[id]; obj != nil {
					d.flagsAt[obj] = f
				}
				return
			}
		}
	}

	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		baseObj := d.exprObj(lhs.X)
		if baseObj != nil && (baseObj == d.root || baseObj == d.accum) {
			d.fieldAssign(lhs.Sel.Name, rhs, s.Pos())
			return
		}
		if d.readerField(lhs) || d.readerField(lhs.X) {
			return // r.off = ..., r.err = ...: reader internals
		}
		if d.mentionsReader(s) {
			d.note(s.Pos(), "wire read assigned outside the decoded message")
		}
	case *ast.Ident:
		obj := objOfInfo(d.x.info, lhs)
		if obj == nil {
			return
		}
		// X = append(X, elem) is only meaningful inside a counted loop.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(d.x.info, call, "append") {
			d.note(s.Pos(), "append outside a counted decode loop")
			return
		}
		if isMakeCall(d.x.info, rhs) {
			d.locals[obj] = &WireField{Enc: wireEncSlice}
			return
		}
		if f := d.readField(rhs); f != nil {
			f.Name = lhs.Name
			d.locals[obj] = f
			return
		}
		if d.mentionsReader(s) {
			d.note(s.Pos(), "unrecognized wire read")
		}
	default:
		if d.mentionsReader(s) {
			d.note(s.Pos(), "unsupported assignment reads from the wire")
		}
	}
}

// fieldAssign handles `root.F = rhs` / `accum.F = rhs`.
func (d *decInterp) fieldAssign(name string, rhs ast.Expr, pos token.Pos) {
	if isNilIdent(rhs) {
		d.sliceName = name // the nil arm of a slice decode
		return
	}
	if isMakeCall(d.x.info, rhs) {
		d.sliceName = name // pre-allocation before the counted loop
		return
	}
	// s.X = flags&C != 0 : a bit extracted from a flags byte.
	if mask, bit, flagsField := d.flagTest(rhs); flagsField != nil {
		addBit(&flagsField.Bits, mask, bit)
		return
	}
	if f := d.readField(rhs); f != nil {
		f.Name = name
		d.emit(f)
		return
	}
	if d.mentionsReaderExpr(rhs) {
		d.note(pos, "unrecognized wire read into field "+name)
	}
}

// flagTest matches `flags&C != 0` against a tracked flags local.
func (d *decInterp) flagTest(rhs ast.Expr) (uint64, string, *WireField) {
	be, ok := unparen(rhs).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ || !isZeroLit(d.x.info, be.Y) {
		return 0, "", nil
	}
	and, ok := unparen(be.X).(*ast.BinaryExpr)
	if !ok || and.Op != token.AND {
		return 0, "", nil
	}
	id, ok := unparen(and.X).(*ast.Ident)
	if !ok {
		return 0, "", nil
	}
	f := d.flagsAt[objOfInfo(d.x.info, id)]
	if f == nil {
		return 0, "", nil
	}
	mask, name, ok := d.x.constBit(and.Y)
	if !ok {
		return 0, "", nil
	}
	return mask, name, f
}

// readField resolves an expression that produces a decoded value.
func (d *decInterp) readField(expr ast.Expr) *WireField {
	expr = unparen(expr)
	// Unwrap conversions: int(r.varint()).
	if call, ok := expr.(*ast.CallExpr); ok {
		if tv, ok := d.x.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return d.readField(call.Args[0])
		}
	}
	switch expr := expr.(type) {
	case *ast.CallExpr:
		callee := d.x.calleeOf(expr)
		if callee == nil {
			return nil
		}
		if d.readerField(expr.Fun) {
			switch k := d.x.readerKind(callee); k {
			case "sliceheader", "done", "noop", "":
				return nil
			default:
				return &WireField{Enc: k}
			}
		}
		// Free helper with a reader argument: readSpan(r), readSpans(r)...
		if decl := d.x.decls[callee]; decl != nil && decl.Recv == nil && d.callPassesReader(expr) {
			if sum := d.x.decHelperResult(callee, decl, d.depth); sum != nil {
				return cloneField(sum)
			}
		}
		return nil
	case *ast.Ident:
		if f := d.locals[objOfInfo(d.x.info, expr)]; f != nil {
			return f
		}
		return nil
	case *ast.IndexExpr:
		if d.readerField(expr.X) {
			return &WireField{Enc: wireEncU8}
		}
		return nil
	default:
		return nil
	}
}

// callPassesReader reports whether any argument is the reader local.
func (d *decInterp) callPassesReader(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if id, ok := unparen(arg).(*ast.Ident); ok && objOfInfo(d.x.info, id) == d.reader && d.reader != nil {
			return true
		}
	}
	return false
}

// exprStmt handles readFrom-style struct fills and reader bookkeeping calls.
func (d *decInterp) exprStmt(s *ast.ExprStmt) {
	call, ok := unparen(s.X).(*ast.CallExpr)
	if !ok {
		if d.mentionsReader(s) {
			d.note(s.Pos(), "unsupported expression reads from the wire")
		}
		return
	}
	callee := d.x.calleeOf(call)
	if callee == nil {
		if d.mentionsReader(s) {
			d.note(s.Pos(), "unresolved call reads from the wire")
		}
		return
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if isSel && d.readerField(call.Fun) {
		return // r.fail(...), r.done() as a statement: reader bookkeeping
	}
	decl := d.x.decls[callee]
	if isSel && decl != nil && decl.Recv != nil && d.callPassesReader(call) {
		sum := d.x.decMethodSummary(callee, decl, d.depth)
		if sum == nil {
			d.note(s.Pos(), "cannot interpret the structure decoder "+callee.Name())
			return
		}
		switch recv := unparen(sel.X).(type) {
		case *ast.Ident:
			obj := objOfInfo(d.x.info, recv)
			if obj == d.root && d.root != nil {
				// q.readFrom(r): the message decodes through its helper.
				for _, f := range sum.fields {
					d.emit(cloneField(f))
				}
				return
			}
			if _, isElem := d.locals[obj]; isElem {
				d.locals[obj] = &WireField{Enc: wireEncStruct, Ref: sum.ref, Elem: cloneFields(sum.fields)}
				return
			}
		case *ast.SelectorExpr:
			baseObj := d.exprObj(recv.X)
			if baseObj != nil && (baseObj == d.root || baseObj == d.accum) {
				d.emit(&WireField{
					Name: recv.Sel.Name, Enc: wireEncStruct, Ref: sum.ref, Elem: cloneFields(sum.fields),
				})
				return
			}
		}
	}
	if d.mentionsReader(s) {
		d.note(s.Pos(), "unrecognized call reads from the wire")
	}
}

func (d *decInterp) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		d.stmt(s.Init)
	}
	cond := unparen(s.Cond)

	// if !present { dst = nil; return ... } : the slice nil arm.
	if un, ok := cond.(*ast.UnaryExpr); ok && un.Op == token.NOT {
		if id, ok := unparen(un.X).(*ast.Ident); ok && d.present[objOfInfo(d.x.info, id)] {
			for _, st := range s.Body.List {
				if as, ok := st.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 && isNilIdent(as.Rhs[0]) {
					if sel, ok := as.Lhs[0].(*ast.SelectorExpr); ok {
						d.sliceName = sel.Sel.Name
					}
				}
			}
			return
		}
	}

	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op == token.NEQ && isZeroLit(d.x.info, be.Y) {
		// if flags&^(A|B) != 0 { fail } : a validity mask defining the bits.
		if andnot, ok := unparen(be.X).(*ast.BinaryExpr); ok && andnot.Op == token.AND_NOT {
			if id, ok := unparen(andnot.X).(*ast.Ident); ok {
				if f := d.flagsAt[objOfInfo(d.x.info, id)]; f != nil {
					for _, bit := range d.x.collectBits(andnot.Y) {
						addBit(&f.Bits, bit.Mask, bit.Name)
					}
					return
				}
			}
		}
		// if flags&C != 0 { conditional reads } : a flag-gated field group.
		if and, ok := unparen(be.X).(*ast.BinaryExpr); ok && and.Op == token.AND {
			if id, ok := unparen(and.X).(*ast.Ident); ok {
				if f := d.flagsAt[objOfInfo(d.x.info, id)]; f != nil {
					if mask, name, ok := d.x.constBit(and.Y); ok {
						addBit(&f.Bits, mask, name)
						saved := d.curCond
						d.curCond = name
						d.stmts(s.Body.List)
						d.curCond = saved
						return
					}
				}
			}
		}
	}

	// Reader-state guards (r.err == nil && r.off < len(r.data)): interpret
	// both arms; reads happen in the success arm, failure arms only fail.
	before := len(d.fields)
	d.stmts(s.Body.List)
	switch el := s.Else.(type) {
	case *ast.BlockStmt:
		d.stmts(el.List)
	case *ast.IfStmt:
		d.stmt(el)
	}
	if len(d.fields) > before && !d.condMentionsReader(cond) {
		d.note(s.Pos(), "conditional wire read with an unrecognized condition")
	}
}

// condMentionsReader reports whether a condition inspects reader state,
// which marks it as a bounds/error guard rather than a layout branch.
func (d *decInterp) condMentionsReader(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && d.reader != nil && objOfInfo(d.x.info, id) == d.reader {
			found = true
		}
		return !found
	})
	return found
}

// forStmt interprets a counted decode loop.
func (d *decInterp) forStmt(s *ast.ForStmt) {
	countObj := d.loopCount(s.Cond)
	if countObj == nil {
		if d.mentionsReader(s) {
			d.note(s.Pos(), "loop reads from the wire without a recognized count bound")
		}
		return
	}
	saved, savedLoop := d.fields, d.inLoop
	d.fields, d.inLoop = nil, true

	var elem *WireField
	var targetSel string
	var targetLocal *WireField
	for _, st := range s.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if call, isCall := unparen(as.Rhs[0]).(*ast.CallExpr); isCall && isBuiltinCall(d.x.info, call, "append") && len(call.Args) == 2 {
				switch lhs := as.Lhs[0].(type) {
				case *ast.SelectorExpr:
					targetSel = lhs.Sel.Name
				case *ast.Ident:
					targetLocal = d.locals[objOfInfo(d.x.info, lhs)]
				}
				elemExpr := unparen(call.Args[1])
				if id, isID := elemExpr.(*ast.Ident); isID {
					elem = d.locals[objOfInfo(d.x.info, id)]
				} else {
					elem = d.readField(elemExpr)
				}
				if elem == nil {
					d.note(st.Pos(), "unrecognized element read in decode loop")
				}
				continue
			}
		}
		d.stmt(st)
	}
	loopEmitted := d.fields
	d.fields, d.inLoop = saved, savedLoop

	if elem == nil && len(loopEmitted) > 0 {
		// Loop body decoded straight into fields (no append): not modeled.
		d.note(s.Pos(), "decode loop writes fields without appending to a slice")
		return
	}
	if elem == nil {
		return
	}
	slice := &WireField{Enc: wireEncSlice, Name: targetSel}
	if slice.Name == "" {
		slice.Name = d.sliceName
	}
	if elem.Enc == wireEncStruct {
		slice.Ref = elem.Ref
		slice.Elem = elem.Elem
	} else {
		slice.Elem = []*WireField{elem}
	}
	d.sliceName = ""
	if targetLocal != nil {
		*targetLocal = *slice
		return
	}
	d.emit(slice)
}

// loopCount extracts the count local bounding `for j := 0; j < n && ...`.
func (d *decInterp) loopCount(cond ast.Expr) types.Object {
	var found types.Object
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.LSS {
			return true
		}
		if id, ok := unparen(be.Y).(*ast.Ident); ok {
			if obj := objOfInfo(d.x.info, id); obj != nil {
				if _, isCount := d.counts[obj]; isCount {
					found = obj
				}
			}
		}
		return found == nil
	})
	return found
}

func (d *decInterp) returnStmt(s *ast.ReturnStmt) {
	for _, res := range s.Results {
		id, ok := unparen(res).(*ast.Ident)
		if !ok {
			continue
		}
		obj := objOfInfo(d.x.info, id)
		if obj == nil {
			continue
		}
		if obj == d.accum && d.accum != nil {
			named := namedOf(obj.Type())
			d.result = &WireField{Enc: wireEncStruct, Elem: d.fields}
			if named != nil {
				d.result.Ref = named.Obj().Name()
			}
			return
		}
		if f := d.locals[obj]; f != nil {
			d.result = f
			return
		}
	}
}

// ---- helper summaries ----

// decMethodSummary interprets (once) a readFrom-style struct-filling method.
func (x *wirePkg) decMethodSummary(callee types.Object, decl *ast.FuncDecl, depth int) *wireStructSummary {
	if sum, ok := x.decCache[callee]; ok {
		return sum
	}
	x.decCache[callee] = nil // cycle guard
	if depth > 16 {
		return nil
	}
	var named *types.Named
	if len(decl.Recv.List[0].Names) == 1 {
		if obj := x.info.Defs[decl.Recv.List[0].Names[0]]; obj != nil {
			named = namedOf(obj.Type())
		}
	}
	if named == nil {
		return nil
	}
	var notes []wireNote
	d := x.newDecInterp(&notes, depth+1)
	if len(decl.Recv.List[0].Names) == 1 {
		d.root = x.info.Defs[decl.Recv.List[0].Names[0]]
	}
	d.reader = readerParam(x.info, decl)
	d.stmts(decl.Body.List)
	sum := &wireStructSummary{
		ref:    named.Obj().Name(),
		spath:  x.structPath(named),
		fields: d.fields,
		pos:    decl.Pos(),
		notes:  notes,
	}
	x.decCache[callee] = sum
	x.addStructEntry(sum, false)
	return sum
}

// decHelperResult interprets (once) a free helper decoder and returns the
// field it produces: a struct for value builders, a slice for slice
// builders.
func (x *wirePkg) decHelperResult(callee types.Object, decl *ast.FuncDecl, depth int) *WireField {
	if sum, ok := x.decCache[callee]; ok {
		if sum == nil || len(sum.notes) > 0 {
			return nil
		}
		return sum.result()
	}
	x.decCache[callee] = nil // cycle guard
	if depth > 16 {
		return nil
	}
	var notes []wireNote
	d := x.newDecInterp(&notes, depth+1)
	d.reader = readerParam(x.info, decl)
	d.stmts(decl.Body.List)
	if d.result == nil {
		notes = append(notes, wireNote{decl.Pos(), "helper decoder returns no recognized value"})
	}
	sum := &wireStructSummary{pos: decl.Pos(), notes: notes, resultField: d.result}
	if d.result != nil && d.result.Enc == wireEncStruct && d.accum != nil {
		if named := namedOf(d.accum.Type()); named != nil {
			sum.ref = named.Obj().Name()
			sum.spath = x.structPath(named)
			sum.fields = d.result.Elem
			x.addStructEntry(sum, false)
		}
	}
	x.decCache[callee] = sum
	if len(notes) > 0 {
		return nil
	}
	return sum.result()
}

// readerParam finds a decl's strict-reader parameter (a pointer to a named
// struct that is not the message itself).
func readerParam(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Type.Params == nil {
		return nil
	}
	for _, fl := range decl.Type.Params.List {
		for _, name := range fl.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if _, isPtr := obj.Type().(*types.Pointer); isPtr && namedOf(obj.Type()) != nil {
				return obj
			}
		}
	}
	return nil
}

// ---- shared object/expression helpers ----

func objOfInfo(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// exprObj resolves a plain identifier expression to its object.
func (d *decInterp) exprObj(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return objOfInfo(d.x.info, id)
}

// readerField reports whether e is a selector on the reader local (r.data,
// r.off, r.err).
func (d *decInterp) readerField(e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || d.reader == nil {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	return ok && objOfInfo(d.x.info, id) == d.reader
}

func (d *decInterp) mentionsReader(s ast.Stmt) bool {
	if d.reader == nil {
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOfInfo(d.x.info, id) == d.reader {
			found = true
		}
		return !found
	})
	return found
}

func (d *decInterp) mentionsReaderExpr(e ast.Expr) bool {
	if d.reader == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOfInfo(d.x.info, id) == d.reader {
			found = true
		}
		return !found
	})
	return found
}

// collectBits gathers the named constant bits of an OR expression
// (spanFlagRouteAround|spanFlagOwner).
func (x *wirePkg) collectBits(e ast.Expr) []*WireBit {
	var out []*WireBit
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = unparen(e)
		if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.OR {
			walk(be.X)
			walk(be.Y)
			return
		}
		if mask, name, ok := x.constBit(e); ok {
			out = append(out, &WireBit{Mask: mask, Name: name})
		}
	}
	walk(e)
	return out
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isMakeCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	return ok && isBuiltinCall(info, call, "make")
}

func cloneField(f *WireField) *WireField {
	if f == nil {
		return nil
	}
	c := *f
	c.Bits = append([]*WireBit(nil), f.Bits...)
	c.Elem = cloneFields(f.Elem)
	return &c
}

func cloneFields(fields []*WireField) []*WireField {
	if fields == nil {
		return nil
	}
	out := make([]*WireField, len(fields))
	for i, f := range fields {
		out[i] = cloneField(f)
	}
	return out
}
