module github.com/canon-dht/canon

go 1.22
