package topology_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/topology"
)

func defaultTopo(t testing.TB, seed int64) *topology.Topology {
	t.Helper()
	topo, err := topology.New(rand.New(rand.NewSource(seed)), topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	topo := defaultTopo(t, 1)
	if got := topo.NumRouters(); got != 2040 {
		t.Errorf("NumRouters = %d, want 2040 (paper's graph size)", got)
	}
	if got := len(topo.StubRouters()); got != 2000 {
		t.Errorf("stub routers = %d, want 2000", got)
	}
	cfg := topo.Config()
	if cfg.TransitTransitMS != 100 || cfg.TransitStubMS != 20 || cfg.StubStubMS != 5 || cfg.HostStubMS != 1 {
		t.Errorf("latency classes %v do not match the paper", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := topology.DefaultConfig()
	bad.TransitDomains = 0
	if _, err := topology.New(rng, bad); err == nil {
		t.Error("TransitDomains=0 should error")
	}
	bad = topology.DefaultConfig()
	bad.StubStubMS = -1
	if _, err := topology.New(rng, bad); err == nil {
		t.Error("negative latency should error")
	}
}

func TestConnectivityAndSymmetry(t *testing.T) {
	cfg := topology.DefaultConfig()
	cfg.TransitDomains = 3
	cfg.TransitPerDomain = 4
	cfg.StubSize = 6
	topo, err := topology.New(rand.New(rand.NewSource(2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NumRouters()
	for a := 0; a < n; a += 5 {
		for b := 0; b < n; b += 7 {
			la := topo.Latency(a, b)
			if la >= 1e29 {
				t.Fatalf("routers %d and %d are disconnected", a, b)
			}
			if lb := topo.Latency(b, a); math.Abs(la-lb) > 1e-6 {
				t.Fatalf("latency asymmetric: %v vs %v", la, lb)
			}
			if (a == b) != (la == 0) {
				t.Fatalf("Latency(%d,%d) = %v", a, b, la)
			}
		}
	}
}

func TestLatencyClasses(t *testing.T) {
	topo := defaultTopo(t, 3)
	stubs := topo.StubRouters()
	// Stub routers in the same stub domain (consecutive ids within a group
	// of StubSize) should be a few 5ms hops apart, far below any
	// transit-involving path.
	intra := topo.Latency(stubs[0], stubs[1])
	if intra <= 0 || intra >= 40 {
		t.Errorf("intra-stub latency = %v, want small multiple of 5ms", intra)
	}
	// Stub routers under different transit domains must cross at least two
	// transit-stub links and one transit-transit link.
	far := topo.Latency(stubs[0], stubs[len(stubs)-1])
	if far < 2*20+100 {
		t.Errorf("cross-domain latency = %v, want >= 140", far)
	}
}

func TestBuildHierarchyShape(t *testing.T) {
	topo := defaultTopo(t, 4)
	tree, leaves, err := topo.BuildHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Levels(); got != 5 {
		t.Errorf("Levels = %d, want 5 (root/td/tr/sd/sr)", got)
	}
	if len(leaves) != 2000 {
		t.Fatalf("leaves = %d, want 2000", len(leaves))
	}
	// Root fan-out = number of transit domains.
	if got := tree.Root().NumChildren(); got != 4 {
		t.Errorf("root fan-out = %d, want 4", got)
	}
	for _, l := range leaves {
		if l.Depth() != 4 {
			t.Fatalf("leaf depth = %d, want 4", l.Depth())
		}
	}
}

func TestAttachHostsAndLatency(t *testing.T) {
	topo := defaultTopo(t, 5)
	rng := rand.New(rand.NewSource(6))
	hosts, err := topo.AttachHosts(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	if hosts.Len() != 500 {
		t.Fatalf("Len = %d", hosts.Len())
	}
	if hosts.Latency(3, 3) != 0 {
		t.Error("self latency must be 0")
	}
	// Two hosts on the same stub router are exactly 2ms apart.
	byStub := make(map[int][]int)
	for i := 0; i < hosts.Len(); i++ {
		s := hosts.StubOf(i)
		byStub[s] = append(byStub[s], i)
	}
	checked := false
	for _, members := range byStub {
		if len(members) >= 2 {
			if got := hosts.Latency(members[0], members[1]); got != 2 {
				t.Errorf("same-stub host latency = %v, want 2", got)
			}
			checked = true
			break
		}
	}
	if !checked {
		t.Log("no stub router hosted two hosts; same-stub case unchecked")
	}
	// Any latency must be at least 2ms and include the host links.
	l := hosts.Latency(0, 1)
	if l < 2 {
		t.Errorf("host latency %v < 2", l)
	}
	// PathLatency sums pairwise latencies.
	p := []int{0, 1, 2}
	want := hosts.Latency(0, 1) + hosts.Latency(1, 2)
	if got := hosts.PathLatency(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("PathLatency = %v, want %v", got, want)
	}
	if got := hosts.PathLatency([]int{7}); got != 0 {
		t.Errorf("single-node path latency = %v, want 0", got)
	}
	// Hosts' leaves must live in the induced tree.
	for i := 0; i < hosts.Len(); i++ {
		if hosts.Leaves()[i].Depth() != 4 {
			t.Fatalf("host %d leaf depth != 4", i)
		}
	}
	if avg := hosts.AvgDirectLatency(rng, 200); avg <= 2 || avg > 500 {
		t.Errorf("AvgDirectLatency = %v, implausible", avg)
	}
}

func TestHierarchyGroupsByProximity(t *testing.T) {
	// Hosts within the same stub domain must be much closer than hosts in
	// different transit domains — the property Crescendo exploits.
	topo := defaultTopo(t, 7)
	rng := rand.New(rand.NewSource(8))
	hosts, err := topo.AttachHosts(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var sameStubDom, crossTransit []float64
	for i := 0; i < 4000 && (len(sameStubDom) < 50 || len(crossTransit) < 50); i++ {
		a, b := rng.Intn(hosts.Len()), rng.Intn(hosts.Len())
		if a == b {
			continue
		}
		la, lb := hosts.Leaves()[a], hosts.Leaves()[b]
		lca := hierarchy.LCA(la, lb)
		switch {
		case lca.Depth() >= 3:
			sameStubDom = append(sameStubDom, hosts.Latency(a, b))
		case lca.Depth() == 0:
			crossTransit = append(crossTransit, hosts.Latency(a, b))
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(sameStubDom) == 0 || len(crossTransit) == 0 {
		t.Skip("insufficient samples")
	}
	if mean(sameStubDom)*3 > mean(crossTransit) {
		t.Errorf("same-stub mean %v not far below cross-transit mean %v",
			mean(sameStubDom), mean(crossTransit))
	}
}

func BenchmarkLatencyColdSource(b *testing.B) {
	topo, err := topology.New(rand.New(rand.NewSource(20)), topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	stubs := topo.StubRouters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each distinct source pays one Dijkstra; cycling over sources
		// measures the amortized cost including cache build-up.
		topo.Latency(stubs[i%len(stubs)], stubs[(i*7+1)%len(stubs)])
	}
}

func BenchmarkLatencyWarm(b *testing.B) {
	topo, err := topology.New(rand.New(rand.NewSource(21)), topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	stubs := topo.StubRouters()
	topo.Latency(stubs[0], stubs[1]) // warm the source cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Latency(stubs[0], stubs[(i+1)%len(stubs)])
	}
}
