// Package deadpragma is the golden fixture for the suppression
// meta-check: pragmas naming checks that do not fire at their scope are
// themselves findings. The code below is deliberately clean under every
// real check, so the only diagnostics are about the pragmas.
package deadpragma

// addClean does nothing a check cares about; the pragma above it is dead.
func addClean(a, b int) int {
	//canonvet:ignore ringcmp -- leftover from a refactor; nothing circular here // want `stale //canonvet:ignore: check "ringcmp" no longer fires at this scope`
	return a + b
}

// typo'd check names are flagged no matter what.
func typoPragma(a, b int) int {
	//canonvet:ignore ringcmpp -- misspelled check name // want `names unknown check "ringcmpp"`
	return a - b
}

// a dead blanket suppression is the worst kind: it hides future findings of
// every check. Judged only when the full check set runs.
func blanket(a int) int {
	//canonvet:ignore all -- silence everything // want `stale //canonvet:ignore all: no check fires at this scope`
	return a * 2
}
