package chord_test

import (
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/chord"
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

func flatPopulation(t *testing.T, space id.Space, ids []id.ID) *core.Population {
	t.Helper()
	tree := hierarchy.NewTree()
	leaves := make([]*hierarchy.Domain, len(ids))
	for i := range leaves {
		leaves[i] = tree.Root()
	}
	pop, err := core.NewPopulation(space, tree, ids, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestDeterministicFingerTable(t *testing.T) {
	space := id.MustSpace(4)
	// Ring from the paper's Figure 2, ring A: 0, 5, 10, 12.
	pop := flatPopulation(t, space, []id.ID{0, 5, 10, 12})
	nw := core.Build(pop, chord.NewDeterministic(space), nil)

	wantLinks := map[id.ID][]id.ID{
		0:  {5, 10},     // distances 1,2,4 -> 5; distance 8 -> 10
		5:  {10, 12, 0}, // 1,2,4 -> 10 (d5); wait: computed below
		10: {12, 0, 5},
		12: {0, 5},
	}
	// Recompute expectations by hand:
	// node 5: d(5,10)=5, d(5,12)=7, d(5,0)=11.
	//   k=0 (>=1): 10. k=1 (>=2): 10. k=2 (>=4): 10. k=3 (>=8): 0.
	wantLinks[5] = []id.ID{10, 0}
	// node 10: d(10,12)=2, d(10,0)=6, d(10,5)=11.
	//   k=0: 12. k=1: 12. k=2 (>=4): 0. k=3 (>=8): 5.
	wantLinks[10] = []id.ID{12, 0, 5}
	// node 12: d(12,0)=4, d(12,5)=9, d(12,10)=14.
	//   k=0: 0. k=1: 0. k=2: 0. k=3 (>=8): 5.
	wantLinks[12] = []id.ID{0, 5}

	for i := 0; i < pop.Len(); i++ {
		m := pop.IDOf(i)
		want := wantLinks[m]
		got := nw.Links(i)
		if len(got) != len(want) {
			t.Errorf("node %d degree = %d, want %d", m, len(got), len(want))
			continue
		}
		gotSet := make(map[id.ID]bool)
		for _, l := range got {
			gotSet[pop.IDOf(int(l))] = true
		}
		for _, w := range want {
			if !gotSet[w] {
				t.Errorf("node %d missing finger %d", m, w)
			}
		}
	}
}

func TestDeterministicSingleton(t *testing.T) {
	space := id.MustSpace(4)
	pop := flatPopulation(t, space, []id.ID{7})
	nw := core.Build(pop, chord.NewDeterministic(space), nil)
	if d := nw.Degree(0); d != 0 {
		t.Errorf("singleton degree = %d, want 0", d)
	}
}

func TestNondeterministicIntervals(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(21))
	ids, err := space.UniqueRandom(rng, 512)
	if err != nil {
		t.Fatal(err)
	}
	pop := flatPopulation(t, space, ids)
	nw := core.Build(pop, chord.NewNondeterministic(space), rng)

	// Every node links to its successor, and every link other than the
	// successor lies in some [2^k, 2^(k+1)) interval (trivially true) with at
	// most one link per interval plus the successor.
	n := pop.Len()
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		if !nw.HasLink(i, succ) {
			t.Fatalf("node %d missing successor link", i)
		}
		perInterval := make(map[int]int)
		for _, l := range nw.Links(i) {
			if int(l) == succ {
				continue
			}
			d := space.Clockwise(pop.IDOf(i), pop.IDOf(int(l)))
			k := 0
			for (uint64(1) << (k + 1)) <= d {
				k++
			}
			perInterval[k]++
		}
		for k, c := range perInterval {
			// The successor may fall in the same interval as the random
			// pick, so allow 2 only for the successor's interval.
			if c > 1 {
				t.Fatalf("node %d has %d links in interval 2^%d", i, c, k)
			}
		}
	}
}

func TestNondeterministicCrescendoRouting(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(22))
	tree, err := hierarchy.Balanced(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	leaves := hierarchy.AssignUniform(rng, tree, 256)
	pop, err := core.RandomPopulation(rng, space, tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, chord.NewNondeterministic(space), rng)

	for i := 0; i < 1000; i++ {
		from, to := rng.Intn(pop.Len()), rng.Intn(pop.Len())
		r := nw.RouteToNode(from, to)
		if !r.Success || r.Last() != to {
			t.Fatalf("route %d -> %d failed (path %v)", from, to, r.Nodes)
		}
	}
}

// TestMergeConditionB: no inter-domain link may be longer than the
// distance to the node's own-ring (leaf-domain) successor.
func TestMergeConditionB(t *testing.T) {
	space := id.DefaultSpace()
	rng := rand.New(rand.NewSource(23))
	tree, err := hierarchy.Balanced(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	leaves := hierarchy.AssignUniform(rng, tree, 512)
	pop, err := core.RandomPopulation(rng, space, tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	nw := core.Build(pop, chord.NewDeterministic(space), nil)

	for i := 0; i < pop.Len(); i++ {
		leafRing := nw.RingOf(pop.LeafOf(i))
		bound := leafRing.SuccessorDistance(leafRing.PosOfMember(i))
		for _, l := range nw.Links(i) {
			if pop.LeafOf(int(l)) == pop.LeafOf(i) {
				continue // intra-ring link: no constraint from condition (b)
			}
			d := space.Clockwise(pop.IDOf(i), pop.IDOf(int(l)))
			if d >= bound {
				t.Fatalf("node %d inter-domain link to %d at distance %d >= bound %d",
					i, l, d, bound)
			}
		}
	}
}

func TestGeometryMetadata(t *testing.T) {
	space := id.DefaultSpace()
	det := chord.NewDeterministic(space)
	nd := chord.NewNondeterministic(space)
	if det.Name() != "chord" || nd.Name() != "ndchord" {
		t.Error("unexpected geometry names")
	}
	if det.Metric() != core.MetricClockwise || nd.Metric() != core.MetricClockwise {
		t.Error("chord geometries must use the clockwise metric")
	}
	if det.Distance(2, 1) != space.Size()-1 {
		t.Error("Distance should be clockwise distance")
	}
}
