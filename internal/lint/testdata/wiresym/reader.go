// Package wiresym is the golden fixture for the symbolic codec-symmetry
// check: an encoder and decoder that disagree on the byte layout of one
// message. reader.go is the miniature wire toolkit both codecs share,
// written in the exact idioms of internal/netnode/binwire.go so the
// interpreters model every operation.
package wiresym

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var errWire = errors.New("wiresym: malformed payload")

func appendU64(b []byte, v uint64) []byte {
	var x [8]byte
	binary.BigEndian.PutUint64(x[:], v)
	return append(b, x[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", errWire, what, r.off)
	}
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *binReader) str() string {
	if r.err != nil {
		return ""
	}
	n, sz := binary.Uvarint(r.data[r.off:])
	if sz <= 0 || n > uint64(len(r.data)-r.off-sz) {
		r.fail("bad string")
		return ""
	}
	s := string(r.data[r.off+sz : r.off+sz+int(n)])
	r.off += sz + int(n)
	return s
}

func (r *binReader) done() error {
	if r.err == nil && r.off != len(r.data) {
		r.fail("trailing bytes")
	}
	return r.err
}
