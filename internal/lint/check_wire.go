package lint

// The four v4 wire checks, all consumers of the symbolic extraction
// (wireextract.go) computed once per run:
//
//   wiresym    — the encoder and decoder of one message disagree on the
//                byte layout (or a codec defeated the interpreters, which
//                is reported rather than silently unchecked).
//   wirebreak  — the extracted schema differs from the committed baseline
//                (docs/wire.schema.json) in a wire-breaking way without a
//                version bump.
//   wirebounds — a decoder preallocates from a wire-controlled count with
//                no cap: a one-line remote-OOM.
//   wiredoc    — the docs/WIRE.md field tables drift from the code.

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// wireChecksEnabled reports whether any wire check runs under cfg, which is
// what decides whether Run computes the extraction.
func wireChecksEnabled(cfg *Config) bool {
	return cfg.enabled("wiresym") || cfg.enabled("wirebreak") ||
		cfg.enabled("wirebounds") || cfg.enabled("wiredoc")
}

// ---- wiresym ----

var checkWireSym = Check{
	Name: "wiresym",
	Doc:  "encoder/decoder byte-layout disagreement in a binary codec pair (symbolic round-trip)",
	RunModule: func(mp *ModulePass) {
		if mp.wire == nil {
			return
		}
		for _, wm := range mp.wire.msgs {
			if len(wm.notes) > 0 {
				seen := make(map[string]bool)
				for _, n := range wm.notes {
					if seen[n.msg] {
						continue
					}
					seen[n.msg] = true
					mp.Report(n.pos, nil,
						"wire schema extraction incomplete for %s: %s (layout not verifiable; simplify the codec to the documented idioms)",
						wm.m.Name, n.msg)
				}
				continue
			}
			if !wm.encOK || !wm.decOK {
				continue
			}
			if d := diffWireFields("", wm.enc, wm.dec); d != nil {
				mp.Report(wm.decPos, []string{
					"encoder layout: " + renderWireFields(wm.enc),
					"decoder layout: " + renderWireFields(wm.dec),
				}, "encoder and decoder of %s disagree at %s: encoder writes %s, decoder reads %s",
					wm.m.Name, d.path, d.a, d.b)
			}
		}
	},
}

// ---- wirebreak ----

var checkWireBreak = Check{
	Name: "wirebreak",
	Doc:  "extracted wire schema differs from the committed baseline without a version bump (breaking change gate)",
	RunModule: func(mp *ModulePass) {
		ext := mp.wire
		if ext == nil || mp.Cfg.WireBaselinePath == "" || !ext.anchorPos.IsValid() {
			return
		}
		path := mp.Cfg.wirePath(mp.Cfg.WireBaselinePath)
		data, err := os.ReadFile(path)
		if err != nil {
			mp.Report(ext.anchorPos, nil,
				"no wire schema baseline at %s; run canonvet -write-schema and commit the result",
				mp.Cfg.WireBaselinePath)
			return
		}
		base, err := ParseWireSchema(data)
		if err != nil {
			mp.Report(ext.anchorPos, nil, "unreadable wire schema baseline %s: %v",
				mp.Cfg.WireBaselinePath, err)
			return
		}

		current := make(map[string]*wireMsg) // keyed by package|name
		for _, wm := range ext.msgs {
			current[wm.m.Package+"|"+wm.m.Name] = wm
		}
		judged := make(map[string]bool)
		for _, bm := range base.Messages {
			if !ext.loaded[bm.Package] {
				continue // partial run: this package was not analyzed
			}
			key := bm.Package + "|" + bm.Name
			judged[key] = true
			wm := current[key]
			if wm == nil {
				pos := ext.pkgPos[bm.Package]
				if !pos.IsValid() {
					pos = ext.anchorPos
				}
				mp.Report(pos, nil,
					"wire message %s (%s) was removed from %s: decoders in the field still send it; gate removals behind a version bump and refresh the baseline (canonvet -write-schema)",
					bm.Name, bm.Struct, bm.Package)
				continue
			}
			if len(wm.notes) > 0 {
				continue // wiresym reports the extraction gap
			}
			d := diffWireFields("", bm.Fields, wm.m.Fields)
			if d == nil {
				if wm.m.Version != bm.Version {
					mp.Report(wm.encPos, nil,
						"wire schema baseline out of date: %s moved from version %d to %d; run canonvet -write-schema and commit the result",
						bm.Name, bm.Version, wm.m.Version)
				}
				continue
			}
			if wm.m.Version != bm.Version {
				mp.Report(wm.encPos, nil,
					"wire schema baseline out of date: %s changed under a version bump (%d -> %d); run canonvet -write-schema and commit the result",
					bm.Name, bm.Version, wm.m.Version)
				continue
			}
			mp.Report(wm.encPos, []string{
				"baseline layout: " + renderWireFields(bm.Fields),
				"current layout:  " + renderWireFields(wm.m.Fields),
			}, "wire-breaking change in %s at %s: baseline %s, current %s (same wire version %d; bump the version or revert, then canonvet -write-schema)",
				bm.Name, d.path, d.a, d.b, bm.Version)
		}
		var fresh []*wireMsg
		for key, wm := range current {
			if !judged[key] {
				fresh = append(fresh, wm)
			}
		}
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].m.Name < fresh[j].m.Name })
		for _, wm := range fresh {
			if len(wm.notes) > 0 {
				continue
			}
			mp.Report(wm.encPos, nil,
				"wire message %s is not in the schema baseline; run canonvet -write-schema and commit the result",
				wm.m.Name)
		}
	},
}

// ---- wirebounds ----

var checkWireBounds = Check{
	Name: "wirebounds",
	Doc:  "decoder preallocation sized by a wire-controlled count with no cap (remote OOM)",
	RunModule: func(mp *ModulePass) {
		if mp.wire == nil {
			return
		}
		for _, a := range mp.wire.allocs {
			countAt := mp.Fset.Position(a.countPos)
			mp.Report(a.pos, []string{
				fmt.Sprintf("count %q read from the wire at %s:%d", a.count, shortPath(countAt.Filename), countAt.Line),
				fmt.Sprintf("make([]%s, ...) in %s reserves %d bytes per count unit", a.elem, a.fn, a.elemSize),
			}, "%s preallocates []%s from wire-controlled count %q with no cap: a hostile peer OOMs the node with a few header bytes; bound it with min(%s, const)",
				a.fn, a.elem, a.count, a.count)
		}
	},
}

// ---- wiredoc ----

var checkWireDoc = Check{
	Name: "wiredoc",
	Doc:  "docs/WIRE.md field tables drift from the layouts the codecs implement",
	RunModule: func(mp *ModulePass) {
		ext := mp.wire
		if ext == nil || mp.Cfg.WireDocPath == "" || !ext.anchorPos.IsValid() {
			return
		}
		data, err := os.ReadFile(mp.Cfg.wirePath(mp.Cfg.WireDocPath))
		if err != nil {
			mp.Report(ext.anchorPos, nil, "wire specification %s is missing: %v", mp.Cfg.WireDocPath, err)
			return
		}
		blocks := parseWireDoc(string(data))

		// Index the extracted messages by every name a doc block may use.
		byName := make(map[string]*wireMsg)
		for _, wm := range ext.msgs {
			if wm.m.Kind == "envelope" {
				continue // the envelope is prose+table in §3, not a field fence
			}
			byName[strings.ToLower(wm.m.Name)] = wm
			byName[strings.ToLower(structBase(wm.m.Struct))] = wm
		}

		documented := make(map[*wireMsg]bool)
		for _, blk := range blocks {
			wm := byName[strings.ToLower(blk.name)]
			if wm == nil {
				if ext.allWireLoaded {
					mp.Report(ext.anchorPos, nil,
						"%s documents wire message %q but no binary codec implements it; update the document or add the codec",
						mp.Cfg.WireDocPath, blk.name)
				}
				continue
			}
			documented[wm] = true
			if len(wm.notes) > 0 {
				continue
			}
			if msg := diffWireDoc(ext, blk.rows, wm.m.Fields); msg != "" {
				mp.Report(wm.encPos, []string{
					"documented layout: " + renderDocRows(blk.rows),
					"codec layout:      " + renderWireFields(wm.m.Fields),
				}, "%s drift for %s: %s", mp.Cfg.WireDocPath, wm.m.Name, msg)
			}
		}
		if ext.allWireLoaded {
			for _, wm := range ext.msgs {
				if wm.m.Kind != "message" || documented[wm] || len(wm.notes) > 0 {
					continue
				}
				mp.Report(wm.encPos, nil,
					"wire message %s has a binary codec but no field table in %s; document the layout",
					wm.m.Name, mp.Cfg.WireDocPath)
			}
		}
	},
}

// diffWireDoc compares one documented field table against the extracted
// layout and returns a description of the first divergence, or "".
func diffWireDoc(ext *wireExtraction, rows []wireDocRow, fields []*WireField) string {
	n := len(rows)
	if len(fields) > n {
		n = len(fields)
	}
	for i := 0; i < n; i++ {
		if i >= len(rows) {
			return fmt.Sprintf("field %d (%s) is implemented but undocumented", i+1, renderWireField(fields[i]))
		}
		if i >= len(fields) {
			return fmt.Sprintf("field %d is documented as %q %s but the codec has no such field", i+1, rows[i].name, rows[i].enc)
		}
		row, f := rows[i], fields[i]
		if !strings.EqualFold(row.name, f.Name) {
			return fmt.Sprintf("field %d is documented as %q but the codec calls it %q", i+1, row.name, f.Name)
		}
		if msg := diffDocEnc(ext, row, f); msg != "" {
			return fmt.Sprintf("field %d (%q) %s", i+1, row.name, msg)
		}
	}
	return ""
}

// diffDocEnc compares one documented encoding against one extracted field.
func diffDocEnc(ext *wireExtraction, row wireDocRow, f *WireField) string {
	switch row.enc {
	case "u8":
		// The documented u8 covers both raw bytes and defined-bit flag bytes.
		if f.Enc != wireEncU8 && f.Enc != wireEncFlags {
			return fmt.Sprintf("is documented as u8 but encoded as %s", f.Enc)
		}
		return ""
	case "optional bytes":
		if f.Enc != wireEncOpt {
			return fmt.Sprintf("is documented as optional bytes but encoded as %s", f.Enc)
		}
		return ""
	case "slice":
		if f.Enc != wireEncSlice {
			return fmt.Sprintf("is documented as a slice but encoded as %s", f.Enc)
		}
		if row.elemRef != "" {
			return diffDocRef(ext, row.elemRef, f)
		}
		if len(row.elems) > 0 {
			if d := diffWireDoc(ext, row.elems, f.Elem); d != "" {
				return "element " + d
			}
		}
		return ""
	default:
		if isDocScalar(row.enc) {
			if row.enc != f.Enc {
				return fmt.Sprintf("is documented as %s but encoded as %s", row.enc, f.Enc)
			}
			return ""
		}
		// A structure reference (Info, Span).
		if f.Enc != wireEncStruct {
			return fmt.Sprintf("is documented as structure %s but encoded as %s", row.enc, f.Enc)
		}
		return diffDocRef(ext, row.enc, f)
	}
}

// diffDocRef resolves a documented structure/message reference and compares
// it against the extracted field's Ref.
func diffDocRef(ext *wireExtraction, docRef string, f *WireField) string {
	want := docRef
	// "store2 request" names a message; its struct base is the codec's Ref.
	if m := ext.schema.MessageByName(docRef); m != nil {
		want = structBase(m.Struct)
	}
	if f.Ref == "" && len(f.Elem) == 1 && isDocScalar(docRef) {
		// slice<u64>: a scalar element, not a reference.
		if f.Elem[0].Enc != docRef {
			return fmt.Sprintf("is documented as slice<%s> but elements are encoded as %s", docRef, f.Elem[0].Enc)
		}
		return ""
	}
	if !strings.EqualFold(want, f.Ref) {
		return fmt.Sprintf("is documented as referencing %s but the codec encodes %s", docRef, f.Ref)
	}
	return ""
}

func isDocScalar(enc string) bool {
	switch enc {
	case wireEncU64, wireEncU32, wireEncU16, wireEncU8, wireEncUvarint,
		wireEncVarint, wireEncBool, wireEncString, wireEncBytes:
		return true
	}
	return false
}

// renderDocRows renders a documented table compactly for evidence chains.
func renderDocRows(rows []wireDocRow) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		s := r.name + ":" + r.enc
		if r.elemRef != "" {
			s += "<" + r.elemRef + ">"
		} else if len(r.elems) > 0 {
			s += "<" + renderDocRows(r.elems) + ">"
		}
		parts[i] = s
	}
	return strings.Join(parts, " ")
}
