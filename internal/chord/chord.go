// Package chord implements the Chord link-creation geometry, in both its
// deterministic form (Stoica et al., SIGCOMM 2001) and the nondeterministic
// variant used by CFS and studied by Gummadi et al. Plugged into the Canon
// framework (internal/core), the deterministic geometry yields Crescendo and
// the nondeterministic one yields nondeterministic Crescendo (Sections 2 and
// 3.2 of the paper); on a one-level hierarchy they yield plain flat Chord.
package chord

import (
	"math/rand"

	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/id"
)

// Deterministic is the classic Chord rule: for every 0 <= k < N, link to the
// closest node at clockwise distance at least 2^k.
type Deterministic struct {
	space id.Space
}

var _ core.Geometry = (*Deterministic)(nil)

// NewDeterministic returns the deterministic Chord geometry over space.
func NewDeterministic(space id.Space) *Deterministic {
	return &Deterministic{space: space}
}

// Name implements core.Geometry.
func (g *Deterministic) Name() string { return "chord" }

// Metric implements core.Geometry.
func (g *Deterministic) Metric() core.Metric { return core.MetricClockwise }

// Distance implements core.Geometry.
func (g *Deterministic) Distance(a, b id.ID) uint64 { return g.space.Clockwise(a, b) }

// BaseLinks implements core.Geometry: the standard Chord finger table within
// the node's lowest-level ring.
func (g *Deterministic) BaseLinks(ring *core.Ring, node int, _ *rand.Rand) []int {
	return g.fingers(ring, node, g.space.Size())
}

// MergeLinks implements core.Geometry: the Chord rule applied over the
// merged ring (condition a), keeping only links strictly shorter than the
// distance to the node's own-ring successor (condition b). Nodes of the
// node's own ring are all at distance >= bound, so they are excluded
// automatically.
func (g *Deterministic) MergeLinks(merged, _ *core.Ring, node int, bound uint64, _ *rand.Rand) []int {
	return g.fingers(merged, node, bound)
}

// fingers returns, for each k, the closest ring member at clockwise distance
// in [2^k, bound). With bound = space size this is the plain Chord rule.
func (g *Deterministic) fingers(ring *core.Ring, node int, bound uint64) []int {
	pos := ring.PosOfMember(node)
	if pos < 0 || ring.Len() == 1 {
		return nil
	}
	m := ring.IDAt(pos)
	links := make([]int, 0, g.space.Bits())
	for k := uint(0); k < g.space.Bits(); k++ {
		step := uint64(1) << k
		if step >= bound {
			break
		}
		spos := ring.SuccessorPos(g.space.Add(m, step))
		d := g.space.Clockwise(m, ring.IDAt(spos))
		if d < step || d >= bound {
			continue
		}
		links = append(links, ring.Member(spos))
	}
	return links
}

// Bound implements core.Geometry: the clockwise distance to the node's
// own-ring successor ("closer than any node in m's ring").
func (g *Deterministic) Bound(own *core.Ring, node int, _ []id.ID) uint64 {
	pos := own.PosOfMember(node)
	if pos < 0 {
		return 0
	}
	return own.SuccessorDistance(pos)
}

// Nondeterministic is the relaxed Chord rule: for every 0 <= k < N, link to
// any (uniformly chosen) node with clockwise distance in [2^k, 2^(k+1)),
// plus an explicit successor link. Its routing behaviour is close to
// Symphony's (Section 3.2).
type Nondeterministic struct {
	space id.Space
}

var _ core.Geometry = (*Nondeterministic)(nil)

// NewNondeterministic returns the nondeterministic Chord geometry.
func NewNondeterministic(space id.Space) *Nondeterministic {
	return &Nondeterministic{space: space}
}

// Name implements core.Geometry.
func (g *Nondeterministic) Name() string { return "ndchord" }

// Metric implements core.Geometry.
func (g *Nondeterministic) Metric() core.Metric { return core.MetricClockwise }

// Distance implements core.Geometry.
func (g *Nondeterministic) Distance(a, b id.ID) uint64 { return g.space.Clockwise(a, b) }

// BaseLinks implements core.Geometry.
func (g *Nondeterministic) BaseLinks(ring *core.Ring, node int, rng *rand.Rand) []int {
	return g.randomFingers(ring, node, g.space.Size(), rng, true)
}

// MergeLinks implements core.Geometry. Per Section 3.2, the node exercises
// its nondeterministic choice only among nodes closer than any node in its
// own ring: every interval [2^k, 2^(k+1)) is truncated at bound.
func (g *Nondeterministic) MergeLinks(merged, _ *core.Ring, node int, bound uint64, rng *rand.Rand) []int {
	return g.randomFingers(merged, node, bound, rng, false)
}

// randomFingers draws one uniform choice from each truncated interval
// [2^k, min(2^(k+1), bound)). A successor link is added: unconditionally for
// base rings (withSucc), and subject to the bound during merges so that ring
// connectivity exists at every level exactly when condition (b) allows it.
func (g *Nondeterministic) randomFingers(ring *core.Ring, node int, bound uint64, rng *rand.Rand, withSucc bool) []int {
	pos := ring.PosOfMember(node)
	if pos < 0 || ring.Len() == 1 {
		return nil
	}
	m := ring.IDAt(pos)
	links := make([]int, 0, g.space.Bits()+1)

	succDist := ring.SuccessorDistance(pos)
	if withSucc || succDist < bound {
		links = append(links, ring.Member(ring.NextPos(pos)))
	}
	for k := uint(0); k < g.space.Bits(); k++ {
		lo := uint64(1) << k
		if lo >= bound {
			break
		}
		hi := lo << 1
		if hi > bound {
			hi = bound
		}
		count, first := ring.CountInArc(m, lo, hi)
		if count == 0 {
			continue
		}
		links = append(links, ring.ArcMember(first, rng.Intn(count)))
	}
	return links
}

// Bound implements core.Geometry.
func (g *Nondeterministic) Bound(own *core.Ring, node int, _ []id.ID) uint64 {
	pos := own.PosOfMember(node)
	if pos < 0 {
		return 0
	}
	return own.SuccessorDistance(pos)
}
