package netnode

import (
	"context"

	"github.com/canon-dht/canon/internal/id"
)

// crescendoGeometry is Canonical Chord (paper Section 3), the default
// geometry: clockwise metric, powers-of-two fingers under the merge bound,
// maximal clockwise advance as the next-hop choice (the forwardSet fast
// path).
type crescendoGeometry struct{}

func (crescendoGeometry) kind() geomKind { return geomCrescendo }
func (crescendoGeometry) name() string   { return GeometryCrescendo }

// maintain implements geometry: Crescendo's links need nothing beyond
// fixLinks and ring stabilization.
func (crescendoGeometry) maintain(context.Context, *Node) {}

// fixLinks rebuilds the finger table with the Canon rule: full Chord fingers
// within the leaf domain, and at every higher level only fingers strictly
// shorter than the distance to the lower level's successor.
func (crescendoGeometry) fixLinks(ctx context.Context, n *Node) {
	fingers := make(map[uint64]Info)
	bound := n.space.Size()
	for l := n.levels; l >= 0; l-- {
		prefix := prefixAt(n.self.Name, l)
		for k := uint(0); k < n.space.Bits(); k++ {
			step := uint64(1) << k
			if step >= bound {
				break
			}
			target := uint64(n.space.Add(id.ID(n.self.ID), step))
			resp, err := n.lookupFrom(ctx, n.self, uint64(n.space.Sub(id.ID(target), 1)), prefix)
			if err != nil {
				continue
			}
			cand := resp.Succ
			if cand.IsZero() || cand.Addr == n.self.Addr {
				continue
			}
			d := n.clockwise(n.self.ID, cand.ID)
			if d >= step && d < bound {
				fingers[cand.ID] = cand
			}
		}
		// The next (higher-level) merge keeps only links shorter than our
		// successor distance at this level.
		n.mu.Lock()
		if len(n.succs[l]) > 0 && n.succs[l][0].Addr != n.self.Addr {
			bound = n.clockwise(n.self.ID, n.succs[l][0].ID)
		}
		n.mu.Unlock()
	}
	n.mu.Lock()
	n.fingers = fingers
	n.publishRoutingLocked()
	n.mu.Unlock()
}
