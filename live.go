package canon

import (
	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// Live-deployment aliases: a real Crescendo node with joins, per-level
// successor lists, stabilization and hierarchical put/get (Section 2.3).
type (
	// LiveNode is a networked Crescendo participant.
	LiveNode = netnode.Node
	// LiveConfig configures a LiveNode.
	LiveConfig = netnode.Config
	// LiveInfo identifies a live node on the wire.
	LiveInfo = netnode.Info
	// LiveClient issues operations against a live network through any
	// member node.
	LiveClient = netnode.Client
	// Transport carries a live node's traffic.
	Transport = transport.Transport
	// Bus is an in-memory network for tests and simulations.
	Bus = transport.Bus
)

// Live-node errors.
var (
	// ErrLiveNotFound is returned by LiveNode.Get for absent keys.
	ErrLiveNotFound = netnode.ErrNotFound
	// ErrLiveBadDomain is returned for invalid storage/access domains.
	ErrLiveBadDomain = netnode.ErrBadDomain
)

// NewLiveNode creates a live node; call Join to enter a network.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return netnode.New(cfg) }

// NewLiveClient returns a client sending through the given transport.
func NewLiveClient(tr Transport) *LiveClient { return netnode.NewClient(tr) }

// NewBus returns an in-memory network for running live nodes in-process.
func NewBus() *Bus { return transport.NewBus() }

// ListenTCP starts a TCP transport for a live node ("host:port"; ":0" picks
// a free port).
func ListenTCP(addr string) (Transport, error) { return transport.ListenTCP(addr) }

// ListenUDP starts a UDP transport for a live node — the low-overhead
// LAN-level option of Section 3.5 ("host:port"; ":0" picks a free port).
func ListenUDP(addr string) (Transport, error) { return transport.ListenUDP(addr) }
