// Package wire defines the fixture's wire structs in their own package, the
// way transport.Message lives apart from its callers: the wirecompat
// envelope rule only applies outside the defining package, where hand-rolled
// literals bypass the constructor and the nonce-tagging helpers.
package wire

// Ping is a json-tagged request body — a wire struct by the check's
// definition.
type Ping struct {
	From uint64 `json:"from"`
	Seq  int    `json:"seq"`
}

// Envelope mirrors transport.Message: Type routes the request, Nonce is the
// at-most-once dedup token receivers key on.
type Envelope struct {
	Type    string `json:"type"`
	Payload []byte `json:"payload,omitempty"`
	Nonce   uint64 `json:"nonce,omitempty"`
}

// NewEnvelope is the sanctioned constructor; it always stamps a nonce.
func NewEnvelope(msgType string, payload []byte, nonce uint64) Envelope {
	return Envelope{Type: msgType, Payload: payload, Nonce: nonce}
}
