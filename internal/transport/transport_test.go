package transport_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/transport"
)

type echoBody struct {
	Text string `json:"text"`
}

func echoHandler(_ context.Context, _ string, msg transport.Message) (transport.Message, error) {
	var body echoBody
	if err := msg.Decode(&body); err != nil {
		return transport.Message{}, err
	}
	return transport.NewMessage("echo-reply", echoBody{Text: "echo:" + body.Text})
}

func TestMessageRoundTrip(t *testing.T) {
	msg, err := transport.NewMessage("test", echoBody{Text: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	var out echoBody
	if err := msg.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "hi" {
		t.Errorf("decoded %q", out.Text)
	}
	// Error messages decode into errors.
	em := transport.ErrorMessage(errors.New("boom"))
	if err := em.Decode(&out); err == nil {
		t.Error("error message should fail Decode")
	}
	// Nil body is fine.
	m2, err := transport.NewMessage("empty", nil)
	if err != nil || m2.Type != "empty" || len(m2.Payload) != 0 {
		t.Errorf("empty message: %+v err %v", m2, err)
	}
}

func TestInMemCall(t *testing.T) {
	bus := transport.NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	b.Serve(echoHandler)

	msg, _ := transport.NewMessage("echo", echoBody{Text: "x"})
	resp, err := a.Call(context.Background(), "b", msg)
	if err != nil {
		t.Fatal(err)
	}
	var out echoBody
	if err := resp.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "echo:x" {
		t.Errorf("got %q", out.Text)
	}
}

func TestInMemUnreachable(t *testing.T) {
	bus := transport.NewBus()
	a := bus.Endpoint("a")
	if _, err := a.Call(context.Background(), "ghost", transport.Message{Type: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("call to missing endpoint: %v", err)
	}
	b := bus.Endpoint("b")
	b.Serve(echoHandler)
	bus.SetDown("b", true)
	if _, err := a.Call(context.Background(), "b", transport.Message{Type: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("call to down endpoint: %v", err)
	}
	bus.SetDown("b", false)
	msg, _ := transport.NewMessage("echo", echoBody{Text: "y"})
	if _, err := a.Call(context.Background(), "b", msg); err != nil {
		t.Errorf("call after recovery: %v", err)
	}
}

func TestInMemNoHandler(t *testing.T) {
	bus := transport.NewBus()
	a := bus.Endpoint("a")
	bus.Endpoint("b")
	if _, err := a.Call(context.Background(), "b", transport.Message{Type: "x"}); !errors.Is(err, transport.ErrNoHandler) {
		t.Errorf("expected ErrNoHandler, got %v", err)
	}
}

func TestInMemClosed(t *testing.T) {
	bus := transport.NewBus()
	a := bus.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(context.Background(), "b", transport.Message{}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("call on closed endpoint: %v", err)
	}
}

func TestInMemHandlerError(t *testing.T) {
	bus := transport.NewBus()
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	b.Serve(func(context.Context, string, transport.Message) (transport.Message, error) {
		return transport.Message{}, errors.New("handler blew up")
	})
	resp, err := a.Call(context.Background(), "b", transport.Message{Type: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var out struct{}
	if derr := resp.Decode(&out); derr == nil {
		t.Error("handler error should surface through Decode")
	}
}

func TestInMemLatencyAndContext(t *testing.T) {
	bus := transport.NewBus()
	bus.SetLatency(func(from, to string) time.Duration { return 50 * time.Millisecond })
	a := bus.Endpoint("a")
	b := bus.Endpoint("b")
	b.Serve(echoHandler)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	msg, _ := transport.NewMessage("echo", echoBody{Text: "z"})
	if _, err := a.Call(ctx, "b", msg); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expected deadline exceeded, got %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(echoHandler)

	cli, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 5; i++ {
		msg, _ := transport.NewMessage("echo", echoBody{Text: fmt.Sprintf("m%d", i)})
		resp, err := cli.Call(context.Background(), srv.Addr(), msg)
		if err != nil {
			t.Fatal(err)
		}
		var out echoBody
		if err := resp.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("echo:m%d", i); out.Text != want {
			t.Errorf("got %q, want %q", out.Text, want)
		}
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Serve(echoHandler)

	cli, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg, _ := transport.NewMessage("echo", echoBody{Text: fmt.Sprintf("c%d", i)})
			resp, err := cli.Call(context.Background(), srv.Addr(), msg)
			if err != nil {
				errs <- err
				return
			}
			var out echoBody
			if err := resp.Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Text != fmt.Sprintf("echo:c%d", i) {
				errs <- fmt.Errorf("mismatched response %q", out.Text)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	cli, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := cli.Call(ctx, "127.0.0.1:1", transport.Message{Type: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("expected unreachable, got %v", err)
	}
}

func TestTCPCloseIdempotentAndRejects(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := srv.Call(context.Background(), "127.0.0.1:1", transport.Message{}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("call on closed transport: %v", err)
	}
}
