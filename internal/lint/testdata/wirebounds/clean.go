package wirebounds

import "encoding/binary"

const maxPrealloc = 4096

// decodeCapped bounds the reservation at the allocation site: min() with a
// constant operand is the canonical fix.
func decodeCapped(data []byte) []uint64 {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil
	}
	data = data[sz:]
	out := make([]uint64, 0, min(n, maxPrealloc))
	for len(data) >= 8 && uint64(len(out)) < n {
		out = append(out, binary.BigEndian.Uint64(data))
		data = data[8:]
	}
	return out
}

// decodeGuarded rejects hostile counts against a constant before allocating.
func decodeGuarded(data []byte) []uint64 {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > maxPrealloc {
		return nil
	}
	data = data[sz:]
	out := make([]uint64, 0, n)
	for len(data) >= 8 && uint64(len(out)) < n {
		out = append(out, binary.BigEndian.Uint64(data))
		data = data[8:]
	}
	return out
}

// decodeBytes bounds a byte count by the remaining input, which is sound
// for 1-byte elements: the attacker pays one wire byte per reserved byte.
func decodeBytes(data []byte) []byte {
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)-sz) {
		return nil
	}
	out := make([]byte, 0, n)
	return append(out, data[sz:sz+int(n)]...)
}
