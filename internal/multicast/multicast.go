// Package multicast builds multicast trees from converged query paths
// (Section 5.4). Routing a query from every group member to a common
// destination yields a set of paths whose union is a tree rooted at the
// destination; the actual multicast transmits data along the reverse of the
// query paths. Because inter-domain paths converge in Canon DHTs, the tree
// crosses few domain boundaries — the package counts inter-domain links at
// any level, the paper's bandwidth-savings metric (Figure 9).
package multicast

import (
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
)

// edgeKey identifies a directed overlay edge (toward the destination).
type edgeKey struct {
	from, to int
}

// Tree is a multicast tree over a network.
type Tree struct {
	nw      *core.Network
	dst     int
	edges   map[edgeKey]struct{}
	members map[int]struct{}
	// failed counts sources whose route did not reach the destination
	// (possible only with XOR geometries).
	failed int
}

// Build routes a query from every source to dst and returns the union of
// the paths as a multicast tree.
func Build(nw *core.Network, sources []int, dst int) *Tree {
	t := &Tree{
		nw:      nw,
		dst:     dst,
		edges:   make(map[edgeKey]struct{}),
		members: map[int]struct{}{dst: {}},
	}
	for _, src := range sources {
		r := nw.RouteToNode(src, dst)
		if !r.Success || r.Last() != dst {
			t.failed++
			continue
		}
		for i := 0; i+1 < len(r.Nodes); i++ {
			t.edges[edgeKey{from: r.Nodes[i], to: r.Nodes[i+1]}] = struct{}{}
			t.members[r.Nodes[i]] = struct{}{}
		}
	}
	return t
}

// NumEdges returns the number of distinct overlay links in the tree.
func (t *Tree) NumEdges() int { return len(t.edges) }

// NumMembers returns the number of distinct nodes in the tree, including
// the destination.
func (t *Tree) NumMembers() int { return len(t.members) }

// Failed returns how many sources could not reach the destination.
func (t *Tree) Failed() int { return t.failed }

// InterDomainLinks returns the number of distinct tree links that cross a
// domain boundary at the given level: links whose endpoints' lowest common
// ancestor is shallower than level. Level 1 counts links between top-level
// domains, level 2 between second-level domains, and so on.
func (t *Tree) InterDomainLinks(level int) int {
	pop := t.nw.Population()
	count := 0
	for e := range t.edges {
		lca := hierarchy.LCA(pop.LeafOf(e.from), pop.LeafOf(e.to))
		if lca.Depth() < level {
			count++
		}
	}
	return count
}

// TotalLatency sums the given latency metric over all tree links — the
// aggregate bandwidth-time cost of one multicast transmission.
func (t *Tree) TotalLatency(latency func(a, b int) float64) float64 {
	total := 0.0
	for e := range t.edges {
		total += latency(e.from, e.to)
	}
	return total
}
