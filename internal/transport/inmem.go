package transport

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Bus is an in-memory network connecting InMem endpoints. An optional
// latency model delays calls, and endpoints can be partitioned to inject
// failures. The zero Bus is not usable; create one with NewBus.
type Bus struct {
	mu        sync.RWMutex
	endpoints map[string]*InMem
	latency   func(from, to string) time.Duration
	down      map[string]bool
}

// NewBus returns an empty in-memory network.
func NewBus() *Bus {
	return &Bus{
		endpoints: make(map[string]*InMem),
		down:      make(map[string]bool),
	}
}

// SetLatency installs a latency model applied to every call; nil disables
// delays.
func (b *Bus) SetLatency(f func(from, to string) time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency = f
}

// SetDown marks an endpoint as unreachable (true) or reachable (false)
// without closing it — simulating a crash or partition.
func (b *Bus) SetDown(addr string, down bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down[addr] = down
}

// Endpoint creates (or returns) the endpoint with the given address.
func (b *Bus) Endpoint(addr string) *InMem {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ep, ok := b.endpoints[addr]; ok {
		return ep
	}
	ep := &InMem{bus: b, addr: addr}
	b.endpoints[addr] = ep
	return ep
}

func (b *Bus) lookup(addr string) (*InMem, time.Duration, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.down[addr] {
		return nil, 0, fmt.Errorf("%w: %s is down", ErrUnreachable, addr)
	}
	ep, ok := b.endpoints[addr]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	return ep, 0, nil
}

// InMem is an in-memory endpoint on a Bus.
type InMem struct {
	bus  *Bus
	addr string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Transport = (*InMem)(nil)

// Addr implements Transport.
func (t *InMem) Addr() string { return t.addr }

// Serve implements Transport.
func (t *InMem) Serve(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Call implements Transport.
func (t *InMem) Call(ctx context.Context, addr string, msg Message) (Message, error) {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return Message{}, ErrClosed
	}
	t.bus.mu.RLock()
	srcDown := t.bus.down[t.addr]
	latency := t.bus.latency
	t.bus.mu.RUnlock()
	if srcDown {
		return Message{}, fmt.Errorf("%w: local endpoint down", ErrUnreachable)
	}
	dst, _, err := t.bus.lookup(addr)
	if err != nil {
		return Message{}, err
	}
	if latency != nil {
		d := latency(t.addr, addr)
		if d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return Message{}, ctx.Err()
			}
		}
	}
	dst.mu.RLock()
	h := dst.handler
	dstClosed := dst.closed
	dst.mu.RUnlock()
	if dstClosed {
		return Message{}, fmt.Errorf("%w: %s closed", ErrUnreachable, addr)
	}
	if h == nil {
		return Message{}, ErrNoHandler
	}
	resp, err := h(ctx, t.addr, msg)
	if err != nil {
		return ErrorMessage(err), nil
	}
	return resp, nil
}

// Close implements Transport.
func (t *InMem) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}
