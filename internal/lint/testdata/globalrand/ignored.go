//canonvet:ignore globalrand -- fixture: prove a pragma above the package clause suppresses the whole file

package globalrand

// fileWideSuppressed would be flagged twice, but the file-wide pragma above
// the package clause silences both findings.
import "math/rand"

func fileWideSuppressed() int {
	return rand.Int() + rand.Intn(2)
}
