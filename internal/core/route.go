package core

import (
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

// Route is the outcome of greedy routing: the sequence of nodes visited
// (source first) and whether the route reached the node responsible for the
// key. Hops is len(Nodes)-1.
type Route struct {
	// Nodes holds the population indices visited, starting with the source.
	Nodes []int
	// Success reports whether the final node is responsible for the key.
	// Ring-metric routing always succeeds; XOR-metric routing can in
	// principle stall at a local minimum if a bucket had no candidate.
	Success bool
}

// Hops returns the number of edges traversed.
func (r Route) Hops() int { return len(r.Nodes) - 1 }

// Last returns the final node on the route.
func (r Route) Last() int { return r.Nodes[len(r.Nodes)-1] }

// RouteToKey routes greedily from node `from` toward key k and returns the
// path. Under the clockwise metric this is the paper's greedy clockwise
// routing: at every step the message is forwarded to the neighbor closest to
// the key without overshooting it, and the route terminates at the node
// responsible for k (greatest ID <= k). Under the XOR metric each step
// strictly decreases the XOR distance, terminating at the key's XOR-closest
// node.
func (nw *Network) RouteToKey(from int, k id.ID) Route {
	if nw.geom.Metric() == MetricXOR {
		return nw.routeXOR(from, k)
	}
	return nw.routeClockwise(from, k)
}

// RouteToNode routes from node `from` to node `to` and returns the path.
func (nw *Network) RouteToNode(from, to int) Route {
	return nw.RouteToKey(from, nw.pop.IDOf(to))
}

func (nw *Network) routeClockwise(from int, k id.ID) Route {
	space := nw.pop.Space()
	path := []int{from}
	cur := from
	// Remaining clockwise distance from cur to the key strictly decreases
	// each hop, so the loop terminates; the explicit cap is pure defense.
	for hops := 0; hops <= nw.Len(); hops++ {
		remaining := space.Clockwise(nw.pop.IDOf(cur), k)
		if remaining == 0 {
			break
		}
		best, bestAdvance := -1, uint64(0)
		for _, nb := range nw.out[cur] {
			advance := space.Clockwise(nw.pop.IDOf(cur), nw.pop.IDOf(int(nb)))
			if advance <= remaining && advance > bestAdvance {
				best, bestAdvance = int(nb), advance
			}
		}
		if best < 0 {
			// No neighbor lies in (cur, k]: cur is the closest predecessor
			// of k — the node responsible for it.
			break
		}
		cur = best
		path = append(path, cur)
	}
	return Route{Nodes: path, Success: cur == nw.pop.OwnerOf(k)}
}

func (nw *Network) routeXOR(from int, k id.ID) Route {
	space := nw.pop.Space()
	path := []int{from}
	cur := from
	for hops := 0; hops <= nw.Len(); hops++ {
		curDist := space.XOR(nw.pop.IDOf(cur), k)
		if curDist == 0 {
			break
		}
		best, bestDist := -1, curDist
		for _, nb := range nw.out[cur] {
			if d := space.XOR(nw.pop.IDOf(int(nb)), k); d < bestDist {
				best, bestDist = int(nb), d
			}
		}
		if best < 0 {
			// Greedy is stuck at a local minimum, which the hierarchical
			// XOR constructions permit when a bucket had no candidate
			// within the merge bound. Real Kademlia overcomes this with an
			// iterative lookup that queries learned contacts in
			// closest-first order; mirror that with a bounded best-first
			// search for a node strictly closer than cur. Each queried
			// node counts as a hop.
			detour, ok := nw.xorIterativeEscape(cur, k, curDist)
			if !ok {
				break
			}
			path = append(path, detour...)
			cur = detour[len(detour)-1]
			continue
		}
		cur = best
		path = append(path, cur)
	}
	rootRing := nw.rings[nw.pop.Tree().Root().ID()]
	closest := rootRing.Member(rootRing.XORClosestPos(k))
	return Route{Nodes: path, Success: cur == closest}
}

// xorEscapeBudget bounds how many contacts the iterative escape may query.
// Stalls are rare, but CAN-style geometries can strand greedy routing inside
// a sizeable cluster of sideways zones, so the budget errs on the generous
// side; the search drains much earlier in practice.
const xorEscapeBudget = 1024

// xorIterativeEscape performs a closest-first iterative lookup from cur,
// querying learned contacts until one strictly closer to k than curDist is
// found. It returns the sequence of queried nodes ending with that closer
// node, or ok=false if the budget is exhausted.
func (nw *Network) xorIterativeEscape(cur int, k id.ID, curDist uint64) (detour []int, ok bool) {
	space := nw.pop.Space()
	// known tracks every node already queried or shortlisted, so a contact
	// enters the shortlist exactly once.
	known := map[int]bool{cur: true}
	shortlist := make([]int, 0, 2*xorEscapeBudget)
	for _, nb := range nw.out[cur] {
		if !known[int(nb)] {
			known[int(nb)] = true
			shortlist = append(shortlist, int(nb))
		}
	}
	for i := 0; i < xorEscapeBudget && len(shortlist) > 0; i++ {
		// Pop the learned contact closest to the key.
		bestIdx := 0
		bestDist := space.XOR(nw.pop.IDOf(shortlist[0]), k)
		for j := 1; j < len(shortlist); j++ {
			if d := space.XOR(nw.pop.IDOf(shortlist[j]), k); d < bestDist {
				bestIdx, bestDist = j, d
			}
		}
		next := shortlist[bestIdx]
		shortlist[bestIdx] = shortlist[len(shortlist)-1]
		shortlist = shortlist[:len(shortlist)-1]
		detour = append(detour, next)
		if bestDist < curDist {
			return detour, true
		}
		for _, nb := range nw.out[next] {
			if !known[int(nb)] {
				known[int(nb)] = true
				shortlist = append(shortlist, int(nb))
			}
		}
	}
	return nil, false
}

// RouteLookahead routes from node `from` toward key k using greedy routing
// with one-step lookahead (Section 3.1): at every step the node examines all
// pairs (neighbor, neighbor-of-neighbor) and forwards to the neighbor whose
// best pair reduces the remaining distance the most, without overshooting.
// This is the O(log n / log log n) routing mode of Symphony and Cacophony.
func (nw *Network) RouteLookahead(from int, k id.ID) Route {
	space := nw.pop.Space()
	path := []int{from}
	cur := from
	for hops := 0; hops <= nw.Len(); hops++ {
		remaining := space.Clockwise(nw.pop.IDOf(cur), k)
		if remaining == 0 {
			break
		}
		best, bestScore := -1, uint64(0)
		for _, nb := range nw.out[cur] {
			adv := space.Clockwise(nw.pop.IDOf(cur), nw.pop.IDOf(int(nb)))
			if adv > remaining {
				continue
			}
			// The pair score is the best total advance achievable through
			// nb; a bare hop to nb counts as the trivial second step.
			pairBest := adv
			nbRemaining := remaining - adv
			for _, nb2 := range nw.out[int(nb)] {
				adv2 := space.Clockwise(nw.pop.IDOf(int(nb)), nw.pop.IDOf(int(nb2)))
				if adv2 <= nbRemaining && adv+adv2 > pairBest {
					pairBest = adv + adv2
				}
			}
			if pairBest > bestScore || (pairBest == bestScore && best >= 0 && adv > space.Clockwise(nw.pop.IDOf(cur), nw.pop.IDOf(best))) {
				best, bestScore = int(nb), pairBest
			}
		}
		if best < 0 {
			break
		}
		cur = best
		path = append(path, cur)
	}
	return Route{Nodes: path, Success: cur == nw.pop.OwnerOf(k)}
}

// RouteGrouped routes from node `from` toward key k in a network built with
// group-based proximity adaptation (Section 3.6): routing first proceeds
// between groups — greedy on the clockwise distance over T-bit group IDs,
// never overshooting the group of the key's owner — and then finishes inside
// the destination group over the dense intra-group links. Hops within the
// current group still use ordinary greedy clockwise steps toward the owner,
// which is how Crescendo (Prox.) exploits its lower-level rings.
func (nw *Network) RouteGrouped(from int, k id.ID, groupBits uint) Route {
	if groupBits == 0 {
		return nw.routeClockwise(from, k)
	}
	space := nw.pop.Space()
	groupCount := uint64(1) << groupBits
	groupOf := func(n int) uint64 { return space.Prefix(nw.pop.IDOf(n), groupBits) }
	gDist := func(a, b uint64) uint64 { return (b - a) & (groupCount - 1) }

	owner := nw.pop.OwnerOf(k)
	gOwner := groupOf(owner)
	path := []int{from}
	cur := from
	for hops := 0; hops <= nw.Len(); hops++ {
		if cur == owner {
			break
		}
		if nw.HasLink(cur, owner) {
			cur = owner
			path = append(path, cur)
			break
		}
		gCur := groupOf(cur)
		gRem := gDist(gCur, gOwner)
		// Stage 1: advance between groups without overshooting the owner's
		// group; prefer the largest group advance, then the largest node
		// advance.
		best, bestG, bestAdv := -1, uint64(0), uint64(0)
		if gRem > 0 {
			for _, nb := range nw.out[cur] {
				g := gDist(gCur, groupOf(int(nb)))
				if g == 0 || g > gRem {
					continue
				}
				adv := space.Clockwise(nw.pop.IDOf(cur), nw.pop.IDOf(int(nb)))
				if g > bestG || (g == bestG && adv > bestAdv) {
					best, bestG, bestAdv = int(nb), g, adv
				}
			}
		}
		if best < 0 {
			// Stage 2 / same-group motion: ordinary greedy clockwise toward
			// the owner among same-group neighbors.
			rem := space.Clockwise(nw.pop.IDOf(cur), nw.pop.IDOf(owner))
			for _, nb := range nw.out[cur] {
				if groupOf(int(nb)) != gCur {
					continue
				}
				adv := space.Clockwise(nw.pop.IDOf(cur), nw.pop.IDOf(int(nb)))
				if adv >= 1 && adv <= rem && adv > bestAdv {
					best, bestAdv = int(nb), adv
				}
			}
		}
		if best < 0 {
			break
		}
		cur = best
		path = append(path, cur)
	}
	return Route{Nodes: path, Success: cur == owner}
}

// PathDomains returns, for each hop (edge) of the route, the depth of the
// lowest common ancestor of the two endpoints' leaf domains. A hop whose LCA
// depth is < level crosses a level-`level` domain boundary; experiments use
// this to count inter-domain links (Figures 8 and 9).
func (nw *Network) PathDomains(r Route) []int {
	if len(r.Nodes) < 2 {
		return nil
	}
	out := make([]int, len(r.Nodes)-1)
	for i := 0; i+1 < len(r.Nodes); i++ {
		a := nw.pop.LeafOf(r.Nodes[i])
		b := nw.pop.LeafOf(r.Nodes[i+1])
		out[i] = hierarchy.LCA(a, b).Depth()
	}
	return out
}
