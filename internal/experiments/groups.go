package experiments

import (
	"fmt"
	"math/rand"

	"github.com/canon-dht/canon/internal/balance"
	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/metrics"
)

// GroupSizes quantifies Section 3.6's aside that smart ID selection keeps
// proximity-group sizes even: nodes are grouped by their top T bits, and the
// experiment reports the max/mean and empty-group fraction under random ID
// selection versus the bisection scheme of Section 4.3.
func GroupSizes(cfg Config, n, targetGroupSize int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	space := id.DefaultSpace()
	t := groupBitsFor(n, targetGroupSize)
	tbl := &metrics.Table{
		Title:  fmt.Sprintf("Section 3.6: proximity group sizes, %d nodes, %d-bit groups", n, t),
		XLabel: "row",
	}
	maxOverMean := &metrics.Series{Name: "max/mean group size"}
	emptyFrac := &metrics.Series{Name: "empty group fraction"}

	rng := rand.New(rand.NewSource(cfg.Seed))
	randomIDs, err := balance.RandomIDs(rng, space, n)
	if err != nil {
		return nil, err
	}
	b := balance.NewBisector(space)
	for i := 0; i < n; i++ {
		if _, err := b.Join(rng); err != nil {
			return nil, err
		}
	}
	for i, ids := range [][]id.ID{randomIDs, b.IDs()} {
		mm, ef := groupStats(space, ids, t)
		maxOverMean.Append(float64(i+1), mm)
		emptyFrac.Append(float64(i+1), ef)
	}
	tbl.AddSeries(maxOverMean)
	tbl.AddSeries(emptyFrac)
	tbl.AddNote("row 1: random ids; row 2: bisection ids (smart selection)")
	tbl.AddNote("bisection's advantage grows as the target group size shrinks; at large targets both are Poisson-dominated")
	return tbl, nil
}

func groupBitsFor(n, target int) uint {
	t := uint(0)
	for (n >> t) > target {
		t++
	}
	return t
}

// groupStats returns max/mean group occupancy and the fraction of empty
// groups when ids are bucketed by their top t bits.
func groupStats(space id.Space, ids []id.ID, t uint) (maxOverMean, emptyFraction float64) {
	groups := uint64(1) << t
	counts := make(map[uint64]int, groups)
	for _, v := range ids {
		counts[space.Prefix(v, t)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(ids)) / float64(groups)
	empty := float64(groups-uint64(len(counts))) / float64(groups)
	return float64(max) / mean, empty
}
