package lint

// wireextract.go drives the v4 symbolic wire-schema extraction: it finds
// every AppendBinary/UnmarshalBinary codec pair (and the package-level
// envelope codec) in the configured wire packages, runs the encoder
// interpreter (wireenc.go) and the decoder interpreter (wiredec.go) over
// each, pairs the two sides into wireMsg records for the wiresym check, and
// scans every decoder-side function for wire-controlled allocations for the
// wirebounds check. The encoder side is the canonical layout published in
// the WireSchema (the committed baseline diffs against it); the decoder
// side exists to be compared.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// wireNote records a point where the interpreters could not model an
// operation that touches the byte stream. Extraction notes disable the
// symmetric comparison for that message (a partial layout would produce
// false mismatches) and surface through wiresym as their own findings, so
// an unmodelable codec is loud rather than silently unchecked.
type wireNote struct {
	pos token.Pos
	msg string
}

// wireMsg is one codec pair under analysis: the published WireMessage plus
// both interpreted sides and their positions.
type wireMsg struct {
	m      *WireMessage
	enc    []*WireField // encoder-observed layout (canonical)
	dec    []*WireField // decoder-observed layout
	encPos token.Pos
	decPos token.Pos
	encOK  bool
	decOK  bool
	notes  []wireNote
}

// wireAlloc is one decoder allocation sized by a wire-controlled count with
// no recognized bound — the raw material of the wirebounds check.
type wireAlloc struct {
	pos      token.Pos // the make call
	countPos token.Pos // where the count was read from the wire
	fn       string    // enclosing function
	elem     string    // element type
	elemSize int64     // element size in bytes
	count    string    // the count variable's name
}

// wireExtraction is the result of one extraction run over the loaded module.
type wireExtraction struct {
	cfg    *Config
	fset   *token.FileSet
	schema *WireSchema
	msgs   []*wireMsg
	allocs []wireAlloc
	// loaded records which configured wire packages (module-relative) were
	// actually present in this run; wirebreak only judges baseline entries
	// whose package was loaded, so partial runs stay quiet.
	loaded map[string]bool
	// allWireLoaded is true when every configured wire package was loaded —
	// the only situation where completeness findings (undocumented message,
	// doc block with no codec) are sound.
	allWireLoaded bool
	// anchorPos is a stable position in the first loaded wire package, used
	// for findings about things that no longer exist in the tree.
	anchorPos token.Pos
	// byStruct indexes messages by their module-relative struct path.
	byStruct map[string]*wireMsg
	// pkgPos maps module-relative wire package paths to their package
	// clause position, for removal findings.
	pkgPos map[string]token.Pos
}

// wireRel maps a full import path to its module-relative form used in the
// schema ("internal/netnode").
func wireRel(cfg *Config, path string) string {
	if path == cfg.ModulePath {
		return "."
	}
	return strings.TrimPrefix(path, cfg.ModulePath+"/")
}

// wireMsgNameRe splits codec struct names into base + direction:
// lookupReq -> "lookup request", storeReq2 -> "store2 request".
var wireMsgNameRe = regexp.MustCompile(`^(.*?)(Req|Resp)([0-9]*)$`)

// wireNameOf derives the wire-level message name from a Go struct name.
func wireNameOf(structName string) string {
	m := wireMsgNameRe.FindStringSubmatch(structName)
	if m == nil || m[1] == "" {
		return structName
	}
	dir := "request"
	if m[2] == "Resp" {
		dir = "response"
	}
	return strings.ToLower(m[1]) + m[3] + " " + dir
}

// ExtractWireSchema runs the symbolic engine standalone and returns the
// extracted schema (canonvet -schema / -write-schema). Extraction notes and
// bounds findings are dropped; the checks report those during a lint run.
func ExtractWireSchema(cfg *Config, fset *token.FileSet, pkgs []*Package) *WireSchema {
	return extractWire(cfg, fset, pkgs).schema
}

// extractWire interprets every codec in the configured wire packages.
func extractWire(cfg *Config, fset *token.FileSet, pkgs []*Package) *wireExtraction {
	ext := &wireExtraction{
		cfg:  cfg,
		fset: fset,
		schema: &WireSchema{
			Format: wireSchemaFormat,
			Module: cfg.ModulePath,
		},
		loaded:   make(map[string]bool),
		byStruct: make(map[string]*wireMsg),
		pkgPos:   make(map[string]token.Pos),
	}
	for _, pkg := range pkgs {
		if pkg.External || !cfg.WirePackages[pkg.Path] {
			continue
		}
		rel := wireRel(cfg, pkg.Path)
		ext.loaded[rel] = true
		if len(pkg.Files) > 0 {
			ext.pkgPos[rel] = pkg.Files[0].Package
			if !ext.anchorPos.IsValid() {
				ext.anchorPos = pkg.Files[0].Package
			}
		}
		newWirePkg(ext, pkg).run()
	}
	ext.allWireLoaded = true
	for path := range cfg.WirePackages {
		if !ext.loaded[wireRel(cfg, path)] {
			ext.allWireLoaded = false
		}
	}
	for _, wm := range ext.msgs {
		if wm.encOK {
			wm.m.Fields = wm.enc
		} else if wm.decOK {
			// Encoder unmodelable: publish the decoder's view so the
			// schema still names the message; notes flag the gap.
			wm.m.Fields = wm.dec
		}
		ext.schema.Messages = append(ext.schema.Messages, wm.m)
		ext.byStruct[wm.m.Struct] = wm
	}
	ext.schema.sortMessages()
	return ext
}

// wirePkg is the per-package extraction state shared by the encoder and
// decoder interpreters.
type wirePkg struct {
	ext  *wireExtraction
	pkg  *Package
	rel  string // module-relative package path
	info *types.Info

	// decls indexes every non-test FuncDecl by its types object.
	decls map[types.Object]*ast.FuncDecl
	// readerKinds memoizes reader-method classification (wiredec.go).
	readerKinds map[types.Object]string
	// encCache/decCache memoize struct-level interpretation of helper
	// codecs (appendSpan/readSpan and readFrom-style methods).
	encCache map[types.Object]*wireStructSummary
	decCache map[types.Object]*wireStructSummary
	// structSeen tracks which embedded structures already have a schema
	// entry, keyed by module-relative struct path.
	structSeen map[string]*wireMsg
}

// wireStructSummary is the interpreted layout of a helper codec that
// encodes/decodes one embedded structure.
type wireStructSummary struct {
	ref    string // structure name ("Span", "Info")
	spath  string // module-relative struct path
	fields []*WireField
	pos    token.Pos
	notes  []wireNote
	// resultField is what a free helper decoder returns at its call site: a
	// struct field for value builders (readSpan), a slice field for slice
	// builders (readSpans).
	resultField *WireField
}

// result returns the helper's call-site field, synthesizing a struct field
// from ref/fields when the helper was summarized from the method side.
func (s *wireStructSummary) result() *WireField {
	if s.resultField != nil {
		return s.resultField
	}
	if s.ref != "" {
		return &WireField{Enc: wireEncStruct, Ref: s.ref, Elem: s.fields}
	}
	return nil
}

func newWirePkg(ext *wireExtraction, pkg *Package) *wirePkg {
	x := &wirePkg{
		ext:         ext,
		pkg:         pkg,
		rel:         wireRel(ext.cfg, pkg.Path),
		info:        pkg.Info,
		decls:       make(map[types.Object]*ast.FuncDecl),
		readerKinds: make(map[types.Object]string),
		encCache:    make(map[types.Object]*wireStructSummary),
		decCache:    make(map[types.Object]*wireStructSummary),
		structSeen:  make(map[string]*wireMsg),
	}
	for _, f := range pkg.Files {
		if x.isTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				x.decls[obj] = fd
			}
		}
	}
	return x
}

// isTestFile reports whether pos lies in a _test.go file. The loader folds
// in-package test files into the unit, and test files legitimately define
// toy codecs (benchmark bodies) that must not join the wire surface.
func (x *wirePkg) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(x.ext.fset.Position(pos).Filename, "_test.go")
}

// versionOf maps a codec declaration to its wire protocol version via the
// configured file->version table; unlisted files are version 1.
func (x *wirePkg) versionOf(pos token.Pos) int {
	base := filepath.Base(x.ext.fset.Position(pos).Filename)
	if v, ok := x.ext.cfg.WireVersionFiles[base]; ok {
		return v
	}
	return 1
}

// run discovers and interprets every codec pair in the package.
func (x *wirePkg) run() {
	type pair struct {
		enc, dec *ast.FuncDecl
	}
	msgs := make(map[*types.Named]*pair)
	var order []*types.Named
	var envEnc, envDec *ast.FuncDecl
	for obj, fd := range x.decls {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fd.Recv == nil {
			// Package-level envelope codec.
			switch fn.Name() {
			case "AppendBinaryMessage":
				envEnc = fd
			case "DecodeBinaryMessage":
				envDec = fd
			}
			continue
		}
		if fn.Name() != "AppendBinary" && fn.Name() != "UnmarshalBinary" {
			continue
		}
		recv := namedOf(fn.Type().(*types.Signature).Recv().Type())
		if recv == nil {
			continue
		}
		p := msgs[recv]
		if p == nil {
			p = &pair{}
			msgs[recv] = p
			order = append(order, recv)
		}
		if fn.Name() == "AppendBinary" {
			p.enc = fd
		} else {
			p.dec = fd
		}
	}
	// Deterministic order: by type name.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].Obj().Name() < order[i].Obj().Name() {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, named := range order {
		p := msgs[named]
		if p.enc == nil || p.dec == nil {
			// Half a codec is a wirecompat-era concern, not a layout one.
			continue
		}
		x.extractMessage(named, p.enc, p.dec)
	}
	if envEnc != nil && envDec != nil {
		x.extractEnvelope(envEnc, envDec)
	}
	// Bounds scan over every non-test function in the package, codec or
	// helper: allocations from wire counts hide in helpers too.
	for _, fd := range x.decls {
		x.allocScan(fd)
	}
}

// structPath renders a named type's module-relative path
// ("internal/telemetry.Span").
func (x *wirePkg) structPath(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return wireRel(x.ext.cfg, obj.Pkg().Path()) + "." + obj.Name()
}

// extractMessage interprets one AppendBinary/UnmarshalBinary pair.
func (x *wirePkg) extractMessage(named *types.Named, enc, dec *ast.FuncDecl) {
	wm := &wireMsg{
		m: &WireMessage{
			Name:    wireNameOf(named.Obj().Name()),
			Struct:  x.structPath(named),
			Package: x.rel,
			Version: x.versionOf(enc.Pos()),
			Kind:    "message",
		},
		encPos: enc.Pos(),
		decPos: dec.Pos(),
	}
	x.ext.msgs = append(x.ext.msgs, wm)

	encFields, encNotes := x.interpEncoder(enc)
	wm.notes = append(wm.notes, encNotes...)
	if len(encNotes) == 0 {
		wm.enc, wm.encOK = encFields, true
	}
	decFields, decNotes := x.interpDecoder(dec)
	wm.notes = append(wm.notes, decNotes...)
	if len(decNotes) == 0 {
		wm.dec, wm.decOK = decFields, true
	}
}

// extractEnvelope interprets the package-level envelope codec pair.
func (x *wirePkg) extractEnvelope(enc, dec *ast.FuncDecl) {
	wm := &wireMsg{
		m: &WireMessage{
			Name:    "envelope",
			Package: x.rel,
			Version: x.versionOf(enc.Pos()),
			Kind:    "envelope",
		},
		encPos: enc.Pos(),
		decPos: dec.Pos(),
	}
	x.ext.msgs = append(x.ext.msgs, wm)

	encFields, subject, encNotes := x.interpEnvelopeEncoder(enc)
	if subject != "" {
		wm.m.Struct = subject
	}
	wm.notes = append(wm.notes, encNotes...)
	if len(encNotes) == 0 {
		wm.enc, wm.encOK = encFields, true
	}
	decFields, decNotes := x.interpEnvelopeDecoder(dec)
	wm.notes = append(wm.notes, decNotes...)
	if len(decNotes) == 0 {
		wm.dec, wm.decOK = decFields, true
	}
}

// addStructEntry registers (or completes) the schema entry of an embedded
// structure interpreted through a helper codec. The encoder side fills enc,
// the decoder side fills dec; both must agree for wiresym to stay quiet.
func (x *wirePkg) addStructEntry(sum *wireStructSummary, fromEncoder bool) {
	wm := x.structSeen[sum.spath]
	if wm == nil {
		// Top-level messages own their struct path; never shadow them.
		if existing := x.ext.byStruct[sum.spath]; existing != nil {
			return
		}
		for _, m := range x.ext.msgs {
			if m.m.Struct == sum.spath {
				return
			}
		}
		wm = &wireMsg{
			m: &WireMessage{
				Name:    sum.ref,
				Struct:  sum.spath,
				Package: x.rel,
				Version: x.versionOf(sum.pos),
				Kind:    "struct",
			},
			encPos: sum.pos,
			decPos: sum.pos,
		}
		x.structSeen[sum.spath] = wm
		x.ext.msgs = append(x.ext.msgs, wm)
	}
	wm.notes = append(wm.notes, sum.notes...)
	if fromEncoder {
		wm.encPos = sum.pos
		if len(sum.notes) == 0 {
			wm.enc, wm.encOK = sum.fields, true
		}
	} else {
		wm.decPos = sum.pos
		if len(sum.notes) == 0 {
			wm.dec, wm.decOK = sum.fields, true
		}
	}
}
