// Wire message types and domain-name helpers; the package documentation
// lives in doc.go.
package netnode

import (
	"hash/fnv"
	"strings"

	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/telemetry"
)

// Info identifies a live node on the wire.
type Info struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// IsZero reports whether the Info is unset.
func (i Info) IsZero() bool { return i.Addr == "" }

// Message type identifiers.
const (
	msgLookup    = "lookup"
	msgNeighbors = "neighbors"
	msgNotify    = "notify"
	msgPing      = "ping"
	msgStore     = "store"
	msgFetch     = "fetch"
	msgRegister  = "register"
	msgMembers   = "members"
	msgLeaving   = "leaving"
)

// lookupReq asks for the predecessor (owner) and successor of Key among the
// nodes of the domain named by Prefix ("" = the whole system).
//
// Trace, when non-empty, is a distributed trace context: every node the
// lookup passes through appends one telemetry.Span to Spans before
// forwarding (or answers with the accumulated spans, terminal span
// included). The span list rides the request clockwise and returns to the
// originator inside lookupResp, so the route's per-hop evidence — node,
// domain, routing level, route-arounds — costs no extra messages. Untraced
// lookups carry neither field on the wire (omitempty).
type lookupReq struct {
	Key    uint64 `json:"key"`
	Prefix string `json:"prefix"`
	Hops   int    `json:"hops"`
	// Trace is the trace identifier; empty means the lookup is untraced.
	Trace string `json:"trace,omitempty"`
	// Spans accumulates one record per hop already taken.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

type lookupResp struct {
	Pred Info `json:"pred"`
	Succ Info `json:"succ"`
	Hops int  `json:"hops"`
	// Trace and Spans echo a traced request's context with the terminal
	// span appended; see lookupReq.
	Trace string           `json:"trace,omitempty"`
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// neighborsReq asks for a node's neighbor state at one level.
type neighborsReq struct {
	Level int `json:"level"`
}

type neighborsResp struct {
	Pred  Info   `json:"pred"`
	Succs []Info `json:"succs"`
}

// notifyReq tells a node that From may be its predecessor at Level, or —
// with AsSuccessor set — that From may be its successor (the paper's eager
// notification of nodes that would otherwise erroneously skip a joiner).
type notifyReq struct {
	Level       int  `json:"level"`
	From        Info `json:"from"`
	AsSuccessor bool `json:"asSuccessor,omitempty"`
}

// storeReq stores a key-value pair (or a pointer to one) at the receiver.
type storeReq struct {
	Key     uint64 `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Storage string `json:"storage"`
	Access  string `json:"access"`
	// Pointer, when set, is the node actually holding the value.
	Pointer Info `json:"pointer,omitempty"`
	// Replica marks a copy pushed by the key's owner to its successors; the
	// receiver stores it without re-replicating.
	Replica bool `json:"replica,omitempty"`
}

// fetchReq retrieves values for Key visible to a querier named Origin.
type fetchReq struct {
	Key    uint64 `json:"key"`
	Origin string `json:"origin"`
}

type fetchValue struct {
	Value   []byte `json:"value"`
	Access  string `json:"access"`
	Pointer Info   `json:"pointer,omitempty"`
}

type fetchResp struct {
	Values []fetchValue `json:"values"`
}

// registerReq records From as a live member of the domain named Prefix in
// the receiver's membership registry.
type registerReq struct {
	Prefix string `json:"prefix"`
	From   Info   `json:"from"`
}

// membersReq asks for registered members of the domain named Prefix.
type membersReq struct {
	Prefix string `json:"prefix"`
}

type membersResp struct {
	Members []Info `json:"members"`
}

// leavingReq announces a graceful departure at every shared level.
type leavingReq struct {
	From  Info   `json:"from"`
	Succs []Info `json:"succs"` // the leaver's global successor list, as repair hints
}

// components splits a hierarchical name; the root is the empty slice.
func components(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, "/")
}

// prefixAt returns the first `level` components of name joined back into a
// domain path; level 0 is the root ("").
func prefixAt(name string, level int) string {
	if level <= 0 {
		return ""
	}
	comps := components(name)
	if level >= len(comps) {
		return name
	}
	return strings.Join(comps[:level], "/")
}

// prefixLevel returns the chain depth a domain prefix names: 0 for the root
// (""), otherwise one more than its separator count. It is the allocation-free
// counterpart of len(components(prefix)) used on the lookup hot path.
func prefixLevel(prefix string) int {
	if prefix == "" {
		return 0
	}
	return strings.Count(prefix, "/") + 1
}

// inDomain reports whether a node named `name` belongs to the domain named
// `prefix` (the root contains everyone).
func inDomain(name, prefix string) bool {
	if prefix == "" {
		return true
	}
	return name == prefix || strings.HasPrefix(name, prefix+"/")
}

// sharedLevels returns the number of leading name components two nodes
// share: the depth of their lowest common domain.
func sharedLevels(a, b string) int {
	ca, cb := components(a), components(b)
	n := 0
	for n < len(ca) && n < len(cb) && ca[n] == cb[n] {
		n++
	}
	return n
}

// domainKey hashes a domain name into the identifier space; the membership
// registry for the domain lives at this key's owner.
func domainKey(space id.Space, prefix string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("canon-domain:" + prefix))
	return h.Sum64() & space.Mask()
}
