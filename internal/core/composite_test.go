package core_test

import (
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/chord"
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

// buildComposite builds the Section 3.5 LAN composite: complete graphs in
// leaf domains, Crescendo merges above.
func buildComposite(t *testing.T, seed int64, n, levels, fanout int) *core.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := id.DefaultSpace()
	tree, err := hierarchy.Balanced(levels, fanout)
	if err != nil {
		t.Fatal(err)
	}
	leaves := hierarchy.AssignUniform(rng, tree, n)
	pop, err := core.RandomPopulation(rng, space, tree, leaves)
	if err != nil {
		t.Fatal(err)
	}
	geom := core.Compose(core.NewCompleteGeometry(space), chord.NewDeterministic(space))
	return core.Build(pop, geom, rng)
}

func TestCompositeLeafIsCompleteGraph(t *testing.T) {
	nw := buildComposite(t, 121, 256, 2, 8)
	pop := nw.Population()
	for i := 0; i < nw.Len(); i++ {
		ring := nw.RingOf(pop.LeafOf(i))
		for pos := 0; pos < ring.Len(); pos++ {
			other := ring.Member(pos)
			if other == i {
				continue
			}
			if !nw.HasLink(i, other) {
				t.Fatalf("node %d missing LAN link to %d", i, other)
			}
		}
	}
}

// TestCompositeLANRoutingOneHop: intra-LAN routes take exactly one hop.
func TestCompositeLANRoutingOneHop(t *testing.T) {
	nw := buildComposite(t, 122, 256, 2, 8)
	pop := nw.Population()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		from := rng.Intn(nw.Len())
		ring := nw.RingOf(pop.LeafOf(from))
		to := ring.Member(rng.Intn(ring.Len()))
		if to == from {
			continue
		}
		r := nw.RouteToNode(from, to)
		if !r.Success || r.Hops() != 1 {
			t.Fatalf("intra-LAN route %d -> %d took %d hops", from, to, r.Hops())
		}
	}
}

// TestCompositeGlobalRouting: cross-LAN routing still completes, and path
// locality holds (the composite preserves the Canon properties).
func TestCompositeGlobalRouting(t *testing.T) {
	nw := buildComposite(t, 123, 512, 3, 4)
	pop := nw.Population()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		from, to := rng.Intn(nw.Len()), rng.Intn(nw.Len())
		r := nw.RouteToNode(from, to)
		if !r.Success || r.Last() != to {
			t.Fatalf("route %d -> %d failed", from, to)
		}
		lca := hierarchy.LCA(pop.LeafOf(from), pop.LeafOf(to))
		for _, hop := range r.Nodes {
			if !lca.IsAncestorOf(pop.LeafOf(hop)) {
				t.Fatalf("route %d -> %d left %q", from, to, lca.Path())
			}
		}
	}
}

// TestCompositeUpperBounds: inter-LAN links still obey condition (b), so the
// degree stays tame despite complete LAN graphs.
func TestCompositeUpperBounds(t *testing.T) {
	nw := buildComposite(t, 124, 512, 2, 16) // 16 LANs of ~32 nodes
	pop := nw.Population()
	space := pop.Space()
	for i := 0; i < nw.Len(); i++ {
		leafRing := nw.RingOf(pop.LeafOf(i))
		bound := leafRing.SuccessorDistance(leafRing.PosOfMember(i))
		crossLinks := 0
		for _, l := range nw.Links(i) {
			if pop.LeafOf(int(l)) == pop.LeafOf(i) {
				continue
			}
			crossLinks++
			if d := space.Clockwise(pop.IDOf(i), pop.IDOf(int(l))); d >= bound {
				t.Fatalf("node %d cross-LAN link at distance %d >= bound %d", i, d, bound)
			}
		}
		if crossLinks > 40 {
			t.Fatalf("node %d has %d cross-LAN links", i, crossLinks)
		}
	}
}

func TestCompositeMetadata(t *testing.T) {
	space := id.DefaultSpace()
	g := core.Compose(core.NewCompleteGeometry(space), chord.NewDeterministic(space))
	if g.Name() != "complete/chord" {
		t.Errorf("Name = %q", g.Name())
	}
	if g.Metric() != core.MetricClockwise {
		t.Error("composite metric should come from the upper geometry")
	}
}
