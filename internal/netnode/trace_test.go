package netnode_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

// traceDomains spreads a traced cluster across two regions of two
// departments each, so routes have both intra-domain spans and level
// boundaries to cross.
var traceDomains = []string{"west/a", "west/b", "east/a", "east/b"}

// traceNames returns n node names round-robin across traceDomains.
func traceNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = traceDomains[i%len(traceDomains)]
	}
	return names
}

// membersOf collects the cluster's nodes inside one domain.
func membersOf(c *cluster, domain string) []*netnode.Node {
	var out []*netnode.Node
	for _, n := range c.nodes {
		name := n.Info().Name
		if name == domain || strings.HasPrefix(name, domain+"/") {
			out = append(out, n)
		}
	}
	return out
}

// checkSpans asserts the structural invariants every completed trace must
// satisfy: a span per hop with strictly increasing hop numbers, starting at
// the querier, ending in exactly one Owner span.
func checkSpans(t *testing.T, tr telemetry.Trace, src netnode.Info) {
	t.Helper()
	if len(tr.Spans) == 0 {
		t.Fatalf("trace %s: no spans", tr.ID)
	}
	if tr.Spans[0].Addr != src.Addr {
		t.Fatalf("trace %s: first span %s, want querier %s", tr.ID, tr.Spans[0].Addr, src.Addr)
	}
	owners := 0
	for i, s := range tr.Spans {
		if s.Hop != i {
			t.Fatalf("trace %s: span %d has hop %d (duplicate or missing hop evidence)", tr.ID, i, s.Hop)
		}
		if s.Owner {
			owners++
			if i != len(tr.Spans)-1 {
				t.Fatalf("trace %s: owner span at %d is not terminal", tr.ID, i)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("trace %s: %d owner spans, want exactly 1", tr.ID, owners)
	}
}

// TestTraceIntraDomainLocality is the live form of the paper's path-locality
// guarantee (Section 3.2): on a 64-node cluster spread over four leaf
// domains, lookups constrained to the querier's own domain must never leave
// it — checked hop by hop against the wire spans of traced lookups, and the
// completed trace must be queryable from the entry node's trace store.
func TestTraceIntraDomainLocality(t *testing.T) {
	c := newCluster(t, 11, traceNames(64))
	defer c.close(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(17))

	for _, domain := range traceDomains {
		members := membersOf(c, domain)
		if len(members) != 16 {
			t.Fatalf("domain %s has %d members, want 16", domain, len(members))
		}
		for i := 0; i < 40; i++ {
			src := members[rng.Intn(len(members))]
			key := uint64(rng.Uint32())
			owner, tr, err := src.TracedLookup(ctx, key, domain)
			if err != nil {
				t.Fatalf("traced lookup in %s: %v", domain, err)
			}
			checkSpans(t, tr, src.Info())
			if got := tr.OutOfDomainHops(domain); got != 0 {
				t.Fatalf("lookup for %d constrained to %s took %d out-of-domain hops:\n%+v",
					key, domain, got, tr.Spans)
			}
			if !strings.HasPrefix(owner.Name, domain) {
				t.Fatalf("owner %q of domain-constrained lookup is outside %s", owner.Name, domain)
			}
			stored, ok := src.TraceStore().Get(tr.ID)
			if !ok {
				t.Fatalf("trace %s not archived in the entry node's store", tr.ID)
			}
			if len(stored.Spans) != len(tr.Spans) {
				t.Fatalf("archived trace %s has %d spans, returned trace %d",
					tr.ID, len(stored.Spans), len(tr.Spans))
			}
		}
	}
}

// TestTraceProxyConvergence is the live form of the paper's proxy-convergence
// guarantee (Section 3.2): for a key owned outside a domain, traced lookups
// from several distinct members of that domain must all exit the domain
// through the same proxy node — the domain's closest predecessor of the key.
func TestTraceProxyConvergence(t *testing.T) {
	const sources = 4
	c := newCluster(t, 23, traceNames(64))
	defer c.close(t)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(29))

	tested := 0
	for _, domain := range traceDomains {
		members := membersOf(c, domain)
		for checked := 0; checked < 8; {
			key := uint64(rng.Uint32())
			owner, err := members[0].Lookup(ctx, key, "")
			if err != nil {
				t.Fatalf("ground-truth lookup: %v", err)
			}
			if strings.HasPrefix(owner.Name, domain) {
				continue // the domain owns this key itself: no proxy involved
			}
			proxies := make(map[string]bool)
			perm := rng.Perm(len(members))
			for s := 0; s < sources; s++ {
				src := members[perm[s]]
				gotOwner, tr, err := src.TracedLookup(ctx, key, "")
				if err != nil {
					t.Fatalf("traced lookup: %v", err)
				}
				checkSpans(t, tr, src.Info())
				if gotOwner.Addr != owner.Addr {
					t.Fatalf("source %s resolved key %d to %s, ground truth %s",
						src.Info().Addr, key, gotOwner.Addr, owner.Addr)
				}
				proxy, ok := tr.ExitProxy(domain)
				if !ok {
					t.Fatalf("trace from %s never shows a span inside %s", src.Info().Addr, domain)
				}
				proxies[proxy.Addr] = true
			}
			if len(proxies) != 1 {
				t.Fatalf("key %d (owner %s): %d sources in %s exited through %d distinct proxies %v, want 1",
					key, owner.Name, sources, domain, len(proxies), proxies)
			}
			checked++
			tested++
		}
	}
	if tested != 8*len(traceDomains) {
		t.Fatalf("tested %d keys, want %d", tested, 8*len(traceDomains))
	}
}

// TestTracedLookupDedupUnderDuplication pins the at-most-once guarantee the
// trace evidence relies on: with 20% of requests delivered twice on every
// link, nonce dedup must suppress the duplicate handler runs, so (a) every
// trace still carries exactly one span per hop, and (b) the cluster-wide
// count of received lookup RPCs grows by exactly one per forwarded hop —
// duplicates never double-count spans or metrics.
func TestTracedLookupDedupUnderDuplication(t *testing.T) {
	const (
		nNodes  = 32
		lookups = 200
		dup     = 0.20
	)
	c := newFaultyCluster(t, 41, nNodes, "org/dept")
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))

	received := func() int64 {
		var total int64
		for _, nd := range c.nodes {
			total += nd.Stats().Received["lookup"]
		}
		return total
	}

	for _, ft := range c.faulties {
		ft.SetFaults(transport.Faults{Dup: dup})
	}
	before := received()
	var forwards int64
	for i := 0; i < lookups; i++ {
		src := c.nodes[rng.Intn(nNodes)]
		_, tr, err := src.TracedLookup(ctx, uint64(rng.Uint32()), "")
		if err != nil {
			t.Fatalf("traced lookup %d under duplication: %v", i, err)
		}
		checkSpans(t, tr, src.Info())
		// The entry hop runs locally; every later span is one forwarded RPC.
		forwards += int64(len(tr.Spans) - 1)
	}
	delta := received() - before
	for _, ft := range c.faulties {
		ft.SetFaults(transport.Faults{})
	}

	var duplicated, dedupHits int64
	for _, ft := range c.faulties {
		st := ft.FaultStats()
		duplicated += st.Duplicated
		dedupHits += st.DedupHits
	}
	t.Logf("forwards %d, received lookup RPCs %d, injected duplicates %d, dedup hits %d",
		forwards, delta, duplicated, dedupHits)
	if duplicated == 0 {
		t.Fatal("fault injection duplicated nothing at 20% — the test measured a clean network")
	}
	if dedupHits == 0 {
		t.Fatal("no duplicate delivery was ever suppressed: nonce dedup is not engaged")
	}
	if delta != forwards {
		t.Fatalf("received lookup RPCs grew by %d but traces show %d forwards: duplicates leaked into the counters",
			delta, forwards)
	}
}

// TestTelemetryRegistryBacksStats verifies the registry is the single source
// of truth behind the legacy Stats() API and the Prometheus exposition: after
// real traffic, the node's own registry must carry nonzero RPC counters and
// render them in exposition format.
func TestTelemetryRegistryBacksStats(t *testing.T) {
	c := newCluster(t, 7, traceNames(16))
	defer c.close(t)
	ctx := context.Background()

	if _, _, err := c.nodes[1].TracedLookup(ctx, 12345, ""); err != nil {
		t.Fatal(err)
	}
	st := c.nodes[1].Stats()
	reg := c.nodes[1].Telemetry()
	for msgType, want := range st.Sent {
		got := reg.CounterValue("canon_rpc_sent_total", telemetry.L("type", msgType))
		if got != want {
			t.Fatalf("Stats().Sent[%s] = %d but registry counter = %d", msgType, want, got)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{"canon_rpc_sent_total", "canon_lookup_hops", "canon_traces_completed_total"} {
		if !strings.Contains(text, series) {
			t.Fatalf("exposition is missing %s:\n%s", series, text)
		}
	}
}
