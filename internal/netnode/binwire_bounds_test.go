package netnode

import (
	"encoding/binary"
	"testing"
)

// hostilePayload builds prefix + uvarint(count+1) + count bytes of pad —
// a slice header whose declared count passes the one-byte-per-element
// plausibility check in sliceLen but whose elements cannot all decode.
func hostilePayload(prefix []byte, count int, pad byte) []byte {
	b := append([]byte{}, prefix...)
	b = binary.AppendUvarint(b, uint64(count+1))
	padding := make([]byte, count)
	for i := range padding {
		padding[i] = pad
	}
	return append(b, padding...)
}

// TestBinWireHostileCountsBounded pins the wirebounds fix: every decoder
// that preallocates from a wire-declared element count must cap the
// reservation at maxDecodePrealloc. Each payload here claims 200k elements;
// the 0xff padding makes the first element's (u)varint overflow immediately,
// so the decode errors with zero elements appended and the slice left in the
// struct still has exactly the capacity the decoder reserved up front —
// which must be the cap, not the claimed count. The decode must also still
// fail: the cap bounds the reservation, never forgives the bad count.
func TestBinWireHostileCountsBounded(t *testing.T) {
	const n = 200_000

	check := func(name string, err error, gotCap int) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: hostile payload decoded without error", name)
		}
		if gotCap > maxDecodePrealloc {
			t.Errorf("%s: decoder reserved capacity %d for a claimed count of %d (cap is %d)",
				name, gotCap, n, maxDecodePrealloc)
		}
	}

	// lookupReq: Key u64, empty Prefix, Hops 0, empty Trace, then Spans.
	var lq lookupReq
	lookupPrefix := append(make([]byte, 8), 0x00, 0x00, 0x00)
	check("lookupReq.Spans", lq.UnmarshalBinary(hostilePayload(lookupPrefix, n, 0xff)), cap(lq.Spans))

	var fp fetchResp
	check("fetchResp.Values", fp.UnmarshalBinary(hostilePayload(nil, n, 0xff)), cap(fp.Values))

	// syncKeysReq: empty Prefix, Lo, Hi, then Buckets.
	var kq syncKeysReq
	check("syncKeysReq.Buckets", kq.UnmarshalBinary(hostilePayload(make([]byte, 17), n, 0xff)), cap(kq.Buckets))

	var kp syncKeysResp
	check("syncKeysResp.Items", kp.UnmarshalBinary(hostilePayload(nil, n, 0xff)), cap(kp.Items))

	var pp syncPullResp
	check("syncPullResp.Entries", pp.UnmarshalBinary(hostilePayload(nil, n, 0xff)), cap(pp.Entries))

	// syncTreeResp leaves are raw u64s, so 0xff bytes decode fine and the
	// capacity legitimately grows past the preallocation as elements land;
	// an odd padding length still truncates the last element. The claimed
	// count of 200_001 would reserve 1.6 MB up front — with the cap, the
	// capacity only ever reflects the ~25k elements actually decoded.
	var tp syncTreeResp
	err := tp.UnmarshalBinary(hostilePayload(make([]byte, 8), n+1, 0xff))
	if err == nil {
		t.Error("syncTreeResp.Leaves: hostile payload decoded without error")
	}
	if cap(tp.Leaves) > (n+1)/2 {
		t.Errorf("syncTreeResp.Leaves: decoder reserved capacity %d for a claimed count of %d (cap is %d)",
			cap(tp.Leaves), n+1, maxDecodePrealloc)
	}
}
