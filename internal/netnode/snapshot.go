// Epoch/copy-on-write routing snapshots: the lock-free read side of the
// node's routing state.
//
// The mutable routing tables (Node.preds/succs/fingers, guarded by Node.mu)
// stay the write-side source of truth, but the forwarding hot path never
// reads them. Instead every mutation republishes an immutable routingView
// through a single atomic-pointer swap, and handleLookup loads the pointer
// once per hop: one complete, internally consistent view per lookup, no
// mutex, no allocation, and no possibility of observing level 0 from one
// stabilization round and level 2 from another (a "torn" view).
//
// Everything a forwarding decision needs is precomputed at build time:
//   - the per-level candidate sets (fingers + all levels' successor lists +
//     predecessors, deduplicated, filtered into each domain of the node's
//     chain), sorted ascending by clockwise distance so a binary search finds
//     the advance-without-overshoot window;
//   - each candidate's Canon link-retention admissibility (Section 2.2) and
//     the routing level of the hop it would take (the span's Level field);
//   - the node's own domain-prefix chain, so request prefixes resolve to a
//     level by string compare instead of splitting.
//
// Memory reclamation is delegated to the garbage collector: a reader that
// loaded an old epoch keeps it alive for the duration of one forwarding
// decision, after which the view becomes unreachable and is collected. No
// hazard pointers, no epochs-in-flight bookkeeping.
//
// The builder in this file is the ONLY place snapshot types may be written;
// canonvet's snapshotmut check enforces that mechanically via the
// //canonvet:immutable markers on the type declarations below.
package netnode

import (
	"sort"

	"github.com/canon-dht/canon/internal/id"
)

// forwardAttemptLimit bounds how many next-hop candidates one hop will try
// before answering best-effort (a whole region being down is a stabilization
// problem, not a per-lookup one).
const forwardAttemptLimit = 8

// routingView is one published epoch of routing state. It is immutable after
// buildRoutingView returns: readers share it without synchronization beyond
// the atomic pointer load that obtained it.
//
//canonvet:immutable
type routingView struct {
	// epoch counts publications, starting at 1 for the view New installs.
	// epochSeal is set to the same value as the builder's final write; the
	// snapshot-consistency suite asserts they always agree, which regresses
	// any future "optimization" that replaces the single pointer swap with
	// per-field publication.
	epoch  uint64
	space  id.Space
	self   Info
	levels int
	// geom is the node's routing geometry: the forwarding decision switches
	// on it (forwardSet for Crescendo's distance order, forwardSetScored for
	// Kandy/Cacophony ranking) without dynamic dispatch.
	geom geomKind

	// prefixes[l] is prefixAt(self.Name, l): the only domain prefixes this
	// node can serve lookups for.
	prefixes []string

	preds   []Info   // per level
	succs   [][]Info // per level, ascending clockwise from self
	fingers []Info   // sorted by ID, for Fingers()-style enumeration

	// cands[l] holds every distinct contact inside domain prefixes[l],
	// sorted ascending by clockwise distance from self (ties by address).
	cands [][]viewCandidate

	// looks[l][i] is Cacophony's 1-lookahead fact for cands[l][i]: the
	// clockwise distance from self to that contact's level-l ring successor,
	// 0 when unknown (no exchange yet, or a non-Cacophony geometry — the
	// scorer then degrades to the candidate's own advance). Kept parallel to
	// cands rather than inside viewCandidate so the Crescendo hot path's
	// candidate copies stay one cache line.
	looks [][]uint64

	epochSeal uint64
}

// viewCandidate is one precomputed forwarding candidate inside a
// routingView. dist is always >= 1 (zero-advance contacts are dropped at
// build time) and admissible caches the Section 2.2 link-retention verdict.
//
//canonvet:immutable
type viewCandidate struct {
	info Info
	// dist is the clockwise ring distance from self to the candidate.
	dist uint64
	// level is sharedLevels(self.Name, info.Name): the routing level a hop
	// to this candidate takes, recorded in trace spans.
	level int
	// admissible is the Canon link-retention rule's verdict for using this
	// contact as a greedy candidate (see canonAdmissible, the mutex-held
	// reference implementation this precomputation must agree with).
	admissible bool
}

// levelOf resolves a request's domain prefix to a level of this node's
// chain. ok is false when the prefix does not name one of the node's own
// domains — exactly the lookups inDomain(self.Name, prefix) rejects. It
// allocates nothing.
func (v *routingView) levelOf(prefix string) (int, bool) {
	l := prefixLevel(prefix)
	if l > v.levels || v.prefixes[l] != prefix {
		return 0, false
	}
	return l, true
}

// succAt returns the node's current successor inside its level-l domain
// (itself when alone), mirroring succInDomain on the snapshot.
func (v *routingView) succAt(l int) Info {
	if len(v.succs[l]) == 0 {
		return v.self
	}
	return v.succs[l][0]
}

// forwardSet fills dst with up to len(dst) forwarding candidates for key
// within the level-l domain, in the order one hop should try them: peers the
// failure detector prefers first, distance-descending (closest to the key
// without overshooting) within each class. It returns how many candidates it
// wrote, the address of the distance-best candidate (for the RouteAround
// span flag), and whether that best candidate was demoted behind a healthy
// one (the route-around metric). The call takes no locks and performs no
// heap allocations — this is the forwarding hot path.
func (v *routingView) forwardSet(health *healthTracker, key uint64, l int, dst []viewCandidate) (n int, bestAddr string, routedAround bool) {
	if v.geom != geomCrescendo {
		return v.forwardSetScored(health, key, l, dst)
	}
	rem := v.space.Clockwise(id.ID(v.self.ID), id.ID(key))
	if rem == 0 {
		return 0, "", false
	}
	cands := v.cands[l]
	// Binary search for the end of the advance-without-overshoot window:
	// candidates[0:hi] all have 1 <= dist <= rem.
	lo, hi := 0, len(cands)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cands[mid].dist <= rem {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// One descending pass: preferred candidates go straight into dst,
	// distrusted ones wait in a fixed spare buffer and sink behind every
	// healthy candidate (still distance-ordered) — last-resort options, so a
	// wrongly accused peer cannot partition the lookup.
	var spare [forwardAttemptLimit]viewCandidate
	nSpare := 0
	sawBest := false
	bestDemoted := false
	for i := lo - 1; i >= 0 && n < len(dst); i-- {
		c := cands[i]
		if !c.admissible {
			continue
		}
		pref := health.preferred(c.info.Addr)
		if !sawBest {
			sawBest = true
			bestAddr = c.info.Addr
			bestDemoted = !pref
		}
		if pref {
			dst[n] = c
			n++
		} else if nSpare < len(spare) {
			spare[nSpare] = c
			nSpare++
		}
	}
	routedAround = bestDemoted && n > 0
	for i := 0; i < nSpare && n < len(dst); i++ {
		dst[n] = spare[i]
		n++
	}
	return n, bestAddr, routedAround
}

// forwardSetScored is forwardSet for the scored geometries (Kandy,
// Cacophony): instead of the pure distance-descending order, every
// admissible candidate in the advance-without-overshoot window is ranked by
// the geometry's score — XOR distance to the key for Kandy, key distance
// left after the best 1-lookahead advance for Cacophony — lower first, ties
// toward larger clockwise advance, then address. Health classes work exactly
// as in forwardSet: preferred candidates outrank every distrusted one, which
// sink to the back as last-resort spares, and bestAddr names the candidate
// the scorer ranks first irrespective of health. The call takes no locks and
// performs no heap allocations — same hot-path contract as forwardSet.
func (v *routingView) forwardSetScored(health *healthTracker, key uint64, l int, dst []viewCandidate) (n int, bestAddr string, routedAround bool) {
	rem := v.space.Clockwise(id.ID(v.self.ID), id.ID(key))
	if rem == 0 {
		return 0, "", false
	}
	cands := v.cands[l]
	// Same advance-without-overshoot window as forwardSet: candidates[0:lo]
	// all have 1 <= dist <= rem.
	lo, hi := 0, len(cands)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cands[mid].dist <= rem {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var pref, spare [forwardAttemptLimit]viewCandidate
	var prefScore, spareScore [forwardAttemptLimit]uint64
	nPref, nSpare := 0, 0
	var best viewCandidate
	var bestScore uint64
	sawBest, bestPref := false, false
	for i := 0; i < lo; i++ {
		c := cands[i]
		if !c.admissible {
			continue
		}
		s := v.scoreCandidate(c, v.looks[l][i], key, rem)
		p := health.preferred(c.info.Addr)
		if !sawBest || v.rankedBefore(s, c, bestScore, best) {
			sawBest, best, bestScore, bestPref = true, c, s, p
		}
		if p {
			nPref = v.insertRanked(pref[:], prefScore[:], nPref, c, s)
		} else {
			nSpare = v.insertRanked(spare[:], spareScore[:], nSpare, c, s)
		}
	}
	for i := 0; i < nPref && n < len(dst); i++ {
		dst[n] = pref[i]
		n++
	}
	routedAround = sawBest && !bestPref && n > 0
	for i := 0; i < nSpare && n < len(dst); i++ {
		dst[n] = spare[i]
		n++
	}
	return n, best.info.Addr, routedAround
}

// scoreCandidate ranks one window candidate under the view's geometry; lower
// is better. look is the candidate's parallel looks[l][i] entry.
func (v *routingView) scoreCandidate(c viewCandidate, look, key, rem uint64) uint64 {
	if v.geom == geomKandy {
		return v.space.XOR(id.ID(c.info.ID), id.ID(key))
	}
	// Cacophony 1-lookahead: the effective advance through c is c itself, or
	// c's known ring successor when that lands farther along without
	// overshooting the key; the score is the key distance left afterwards.
	eff := c.dist
	if look > c.dist && look <= rem {
		eff = look
	}
	return rem - eff
}

// rankedBefore orders (score, candidate) pairs: score ascending, then larger
// clockwise advance, then address — a strict total order over distinct
// contacts. Kandy ranks level-major first — candidates in a deeper shared
// ring beat every shallower one regardless of score — which is the paper's
// canonical construction (route within the lowest ring while its links still
// advance, then move up) and what makes routes from one domain converge on a
// single exit proxy (Section 3.2) instead of leaving wherever an XOR-close
// outside contact happens to be known.
func (v *routingView) rankedBefore(s1 uint64, c1 viewCandidate, s2 uint64, c2 viewCandidate) bool {
	if v.geom == geomKandy && c1.level != c2.level {
		return c1.level > c2.level
	}
	if s1 != s2 {
		return s1 < s2
	}
	if c1.dist != c2.dist {
		return c1.dist > c2.dist
	}
	return c1.info.Addr < c2.info.Addr
}

// insertRanked inserts c into the first n slots of the fixed rank buffer,
// keeping it sorted by rankedBefore and dropping the worst entry on
// overflow; it returns the new occupancy. buf and scores are parallel
// stack arrays — no heap traffic.
func (v *routingView) insertRanked(buf []viewCandidate, scores []uint64, n int, c viewCandidate, s uint64) int {
	j := n
	for j > 0 && v.rankedBefore(s, c, scores[j-1], buf[j-1]) {
		j--
	}
	if j >= len(buf) {
		return n
	}
	last := n
	if last >= len(buf) {
		last = len(buf) - 1
	}
	for k := last; k > j; k-- {
		buf[k] = buf[k-1]
		scores[k] = scores[k-1]
	}
	buf[j] = c
	scores[j] = s
	if n < len(buf) {
		n++
	}
	return n
}

// publishRouting rebuilds and atomically publishes the node's routing view
// from its mutable tables. Callers that already hold n.mu use
// publishRoutingLocked.
func (n *Node) publishRouting() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.publishRoutingLocked()
}

// publishRoutingLocked is publishRouting for callers holding n.mu. Holding
// the node lock across build+swap serializes publishers, so epochs are
// strictly monotonic and every published view reflects one complete write-
// side state.
func (n *Node) publishRoutingLocked() {
	var epoch uint64 = 1
	if prev := n.routing.Load(); prev != nil {
		epoch = prev.epoch + 1
	}
	n.routing.Store(buildRoutingView(epoch, n.space, n.self, n.levels, n.geom.kind(),
		n.preds, n.succs, n.fingers, n.looks))
}

// buildRoutingView deep-copies the mutable routing tables into a fresh
// immutable view and precomputes the per-level candidate sets. It is the
// only function allowed to write routingView/viewCandidate fields.
func buildRoutingView(epoch uint64, space id.Space, self Info, levels int, geom geomKind,
	preds []Info, succs [][]Info, fingers map[uint64]Info, looks map[lookKey]uint64) *routingView {

	v := &routingView{
		epoch:  epoch,
		space:  space,
		self:   self,
		levels: levels,
		geom:   geom,
	}
	v.prefixes = make([]string, levels+1)
	v.preds = make([]Info, levels+1)
	v.succs = make([][]Info, levels+1)
	for l := 0; l <= levels; l++ {
		v.prefixes[l] = prefixAt(self.Name, l)
		if l < len(preds) {
			v.preds[l] = preds[l]
		}
		if l < len(succs) {
			v.succs[l] = append([]Info(nil), succs[l]...)
		}
	}
	v.fingers = make([]Info, 0, len(fingers))
	for _, f := range fingers {
		v.fingers = append(v.fingers, f)
	}
	sort.Slice(v.fingers, func(i, j int) bool { return v.fingers[i].ID < v.fingers[j].ID })

	// Gather every distinct contact once (fingers, all levels' successor
	// lists, predecessors), then project it into each domain of the chain it
	// belongs to. seen is keyed by address, like the mutex-held candidates().
	contacts := make([]Info, 0, len(v.fingers)+2*(levels+1))
	seen := make(map[string]bool, cap(contacts))
	add := func(i Info) {
		if i.IsZero() || i.Addr == self.Addr || seen[i.Addr] {
			return
		}
		seen[i.Addr] = true
		contacts = append(contacts, i)
	}
	for _, f := range v.fingers {
		add(f)
	}
	for l := 0; l <= levels; l++ {
		for _, s := range v.succs[l] {
			add(s)
		}
		add(v.preds[l])
	}

	v.cands = make([][]viewCandidate, levels+1)
	v.looks = make([][]uint64, levels+1)
	for l := 0; l <= levels; l++ {
		prefix := v.prefixes[l]
		var cl []viewCandidate
		for _, c := range contacts {
			if !inDomain(c.Name, prefix) {
				continue
			}
			d := space.Clockwise(id.ID(self.ID), id.ID(c.ID))
			if d == 0 {
				continue // zero advance: never a forwarding candidate
			}
			cl = append(cl, viewCandidate{
				info:       c,
				dist:       d,
				level:      sharedLevels(self.Name, c.Name),
				admissible: admissibleInView(geom, space, self, levels, v.succs, c, d),
			})
		}
		sort.Slice(cl, func(i, j int) bool {
			if cl[i].dist != cl[j].dist {
				return cl[i].dist < cl[j].dist
			}
			return cl[i].info.Addr < cl[j].info.Addr
		})
		v.cands[l] = cl
		lk := make([]uint64, len(cl))
		for i, c := range cl {
			lk[i] = looks[lookKey{addr: c.info.Addr, level: l}]
		}
		v.looks[l] = lk
	}
	v.epochSeal = epoch
	return v
}

// admissibleInView evaluates the Canon link-retention rule (Section 2.2)
// against the view's own successor lists; it must agree with the mutex-held
// canonAdmissible reference for the same write-side state (the snapshot
// equivalence suite asserts this). Both sides delegate to geomAdmissible,
// the single shared rule, so they cannot drift.
func admissibleInView(geom geomKind, space id.Space, self Info, levels int, succs [][]Info, cand Info, dist uint64) bool {
	return geomAdmissible(geom, space, self, levels, succs, cand, dist)
}
