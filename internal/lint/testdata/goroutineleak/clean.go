package goroutineleak

import (
	"context"
	"time"
)

// stoppable is the canonical maintenance loop: the stop case returns.
func (p *Prober) stoppable(t *time.Ticker) {
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.work()
		}
	}
}

// StartStoppable is fine.
func (p *Prober) StartStoppable(t *time.Ticker) {
	go p.stoppable(t)
}

// ctxLoop exits when the context does.
func (p *Prober) ctxLoop(ctx context.Context, t *time.Ticker) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.work()
		}
	}
}

// StartCtx is fine.
func (p *Prober) StartCtx(ctx context.Context, t *time.Ticker) {
	go p.ctxLoop(ctx, t)
}

// bounded loops terminate on their own.
func (p *Prober) bounded() {
	for i := 0; i < 10; i++ {
		p.work()
	}
}

// StartBounded is fine.
func (p *Prober) StartBounded() {
	go p.bounded()
}

// rangeOverClosable drains a channel that the producer closes: the range
// ends when the channel does.
func (p *Prober) rangeOverClosable(ch chan int) {
	for range ch {
		p.work()
	}
}

// StartDrain is fine.
func (p *Prober) StartDrain(ch chan int) {
	go p.rangeOverClosable(ch)
}

// breakOut escapes via break.
func (p *Prober) breakOut() {
	for {
		if p.stop == nil {
			break
		}
		p.work()
	}
}

// StartBreaker is fine.
func (p *Prober) StartBreaker() {
	go p.breakOut()
}
