#!/usr/bin/env bash
# bench-compare.sh — run the routing-hot-path, store-path and wire-encode
# benchmarks, record their medians, and gate against a committed baseline.
#
# Usage:
#   BENCH_BASELINE=BENCH_PR7.json ./scripts/bench-compare.sh [output.json]
#   BENCH_BASELINE=new            ./scripts/bench-compare.sh [output.json]
#
# BENCH_BASELINE is REQUIRED and names the baseline JSON to compare against;
# the sentinel value "new" records a fresh baseline without comparing (use it
# once, commit the output, and CI gates every later PR against it). The
# script fails loudly when the variable is missing or the file is unreadable
# — a bench gate that silently skips its comparison is worse than none.
#
# Benchmarks run BENCH_COUNT times each (default 10) and the per-benchmark
# MEDIAN of ns/op, B/op and allocs/op is recorded — medians because CI
# machines are noisy and a single hot outlier must not fail (or pass) a gate.
#
# Gates, in order:
#   1. forward64_speedup — median ns/op of the mutex-held forwarding baseline
#      (BenchmarkForwardDecision64Locked) over the lock-free snapshot path
#      (BenchmarkForwardDecision64Snapshot) — must be >= 3.0 on every run.
#      The baseline implementation is kept in-tree (test-only) precisely so
#      this ratio is re-measured on the same hardware every time instead of
#      trusted from a historical number.
#   2. mux64_speedup — the PR 5 gate, carried forward: the 64-way-concurrent
#      binary mux round trip must stay >= 2x the pooled legacy-JSON
#      transport.
#   3. vs-baseline: any NS-GATED benchmark whose median ns/op regressed more
#      than 10% fails the run, and any ALLOC-GATED benchmark whose allocs/op
#      increased at all fails the run. A gated benchmark present in the
#      baseline but missing from the run also fails (deleting a benchmark
#      must be an explicit baseline update). The ns-gated set is the
#      benchmarks whose ns/op is actually stable on a small CI runner: the
#      zero-allocation hot paths (snapshot forwarding decision, binary
#      envelope encode) and the end-to-end lookup saturation macro-bench
#      (long ops, noise averages out). The alloc gate additionally covers
#      the allocating envelope codecs — allocs/op is deterministic, so "no
#      new allocation" still has teeth even where GC scheduling swings their
#      ns/op far past 10% with no code change (measured min..max spread >2x
#      on the binary decoder). The node-local store apply and fetch paths
#      are alloc-gated the same way: their sub-microsecond map-walk ns/op
#      swings past 10% with cache and GC state (measured ~17% between runs
#      with no code change), but allocs/op is exact — the store apply is
#      pinned at ZERO allocs/op and the fetch at its result slice, so any
#      new allocation on either path fails the gate. The
#      mutex-held forwarding baseline and the TCP round trips are recorded
#      and feed the ratio gates above, but are not point-gated: their
#      absolute numbers swing with scheduler/lock-contention noise far
#      beyond 10% without any code change, and flaky gates train people to
#      ignore red.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ -z "${BENCH_BASELINE:-}" ]]; then
	{
		echo "bench-compare.sh: BENCH_BASELINE is not set; refusing to run without a comparison target."
		echo "  BENCH_BASELINE=BENCH_PR7.json $0    # gate against the committed baseline (what CI does)"
		echo "  BENCH_BASELINE=new $0               # record a fresh baseline, no comparison"
	} >&2
	exit 2
fi
if [[ "$BENCH_BASELINE" != "new" && ! -r "$BENCH_BASELINE" ]]; then
	echo "bench-compare.sh: baseline '$BENCH_BASELINE' does not exist or is unreadable." >&2
	exit 2
fi

out="${1:-BENCH_PR7.json}"
count="${BENCH_COUNT:-10}"
benchtime="${BENCH_TIME:-1s}"

# The forwarding benchmarks pin -cpu=4 so the 64-way contention shape is
# comparable across differently sized CI machines.
raw_netnode=$(go test -run '^$' -bench 'BenchmarkForwardDecision64|BenchmarkLookupSaturation' \
	-cpu=4 -benchmem -benchtime="$benchtime" -count="$count" ./internal/netnode/)
echo "$raw_netnode" >&2
# The store-path benchmarks run single-threaded (no -cpu pin): they measure
# the node-local apply/read paths, not contention shape.
raw_store=$(go test -run '^$' -bench 'BenchmarkStoreLocalMem|BenchmarkFetchLocalMem' \
	-benchmem -benchtime="$benchtime" -count="$count" ./internal/netnode/)
echo "$raw_store" >&2
raw_transport=$(go test -run '^$' -bench 'BenchmarkEnvelope|BenchmarkRoundTrip' \
	-benchmem -benchtime="$benchtime" -count="$count" ./internal/transport/)
echo "$raw_transport" >&2

printf '%s\n%s\n%s\n' "$raw_netnode" "$raw_store" "$raw_transport" | awk -v out="$out" -v count="$count" '
function median(name, metric,    m, i, j, tmp, vals) {
	m = cnt[name]
	for (i = 0; i < m; i++) vals[i] = v[name, metric, i]
	for (i = 1; i < m; i++) {          # insertion sort; m <= count
		tmp = vals[i]
		for (j = i - 1; j >= 0 && vals[j] > tmp; j--) vals[j+1] = vals[j]
		vals[j+1] = tmp
	}
	if (m % 2) return vals[int(m/2)]
	return (vals[m/2 - 1] + vals[m/2]) / 2
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS/-cpu suffix
	if (!(name in cnt)) { order[n++] = name; cnt[name] = 0 }
	i = cnt[name]++
	v[name, "ns", i] = $3; v[name, "b", i] = $5; v[name, "a", i] = $7
}
END {
	printf "{\n" > out
	printf "  \"description\": \"PR7 hot-path benchmarks: lock-free epoch-snapshot forwarding (vs the retired mutex-held baseline), 64-way lookup saturation, node-local store apply and fetch, and wire-envelope encode/decode\",\n" >> out
	printf "  \"command\": \"scripts/bench-compare.sh (medians of %d runs; forwarding benches at -cpu=4)\",\n", count >> out
	printf "  \"runs_per_benchmark\": %d,\n", count >> out
	printf "  \"benchmarks\": {\n" >> out
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			name, median(name, "ns"), median(name, "b"), median(name, "a"), (i < n-1 ? "," : "") >> out
	}
	printf "  },\n" >> out
	fs = median("BenchmarkForwardDecision64Locked", "ns") / median("BenchmarkForwardDecision64Snapshot", "ns")
	ms = median("BenchmarkRoundTrip64JSON", "ns") / median("BenchmarkRoundTrip64Binary", "ns")
	printf "  \"forward64_speedup\": %.2f,\n", fs >> out
	printf "  \"mux64_speedup\": %.2f\n", ms >> out
	printf "}\n" >> out
	bad = 0
	if (fs < 3.0) {
		printf "FAIL: 64-way forwarding speedup %.2fx is below the 3x acceptance floor\n", fs > "/dev/stderr"
		bad = 1
	}
	if (ms < 2.0) {
		printf "FAIL: 64-way mux speedup %.2fx is below the 2x acceptance floor\n", ms > "/dev/stderr"
		bad = 1
	}
	printf "forward64_speedup: %.2fx (floor 3.0x), mux64_speedup: %.2fx (floor 2.0x)\n", fs, ms > "/dev/stderr"
	exit bad
}
'
echo "wrote $out" >&2

if [[ "$BENCH_BASELINE" == "new" ]]; then
	echo "BENCH_BASELINE=new: recorded baseline only, no comparison performed." >&2
	exit 0
fi

awk -v maxreg="1.10" '
BEGIN {
	nsgated["BenchmarkForwardDecision64Snapshot"] = 1
	nsgated["BenchmarkLookupSaturation"] = 1
	nsgated["BenchmarkEnvelopeEncodeBinary"] = 1
	for (name in nsgated) allocgated[name] = 1
	allocgated["BenchmarkEnvelopeEncodeJSON"] = 1
	allocgated["BenchmarkEnvelopeDecodeJSON"] = 1
	allocgated["BenchmarkEnvelopeDecodeBinary"] = 1
	allocgated["BenchmarkStoreLocalMem"] = 1
	allocgated["BenchmarkFetchLocalMem"] = 1
}
# First file: the baseline. Second file: this run. Both are written by this
# script, so the per-benchmark lines are single-line JSON objects.
match($0, /"Benchmark[^"]*"/) {
	name = substr($0, RSTART + 1, RLENGTH - 2)
	ns = 0; allocs = 0
	if (match($0, /"ns_per_op": *[0-9.]+/))     { split(substr($0, RSTART, RLENGTH), f, ": *"); ns = f[2] + 0 }
	if (match($0, /"allocs_per_op": *[0-9.]+/)) { split(substr($0, RSTART, RLENGTH), f, ": *"); allocs = f[2] + 0 }
	if (NR == FNR) { base_ns[name] = ns; base_allocs[name] = allocs }
	else           { new_ns[name] = ns; new_allocs[name] = allocs }
}
END {
	bad = 0
	for (name in base_ns) {
		if (!(name in allocgated)) {
			if (name in new_ns)
				printf "info: %s p50 %.1f -> %.1f ns/op (ungated: feeds ratio gates only)\n", \
					name, base_ns[name], new_ns[name]
			continue
		}
		if (!(name in new_ns)) {
			printf "FAIL: %s is in the baseline but was not run — update the baseline explicitly if it was removed\n", name
			bad = 1
			continue
		}
		if (!(name in nsgated)) {
			printf "info: %s p50 %.1f -> %.1f ns/op (alloc-gated only: ns/op too GC-noisy to point-gate)\n", \
				name, base_ns[name], new_ns[name]
		} else if (new_ns[name] > base_ns[name] * maxreg) {
			printf "FAIL: %s p50 regressed %.1f%%: %.1f -> %.1f ns/op (allowed +10%%)\n", \
				name, (new_ns[name] / base_ns[name] - 1) * 100, base_ns[name], new_ns[name]
			bad = 1
		} else {
			printf "ok:   %s p50 %.1f -> %.1f ns/op (%+.1f%%)\n", \
				name, base_ns[name], new_ns[name], (new_ns[name] / base_ns[name] - 1) * 100
		}
		if (new_allocs[name] > base_allocs[name]) {
			printf "FAIL: %s allocs/op increased: %d -> %d (any increase fails)\n", \
				name, base_allocs[name], new_allocs[name]
			bad = 1
		}
	}
	for (name in new_ns) if (!(name in base_ns))
		printf "note: %s is new (not in baseline %s)\n", name, FILENAME
	exit bad
}
' "$BENCH_BASELINE" "$out" >&2
echo "bench gate passed against $BENCH_BASELINE" >&2
