// Package metricnames is a canonvet fixture: raw string literals passed as
// the name argument to a telemetry-style Registry lookup must be flagged;
// named constants must pass. The local Registry mirrors
// internal/telemetry.Registry's lookup surface so the fixture stands alone.
package metricnames

// Registry mimics the telemetry registry's lookup methods.
type Registry struct{}

// Counter looks up or creates a counter.
func (*Registry) Counter(name, help string, labels ...string) *int { return nil }

// Gauge looks up or creates a gauge.
func (*Registry) Gauge(name, help string) *int { return nil }

// Histogram looks up or creates a histogram.
func (*Registry) Histogram(name, help string, buckets []float64) *int { return nil }

// rawNames registers metrics with literals at the call site — each one can
// drift from the scrape side without a compile error.
func rawNames(reg *Registry) {
	reg.Counter("canon_fixture_total", "a counter")                    // want `metric name passed to Counter as a raw string literal`
	reg.Gauge("canon_fixture_depth", "a gauge")                        // want `metric name passed to Gauge as a raw string literal`
	reg.Histogram("canon_fixture_seconds", "a histogram", nil)         // want `metric name passed to Histogram as a raw string literal`
	reg.Counter("canon_"+suffix(), "concatenation still embeds a raw") // want `metric name passed to Counter as a raw string literal`
}

// suppressedRaw proves the pragma escape hatch.
func suppressedRaw(reg *Registry) {
	//canonvet:ignore metricnames -- fixture: prove the pragma suppresses the line below
	reg.Counter("canon_fixture_suppressed_total", "suppressed")
}

func suffix() string { return "dynamic_total" }
