package lint

import (
	"go/ast"
	"go/token"
)

// checkMetricNames flags raw string literals passed as the name argument to
// telemetry registry lookups (Counter/Gauge/Histogram). Metric names are an
// external interface — dashboards, alerts and the smoke tests grep for them
// — so every name must be a named constant declared once (the PR 2
// constants in internal/netnode/metrics.go, and the transport-level
// constants in internal/transport). A literal at the lookup site can drift
// from the scrape side without any compiler complaint. The telemetry
// package itself (registry implementation and its tests) is exempt: it
// exercises arbitrary names by design.
var checkMetricNames = Check{
	Name: "metricnames",
	Doc:  "raw string literals as telemetry Counter/Gauge/Histogram names (must be named constants)",
	Run:  runMetricNames,
}

var metricLookupMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

// literalString reports whether e lexically contains a string literal at its
// top level (a bare literal, a parenthesized one, or a concatenation
// involving one). Named constants resolve to idents/selectors and pass.
func literalString(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.STRING
	case *ast.ParenExpr:
		return literalString(x.X)
	case *ast.BinaryExpr:
		return literalString(x.X) || literalString(x.Y)
	}
	return false
}

func runMetricNames(pass *Pass) {
	if pass.Cfg.MetricExemptPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricLookupMethods[sel.Sel.Name] {
				return true
			}
			// The receiver must be a telemetry Registry (by type when
			// resolved, by type name otherwise).
			recv := namedOf(pass.TypeOf(sel.X))
			if recv == nil || recv.Obj() == nil || recv.Obj().Name() != "Registry" {
				return true
			}
			if literalString(call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to %s as a raw string literal; declare a named constant (see internal/netnode/metrics.go) so scrape-side consumers cannot drift", sel.Sel.Name)
			}
			return true
		})
	}
}
