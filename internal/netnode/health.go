package netnode

import (
	"sync"
	"time"
)

// PeerState classifies a peer's observed liveness.
type PeerState int

const (
	// PeerAlive means the peer's last call succeeded (or it was never tried).
	PeerAlive PeerState = iota
	// PeerSuspect means the peer has failed a few consecutive calls; routing
	// deprioritizes it but still uses it as a last resort.
	PeerSuspect
	// PeerDead means the peer kept failing past the suspect threshold; it is
	// routed around until a probation probe succeeds.
	PeerDead
)

// String returns the state's lowercase name.
func (s PeerState) String() string {
	switch s {
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "alive"
	}
}

// Thresholds and probation windows of the failure detector. Consecutive
// failures promote alive → suspect → dead; a success resets to alive. Suspect
// and dead peers re-enter service through probation: after the window passes,
// one call is allowed through as a probe, and its outcome decides the state.
const (
	suspectThreshold = 2
	deadThreshold    = 5
	suspectProbation = 500 * time.Millisecond
	deadProbation    = 2 * time.Second
)

// peerHealth is one peer's failure-detector state.
type peerHealth struct {
	state      PeerState
	fails      int       // consecutive failures
	probeAfter time.Time // when a suspect/dead peer may be probed again
}

// healthTracker is a per-node failure detector fed by every RPC outcome.
// It is its own lock domain, deliberately separate from Node.mu: call paths
// record outcomes while routing holds no lock.
type healthTracker struct {
	mu    sync.Mutex
	now   func() time.Time
	peers map[string]*peerHealth
}

func newHealthTracker() *healthTracker {
	return &healthTracker{now: time.Now, peers: make(map[string]*peerHealth)}
}

func (h *healthTracker) peer(addr string) *peerHealth {
	p, ok := h.peers[addr]
	if !ok {
		p = &peerHealth{}
		h.peers[addr] = p
	}
	return p
}

// recordSuccess marks the peer alive.
func (h *healthTracker) recordSuccess(addr string) {
	if addr == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.state = PeerAlive
	p.fails = 0
}

// recordFailure counts a consecutive failure, promoting the peer to suspect
// or dead when it crosses the thresholds.
func (h *healthTracker) recordFailure(addr string) {
	if addr == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.fails++
	switch {
	case p.fails >= deadThreshold:
		p.state = PeerDead
		p.probeAfter = h.now().Add(deadProbation)
	case p.fails >= suspectThreshold:
		p.state = PeerSuspect
		p.probeAfter = h.now().Add(suspectProbation)
	}
}

// state returns the peer's current classification.
func (h *healthTracker) state(addr string) PeerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[addr]
	if !ok {
		return PeerAlive
	}
	return p.state
}

// preferred reports whether routing should rank the peer normally. Alive
// peers are preferred; suspect/dead peers are not — except once per probation
// window, when a single probe is let back through so recovered peers rejoin
// the routing set.
func (h *healthTracker) preferred(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[addr]
	if !ok || p.state == PeerAlive {
		return true
	}
	now := h.now()
	if now.After(p.probeAfter) {
		// Allow one probe, then push the window out so concurrent lookups
		// don't all pile onto a possibly-dead peer.
		if p.state == PeerDead {
			p.probeAfter = now.Add(deadProbation)
		} else {
			p.probeAfter = now.Add(suspectProbation)
		}
		return true
	}
	return false
}

// snapshot returns the non-alive peers and their states.
func (h *healthTracker) snapshot() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string)
	for addr, p := range h.peers {
		if p.state != PeerAlive {
			out[addr] = p.state.String()
		}
	}
	return out
}
