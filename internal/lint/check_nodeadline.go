package lint

import (
	"go/token"
	"sort"
)

// checkNoDeadline audits every call path from a command entry point (the
// packages in Config.EntryPackages — canond and canonctl) to a
// Transport.Call-shaped RPC primitive, and reports paths on which no
// function establishes a deadline: no context.WithTimeout/WithDeadline
// anywhere between main and the wire. A CLI that blocks forever on a dead
// peer is the live system's version of the liveness bugs the other checks
// chase; every wire-touching path must bound its wait either with an
// explicit context deadline or through the netnode retry layer's per-attempt
// timeout (whose implementation calls WithTimeout, so it satisfies the rule
// naturally).
//
// The analysis is path-sensitive in one bit — "has any frame so far created
// a deadline" — and deliberately path-insensitive below that: a function
// containing WithTimeout anywhere is assumed to apply it to the calls it
// makes (see DESIGN.md). The report lands on the last edge whose caller
// still lives in an entry package, so the diagnostic points at code a
// command author can actually edit.
var checkNoDeadline = Check{
	Name:      "nodeadline",
	Doc:       "entry-point call paths that reach the transport with no timeout anywhere on the path",
	RunModule: runNoDeadline,
}

func runNoDeadline(mp *ModulePass) {
	g := mp.Graph
	type visitKey struct {
		node  *FuncNode
		timed bool
	}
	type finding struct {
		pos   token.Pos
		chain []string
		prim  *FuncNode
		site  *FuncNode
	}
	var findings []finding
	seenFinding := make(map[string]bool)

	// Synchronous edges plus goroutine spawns: a goroutine started by main
	// making untimed RPCs hangs its work just the same.
	kinds := map[EdgeKind]bool{EdgeCall: true, EdgeDefer: true, EdgeDispatch: true, EdgeGo: true}

	record := func(stack []*Edge, last *Edge, prim *FuncNode) {
		key := mp.Fset.Position(last.Pos).String() + "|" + prim.ID
		if seenFinding[key] {
			return
		}
		seenFinding[key] = true
		site := last
		path := append(append([]*Edge(nil), stack...), last)
		for i := len(path) - 1; i >= 0; i-- {
			if mp.Cfg.EntryPackages[path[i].Caller.Pkg] {
				site = path[i]
				break
			}
		}
		chain := make([]string, 0, len(path)+1)
		for _, e := range path {
			chain = append(chain, g.frame(e.Caller, e.Pos))
		}
		chain = append(chain, g.frame(prim, prim.Pos))
		findings = append(findings, finding{
			pos: site.Pos, chain: chain, prim: prim, site: site.Caller,
		})
	}

	var stack []*Edge
	visited := make(map[visitKey]bool)
	var dfs func(n *FuncNode, timed bool)
	dfs = func(n *FuncNode, timed bool) {
		timed = timed || n.DirectTimed
		for _, e := range n.Out {
			if !kinds[e.Kind] {
				continue
			}
			if e.Callee.IsRPCPrim {
				// Findings are detected at the edge, before the visited
				// check, so two untimed paths sharing the primitive both
				// report.
				if !timed {
					record(stack, e, e.Callee)
				}
				continue // stop at the wire either way
			}
			k := visitKey{e.Callee, timed}
			if visited[k] {
				continue
			}
			visited[k] = true
			stack = append(stack, e)
			dfs(e.Callee, timed)
			stack = stack[:len(stack)-1]
		}
	}

	for _, n := range g.SortedNodes() {
		if mp.Cfg.EntryPackages[n.Pkg] && !n.InTestFile && n.Ident == "main" {
			visited[visitKey{n, false}] = true
			dfs(n, false)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := mp.Fset.Position(findings[i].pos), mp.Fset.Position(findings[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	for _, f := range findings {
		mp.Report(f.pos, f.chain,
			"call path from %s reaches %s with no deadline: no context.WithTimeout/WithDeadline on the path and no per-attempt timeout; bound the wait",
			f.site.Name, f.prim.Name)
	}
}
