package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: a package's files (in-package test files
// included) together with its type information. External test packages
// ("foo_test") form their own unit sharing the base package's Path, with
// External set.
type Package struct {
	// Path is the package's import path within the module (external test
	// units carry the base package's path).
	Path string
	// Name is the package name as declared ("foo" or "foo_test").
	Name string
	// Dir is the directory the files live in.
	Dir string
	// Files are the unit's parsed files, sorted by filename.
	Files []*ast.File
	// Types and Info hold go/types results. Info maps are always non-nil;
	// on type errors they are simply incomplete and checks degrade to
	// whatever was resolved.
	Types *types.Package
	Info  *types.Info
	// External marks an external test unit (package foo_test).
	External bool
	// TypeErrors collects type-checking problems (missing imports, etc.).
	// They do not stop analysis.
	TypeErrors []error
}

// Loader parses and type-checks every package under a module root using only
// the standard library: go/parser for syntax, go/types for semantics, and
// go/importer's source mode for out-of-module (standard library) imports.
// Module-internal imports are resolved by the loader itself, from source,
// memoized across packages.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet

	std     types.ImporterFrom
	memo    map[string]*types.Package
	loading map[string]bool
	parsed  map[string]*ast.File
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  mod,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		memo:    make(map[string]*types.Package),
		loading: make(map[string]bool),
		parsed:  make(map[string]*ast.File),
	}, nil
}

// skipDir reports whether a directory is outside the loadable module tree.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// GoDirs lists every directory under root containing .go files, honoring the
// go tool's skip rules (testdata, vendor, dot and underscore directories).
func GoDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadAll loads every package in the module.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := GoDirs(l.Root)
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs)
}

// LoadDirs loads the packages found in the given directories (which must lie
// under the module root). Each directory yields up to two analysis units: the
// package itself (with in-package test files) and, when present, its external
// test package.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// parseFile parses (and memoizes) one file with comments.
func (l *Loader) parseFile(path string) (*ast.File, error) {
	if f, ok := l.parsed[path]; ok {
		return f, nil
	}
	f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	l.parsed[path] = f
	return f, nil
}

// dirFiles parses a directory's .go files and splits them into the base
// package's files, its in-package test files, and external test files.
func (l *Loader) dirFiles(dir string) (base, inTest, extTest []*ast.File, baseName string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, perr := l.parseFile(filepath.Join(dir, name))
		if perr != nil {
			return nil, nil, nil, "", perr
		}
		pkgName := f.Name.Name
		switch {
		case strings.HasSuffix(name, "_test.go") && strings.HasSuffix(pkgName, "_test"):
			extTest = append(extTest, f)
		case strings.HasSuffix(name, "_test.go"):
			inTest = append(inTest, f)
		default:
			base = append(base, f)
			baseName = pkgName
		}
	}
	if baseName == "" {
		// Test-only directory: derive the base name from the test files.
		for _, f := range inTest {
			baseName = f.Name.Name
		}
		if baseName == "" && len(extTest) > 0 {
			baseName = strings.TrimSuffix(extTest[0].Name.Name, "_test")
		}
	}
	return base, inTest, extTest, baseName, nil
}

// newInfo returns a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check type-checks one unit, collecting (but not failing on) type errors.
func (l *Loader) check(path string, files []*ast.File, info *types.Info, ignoreBodies bool) (*types.Package, []error) {
	var errs []error
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: ignoreBodies,
		Error:            func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return pkg, errs
}

// loadDir builds the analysis units for one directory.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	base, inTest, extTest, baseName, err := l.dirFiles(dir)
	if err != nil {
		return nil, err
	}
	var units []*Package
	if len(base)+len(inTest) > 0 {
		files := append(append([]*ast.File(nil), base...), inTest...)
		info := newInfo()
		tpkg, errs := l.check(path, files, info, false)
		units = append(units, &Package{
			Path: path, Name: baseName, Dir: dir,
			Files: files, Types: tpkg, Info: info, TypeErrors: errs,
		})
	}
	if len(extTest) > 0 {
		info := newInfo()
		tpkg, errs := l.check(path+"_test", extTest, info, false)
		units = append(units, &Package{
			Path: path, Name: baseName + "_test", Dir: dir,
			Files: extTest, Types: tpkg, Info: info, External: true, TypeErrors: errs,
		})
	}
	return units, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// resolved from source within the module; everything else (the standard
// library) is delegated to go/importer's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importModulePkg(path)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// importModulePkg type-checks a module-internal package (non-test files
// only, as the go tool does for imports), memoized.
func (l *Loader) importModulePkg(path string) (*types.Package, error) {
	if pkg, ok := l.memo[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import failed for %s", path)
		}
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	base, _, _, _, err := l.dirFiles(dir)
	if err != nil || len(base) == 0 {
		l.memo[path] = nil
		return nil, fmt.Errorf("lint: cannot load %s from %s: %v", path, dir, err)
	}
	pkg, errs := l.check(path, base, newInfo(), true)
	if pkg == nil && len(errs) > 0 {
		l.memo[path] = nil
		return nil, errs[0]
	}
	pkg.MarkComplete()
	l.memo[path] = pkg
	return pkg, nil
}
