package lockorder

import "sync"

// Consistent order everywhere: E before F. No cycle, no finding.
type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

func efOne(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

func efTwo(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// Self-class nesting (two instances of the same type, e.g. a handoff) is
// deliberately not reported: a class-level analysis cannot tell instances
// apart, and ordering by ID — the usual fix — looks identical to it.
func handoff(x, y *E) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// Local mutexes are not named classes; nesting them both ways stays silent.
func locals() {
	var p, q sync.Mutex
	p.Lock()
	q.Lock()
	q.Unlock()
	p.Unlock()
	q.Lock()
	p.Lock()
	p.Unlock()
	q.Unlock()
}

// Sequential (released-before-next) acquisition is not nesting.
func sequential(e *E, f *F) {
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}
