package canonstore

import (
	"math/rand"
	"testing"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Key:     rng.Uint64(),
			Value:   randBytes(rng, 1+rng.Intn(64)),
			Storage: "org/a",
			Version: uint64(1 + rng.Intn(10)),
			Level:   rng.Intn(3),
		}
	}
	return out
}

func buildTree(entries []Entry) *MerkleTree {
	t := NewMerkleTree()
	for _, e := range entries {
		t.Add(e)
	}
	t.Seal()
	return t
}

func TestMerkleEqualSetsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 500)
	a := buildTree(entries)

	// Same set, different order: summaries must be identical.
	shuffled := append([]Entry(nil), entries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := buildTree(shuffled)

	if a.Root != b.Root {
		t.Fatalf("roots differ for equal sets: %x vs %x", a.Root, b.Root)
	}
	if diff := a.DiffBuckets(b.Leaves); len(diff) != 0 {
		t.Fatalf("equal sets diff in buckets %v", diff)
	}
}

func TestMerkleSingleDifferenceIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randomEntries(rng, 500)
	a := buildTree(entries)

	// Perturb one entry's version: exactly that key's bucket must diverge.
	mod := append([]Entry(nil), entries...)
	mod[137].Version++
	b := buildTree(mod)

	if a.Root == b.Root {
		t.Fatal("roots agree despite a divergent entry")
	}
	diff := a.DiffBuckets(b.Leaves)
	if len(diff) != 1 || diff[0] != MerkleBucket(mod[137].Key) {
		t.Fatalf("diff = %v, want exactly bucket %d", diff, MerkleBucket(mod[137].Key))
	}

	// A missing entry diverges the same way.
	c := buildTree(entries[:499])
	diff = a.DiffBuckets(c.Leaves)
	if len(diff) != 1 || diff[0] != MerkleBucket(entries[499].Key) {
		t.Fatalf("missing-entry diff = %v, want bucket %d", diff, MerkleBucket(entries[499].Key))
	}
}

func TestMerkleDiffAgainstEmptyPeer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := buildTree(randomEntries(rng, 50))
	diff := a.DiffBuckets(nil)
	if len(diff) == 0 || len(diff) > 50 {
		t.Fatalf("diff vs nil peer = %d buckets", len(diff))
	}
	empty := NewMerkleTree()
	empty.Seal()
	if got := a.DiffBuckets(empty.Leaves); len(got) != len(diff) {
		t.Fatalf("nil and zero peers disagree: %d vs %d", len(got), len(diff))
	}
}

func TestMerkleBucketStable(t *testing.T) {
	// Bucket assignment is part of the wire contract: both replicas must
	// agree on it forever. Pin a few values.
	pins := map[uint64]int{
		0:              MerkleBucket(0),
		1:              MerkleBucket(1),
		^uint64(0):     MerkleBucket(^uint64(0)),
		0xdeadbeefcafe: MerkleBucket(0xdeadbeefcafe),
	}
	for k, want := range pins {
		if got := MerkleBucket(k); got != want || got < 0 || got >= MerkleLeaves {
			t.Fatalf("MerkleBucket(%d) = %d", k, got)
		}
	}
	d1 := Entry{Key: 1, Value: []byte("a"), Version: 1}.Digest()
	d2 := Entry{Key: 1, Value: []byte("a"), Version: 2}.Digest()
	if d1 == d2 {
		t.Fatal("digest ignores version")
	}
}
