package netnode

import (
	"encoding/json"
	"testing"

	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

// FuzzLookupReqPoolReuse proves the pooling hygiene the forwarding hot path
// depends on: a lookupReq recycled through the pool carries nothing from its
// previous life. The dangerous case is JSON decoding, which leaves fields
// absent from the payload untouched — an unzeroed recycled object would hand
// an untraced request the previous request's Trace and Spans, leaking route
// data across lookups (and across tenants, on a shared deployment).
func FuzzLookupReqPoolReuse(f *testing.F) {
	f.Add(uint64(1), "west/ca", 3, "trace-1", 4, true)
	f.Add(uint64(0), "", 0, "", 0, false)
	f.Add(uint64(1<<40), "a/b/c", 511, "t", 16, true)
	f.Fuzz(func(t *testing.T, key uint64, prefix string, hops int, trace string, spanCount int, viaJSON bool) {
		// A traced hop populates a pooled request and returns it.
		q := getLookupReq()
		q.Key, q.Prefix, q.Hops, q.Trace = key, prefix, hops, trace
		spans := telemetry.GetSpans()
		for i := 0; i < spanCount&15; i++ {
			spans = append(spans, telemetry.Span{Hop: i, Name: prefix, ID: key, Addr: trace, RouteAround: true})
		}
		q.Spans = spans
		putLookupReq(q)

		// Whatever the pool hands out next must be indistinguishable from a
		// fresh object.
		q2 := getLookupReq()
		if q2.Key != 0 || q2.Prefix != "" || q2.Hops != 0 || q2.Trace != "" || q2.Spans != nil {
			t.Fatalf("pooled lookupReq not zeroed: %+v", *q2)
		}

		// Decoding an UNtraced request into the recycled object must yield an
		// untraced request — through both wire codecs.
		fresh := lookupReq{Key: key, Prefix: prefix, Hops: hops}
		if viaJSON {
			raw, err := json.Marshal(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(raw, q2); err != nil {
				t.Fatal(err)
			}
		} else {
			msg, err := transport.NewMessage(msgLookup, &fresh)
			if err != nil {
				t.Fatal(err)
			}
			if err := msg.Decode(q2); err != nil {
				t.Fatal(err)
			}
		}
		if q2.Trace != "" || len(q2.Spans) != 0 {
			t.Fatalf("recycled request leaked trace state: trace=%q spans=%d", q2.Trace, len(q2.Spans))
		}
		if q2.Key != key || q2.Prefix != prefix || q2.Hops != hops {
			t.Fatalf("decode into recycled request corrupted fields: %+v", *q2)
		}
		putLookupReq(q2)

		// The span pool must also return zeroed backing arrays: stale spans
		// hiding between len and cap would resurface on the next append-grow.
		s := telemetry.GetSpans()
		for _, sp := range s[:cap(s)] {
			if sp != (telemetry.Span{}) {
				t.Fatalf("span pool returned dirty backing array: %+v", sp)
			}
		}
		telemetry.PutSpans(s)
	})
}
