// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus ablations for the Section 3 variants and the
// Section 4 storage/caching/balance machinery. Each driver returns a
// metrics.Table whose rows mirror the corresponding figure's curves; the
// canonsim command prints them and bench_test.go wraps them in testing.B
// benchmarks.
package experiments

import (
	"math/rand"
	"sort"

	canon "github.com/canon-dht/canon"
	"github.com/canon-dht/canon/internal/metrics"
	"github.com/canon-dht/canon/internal/topology"
)

// Config carries the common experiment knobs.
type Config struct {
	// Seed drives all randomness; equal seeds give identical outputs.
	Seed int64
	// Fanout of the balanced hierarchies (the paper uses 10).
	Fanout int
	// ZipfExponent skews leaf population sizes (the paper uses 1.25).
	ZipfExponent float64
	// RoutePairs is the number of sampled source/destination pairs per
	// measurement (default 2000).
	RoutePairs int
	// Geometry selects the routing geometry the live experiments run
	// ("crescendo", "kandy" or "cacophony"; empty = crescendo). The
	// analytical experiments ignore it — they model link rules directly.
	Geometry string
}

// Defaults returns the paper's parameters.
func Defaults() Config {
	return Config{Seed: 1, Fanout: 10, ZipfExponent: 1.25, RoutePairs: 2000}
}

func (c Config) withDefaults() Config {
	if c.Fanout == 0 {
		c.Fanout = 10
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 1.25
	}
	if c.RoutePairs == 0 {
		c.RoutePairs = 2000
	}
	return c
}

// buildHierNet builds a Canonical network of the given kind over a balanced
// hierarchy with Zipf-distributed leaf sizes.
func buildHierNet(cfg Config, kind canon.Kind, n, levels int) (*canon.Network, error) {
	tree, err := canon.BalancedHierarchy(levels, cfg.Fanout)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	placement := canon.AssignZipf(rng, tree, n, cfg.ZipfExponent)
	return canon.Build(tree, placement, canon.Options{Kind: kind, Seed: cfg.Seed})
}

// avgHops samples route pairs and returns the mean hop count.
func avgHops(nw *canon.Network, pairs int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var s metrics.Stream
	for i := 0; i < pairs; i++ {
		from, to := rng.Intn(nw.Len()), rng.Intn(nw.Len())
		r := nw.RouteToNode(from, to)
		if r.Success {
			s.Add(float64(r.Hops()))
		}
	}
	return s.Mean()
}

// topoEnv bundles a transit-stub topology with an attached host set, shared
// by the physical-network experiments (Figures 6-9).
type topoEnv struct {
	topo  *topology.Topology
	hosts *topology.Hosts
}

func newTopoEnv(cfg Config, n int) (*topoEnv, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo, err := topology.New(rng, topology.DefaultConfig())
	if err != nil {
		return nil, err
	}
	hosts, err := topo.AttachHosts(rng, n)
	if err != nil {
		return nil, err
	}
	return &topoEnv{topo: topo, hosts: hosts}, nil
}

// netSystem is one of the four systems of Figure 6: Chord or Crescendo, with
// or without proximity adaptation, over the same host set.
type netSystem struct {
	name      string
	nw        *canon.Network
	env       *topoEnv
	tagToNode []int // lazy inverse of NodeTag
}

// buildSystem builds a system over the environment's hosts. Hierarchical
// systems use the topology-induced 5-level hierarchy; flat ones a root-only
// hierarchy.
func (e *topoEnv) buildSystem(cfg Config, name string, hierarchical, prox bool) (*netSystem, error) {
	n := e.hosts.Len()
	var tree *canon.Hierarchy
	placement := make([]*canon.Domain, n)
	if hierarchical {
		tree = e.hosts.Tree()
		copy(placement, e.hosts.Leaves())
	} else {
		tree = canon.NewHierarchy()
		for i := range placement {
			placement[i] = tree.Root()
		}
	}
	// The proximity latency callback is keyed by node index, but node
	// indices only exist after Build (nodes are sorted by ID). Fixing the
	// identifiers up front makes the index→host mapping deterministic, so
	// the callback can be constructed before building.
	rng := rand.New(rand.NewSource(cfg.Seed))
	ids, err := canon.DefaultSpace().UniqueRandom(rng, n)
	if err != nil {
		return nil, err
	}
	opts := canon.Options{Kind: canon.Chord, Seed: cfg.Seed, IDs: ids}
	if prox {
		tagOf := tagsByID(ids)
		opts.Proximity = &canon.ProximityOptions{
			Latency: func(a, b int) float64 {
				return e.hosts.Latency(tagOf[a], tagOf[b])
			},
		}
	}
	nw, err := canon.Build(tree, placement, opts)
	if err != nil {
		return nil, err
	}
	return &netSystem{name: name, nw: nw, env: e}, nil
}

// tagsByID returns, for each future node index (ascending ID order), the
// original placement position.
func tagsByID(ids []canon.ID) []int {
	type pair struct {
		id  canon.ID
		tag int
	}
	pairs := make([]pair, len(ids))
	for i, v := range ids {
		pairs[i] = pair{id: v, tag: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return uint64(pairs[i].id) < uint64(pairs[j].id) })
	out := make([]int, len(ids))
	for i, p := range pairs {
		out[i] = p.tag
	}
	return out
}

// routeLatency returns the overlay path latency of a route in milliseconds.
func (s *netSystem) routeLatency(r canon.Route) float64 {
	total := 0.0
	for i := 0; i+1 < len(r.Nodes); i++ {
		total += s.env.hosts.Latency(s.nw.NodeTag(r.Nodes[i]), s.nw.NodeTag(r.Nodes[i+1]))
	}
	return total
}
