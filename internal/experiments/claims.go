package experiments

import (
	"fmt"
	"math"
)

// Claim is one checkable statement from the paper, verified at reduced
// scale by Check (nil error = the claim reproduces).
type Claim struct {
	// ID names the claim's source (theorem, figure or section).
	ID string
	// Statement is the paper's claim in one sentence.
	Statement string
	// Check verifies the claim; nil means it reproduces.
	Check func(cfg Config) error
}

// Claims returns the full reproduction checklist: every quantitative claim
// of the paper, each verified end to end by `canonsim verify`. Scale is
// reduced (hundreds to a few thousand nodes) so the sweep finishes in
// seconds; the full-scale counterparts are the individual experiments.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "Thm 1 + Fig 3",
			Statement: "Chord's expected degree is at most log2(n-1)+1 and close to log2 n",
			Check: func(cfg Config) error {
				tbl, err := Fig3(cfg, []int{2048}, []int{1})
				if err != nil {
					return err
				}
				deg := tbl.Series[0].Y[0]
				if bound := math.Log2(2047) + 1; deg > bound {
					return fmt.Errorf("degree %.2f exceeds bound %.2f", deg, bound)
				}
				if deg < math.Log2(2048)-2 {
					return fmt.Errorf("degree %.2f implausibly low", deg)
				}
				return nil
			},
		},
		{
			ID:        "Thm 2 + Fig 3",
			Statement: "Crescendo's degree is within Theorem 2's bound and at or below Chord's",
			Check: func(cfg Config) error {
				tbl, err := Fig3(cfg, []int{2048}, []int{1, 4})
				if err != nil {
					return err
				}
				flat, hier := tbl.Series[0].Y[0], tbl.Series[1].Y[0]
				if bound := math.Log2(2047) + math.Min(4, math.Log2(2048)); hier > bound {
					return fmt.Errorf("degree %.2f exceeds bound %.2f", hier, bound)
				}
				if hier > flat+0.2 {
					return fmt.Errorf("crescendo degree %.2f above chord's %.2f", hier, flat)
				}
				return nil
			},
		},
		{
			ID:        "Thm 4 + Fig 5",
			Statement: "Chord routes in about 0.5*log2 n hops",
			Check: func(cfg Config) error {
				tbl, err := Fig5(cfg, []int{2048}, []int{1})
				if err != nil {
					return err
				}
				hops := tbl.Series[0].Y[0]
				if bound := 0.5*math.Log2(2047) + 0.5; hops > bound {
					return fmt.Errorf("hops %.2f exceed bound %.2f", hops, bound)
				}
				return nil
			},
		},
		{
			ID:        "Thm 5 + Fig 5",
			Statement: "hierarchy costs at most ~0.7 extra hops regardless of depth",
			Check: func(cfg Config) error {
				tbl, err := Fig5(cfg, []int{2048}, []int{1, 5})
				if err != nil {
					return err
				}
				extra := tbl.Series[1].Y[0] - tbl.Series[0].Y[0]
				if extra > 0.9 {
					return fmt.Errorf("extra hops %.2f exceed ~0.7 claim", extra)
				}
				return nil
			},
		},
		{
			ID:        "Fig 4",
			Statement: "the degree distribution flattens left of the mean as levels grow",
			Check: func(cfg Config) error {
				tbl, err := Fig4(cfg, 2048, []int{1, 5})
				if err != nil {
					return err
				}
				peak := func(s int) float64 {
					best := 0.0
					for _, y := range tbl.Series[s].Y {
						if y > best {
							best = y
						}
					}
					return best
				}
				if peak(1) >= peak(0) {
					return fmt.Errorf("deep-hierarchy peak %.3f not below flat peak %.3f", peak(1), peak(0))
				}
				return nil
			},
		},
		{
			ID:        "Fig 6",
			Statement: "stretch orders as chord > chord(prox) ~ crescendo > crescendo(prox)",
			Check: func(cfg Config) error {
				_, stretch, err := Fig6(cfg, []int{2048})
				if err != nil {
					return err
				}
				v := map[string]float64{}
				for _, s := range stretch.Series {
					v[s.Name] = s.Y[0]
				}
				if !(v["crescendo (prox.)"] < v["crescendo (no prox.)"] &&
					v["crescendo (prox.)"] < v["chord (prox.)"] &&
					v["crescendo (no prox.)"] < v["chord (no prox.)"] &&
					v["chord (prox.)"] < v["chord (no prox.)"]) {
					return fmt.Errorf("stretch ordering violated: %v", v)
				}
				return nil
			},
		},
		{
			ID:        "Fig 7",
			Statement: "crescendo's latency collapses with query locality; chord (prox.) barely improves",
			Check: func(cfg Config) error {
				tbl, err := Fig7(cfg, 2048)
				if err != nil {
					return err
				}
				var crescendo, chordProx []float64
				for _, s := range tbl.Series {
					switch s.Name {
					case "crescendo (no prox.)":
						crescendo = s.Y
					case "chord (prox.)":
						chordProx = s.Y
					}
				}
				if crescendo[4] > crescendo[0]/10 {
					return fmt.Errorf("no collapse: top %.1f, level4 %.1f", crescendo[0], crescendo[4])
				}
				if chordProx[4] < chordProx[0]/4 {
					return fmt.Errorf("chord (prox.) collapsed unexpectedly: %v", chordProx)
				}
				return nil
			},
		},
		{
			ID:        "Fig 8",
			Statement: "cached-path overlap is high and rising for crescendo, low for chord",
			Check: func(cfg Config) error {
				tbl, err := Fig8(cfg, 2048)
				if err != nil {
					return err
				}
				var crescendo, chord []float64
				for _, s := range tbl.Series {
					switch s.Name {
					case "crescendo (hops)":
						crescendo = s.Y
					case "chord (prox.) (hops)":
						chord = s.Y
					}
				}
				if crescendo[4] < 2*chord[4] {
					return fmt.Errorf("crescendo overlap %.2f not well above chord %.2f", crescendo[4], chord[4])
				}
				if crescendo[4] <= crescendo[0] {
					return fmt.Errorf("overlap not rising with level: %v", crescendo)
				}
				return nil
			},
		},
		{
			ID:        "Fig 9",
			Statement: "a crescendo multicast tree crosses far fewer top-level domains than chord's",
			Check: func(cfg Config) error {
				tbl, err := Fig9(cfg, 2048, 400)
				if err != nil {
					return err
				}
				var crescendo, chord float64
				for _, s := range tbl.Series {
					switch s.Name {
					case "crescendo":
						crescendo = s.Y[0]
					case "chord (prox.)":
						chord = s.Y[0]
					}
				}
				if crescendo*4 > chord {
					return fmt.Errorf("savings only %.1fx", chord/math.Max(crescendo, 1))
				}
				return nil
			},
		},
		{
			ID:        "S2.3",
			Statement: "a node insertion costs O(log n) maintenance messages",
			Check: func(cfg Config) error {
				tbl, err := Churn(cfg, []int{512, 2048}, 3)
				if err != nil {
					return err
				}
				var perLog []float64
				for _, s := range tbl.Series {
					if s.Name == "join messages / log2 n" {
						perLog = s.Y
					}
				}
				if perLog[1] > 1.5*perLog[0] {
					return fmt.Errorf("per-log join cost grows: %v", perLog)
				}
				return nil
			},
		},
		{
			ID:        "S3.1",
			Statement: "greedy routing with lookahead saves a large fraction of Symphony's hops",
			Check: func(cfg Config) error {
				tbl, err := Lookahead(cfg, []int{2048}, 1)
				if err != nil {
					return err
				}
				for _, s := range tbl.Series {
					if s.Name == "saving fraction" && s.Y[0] < 0.15 {
						return fmt.Errorf("saving only %.2f", s.Y[0])
					}
				}
				return nil
			},
		},
		{
			ID:        "S4.3",
			Statement: "bisection ID selection keeps the partition ratio at a small constant",
			Check: func(cfg Config) error {
				tbl, err := Balance(cfg, []int{2048})
				if err != nil {
					return err
				}
				for _, s := range tbl.Series {
					if s.Name == "bisection" && s.Y[0] > 8 {
						return fmt.Errorf("bisection ratio %.1f", s.Y[0])
					}
				}
				return nil
			},
		},
		{
			ID:        "S4.2",
			Statement: "hierarchical proxy caching cuts repeat-query cost",
			Check: func(cfg Config) error {
				tbl, err := Caching(cfg, 1024, 32, 100, 4000)
				if err != nil {
					return err
				}
				var hops []float64
				for _, s := range tbl.Series {
					if s.Name == "avg hops" {
						hops = s.Y
					}
				}
				if hops[1] >= hops[0] {
					return fmt.Errorf("caching did not cut hops: %v", hops)
				}
				return nil
			},
		},
		{
			ID:        "S2.2 (live)",
			Statement: "the live wire protocol looks up in O(log n) forwarding hops",
			Check: func(cfg Config) error {
				liveCfg := cfg
				if liveCfg.RoutePairs > 200 {
					liveCfg.RoutePairs = 200
				}
				tbl, err := Live(liveCfg, []int{32, 128}, "org/dept")
				if err != nil {
					return err
				}
				var hops []float64
				for _, s := range tbl.Series {
					if s.Name == "lookup hops" {
						hops = s.Y
					}
				}
				if hops[1] > 2*hops[0] {
					return fmt.Errorf("live hops grow too fast: %v", hops)
				}
				return nil
			},
		},
	}
}

// Verify runs the whole checklist and returns one line per claim plus the
// count of failures.
func Verify(cfg Config) (report []string, failures int) {
	cfg = cfg.withDefaults()
	for _, c := range Claims() {
		if err := c.Check(cfg); err != nil {
			failures++
			report = append(report, fmt.Sprintf("FAIL  %-14s %s: %v", c.ID, c.Statement, err))
			continue
		}
		report = append(report, fmt.Sprintf("ok    %-14s %s", c.ID, c.Statement))
	}
	return report, failures
}
