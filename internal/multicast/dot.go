package multicast

import (
	"fmt"
	"io"
	"sort"

	"github.com/canon-dht/canon/internal/hierarchy"
)

// WriteDOT renders the multicast tree in Graphviz DOT format, clustering
// nodes by their level-`level` domain so inter-domain links are visible at a
// glance (render with `dot -Tsvg`).
func (t *Tree) WriteDOT(w io.Writer, level int) error {
	pop := t.nw.Population()
	if _, err := fmt.Fprintln(w, "digraph multicast {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=circle, fontsize=8];")

	// Group members by domain.
	byDomain := make(map[*hierarchy.Domain][]int)
	for m := range t.members {
		d := pop.LeafOf(m).AncestorAt(level)
		if d == nil {
			d = pop.LeafOf(m)
		}
		byDomain[d] = append(byDomain[d], m)
	}
	domains := make([]*hierarchy.Domain, 0, len(byDomain))
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i].Path() < domains[j].Path() })
	for i, d := range domains {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=%q;\n", i, d.Path())
		members := byDomain[d]
		sort.Ints(members)
		for _, m := range members {
			label := fmt.Sprintf("%d", pop.IDOf(m))
			if m == t.dst {
				fmt.Fprintf(w, "    n%d [label=%q, shape=doublecircle];\n", m, label)
			} else {
				fmt.Fprintf(w, "    n%d [label=%q];\n", m, label)
			}
		}
		fmt.Fprintln(w, "  }")
	}
	// Edges, cross-domain ones highlighted.
	edges := make([]edgeKey, 0, len(t.edges))
	for e := range t.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		lca := hierarchy.LCA(pop.LeafOf(e.from), pop.LeafOf(e.to))
		attr := ""
		if lca.Depth() < level {
			attr = " [color=red, penwidth=2]"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", e.from, e.to, attr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
