package lockheldrpc2

import "context"

// releaseFirst is the correct discipline: snapshot under the lock, release,
// then go to the wire.
func (n *Node) releaseFirst(ctx context.Context) {
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	n.conn.Call(ctx, peer, "ping")
}

// earlyReturnKeepsHeld proves the branch discipline: the terminating branch
// does not unlock the fall-through path, but the fall-through path unlocks
// before calling.
func (n *Node) earlyReturnKeepsHeld(ctx context.Context) {
	n.mu.Lock()
	if n.peer == "" {
		n.mu.Unlock()
		return
	}
	peer := n.peer
	n.mu.Unlock()
	n.conn.Call(ctx, peer, "ping")
}

// spawned goroutines do not inherit the lexical lock: the closure runs
// concurrently, typically after the unlock.
func (n *Node) spawn(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.conn.Call(ctx, n.peer, "ping")
	}()
}

// helpers that never reach the wire are fine to call under the lock.
func (n *Node) localWork(ctx context.Context) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rebalance()
}

func (n *Node) rebalance() { n.peer = n.peer + "" }
