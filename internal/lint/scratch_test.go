package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchSrc deliberately plants the two bug classes the acceptance bar
// cares about — a lock-order inversion between two named mutexes and a
// goroutine with no stop path — inside otherwise ordinary node-flavored
// code, in a package generated at test runtime. Catching these proves the
// engine generalizes beyond the hand-written golden fixtures.
const scratchSrc = `package scratch

import (
	"sync"
	"time"
)

type node struct {
	mu      sync.Mutex
	tracker *tracker
}

type tracker struct {
	mu    sync.Mutex
	owner *node
}

// Demote locks node.mu, then reaches tracker.mu through a helper.
func (n *node) Demote() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracker.markDead()
}

func (t *tracker) markDead() {
	t.mu.Lock()
	defer t.mu.Unlock()
}

// Report locks tracker.mu, then calls back into the owning node — the
// classic inversion.
func (t *tracker) Report() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.owner.refresh()
}

func (n *node) refresh() {
	n.mu.Lock()
	defer n.mu.Unlock()
}

// Start spawns a maintenance loop that nothing can ever stop.
func (n *node) Start() {
	go n.maintain()
}

func (n *node) maintain() {
	for {
		time.Sleep(time.Second)
		n.refresh()
	}
}
`

// dataflowScratchSrc plants one seeded defect per v3 value-flow check —
// a use-after-put on a pooled buffer, a post-publish snapshot write, a
// mixed atomic/plain counter, and a discarded durability barrier — inside
// otherwise ordinary storage-flavored code generated at test runtime.
const dataflowScratchSrc = `package scratch

import (
	"sync"
	"sync/atomic"
)

// --- pool lifecycle: handle returns the buffer and then reads it.

type buf struct {
	b []byte
}

var bufPool = sync.Pool{New: func() any { return new(buf) }}

func handle() int {
	b := bufPool.Get().(*buf)
	bufPool.Put(b)
	return len(b.b)
}

// --- snapshot publication: install mutates the view it just published.

type view struct {
	epoch int
}

var current atomic.Pointer[view]

func install() {
	v := &view{epoch: 1}
	current.Store(v)
	v.epoch = 2
}

// --- counters: bump is atomic, read is plain, no common lock.

var hits uint64

func bump() { atomic.AddUint64(&hits, 1) }

func read() uint64 { return hits }

// --- durability: commit drops the barrier error before the ack.

type file struct{ dirty bool }

func (f *file) Sync() error {
	f.dirty = false
	return nil
}

type wal struct{ f *file }

func (w *wal) commit() {
	w.f.Sync()
}
`

// wireScratchReader is the miniature wire toolkit the v4 scratch proofs
// build codecs from, written in the idioms of internal/netnode/binwire.go
// so the symbolic interpreters model every operation.
const wireScratchReader = `package scratch

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var errWire = errors.New("scratch: malformed payload")

func appendU64(b []byte, v uint64) []byte {
	var x [8]byte
	binary.BigEndian.PutUint64(x[:], v)
	return append(b, x[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var x [4]byte
	binary.BigEndian.PutUint32(x[:], v)
	return append(b, x[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", errWire, what, r.off)
	}
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *binReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) str() string {
	if r.err != nil {
		return ""
	}
	n, sz := binary.Uvarint(r.data[r.off:])
	if sz <= 0 || n > uint64(len(r.data)-r.off-sz) {
		r.fail("bad string")
		return ""
	}
	s := string(r.data[r.off+sz : r.off+sz+int(n)])
	r.off += sz + int(n)
	return s
}

func (r *binReader) done() error {
	if r.err == nil && r.off != len(r.data) {
		r.fail("trailing bytes")
	}
	return r.err
}
`

// wireScratchSymSrc plants a field reorder (the encoder writes A then B,
// the decoder reads B then A) and an uncapped wire-count allocation inside
// an otherwise clean codec package.
const wireScratchSymSrc = `package scratch

type pingReq struct {
	A uint64
	B string
}

func (p pingReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, p.A)
	b = appendStr(b, p.B)
	return b, nil
}

func (p *pingReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.B = r.str()
	p.A = r.u64()
	return r.done()
}

type pongResp struct {
	C uint64
	D string
}

func (p pongResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, p.C)
	b = appendStr(b, p.D)
	return b, nil
}

func (p *pongResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.C = r.u64()
	p.D = r.str()
	return r.done()
}

func readList(r *binReader) []uint64 {
	n := r.uvarint()
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.u64())
	}
	return out
}
`

// wireScratchVerV0/V1 are the before/after of an unversioned width change:
// verReq.B narrows from u64 to u32 while the wire version stays 1.
const wireScratchVerV0 = `package scratch

type verReq struct {
	A uint64
	B uint64
}

func (q verReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.A)
	b = appendU64(b, q.B)
	return b, nil
}

func (q *verReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.A = r.u64()
	q.B = r.u64()
	return r.done()
}
`

const wireScratchVerV1 = `package scratch

type verReq struct {
	A uint64
	B uint32
}

func (q verReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.A)
	b = appendU32(b, q.B)
	return b, nil
}

func (q *verReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.A = r.u64()
	q.B = r.u32()
	return r.done()
}
`

// TestScratchWireProof runs the v4 symbolic engine over a generated codec
// package carrying a seeded field reorder and a seeded uncapped allocation:
// each must produce exactly one finding with byte-level evidence chains,
// and the clean codec pair must stay silent.
func TestScratchWireProof(t *testing.T) {
	cfg, _, pkgs, loader := writeScratchPkg(t, map[string]string{
		"reader.go": wireScratchReader,
		"codec.go":  wireScratchSymSrc,
	})
	cfg.WirePackages = map[string]bool{pkgs[0].Path: true}
	cfg.WireDocPath = ""
	cfg.WireBaselinePath = ""
	cfg.Enabled = map[string]bool{"wiresym": true, "wirebounds": true}
	diags := Run(cfg, loader.Fset, pkgs)

	byCheck := make(map[string][]Diagnostic)
	for _, d := range diags {
		byCheck[d.Check] = append(byCheck[d.Check], d)
	}
	if n := len(byCheck["wiresym"]); n != 1 {
		t.Fatalf("seeded field reorder: want exactly 1 wiresym finding, got %d (%v)", n, diags)
	}
	sym := byCheck["wiresym"][0]
	if !strings.Contains(sym.Message, "encoder and decoder of ping request disagree") {
		t.Errorf("wiresym message does not name the skewed pair: %s", sym.Message)
	}
	chain := strings.Join(sym.Chain, "\n")
	if !strings.Contains(chain, "encoder layout:") || !strings.Contains(chain, "decoder layout:") {
		t.Errorf("wiresym evidence chain missing the two layouts: %v", sym.Chain)
	}
	if n := len(byCheck["wirebounds"]); n != 1 {
		t.Fatalf("seeded uncapped allocation: want exactly 1 wirebounds finding, got %d (%v)", n, diags)
	}
	bounds := byCheck["wirebounds"][0]
	if !strings.Contains(bounds.Message, `readList preallocates []uint64 from wire-controlled count "n"`) {
		t.Errorf("wirebounds message does not name the allocation: %s", bounds.Message)
	}
	chain = strings.Join(bounds.Chain, "\n")
	if !strings.Contains(chain, "read from the wire at") || !strings.Contains(chain, "reserves 8 bytes per count unit") {
		t.Errorf("wirebounds evidence chain missing the count/size frames: %v", bounds.Chain)
	}
	if len(diags) != 2 {
		t.Errorf("clean codec pair must stay silent; got %d findings: %v", len(diags), diags)
	}
}

// TestScratchWireBreakProof drives the breaking-change gate end to end: a
// baseline extracted from the generated package, a silent run against it,
// then a field-width change with no version bump that must produce exactly
// one wirebreak finding carrying both layouts as evidence.
func TestScratchWireBreakProof(t *testing.T) {
	cfg, _, pkgs, loader := writeScratchPkg(t, map[string]string{
		"reader.go": wireScratchReader,
		"codec.go":  wireScratchVerV0,
	})
	cfg.WirePackages = map[string]bool{pkgs[0].Path: true}
	cfg.WireDocPath = ""
	cfg.Enabled = map[string]bool{"wirebreak": true}

	base, err := ExtractWireSchema(cfg, loader.Fset, pkgs).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	baselinePath := filepath.Join(pkgs[0].Dir, "wire.schema.json")
	if err := os.WriteFile(baselinePath, base, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.WireBaselinePath = baselinePath

	if diags := Run(cfg, loader.Fset, pkgs); len(diags) != 0 {
		t.Fatalf("unchanged tree must be clean under its own baseline, got: %v", diags)
	}

	// Narrow verReq.B from u64 to u32 without touching the wire version.
	if err := os.WriteFile(filepath.Join(pkgs[0].Dir, "codec.go"), []byte(wireScratchVerV1), 0o644); err != nil {
		t.Fatal(err)
	}
	loader2, err := NewLoader(cfg.Root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs2, err := loader2.LoadDirs([]string{pkgs[0].Dir})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(cfg, loader2.Fset, pkgs2)
	if len(diags) != 1 || diags[0].Check != "wirebreak" {
		t.Fatalf("seeded width change: want exactly 1 wirebreak finding, got: %v", diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "wire-breaking change in ver request") ||
		!strings.Contains(d.Message, "baseline B:u64, current B:u32") {
		t.Errorf("wirebreak message does not pin the width change: %s", d.Message)
	}
	chain := strings.Join(d.Chain, "\n")
	if !strings.Contains(chain, "baseline layout:") || !strings.Contains(chain, "current layout:") {
		t.Errorf("wirebreak evidence chain missing the two layouts: %v", d.Chain)
	}
}

// TestScratchDataflowProof runs the full analyzer over the generated
// package and demands that each of the four seeded value-flow defects is
// caught with a correct dataflow evidence chain — and that nothing else
// fires.
func TestScratchDataflowProof(t *testing.T) {
	cfg, _, pkgs, loader := writeScratchPkg(t, map[string]string{"scratch.go": dataflowScratchSrc})
	// The scratch package plays the storage engine so its Sync is in scope.
	cfg.DurabilityPackages[pkgs[0].Path] = true
	diags := Run(cfg, loader.Fset, pkgs)

	want := map[string]struct{ msg, evidence string }{
		"poolescape":    {`pooled value "b" is used after being returned to the pool`, "returned to the pool"},
		"publishrace":   {`value "v" is written after being published`, "atomic store current.Store"},
		"atomicmix":     {"hits is accessed both through sync/atomic and by plain load/store", "atomic access"},
		"durabilityerr": {"Sync is discarded in", "returns an error"},
	}
	seen := make(map[string]bool)
	for _, d := range diags {
		exp, ok := want[d.Check]
		if !ok {
			t.Errorf("unexpected %s finding in scratch package: %s", d.Check, d)
			continue
		}
		if seen[d.Check] {
			t.Errorf("check %s fired more than once: %s", d.Check, d)
			continue
		}
		seen[d.Check] = true
		if !strings.Contains(d.Message, exp.msg) {
			t.Errorf("%s message %q does not contain %q", d.Check, d.Message, exp.msg)
		}
		if len(d.Chain) < 2 {
			t.Errorf("%s diagnostic carries no dataflow evidence chain: %v", d.Check, d.Chain)
		}
		if !strings.Contains(strings.Join(d.Chain, "\n"), exp.evidence) {
			t.Errorf("%s evidence chain %v does not mention %q", d.Check, d.Chain, exp.evidence)
		}
		if d.Fingerprint == "" {
			t.Errorf("%s diagnostic missing fingerprint: %s", d.Check, d)
		}
	}
	for check := range want {
		if !seen[check] {
			t.Errorf("seeded %s defect was not caught", check)
		}
	}
}

// TestDataflowFingerprintsSurviveLineDrift pins the baseline contract for
// the v3 checks: their messages are position-free, so a finding's
// fingerprint is identical after unrelated edits shift every line number.
// Without this, -baseline files would rot on every refactor.
func TestDataflowFingerprintsSurviveLineDrift(t *testing.T) {
	cfg, _, pkgs, loader := writeScratchPkg(t, map[string]string{"scratch.go": dataflowScratchSrc})
	cfg.DurabilityPackages[pkgs[0].Path] = true

	fingerprints := func(diags []Diagnostic) map[string]bool {
		out := make(map[string]bool, len(diags))
		for _, d := range diags {
			if strings.Contains(d.Message, ".go:") {
				t.Errorf("message is not position-free: %s", d.Message)
			}
			out[d.Fingerprint] = true
		}
		return out
	}
	before := fingerprints(Run(cfg, loader.Fset, pkgs))

	// Shift every line down and reanalyze the same path.
	drifted := "package scratch\n\n// drift\n// drift\n// drift\n" +
		strings.TrimPrefix(dataflowScratchSrc, "package scratch\n")
	path := filepath.Join(pkgs[0].Dir, "scratch.go")
	if err := os.WriteFile(path, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	loader2, err := NewLoader(cfg.Root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs2, err := loader2.LoadDirs([]string{pkgs[0].Dir})
	if err != nil {
		t.Fatal(err)
	}
	after := fingerprints(Run(cfg, loader2.Fset, pkgs2))

	if len(before) == 0 {
		t.Fatal("no findings to compare")
	}
	for fp := range before {
		if !after[fp] {
			t.Errorf("fingerprint %s vanished after line drift", fp)
		}
	}
	for fp := range after {
		if !before[fp] {
			t.Errorf("fingerprint %s appeared after line drift", fp)
		}
	}
}

// TestScratchEngineProof runs the full analyzer (not a single check) over
// the generated package and demands that both planted bugs are caught, each
// with call-chain evidence.
func TestScratchEngineProof(t *testing.T) {
	cfg, _, pkgs, loader := writeScratchPkg(t, map[string]string{"scratch.go": scratchSrc})
	diags := Run(cfg, loader.Fset, pkgs)

	var sawLockOrder, sawLeak bool
	for _, d := range diags {
		switch d.Check {
		case "lockorder":
			sawLockOrder = true
			if !strings.Contains(d.Message, "node.mu") || !strings.Contains(d.Message, "tracker.mu") {
				t.Errorf("lockorder diagnostic should name both classes: %s", d.Message)
			}
			if len(d.Chain) == 0 {
				t.Error("lockorder diagnostic carries no call-chain evidence")
			}
		case "goroutineleak":
			sawLeak = true
			if !strings.Contains(d.Message, "maintain") {
				t.Errorf("goroutineleak diagnostic should name the looping function: %s", d.Message)
			}
			if len(d.Chain) == 0 {
				t.Error("goroutineleak diagnostic carries no call-chain evidence")
			}
		case "lockheldrpc2", "nodeadline", "deadpragma":
			t.Errorf("unexpected %s finding in scratch package: %s", d.Check, d)
		}
	}
	if !sawLockOrder {
		t.Error("deliberate lock-order inversion (node.mu <-> tracker.mu) was not caught")
	}
	if !sawLeak {
		t.Error("deliberate stop-less maintenance goroutine was not caught")
	}
	for _, d := range diags {
		if d.Fingerprint == "" {
			t.Errorf("diagnostic missing fingerprint: %s", d)
		}
	}
}
