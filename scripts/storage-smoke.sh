#!/usr/bin/env bash
# storage-smoke.sh — end-to-end crash-durability smoke test of the storage
# engine (docs/STORAGE.md).
#
# Boots a real three-node canond cluster over TCP with -replicas 3, every
# node on its own durable -data-dir, then:
#   * writes a batch of values through canonctl — each put is acked, and by
#     the fsync-on-ack contract an ack means the write is fsynced,
#   * kill -9s one node (no Leave, no handoff, no flush — the only exit the
#     WAL is allowed to assume),
#   * asserts every acked value is still readable from the survivors
#     (replication carried the data past the dead node),
#   * restarts the dead node on the SAME data directory and asserts every
#     acked value is readable through it (WAL replay recovered its records),
#   * asserts the WAL metrics prove what happened: fsyncs on the ack path,
#     replayed records on recovery, and anti-entropy rounds running.
#
# Usage: storage-smoke.sh [path-to-canond] [path-to-canonctl]
set -euo pipefail

CANOND=${1:-./canond}
CANONCTL=${2:-./canonctl}
BASE=7171
ADMIN=9171   # bootstrap node's admin endpoint
ADMIN2=9172  # victim node's admin endpoint (checked after restart)
DATA=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT

# Fixed, spread node ids so the restarted node comes back as itself.
IDS=(1000000 1431655765 2863311531)

start_node() { # index, extra args...
  local i=$1; shift
  "$CANOND" -listen "127.0.0.1:$((BASE + i))" -id "${IDS[$i]}" \
    -data-dir "$DATA/n$i" -replicas 3 -stabilize 200ms -sync-interval 500ms \
    "$@" &
  PIDS+=($!)
}

echo "== booting three durable nodes (replicas=3, data under $DATA)"
start_node 0 -admin "127.0.0.1:$ADMIN"
sleep 1
start_node 1 -join "127.0.0.1:$BASE"
sleep 0.5
start_node 2 -join "127.0.0.1:$BASE" -admin "127.0.0.1:$ADMIN2"
sleep 0.5
echo "== letting stabilization and replication run"
sleep 4

echo "== writing acked values"
KEYS=(42 7777 123456789 3405691582 18446744073709551615 99 31337 271828182845)
for i in "${!KEYS[@]}"; do
  "$CANONCTL" -node "127.0.0.1:$((BASE + i % 3))" put "${KEYS[$i]}" "durable-$i"
done
echo "== letting replication and anti-entropy spread the copies"
sleep 3

echo "== kill -9 node 2 (pid ${PIDS[2]})"
kill -9 "${PIDS[2]}"
echo "== letting the survivors detect the death and repair the ring"
sleep 3

echo "== every acked value must survive on node 0 and node 1"
for i in "${!KEYS[@]}"; do
  for port in "$BASE" "$((BASE + 1))"; do
    got=$("$CANONCTL" -node "127.0.0.1:$port" get "${KEYS[$i]}")
    [ "$got" = "durable-$i" ] || {
      echo "LOST ACKED WRITE: key ${KEYS[$i]} via :$port returned '$got', want 'durable-$i'" >&2
      exit 1
    }
  done
done

echo "== restarting node 2 on the same data directory"
start_node 2 -join "127.0.0.1:$BASE" -admin "127.0.0.1:$ADMIN2"
sleep 4

echo "== every acked value must be readable through the restarted node"
for i in "${!KEYS[@]}"; do
  got=$("$CANONCTL" -node "127.0.0.1:$((BASE + 2))" get "${KEYS[$i]}")
  [ "$got" = "durable-$i" ] || {
    echo "LOST ACKED WRITE AFTER RESTART: key ${KEYS[$i]} returned '$got', want 'durable-$i'" >&2
    exit 1
  }
done

echo "== WAL metrics prove the path: fsyncs before acks, replay on recovery"
metrics=$(curl -sf "http://127.0.0.1:$ADMIN/metrics")
echo "$metrics" | awk '/^canon_store_wal_fsyncs_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_store_wal_fsyncs_total missing or zero on node 0" >&2; exit 1; }
echo "$metrics" | awk '/^canon_store_wal_appends_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_store_wal_appends_total missing or zero on node 0" >&2; exit 1; }
echo "$metrics" | awk '/^canon_antientropy_rounds_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "canon_antientropy_rounds_total missing or zero on node 0" >&2; exit 1; }
metrics2=$(curl -sf "http://127.0.0.1:$ADMIN2/metrics")
echo "$metrics2" | awk '/^canon_store_wal_replayed_records_total/ {s += $NF} END {exit !(s > 0)}' \
  || { echo "restarted node shows no replayed WAL records" >&2; exit 1; }

echo "storage smoke: OK (zero acked writes lost across kill -9 + restart)"
