package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV renders the table as CSV: a header row with the x-label and
// series names, then one row per x value (blank cells where a series has no
// point). Notes are omitted; use the JSON encoding to keep them.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for _, x := range t.xValues() {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range t.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = strconv.FormatFloat(s.Y[i], 'g', -1, 64)
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON shape of a Table.
type tableJSON struct {
	Title  string       `json:"title"`
	XLabel string       `json:"xLabel"`
	Series []seriesJSON `json:"series"`
	Notes  []string     `json:"notes,omitempty"`
}

type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// WriteJSON renders the table as a single JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	out := tableJSON{Title: t.Title, XLabel: t.XLabel, Notes: t.Notes}
	for _, s := range t.Series {
		out.Series = append(out.Series, seriesJSON{Name: s.Name, X: s.X, Y: s.Y})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("metrics: json encode: %w", err)
	}
	return nil
}

// xValues returns the sorted union of the series' x values.
func (t *Table) xValues() []float64 {
	set := make(map[float64]struct{})
	for _, s := range t.Series {
		for _, x := range s.X {
			set[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}
