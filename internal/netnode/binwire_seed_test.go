package netnode

import (
	"testing"

	"github.com/canon-dht/canon/internal/lint"
)

// loadSchemaSeeds loads the committed wire-schema baseline and synthesizes
// one minimal valid encoding per top-level message this package decodes —
// every optional field present, every slice carrying one element — keyed by
// wire name. The fuzz targets feed these to the corpus so every message
// type and wire version starts covered; TestSchemaSeedsDecode proves the
// synthesized bytes actually decode.
func loadSchemaSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	s, err := lint.LoadWireSchema("../../docs/wire.schema.json")
	if err != nil {
		tb.Fatalf("load wire schema baseline: %v", err)
	}
	seeds := make(map[string][]byte)
	for _, m := range s.Messages {
		if m.Package == "internal/netnode" && m.Kind == "message" {
			seeds[m.Name] = m.Seed()
		}
	}
	return seeds
}

// TestSchemaSeedsDecode decodes every schema-synthesized seed with the real
// decoder for its message type. A failure means the extracted schema and the
// decoder disagree about the byte layout — the same symmetry canonvet's
// wiresym check guards, proven here from the other direction with concrete
// bytes. The decoder map doubles as a completeness pin: a message added to
// the codecs (or removed) without updating the baseline fails this test.
func TestSchemaSeedsDecode(t *testing.T) {
	decoders := map[string]interface{ UnmarshalBinary([]byte) error }{
		"Info":               &Info{},
		"lookup request":     &lookupReq{},
		"lookup response":    &lookupResp{},
		"store request":      &storeReq{},
		"fetch request":      &fetchReq{},
		"fetch response":     &fetchResp{},
		"store2 request":     &storeReq2{},
		"synctree request":   &syncTreeReq{},
		"synctree response":  &syncTreeResp{},
		"synckeys request":   &syncKeysReq{},
		"synckeys response":  &syncKeysResp{},
		"syncpull request":   &syncPullReq{},
		"syncpull response":  &syncPullResp{},
		"bucketref request":  &bucketRefReq{},
		"bucketref response": &bucketRefResp{},
		"lookahead request":  &lookaheadReq{},
		"lookahead response": &lookaheadResp{},
	}
	seeds := loadSchemaSeeds(t)
	for name, seed := range seeds {
		dec, ok := decoders[name]
		if !ok {
			t.Errorf("schema baseline has message %q with no decoder in this test's map; update the map", name)
			continue
		}
		if err := dec.UnmarshalBinary(seed); err != nil {
			t.Errorf("schema seed for %q (% x) does not decode: %v", name, seed, err)
		}
	}
	for name := range decoders {
		if _, ok := seeds[name]; !ok {
			t.Errorf("decoder %q has no message in the schema baseline; regenerate it with canonvet -write-schema", name)
		}
	}
}
