package canonstore

import (
	"bytes"
	"testing"
)

func TestMemUpsertByIdentity(t *testing.T) {
	m := NewMem()
	defer m.Close()

	// A value and a pointer under the same key and domains are distinct
	// records; copies under different domain pairs are distinct too.
	puts := []Entry{
		{Key: 7, Value: []byte("v1"), Storage: "a", Access: "", Version: 1},
		{Key: 7, Storage: "a", Access: "", PtrID: 9, PtrName: "a/x", PtrAddr: "h:1", Version: 1},
		{Key: 7, Value: []byte("v2"), Storage: "a/b", Access: "a", Version: 1},
	}
	for _, e := range puts {
		applied, err := m.Put(e)
		if err != nil || !applied {
			t.Fatalf("Put(%+v) = %v, %v", e, applied, err)
		}
	}
	got := m.Get(7, nil)
	if len(got) != 3 {
		t.Fatalf("Get returned %d entries, want 3", len(got))
	}
	if m.Keys() != 1 {
		t.Fatalf("Keys() = %d, want 1", m.Keys())
	}

	// Overwriting the first record must not append a fourth entry.
	applied, err := m.Put(Entry{Key: 7, Value: []byte("v1b"), Storage: "a", Access: "", Version: 2})
	if err != nil || !applied {
		t.Fatalf("overwrite put: %v, %v", applied, err)
	}
	got = m.Get(7, nil)
	if len(got) != 3 {
		t.Fatalf("after overwrite Get returned %d entries, want 3", len(got))
	}
	for _, e := range got {
		if e.Storage == "a" && e.Access == "" && !e.IsPointer() {
			if string(e.Value) != "v1b" || e.Version != 2 {
				t.Fatalf("overwrite not applied: %+v", e)
			}
		}
	}
}

func TestMemVersionConflict(t *testing.T) {
	m := NewMem()
	defer m.Close()
	if _, err := m.Put(Entry{Key: 1, Value: []byte("new"), Version: 5}); err != nil {
		t.Fatal(err)
	}
	// A stale write loses.
	applied, err := m.Put(Entry{Key: 1, Value: []byte("old"), Version: 4})
	if err != nil || applied {
		t.Fatalf("stale write applied=%v err=%v, want false, nil", applied, err)
	}
	// Equal versions break ties by content digest, so every replica picks
	// the same winner regardless of arrival order.
	a := Entry{Key: 1, Value: []byte("tie-a"), Version: 5}
	b := Entry{Key: 1, Value: []byte("tie-b"), Version: 5}
	lo, hi := a, b
	if lo.Digest() > hi.Digest() {
		lo, hi = hi, lo
	}
	applied, err = m.Put(hi)
	if err != nil || !applied {
		t.Fatalf("higher-digest tie applied=%v err=%v, want true, nil", applied, err)
	}
	applied, err = m.Put(lo)
	if err != nil || applied {
		t.Fatalf("lower-digest tie applied=%v err=%v, want false, nil", applied, err)
	}
	got := m.Get(1, nil)
	if len(got) != 1 || !bytes.Equal(got[0].Value, hi.Value) {
		t.Fatalf("Get = %+v, want the digest winner %q", got, hi.Value)
	}
	// An exact re-put (replica push of the same record) stays applied.
	applied, err = m.Put(hi)
	if err != nil || !applied {
		t.Fatalf("idempotent re-put applied=%v err=%v, want true, nil", applied, err)
	}
	// The placement level must not pick winners: re-placing the same record
	// at another level applies (levels are metadata, not content).
	relevel := hi
	relevel.Level = 3
	applied, err = m.Put(relevel)
	if err != nil || !applied {
		t.Fatalf("re-level put applied=%v err=%v, want true, nil", applied, err)
	}
}

func TestMemDelete(t *testing.T) {
	m := NewMem()
	defer m.Close()
	if _, err := m.Put(Entry{Key: 3, Value: []byte("x"), Storage: "s", Access: "s"}); err != nil {
		t.Fatal(err)
	}
	existed, err := m.Delete(3, "s", "s", false)
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	if got := m.Get(3, nil); len(got) != 0 {
		t.Fatalf("Get after delete = %+v", got)
	}
	if m.Keys() != 0 {
		t.Fatalf("Keys() = %d after delete", m.Keys())
	}
	existed, err = m.Delete(3, "s", "s", false)
	if err != nil || existed {
		t.Fatalf("second Delete = %v, %v", existed, err)
	}
}

func TestMemForEach(t *testing.T) {
	m := NewMem()
	defer m.Close()
	for i := uint64(0); i < 10; i++ {
		if _, err := m.Put(Entry{Key: i, Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	m.ForEach(func(Entry) bool { n++; return true })
	if n != 10 {
		t.Fatalf("ForEach visited %d, want 10", n)
	}
	n = 0
	m.ForEach(func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stop ForEach visited %d, want 3", n)
	}
}

func TestGetAppendsToDst(t *testing.T) {
	m := NewMem()
	defer m.Close()
	if _, err := m.Put(Entry{Key: 1, Value: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	buf := make([]Entry, 0, 4)
	out := m.Get(1, buf)
	if len(out) != 1 || &out[0] != &buf[:1][0] {
		t.Fatalf("Get did not append into the caller's buffer")
	}
}
