// Package topology implements the transit–stub internet model the paper uses
// for its physical-network experiments (Section 5.2), replacing the GT-ITM
// generator [12]: routers are partitioned into transit domains of transit
// routers; a stub domain of stub routers hangs off every transit router; and
// link latencies follow the paper's classes — 100 ms between transit
// routers, 20 ms transit–stub, 5 ms stub–stub, and 1 ms from an end host to
// its stub router. The default configuration reproduces the paper's
// 2040-router graph.
//
// The model induces the natural five-level hierarchy the paper builds
// Crescendo over: root / transit domain / transit router / stub domain /
// stub router.
package topology

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"

	"github.com/canon-dht/canon/internal/hierarchy"
)

// Config describes a transit–stub topology.
type Config struct {
	// TransitDomains is the number of top-level transit domains.
	TransitDomains int
	// TransitPerDomain is the number of transit routers per transit domain.
	TransitPerDomain int
	// StubsPerTransit is the number of stub domains attached to each transit
	// router.
	StubsPerTransit int
	// StubSize is the number of stub routers per stub domain.
	StubSize int
	// ExtraEdgeFraction adds this fraction of extra random edges (beyond the
	// connecting spanning structure) inside every transit domain and stub
	// domain, controlling path diversity.
	ExtraEdgeFraction float64

	// Latencies in milliseconds for each link class.
	TransitTransitMS float64
	TransitStubMS    float64
	StubStubMS       float64
	HostStubMS       float64
}

// DefaultConfig returns the paper's 2040-router setup: 4 transit domains of
// 10 transit routers, each transit router with two 25-router stub domains
// (4*10 + 4*10*2*25 = 2040), with the paper's latency classes. Multiple stub
// domains per transit router keep the hierarchy's transit-router and
// stub-domain levels distinct, as in GT-ITM.
func DefaultConfig() Config {
	return Config{
		TransitDomains:    4,
		TransitPerDomain:  10,
		StubsPerTransit:   2,
		StubSize:          25,
		ExtraEdgeFraction: 1.5,
		TransitTransitMS:  100,
		TransitStubMS:     20,
		StubStubMS:        5,
		HostStubMS:        1,
	}
}

func (c Config) validate() error {
	if c.TransitDomains < 1 || c.TransitPerDomain < 1 || c.StubsPerTransit < 1 || c.StubSize < 1 {
		return fmt.Errorf("topology: domains/routers/stubs/sizes must be >= 1 (got %d/%d/%d/%d)",
			c.TransitDomains, c.TransitPerDomain, c.StubsPerTransit, c.StubSize)
	}
	if c.TransitTransitMS < 0 || c.TransitStubMS < 0 || c.StubStubMS < 0 || c.HostStubMS < 0 {
		return fmt.Errorf("topology: latencies must be non-negative")
	}
	return nil
}

type edge struct {
	to int
	w  float32
}

// Topology is an immutable router graph with per-source shortest-path
// caching. It is safe for concurrent use.
type Topology struct {
	cfg        Config
	numRouters int
	adj        [][]edge
	stubs      []int // router ids of all stub routers
	// For router classification.
	transitDomainOf []int // per router: transit domain index
	transitOf       []int // per stub router: its transit router; -1 for transit routers
	stubDomainOf    []int // per stub router: global stub-domain index; -1 for transit routers

	mu   sync.Mutex
	dist map[int][]float32 // per-source shortest path latencies
}

// New generates a topology from cfg using rng for the random graph structure.
func New(rng *rand.Rand, cfg Config) (*Topology, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numTransit := cfg.TransitDomains * cfg.TransitPerDomain
	total := numTransit + numTransit*cfg.StubsPerTransit*cfg.StubSize
	t := &Topology{
		cfg:             cfg,
		numRouters:      total,
		adj:             make([][]edge, total),
		transitDomainOf: make([]int, total),
		transitOf:       make([]int, total),
		stubDomainOf:    make([]int, total),
		dist:            make(map[int][]float32),
	}
	// Router numbering: transit routers first (domain-major), then stub
	// routers grouped by stub domain, stub domains grouped by transit
	// router.
	transitRouter := func(dom, i int) int { return dom*cfg.TransitPerDomain + i }
	stubRouter := func(sd, j int) int { return numTransit + sd*cfg.StubSize + j }

	for dom := 0; dom < cfg.TransitDomains; dom++ {
		// Connect the domain's transit routers: random spanning chain plus
		// extra random chords, all at transit-transit latency.
		members := make([]int, cfg.TransitPerDomain)
		for i := range members {
			members[i] = transitRouter(dom, i)
			t.transitDomainOf[members[i]] = dom
			t.transitOf[members[i]] = -1
			t.stubDomainOf[members[i]] = -1
		}
		t.connectGroup(rng, members, float32(cfg.TransitTransitMS))
	}
	// Connect every pair of transit domains via random member routers; the
	// GT-ITM backbones the paper uses are dense, keeping inter-domain routes
	// to one or two transit-transit hops.
	for dom := 0; dom < cfg.TransitDomains; dom++ {
		for other := dom + 1; other < cfg.TransitDomains; other++ {
			a := transitRouter(dom, rng.Intn(cfg.TransitPerDomain))
			b := transitRouter(other, rng.Intn(cfg.TransitPerDomain))
			t.addEdge(a, b, float32(cfg.TransitTransitMS))
		}
	}
	// Stub domains.
	t.stubs = make([]int, 0, numTransit*cfg.StubsPerTransit*cfg.StubSize)
	for tr := 0; tr < numTransit; tr++ {
		for s := 0; s < cfg.StubsPerTransit; s++ {
			sd := tr*cfg.StubsPerTransit + s
			members := make([]int, cfg.StubSize)
			for j := range members {
				r := stubRouter(sd, j)
				members[j] = r
				t.transitDomainOf[r] = t.transitDomainOf[tr]
				t.transitOf[r] = tr
				t.stubDomainOf[r] = sd
				t.stubs = append(t.stubs, r)
			}
			t.connectGroup(rng, members, float32(cfg.StubStubMS))
			// Gateway: one stub router links up to the transit router.
			t.addEdge(members[rng.Intn(len(members))], tr, float32(cfg.TransitStubMS))
		}
	}
	return t, nil
}

// connectGroup wires members into a connected random subgraph: a shuffled
// chain plus ExtraEdgeFraction*len extra random edges, all of weight w.
func (t *Topology) connectGroup(rng *rand.Rand, members []int, w float32) {
	if len(members) == 1 {
		return
	}
	perm := rng.Perm(len(members))
	for i := 1; i < len(perm); i++ {
		t.addEdge(members[perm[i-1]], members[perm[i]], w)
	}
	extra := int(t.cfg.ExtraEdgeFraction * float64(len(members)))
	for i := 0; i < extra; i++ {
		a := members[rng.Intn(len(members))]
		b := members[rng.Intn(len(members))]
		if a != b {
			t.addEdge(a, b, w)
		}
	}
}

func (t *Topology) addEdge(a, b int, w float32) {
	t.adj[a] = append(t.adj[a], edge{to: b, w: w})
	t.adj[b] = append(t.adj[b], edge{to: a, w: w})
}

// NumRouters returns the total number of routers.
func (t *Topology) NumRouters() int { return t.numRouters }

// StubRouters returns the identifiers of all stub routers. Callers must not
// modify the returned slice.
func (t *Topology) StubRouters() []int { return t.stubs }

// Config returns the topology's configuration.
func (t *Topology) Config() Config { return t.cfg }

// Latency returns the shortest-path latency in milliseconds between two
// routers. Per-source results are cached.
func (t *Topology) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	t.mu.Lock()
	d, ok := t.dist[a]
	t.mu.Unlock()
	if !ok {
		d = t.dijkstra(a)
		t.mu.Lock()
		t.dist[a] = d
		t.mu.Unlock()
	}
	return float64(d[b])
}

type pqItem struct {
	router int
	dist   float32
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

func (t *Topology) dijkstra(src int) []float32 {
	const inf = float32(1e30)
	d := make([]float32, t.numRouters)
	for i := range d {
		d[i] = inf
	}
	d[src] = 0
	q := pq{{router: src}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > d[it.router] {
			continue
		}
		for _, e := range t.adj[it.router] {
			if nd := it.dist + e.w; nd < d[e.to] {
				d[e.to] = nd
				heap.Push(&q, pqItem{router: e.to, dist: nd})
			}
		}
	}
	return d
}

// BuildHierarchy returns the natural five-level hierarchy induced by the
// topology (root / transit domain / transit router / stub domain / stub
// router) along with the leaf domain of every stub router, indexed by
// position in StubRouters().
func (t *Topology) BuildHierarchy() (*hierarchy.Tree, []*hierarchy.Domain, error) {
	tree := hierarchy.NewTree()
	leaves := make([]*hierarchy.Domain, len(t.stubs))
	for i, r := range t.stubs {
		path := fmt.Sprintf("td%d/tr%d/sd%d/sr%d",
			t.transitDomainOf[r], t.transitOf[r], t.stubDomainOf[r], r)
		d, err := tree.EnsurePath(path)
		if err != nil {
			return nil, nil, err
		}
		leaves[i] = d
	}
	return tree, leaves, nil
}

// Hosts places end hosts (DHT nodes) on stub routers, each connected to its
// stub router by a HostStubMS link.
type Hosts struct {
	topo   *Topology
	stubOf []int // per host: stub router id
	leaves []*hierarchy.Domain
	tree   *hierarchy.Tree
}

// AttachHosts places n hosts on stub routers chosen uniformly at random and
// returns the host set together with the induced hierarchy assignment.
func (t *Topology) AttachHosts(rng *rand.Rand, n int) (*Hosts, error) {
	tree, leaves, err := t.BuildHierarchy()
	if err != nil {
		return nil, err
	}
	h := &Hosts{
		topo:   t,
		stubOf: make([]int, n),
		leaves: make([]*hierarchy.Domain, n),
		tree:   tree,
	}
	for i := 0; i < n; i++ {
		j := rng.Intn(len(t.stubs))
		h.stubOf[i] = t.stubs[j]
		h.leaves[i] = leaves[j]
	}
	return h, nil
}

// Len returns the number of hosts.
func (h *Hosts) Len() int { return len(h.stubOf) }

// Tree returns the topology-induced hierarchy.
func (h *Hosts) Tree() *hierarchy.Tree { return h.tree }

// Leaves returns each host's leaf domain (the stub-router domain), aligned
// with host indices. Callers must not modify the returned slice.
func (h *Hosts) Leaves() []*hierarchy.Domain { return h.leaves }

// StubOf returns the stub router a host attaches to.
func (h *Hosts) StubOf(host int) int { return h.stubOf[host] }

// Latency returns the end-to-end latency between two hosts in milliseconds:
// the host-stub hop on each side plus the router shortest path. Two hosts on
// the same stub router are 2*HostStubMS apart; a host reaches itself at
// cost 0.
func (h *Hosts) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	return 2*h.topo.cfg.HostStubMS + h.topo.Latency(h.stubOf[a], h.stubOf[b])
}

// PathLatency sums the host-to-host latencies along a sequence of hosts
// (an overlay routing path).
func (h *Hosts) PathLatency(path []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		total += h.Latency(path[i], path[i+1])
	}
	return total
}

// AvgDirectLatency estimates the mean shortest-path latency between random
// host pairs, the normalizer for the paper's stretch metric.
func (h *Hosts) AvgDirectLatency(rng *rand.Rand, samples int) float64 {
	if samples <= 0 || h.Len() < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < samples; i++ {
		a, b := rng.Intn(h.Len()), rng.Intn(h.Len())
		for a == b {
			b = rng.Intn(h.Len())
		}
		total += h.Latency(a, b)
	}
	return total / float64(samples)
}
