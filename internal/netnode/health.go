package netnode

import (
	"sync"
	"sync/atomic"
	"time"
)

// PeerState classifies a peer's observed liveness.
type PeerState int

const (
	// PeerAlive means the peer's last call succeeded (or it was never tried).
	PeerAlive PeerState = iota
	// PeerSuspect means the peer has failed a few consecutive calls; routing
	// deprioritizes it but still uses it as a last resort.
	PeerSuspect
	// PeerDead means the peer kept failing past the suspect threshold; it is
	// routed around until a probation probe succeeds.
	PeerDead
)

// String returns the state's lowercase name.
func (s PeerState) String() string {
	switch s {
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "alive"
	}
}

// Thresholds and probation windows of the failure detector. Consecutive
// failures promote alive → suspect → dead; a success resets to alive. Suspect
// and dead peers re-enter service through probation: after the window passes,
// one call is allowed through as a probe, and its outcome decides the state.
const (
	suspectThreshold = 2
	deadThreshold    = 5
	suspectProbation = 500 * time.Millisecond
	deadProbation    = 2 * time.Second
)

// peerHealth is one peer's failure-detector state. All fields are atomics:
// once a peer's entry exists in the tracker's map, every read and write goes
// through them, so the forwarding hot path queries health without locking.
type peerHealth struct {
	state      atomic.Int32 // a PeerState
	fails      atomic.Int32 // consecutive failures
	probeAfter atomic.Int64 // unix nanos when a suspect/dead peer may be probed
}

// healthTracker is a per-node failure detector fed by every RPC outcome.
//
// Reads — preferred() on the forwarding hot path, state(), snapshot() — are
// lock-free: the peer map lives behind an atomic pointer and individual peer
// entries are atomics. The single mutex serializes only the copy-on-write
// insertion of first-seen peers (a rare event: the peer set is the routing
// table's neighborhood, which stabilizes quickly), never a lookup.
type healthTracker struct {
	mu    sync.Mutex // serializes COW inserts of new peers only
	now   func() time.Time
	peers atomic.Pointer[map[string]*peerHealth]
}

func newHealthTracker() *healthTracker {
	h := &healthTracker{now: time.Now}
	m := make(map[string]*peerHealth)
	h.peers.Store(&m)
	return h
}

// lookup returns the peer's entry without creating one.
func (h *healthTracker) lookup(addr string) *peerHealth {
	return (*h.peers.Load())[addr]
}

// peer returns the peer's entry, inserting one via copy-on-write when the
// address is new. Only the write paths (recordSuccess/recordFailure) call it;
// reads never allocate map copies.
func (h *healthTracker) peer(addr string) *peerHealth {
	if p := h.lookup(addr); p != nil {
		return p
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	old := *h.peers.Load()
	if p, ok := old[addr]; ok { // lost the insert race
		return p
	}
	next := make(map[string]*peerHealth, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	p := &peerHealth{}
	next[addr] = p
	h.peers.Store(&next)
	return p
}

// recordSuccess marks the peer alive.
func (h *healthTracker) recordSuccess(addr string) {
	if addr == "" {
		return
	}
	p := h.peer(addr)
	p.state.Store(int32(PeerAlive))
	p.fails.Store(0)
}

// recordFailure counts a consecutive failure, promoting the peer to suspect
// or dead when it crosses the thresholds.
func (h *healthTracker) recordFailure(addr string) {
	if addr == "" {
		return
	}
	p := h.peer(addr)
	fails := p.fails.Add(1)
	switch {
	case fails >= deadThreshold:
		p.state.Store(int32(PeerDead))
		p.probeAfter.Store(h.now().Add(deadProbation).UnixNano())
	case fails >= suspectThreshold:
		p.state.Store(int32(PeerSuspect))
		p.probeAfter.Store(h.now().Add(suspectProbation).UnixNano())
	}
}

// state returns the peer's current classification.
func (h *healthTracker) state(addr string) PeerState {
	p := h.lookup(addr)
	if p == nil {
		return PeerAlive
	}
	return PeerState(p.state.Load())
}

// preferred reports whether routing should rank the peer normally. Alive
// peers are preferred; suspect/dead peers are not — except once per probation
// window, when a single probe is let back through so recovered peers rejoin
// the routing set. The single probe is enforced with a compare-and-swap on
// the window's deadline: of any number of concurrent lookups racing on an
// expired window, exactly one wins the CAS (and pushes the window out), so
// they cannot all pile onto a possibly-dead peer. The call takes no locks.
func (h *healthTracker) preferred(addr string) bool {
	p := h.lookup(addr)
	if p == nil {
		return true
	}
	st := PeerState(p.state.Load())
	if st == PeerAlive {
		return true
	}
	pa := p.probeAfter.Load()
	now := h.now().UnixNano()
	if now <= pa {
		return false
	}
	window := suspectProbation
	if st == PeerDead {
		window = deadProbation
	}
	return p.probeAfter.CompareAndSwap(pa, now+int64(window))
}

// snapshot returns the non-alive peers and their states.
func (h *healthTracker) snapshot() map[string]string {
	out := make(map[string]string)
	for addr, p := range *h.peers.Load() {
		if st := PeerState(p.state.Load()); st != PeerAlive {
			out[addr] = st.String()
		}
	}
	return out
}
