package netnode

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/transport"
)

// newStoreBenchNode builds a single settled node on the in-memory bus with
// the default volatile store, preloaded with one value per benchmark key.
// The store benchmarks measure the node-local write and read paths a store
// or fetch RPC lands on (versioned LWW apply, metric upkeep, access
// filtering) without wire or routing cost on top.
func newStoreBenchNode(b *testing.B, keys []uint64) *Node {
	b.Helper()
	bus := transport.NewBus()
	n, err := New(Config{
		Name:      "bench/dom",
		RandomID:  true,
		Rand:      rand.New(rand.NewSource(9)),
		Transport: bus.Endpoint("store-bench"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	for i, k := range keys {
		req := storeReq2{
			Key: k, Value: []byte(fmt.Sprintf("value-%d", i)),
			Storage: "bench", Access: "bench",
		}
		if err := n.storeLocalV2(req); err != nil {
			b.Fatal(err)
		}
	}
	return n
}

func benchKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Uint32())
	}
	return keys
}

// BenchmarkStoreLocalMem measures the node-local store apply against the
// in-memory engine: version stamping, the (version, digest) LWW gate, the
// memtable upsert and the stored-keys gauge refresh. Keys are preloaded so
// every iteration is a steady-state overwrite, not map growth. CI's
// bench-gate holds its allocs/op at zero.
func BenchmarkStoreLocalMem(b *testing.B) {
	keys := benchKeys(1024)
	n := newStoreBenchNode(b, keys)
	value := []byte("overwrite-value-of-modest-size--")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := storeReq2{
			Key: keys[i%len(keys)], Value: value,
			Storage: "bench", Access: "bench",
		}
		if err := n.storeLocalV2(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchLocalMem measures the node-local read path a fetch RPC
// lands on: memtable lookup plus the access-domain filter that decides
// which entries the querier may see.
func BenchmarkFetchLocalMem(b *testing.B) {
	keys := benchKeys(1024)
	n := newStoreBenchNode(b, keys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := n.fetchLocal(fetchReq{Key: keys[i%len(keys)], Origin: "bench/dom"})
		if len(out) != 1 {
			b.Fatalf("fetchLocal returned %d values, want 1", len(out))
		}
	}
}
