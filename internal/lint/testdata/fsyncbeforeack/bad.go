// Package fsyncbeforeack is the golden fixture for the fsync-on-ack check.
// NewMessage plays transport.NewMessage, the msgStore* constants play the
// store message types, and store.Sync plays the durability barrier: every
// ack construction with no Sync-reaching call lexically before it fires.
package fsyncbeforeack

const (
	msgStore   = "store"
	msgStoreV2 = "store2"
	msgPing    = "ping"
)

// Message plays transport.Message.
type Message struct{ Type string }

// NewMessage plays transport.NewMessage: the ack shape is a call to it with
// a msgStore*-named constant and a nil body.
func NewMessage(msgType string, body any) (Message, error) {
	return Message{Type: msgType}, nil
}

// store plays canonstore.Store.
type store struct{ dirty bool }

func (s *store) put(k uint64) { s.dirty = true }
func (s *store) Sync() error  { s.dirty = false; return nil }

type node struct{ st *store }

// ackWithoutSync promises durability it never established.
func (n *node) ackWithoutSync() (Message, error) {
	n.st.put(1)
	return NewMessage(msgStore, nil) // want `msgStore ack constructed without a preceding durability barrier`
}

// ackBeforeSync syncs only after building the reply: the lexical rule is
// conservative here by design — construct the ack last.
func (n *node) ackBeforeSync() (Message, error) {
	n.st.put(2)
	msg, err := NewMessage(msgStoreV2, nil) // want `msgStoreV2 ack constructed without a preceding durability barrier`
	if err != nil {
		return Message{}, err
	}
	if err := n.st.Sync(); err != nil {
		return Message{}, err
	}
	return msg, nil
}

// ackViaHelper fires too: persist writes but never reaches a barrier, so
// the summary bit stays false all the way up.
func (n *node) ackViaHelper() (Message, error) {
	n.persist(3)
	return NewMessage(msgStore, nil) // want `msgStore ack constructed without a preceding durability barrier`
}

func (n *node) persist(k uint64) { n.st.put(k) }
