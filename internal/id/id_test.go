package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	tests := []struct {
		name    string
		bits    uint
		wantErr bool
	}{
		{name: "zero bits", bits: 0, wantErr: true},
		{name: "one bit", bits: 1, wantErr: false},
		{name: "default", bits: DefaultBits, wantErr: false},
		{name: "max", bits: MaxBits, wantErr: false},
		{name: "too wide", bits: MaxBits + 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSpace(tt.bits)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewSpace(%d) error = %v, wantErr %v", tt.bits, err, tt.wantErr)
			}
		})
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpace(0) did not panic")
		}
	}()
	MustSpace(0)
}

func TestSpaceBasics(t *testing.T) {
	s := MustSpace(4)
	if got := s.Size(); got != 16 {
		t.Errorf("Size() = %d, want 16", got)
	}
	if got := s.Mask(); got != 15 {
		t.Errorf("Mask() = %d, want 15", got)
	}
	if !s.Contains(15) {
		t.Error("Contains(15) = false, want true")
	}
	if s.Contains(16) {
		t.Error("Contains(16) = true, want false")
	}
	if got := s.Wrap(17); got != 1 {
		t.Errorf("Wrap(17) = %d, want 1", got)
	}
}

func TestClockwise(t *testing.T) {
	s := MustSpace(4)
	tests := []struct {
		a, b ID
		want uint64
	}{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 11},
		{15, 0, 1},
		{0, 15, 15},
		{7, 7, 0},
		{12, 3, 7},
	}
	for _, tt := range tests {
		if got := s.Clockwise(tt.a, tt.b); got != tt.want {
			t.Errorf("Clockwise(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAddSub(t *testing.T) {
	s := MustSpace(4)
	if got := s.Add(14, 3); got != 1 {
		t.Errorf("Add(14,3) = %d, want 1", got)
	}
	if got := s.Sub(1, 3); got != 14 {
		t.Errorf("Sub(1,3) = %d, want 14", got)
	}
}

func TestBetween(t *testing.T) {
	s := MustSpace(4)
	tests := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 0, 10, true},
		{10, 0, 10, true}, // half-open (a,b]: b included
		{0, 0, 10, false}, // a excluded
		{11, 0, 10, false},
		{1, 14, 3, true},  // wrapping interval
		{15, 14, 3, true}, // wrapping interval
		{14, 14, 3, false},
		{5, 14, 3, false},
		{9, 7, 7, true}, // a==b covers whole ring
	}
	for _, tt := range tests {
		if got := s.Between(tt.x, tt.a, tt.b); got != tt.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestInInterval(t *testing.T) {
	s := MustSpace(4)
	// distances from a=12: x=14 -> 2, x=3 -> 7, x=12 -> 0
	if !s.InInterval(14, 12, 2, 4) {
		t.Error("InInterval(14,12,2,4) = false, want true")
	}
	if s.InInterval(14, 12, 3, 4) {
		t.Error("InInterval(14,12,3,4) = true, want false")
	}
	if !s.InInterval(12, 12, 0, 1) {
		t.Error("InInterval(12,12,0,1) = false, want true")
	}
}

func TestXOR(t *testing.T) {
	s := MustSpace(4)
	if got := s.XOR(0b1010, 0b0110); got != 0b1100 {
		t.Errorf("XOR = %b, want 1100", got)
	}
	if got := s.XOR(7, 7); got != 0 {
		t.Errorf("XOR(7,7) = %d, want 0", got)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	s := MustSpace(4)
	tests := []struct {
		a, b ID
		want uint
	}{
		{0b1010, 0b1011, 3},
		{0b1010, 0b1010, 4},
		{0b0000, 0b1000, 0},
		{0b1100, 0b1000, 1},
	}
	for _, tt := range tests {
		if got := s.CommonPrefixLen(tt.a, tt.b); got != tt.want {
			t.Errorf("CommonPrefixLen(%04b,%04b) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestBitAndFlip(t *testing.T) {
	s := MustSpace(4)
	v := ID(0b1010)
	wantBits := []uint{1, 0, 1, 0}
	for i, want := range wantBits {
		if got := s.Bit(v, uint(i)); got != want {
			t.Errorf("Bit(%04b, %d) = %d, want %d", v, i, got, want)
		}
	}
	if got := s.FlipBit(v, 0); got != 0b0010 {
		t.Errorf("FlipBit(%04b, 0) = %04b, want 0010", v, got)
	}
	if got := s.FlipBit(v, 3); got != 0b1011 {
		t.Errorf("FlipBit(%04b, 3) = %04b, want 1011", v, got)
	}
}

func TestPrefixAndRange(t *testing.T) {
	s := MustSpace(4)
	if got := s.Prefix(0b1011, 2); got != 0b10 {
		t.Errorf("Prefix(1011,2) = %b, want 10", got)
	}
	if got := s.Prefix(0b1011, 0); got != 0 {
		t.Errorf("Prefix(1011,0) = %d, want 0", got)
	}
	lo, hi := s.PrefixRange(0b10, 2)
	if lo != 0b1000 || hi != 0b1011 {
		t.Errorf("PrefixRange(10,2) = (%04b,%04b), want (1000,1011)", lo, hi)
	}
	lo, hi = s.PrefixRange(0, 0)
	if lo != 0 || hi != 15 {
		t.Errorf("PrefixRange(0,0) = (%d,%d), want (0,15)", lo, hi)
	}
}

func TestStringPadding(t *testing.T) {
	s := MustSpace(6)
	if got := s.String(5); got != "000101" {
		t.Errorf("String(5) = %q, want 000101", got)
	}
}

func TestUniqueRandom(t *testing.T) {
	s := MustSpace(4)
	rng := rand.New(rand.NewSource(1))
	ids, err := s.UniqueRandom(rng, 16)
	if err != nil {
		t.Fatalf("UniqueRandom: %v", err)
	}
	seen := make(map[ID]bool)
	for _, v := range ids {
		if seen[v] {
			t.Fatalf("duplicate id %d", v)
		}
		seen[v] = true
	}
	if _, err := s.UniqueRandom(rng, 17); err == nil {
		t.Fatal("UniqueRandom(17) in 4-bit space: expected error")
	}
}

func TestSuccessorPredecessorIndex(t *testing.T) {
	ids := []ID{2, 5, 9, 14}
	tests := []struct {
		target ID
		succ   int
		pred   int
	}{
		{0, 0, 3}, // before all: succ wraps to first, pred wraps to last
		{2, 0, 3}, // equal to first: succ is itself, pred wraps
		{3, 1, 0},
		{5, 1, 0},
		{6, 2, 1},
		{14, 3, 2},
		{15, 0, 3}, // after all: succ wraps
	}
	for _, tt := range tests {
		if got := SuccessorIndex(ids, tt.target); got != tt.succ {
			t.Errorf("SuccessorIndex(%d) = %d, want %d", tt.target, got, tt.succ)
		}
		if got := PredecessorIndex(ids, tt.target); got != tt.pred {
			t.Errorf("PredecessorIndex(%d) = %d, want %d", tt.target, got, tt.pred)
		}
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ID{9, 2, 14, 5}
	SortIDs(ids)
	want := []ID{2, 5, 9, 14}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortIDs = %v, want %v", ids, want)
		}
	}
}

// Property: clockwise distance is a "directed metric": d(a,a)=0,
// d(a,b)+d(b,a) = ring size for a != b, and d(a,b)+d(b,c) ≡ d(a,c) (mod size).
func TestClockwiseProperties(t *testing.T) {
	s := DefaultSpace()
	f := func(ra, rb, rc uint64) bool {
		a, b, c := s.Wrap(ra), s.Wrap(rb), s.Wrap(rc)
		if s.Clockwise(a, a) != 0 {
			return false
		}
		if a != b && s.Clockwise(a, b)+s.Clockwise(b, a) != s.Size() {
			return false
		}
		sum := (s.Clockwise(a, b) + s.Clockwise(b, c)) % s.Size()
		return sum == s.Clockwise(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR is a metric: identity, symmetry, triangle inequality.
func TestXORMetricProperties(t *testing.T) {
	s := DefaultSpace()
	f := func(ra, rb, rc uint64) bool {
		a, b, c := s.Wrap(ra), s.Wrap(rb), s.Wrap(rc)
		if (s.XOR(a, b) == 0) != (a == b) {
			return false
		}
		if s.XOR(a, b) != s.XOR(b, a) {
			return false
		}
		return s.XOR(a, c) <= s.XOR(a, b)+s.XOR(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Between(x, a, b) iff clockwise walk from a hits x before or at b.
func TestBetweenConsistentWithClockwise(t *testing.T) {
	s := MustSpace(8)
	f := func(rx, ra, rb uint64) bool {
		x, a, b := s.Wrap(rx), s.Wrap(ra), s.Wrap(rb)
		want := false
		if a == b {
			want = true
		} else {
			dx, db := s.Clockwise(a, x), s.Clockwise(a, b)
			want = dx > 0 && dx <= db
		}
		return s.Between(x, a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PrefixRange brackets exactly the IDs sharing the prefix.
func TestPrefixRangeProperty(t *testing.T) {
	s := MustSpace(10)
	f := func(rv uint64, rp uint8) bool {
		v := s.Wrap(rv)
		plen := uint(rp) % (s.Bits() + 1)
		p := s.Prefix(v, plen)
		lo, hi := s.PrefixRange(p, plen)
		return v >= lo && v <= hi && s.Prefix(lo, plen) == p && s.Prefix(hi, plen) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FlipBit is an involution and changes exactly the named bit.
func TestFlipBitProperty(t *testing.T) {
	s := MustSpace(16)
	f := func(rv uint64, ri uint8) bool {
		v := s.Wrap(rv)
		i := uint(ri) % s.Bits()
		w := s.FlipBit(v, i)
		if s.FlipBit(w, i) != v {
			return false
		}
		return s.XOR(v, w) == uint64(1)<<(s.Bits()-1-i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkClockwise(b *testing.B) {
	s := DefaultSpace()
	rng := rand.New(rand.NewSource(1))
	a, c := s.Random(rng), s.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clockwise(a, c)
	}
}

func BenchmarkXOR(b *testing.B) {
	s := DefaultSpace()
	rng := rand.New(rand.NewSource(2))
	a, c := s.Random(rng), s.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.XOR(a, c)
	}
}

func BenchmarkSuccessorIndex(b *testing.B) {
	s := DefaultSpace()
	rng := rand.New(rand.NewSource(3))
	ids, err := s.UniqueRandom(rng, 8192)
	if err != nil {
		b.Fatal(err)
	}
	SortIDs(ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SuccessorIndex(ids, s.Random(rng))
	}
}
