package netnode

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/canon-dht/canon/internal/canonstore"
	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

var (
	// ErrClosed is returned by operations on a closed node.
	ErrClosed = errors.New("netnode: node closed")
	// ErrNotFound is returned by Get when no accessible value exists.
	ErrNotFound = errors.New("netnode: key not found")
	// ErrBadDomain is returned when a storage/access domain does not relate
	// to the node's position as Section 4.1 requires.
	ErrBadDomain = errors.New("netnode: invalid storage/access domain")
)

// lookupHopLimit bounds forwarding chains defensively.
const lookupHopLimit = 512

// stabilizeWalkLimit bounds the per-round predecessor walk of
// stabilizeLevel: in steady state the walk exits after one RPC, and after a
// join burst it may take up to one step per ring member that slotted in
// between a node and its stale successor.
const stabilizeWalkLimit = 64

// Config configures a live node.
type Config struct {
	// Space is the identifier space; the zero value means the default
	// 32-bit space.
	Space id.Space
	// Name is the node's hierarchical domain name, e.g. "stanford/cs/db".
	// Empty means the node lives directly in the root domain.
	Name string
	// ID is the node's identifier. Set RandomID to draw one instead.
	ID uint64
	// RandomID draws the identifier from Rand.
	RandomID bool
	// Rand seeds nondeterministic choices; nil means a time-seeded source.
	Rand *rand.Rand
	// Transport carries the node's traffic.
	Transport transport.Transport
	// Geometry selects the routing geometry: GeometryCrescendo (Chord
	// fingers, the default when empty), GeometryKandy (XOR buckets) or
	// GeometryCacophony (harmonic links + 1-lookahead). Every node of a
	// cluster should run the same geometry; mixed clusters stay correct —
	// all geometries route clockwise over the same rings and agree on
	// ownership — but the link structure each side maintains is its own.
	Geometry string
	// SuccessorListLen is the per-level leaf-set length (default 4).
	SuccessorListLen int
	// RegistrySize bounds the per-domain membership registry (default 8).
	RegistrySize int
	// ReplicationFactor is how many copies of each item exist, counting the
	// owner's: the owner pushes ReplicationFactor-1 replicas to its
	// predecessors within the item's home domain on every stabilization
	// round, and anti-entropy keeps that replica set convergent. Values
	// below 2 disable both (the default).
	ReplicationFactor int
	// Store is the node-local storage engine holding the node's items. Nil
	// means a volatile in-memory store (canonstore.NewMem) — the default
	// for tests and simulations; canond passes a canonstore.Disk when
	// -data-dir is set. The node owns the store and closes it on Close.
	Store canonstore.Store
	// SyncInterval is the target period between replica anti-entropy
	// rounds, rounded up to whole maintenance ticks. Zero means every
	// fourth tick; anti-entropy only runs while the maintenance loop does
	// (see Start) and only when ReplicationFactor enables replication.
	SyncInterval time.Duration
	// Retry governs RPC re-send behavior (attempts, backoff, per-attempt
	// timeout). The zero value means the defaults; see RetryPolicy.
	Retry RetryPolicy
	// Telemetry receives the node's metrics (counters, gauges, histograms).
	// Nil means a private registry, readable via Node.Telemetry(). Sharing a
	// registry across in-process nodes aggregates their series; Stats() then
	// reports the aggregate too.
	Telemetry *telemetry.Registry
	// TraceSampleRate samples this fraction of Lookup calls into route
	// traces archived in the node's trace store (0 disables sampling;
	// TracedLookup is always traced regardless).
	TraceSampleRate float64
	// TraceBuffer bounds the completed-trace ring buffer (default 128).
	TraceBuffer int
}

// Node is a live Canon participant running one of the routing geometries
// (Crescendo by default; see Config.Geometry).
type Node struct {
	cfg    Config
	space  id.Space
	self   Info
	levels int // depth of the leaf domain; chain levels are 0..levels
	geom   geometry
	tr     transport.Transport
	rng    *rand.Rand
	retry  RetryPolicy
	health *healthTracker

	// Telemetry: the registry-backed metrics handles and the completed-trace
	// ring buffer this node archives into.
	tel    *telemetry.Registry
	m      *nodeMetrics
	traces *telemetry.TraceStore

	nonceSeq uint64

	// store holds the node's items (values, pointer records, replicas)
	// behind the canonstore.Store interface; it synchronizes internally,
	// so the RPC paths use it without taking the node lock.
	store canonstore.Store
	// clock is the node's Lamport-style write clock: stampVersion draws
	// fresh versions from it and observeVersion advances it past every
	// version seen on the wire, so local stamps always order after them.
	clock atomic.Uint64

	// routing is the published epoch snapshot of the mutable tables below:
	// the forwarding hot path reads it lock-free, and every mutation of
	// preds/succs/fingers under mu republishes it (publishRoutingLocked).
	routing atomic.Pointer[routingView]

	mu       sync.Mutex
	preds    []Info   // per level
	succs    [][]Info // per level, ascending clockwise from self
	fingers  map[uint64]Info
	registry map[string][]Info // domain prefix -> member hints
	// looks and ests are Cacophony's lookahead state, refreshed wholesale by
	// each exchange round: looks maps (contact address, level) to the
	// clockwise distance from self to that contact's ring successor there
	// (flowing into viewCandidate.look); ests holds the per-level average of
	// the ring-size estimates neighbors reported (0 = none yet). Other
	// geometries leave both empty.
	looks  map[lookKey]uint64
	ests   []uint64
	closed bool

	loopStop chan struct{}
	loopDone chan struct{}
}

// New creates a node. It does not contact anyone; call Join.
func New(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, errors.New("netnode: Config.Transport is required")
	}
	space := cfg.Space
	if space.Bits() == 0 {
		space = id.DefaultSpace()
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	nodeID := cfg.ID
	if cfg.RandomID {
		nodeID = uint64(space.Random(rng))
	}
	// The node keeps a private RNG seeded from the caller's: Config.Rand is
	// routinely shared across the nodes of a simulated cluster, and rand.Rand
	// is not safe for the concurrent use the maintenance loop and RPC retry
	// jitter would make of it. Deriving the seed here keeps runs with a fixed
	// Config.Rand deterministic.
	private := rand.New(rand.NewSource(rng.Int63()))
	if !space.Contains(id.ID(nodeID)) {
		return nil, fmt.Errorf("netnode: id %d outside %d-bit space", nodeID, space.Bits())
	}
	if cfg.SuccessorListLen <= 0 {
		cfg.SuccessorListLen = 4
	}
	if cfg.RegistrySize <= 0 {
		cfg.RegistrySize = 8
	}
	geom, err := geometryByName(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	levels := len(components(cfg.Name))
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	store := cfg.Store
	if store == nil {
		store = canonstore.NewMem()
	}
	n := &Node{
		cfg:      cfg,
		space:    space,
		self:     Info{ID: nodeID, Name: cfg.Name, Addr: cfg.Transport.Addr()},
		levels:   levels,
		geom:     geom,
		tr:       cfg.Transport,
		rng:      private,
		retry:    cfg.Retry.withDefaults(),
		health:   newHealthTracker(),
		tel:      reg,
		m:        newNodeMetrics(reg),
		traces:   telemetry.NewTraceStore(cfg.TraceBuffer),
		store:    store,
		preds:    make([]Info, levels+1),
		succs:    make([][]Info, levels+1),
		fingers:  make(map[uint64]Info),
		registry: make(map[string][]Info),
		ests:     make([]uint64, levels+1),
	}
	// A durable store may come back from disk already holding versioned
	// entries (a canond restart): advance the write clock past every
	// replayed version so fresh stamps order after pre-crash writes, and
	// seed the stored-keys gauge.
	store.ForEach(func(e canonstore.Entry) bool {
		n.observeVersion(e.Version)
		return true
	})
	n.m.storeItems.Set(float64(store.Keys()))
	// Publish the initial (empty) routing view before the transport can
	// deliver a lookup: the hot path loads it unconditionally.
	n.publishRouting()
	// Nonce-based dedup gives every handler at-most-once semantics under
	// caller retries and transport-level duplication.
	n.tr.Serve(transport.DedupHandler(n.handle, 4096))
	return n, nil
}

// Info returns the node's wire identity.
func (n *Node) Info() Info { return n.self }

// Telemetry returns the node's metrics registry (the one passed in
// Config.Telemetry, or the node-private registry).
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }

// TraceStore returns the node's completed-trace ring buffer: traces the node
// originated or served as the entry hop for.
func (n *Node) TraceStore() *telemetry.TraceStore { return n.traces }

// Levels returns the node's chain depth: level 0 is the root, Levels() is
// the leaf.
func (n *Node) Levels() int { return n.levels }

// clockwise is shorthand for the ring distance from a to b.
func (n *Node) clockwise(a, b uint64) uint64 {
	return n.space.Clockwise(id.ID(a), id.ID(b))
}

// Join inserts the node into the network through the given contact address.
// An empty contact bootstraps a new network. Per Section 2.3, the node looks
// up its own identifier at every level of its chain, going from the lowest
// domain to the top, and splices itself in after the predecessor found at
// each level.
func (n *Node) Join(ctx context.Context, contact string) error {
	if contact == "" {
		n.mu.Lock()
		for l := 0; l <= n.levels; l++ {
			n.succs[l] = []Info{n.self}
			n.preds[l] = n.self
		}
		n.publishRoutingLocked()
		n.mu.Unlock()
		return n.registerSelf(ctx)
	}
	// Find, for every level, a member of our domain to start the
	// constrained lookup from. The contact serves the levels it shares;
	// deeper domains are resolved through the membership registry.
	contactInfo, err := n.pingAddr(ctx, contact)
	if err != nil {
		return fmt.Errorf("netnode: contact %s: %w", contact, err)
	}
	shared := sharedLevels(n.self.Name, contactInfo.Name)
	for l := 0; l <= n.levels; l++ {
		prefix := prefixAt(n.self.Name, l)
		var seed Info
		switch {
		case l <= shared:
			seed = contactInfo
		default:
			seed, err = n.findMember(ctx, contactInfo, prefix)
			if err != nil {
				// First node in this domain: alone at this level.
				n.mu.Lock()
				n.succs[l] = []Info{n.self}
				n.preds[l] = n.self
				n.publishRoutingLocked()
				n.mu.Unlock()
				continue
			}
		}
		resp, err := n.lookupFrom(ctx, seed, uint64(n.space.Sub(id.ID(n.self.ID), 1)), prefix)
		if err != nil {
			return fmt.Errorf("netnode: join lookup at level %d: %w", l, err)
		}
		n.mu.Lock()
		if resp.Succ.IsZero() || resp.Succ.ID == n.self.ID {
			n.succs[l] = []Info{n.self}
			n.preds[l] = n.self
		} else {
			n.succs[l] = []Info{resp.Succ}
			n.preds[l] = resp.Pred
		}
		pred, succ := n.preds[l], n.succs[l][0]
		n.publishRoutingLocked()
		n.mu.Unlock()
		// Eagerly notify both ring neighbors (Section 2.3: nodes that would
		// erroneously skip the joiner are told right away).
		if succ.Addr != n.self.Addr {
			if note, err := transport.NewMessage(msgNotify, notifyReq{Level: l, From: n.self}); err == nil {
				_, _ = n.call(ctx, succ.Addr, note)
			}
		}
		if !pred.IsZero() && pred.Addr != n.self.Addr {
			if note, err := transport.NewMessage(msgNotify, notifyReq{Level: l, From: n.self, AsSuccessor: true}); err == nil {
				_, _ = n.call(ctx, pred.Addr, note)
			}
		}
	}
	if err := n.registerSelf(ctx); err != nil {
		return err
	}
	// Pull successor lists, announce ourselves, and build fingers.
	n.StabilizeOnce(ctx)
	n.FixFingers(ctx)
	n.StabilizeOnce(ctx)
	return nil
}

// registerSelf records the node in the membership registry of every domain
// on its chain.
func (n *Node) registerSelf(ctx context.Context) error {
	for l := 0; l <= n.levels; l++ {
		prefix := prefixAt(n.self.Name, l)
		key := domainKey(n.space, prefix)
		resp, err := n.lookupFrom(ctx, n.self, key, "")
		if err != nil {
			continue
		}
		req, err := transport.NewMessage(msgRegister, registerReq{Prefix: prefix, From: n.self})
		if err != nil {
			return err
		}
		if resp.Pred.Addr == n.self.Addr {
			n.registerLocal(prefix, n.self)
			continue
		}
		if _, err := n.call(ctx, resp.Pred.Addr, req); err != nil {
			continue
		}
	}
	return nil
}

// findMember locates a live member of the named domain via the registry.
func (n *Node) findMember(ctx context.Context, seed Info, prefix string) (Info, error) {
	key := domainKey(n.space, prefix)
	resp, err := n.lookupFrom(ctx, seed, key, "")
	if err != nil {
		return Info{}, err
	}
	req, err := transport.NewMessage(msgMembers, membersReq{Prefix: prefix})
	if err != nil {
		return Info{}, err
	}
	raw, err := n.call(ctx, resp.Pred.Addr, req)
	if err != nil {
		return Info{}, err
	}
	var members membersResp
	if err := raw.Decode(&members); err != nil {
		return Info{}, err
	}
	for _, m := range members.Members {
		if m.Addr == n.self.Addr {
			continue
		}
		if _, err := n.pingAddr(ctx, m.Addr); err == nil {
			return m, nil
		}
	}
	return Info{}, fmt.Errorf("netnode: no live member of %q", prefix)
}

func (n *Node) registerLocal(prefix string, who Info) {
	n.mu.Lock()
	defer n.mu.Unlock()
	members := n.registry[prefix]
	for i, m := range members {
		if m.Addr == who.Addr {
			members[i] = who
			return
		}
	}
	if len(members) >= n.cfg.RegistrySize {
		// Replace a random entry; stale entries get filtered by ping on use.
		members[n.rng.Intn(len(members))] = who
	} else {
		members = append(members, who)
	}
	n.registry[prefix] = members
}

func (n *Node) pingAddr(ctx context.Context, addr string) (Info, error) {
	req, err := transport.NewMessage(msgPing, nil)
	if err != nil {
		return Info{}, err
	}
	resp, err := n.call(ctx, addr, req)
	if err != nil {
		return Info{}, err
	}
	var info Info
	if err := resp.Decode(&info); err != nil {
		return Info{}, err
	}
	return info, nil
}

// Start launches the background maintenance loop.
func (n *Node) Start(interval time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.loopStop != nil || n.closed {
		return
	}
	n.loopStop = make(chan struct{})
	n.loopDone = make(chan struct{})
	go n.maintainLoop(interval, n.loopStop, n.loopDone)
}

func (n *Node) maintainLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	// Anti-entropy runs on a multiple of the maintenance tick: replica
	// divergence accrues slowly (it needs a missed push), so syncing every
	// round would spend tree exchanges on agreement.
	syncEvery := 4
	if n.cfg.SyncInterval > 0 {
		syncEvery = int((n.cfg.SyncInterval + interval - 1) / interval)
		if syncEvery < 1 {
			syncEvery = 1
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	tick := 0
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			n.StabilizeOnce(ctx)
			n.FixFingers(ctx)
			tick++
			if tick%syncEvery == 0 {
				n.AntiEntropyOnce(ctx)
			}
			cancel()
		case <-stop:
			return
		}
	}
}

// Close stops maintenance, the transport and the storage engine. It does
// not announce departure; use Leave for a graceful exit. A durable store is
// sealed, not emptied: reopening it under the same Config.Store recovers
// every acked write.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	stop, done := n.loopStop, n.loopDone
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	err := n.tr.Close()
	if serr := n.store.Close(); err == nil {
		err = serr
	}
	return err
}

// Leave gracefully exits: stored items move to each item's new owner with
// their versions intact, and neighbors at every level are told to splice
// the node out. Close follows.
func (n *Node) Leave(ctx context.Context) error {
	// Snapshot the store first: ForEach holds the store's lock, and the
	// handoff RPCs below must not run under it.
	var items []canonstore.Entry
	n.store.ForEach(func(e canonstore.Entry) bool {
		items = append(items, e)
		return true
	})
	n.mu.Lock()
	globalSuccs := append([]Info(nil), n.succs[0]...)
	preds := append([]Info(nil), n.preds...)
	n.mu.Unlock()

	// Hand every item to the next owner within its home domain (storage
	// domain for values, access domain for pointer records).
	for _, item := range items {
		target, err := n.Lookup(ctx, uint64(n.space.Sub(id.ID(n.self.ID), 1)), entryHome(item))
		if err != nil || target.Addr == n.self.Addr {
			continue
		}
		req, err := transport.NewMessage(msgStoreV2, reqFromEntry(item, true))
		if err != nil {
			continue
		}
		_, _ = n.call(ctx, target.Addr, req)
	}
	// Tell per-level predecessors we are going, handing them our successor
	// lists as repair hints.
	req, err := transport.NewMessage(msgLeaving, leavingReq{From: n.self, Succs: globalSuccs})
	if err == nil {
		seen := make(map[string]bool)
		for _, p := range preds {
			if p.IsZero() || p.Addr == n.self.Addr || seen[p.Addr] {
				continue
			}
			seen[p.Addr] = true
			_, _ = n.call(ctx, p.Addr, req)
		}
	}
	return n.Close()
}

// Successors returns a copy of the node's successor list at a level.
func (n *Node) Successors(level int) []Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	if level < 0 || level > n.levels {
		return nil
	}
	return append([]Info(nil), n.succs[level]...)
}

// Predecessor returns the node's predecessor at a level.
func (n *Node) Predecessor(level int) Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	if level < 0 || level > n.levels {
		return Info{}
	}
	return n.preds[level]
}

// Fingers returns a copy of the node's finger table.
func (n *Node) Fingers() []Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Info, 0, len(n.fingers))
	for _, f := range n.fingers {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
