package canon_test

import (
	"context"
	"fmt"
	"math/rand"

	canon "github.com/canon-dht/canon"
)

// Build a Crescendo network over a realistic hierarchy and route a query.
func Example() {
	tree := canon.NewHierarchy()
	db, _ := tree.EnsurePath("stanford/cs/db")
	ai, _ := tree.EnsurePath("stanford/cs/ai")

	var placement []*canon.Domain
	for _, d := range []*canon.Domain{db, ai} {
		for i := 0; i < 50; i++ {
			placement = append(placement, d)
		}
	}
	nw, err := canon.Build(tree, placement, canon.Options{Kind: canon.Chord, Seed: 1})
	if err != nil {
		panic(err)
	}
	route := nw.RouteToNode(0, nw.Len()-1)
	fmt.Println("reached destination:", route.Success)
	// Output:
	// reached destination: true
}

// Intra-domain path locality: a route between two nodes of a domain never
// leaves it.
func Example_pathLocality() {
	tree := canon.NewHierarchy()
	cs, _ := tree.EnsurePath("stanford/cs")
	ee, _ := tree.EnsurePath("stanford/ee")
	var placement []*canon.Domain
	for i := 0; i < 60; i++ {
		placement = append(placement, cs)
		placement = append(placement, ee)
	}
	nw, _ := canon.Build(tree, placement, canon.Options{Seed: 2})

	members := nw.NodesIn(cs)
	route := nw.RouteToNode(members[0], members[len(members)-1])
	inside := true
	for _, hop := range route.Nodes {
		if !cs.IsAncestorOf(nw.NodeDomain(hop)) {
			inside = false
		}
	}
	fmt.Println("stayed inside stanford/cs:", inside)
	// Output:
	// stayed inside stanford/cs: true
}

// Hierarchical storage: a value stored within a domain is invisible outside
// its access domain.
func ExampleStore() {
	tree := canon.NewHierarchy()
	cs, _ := tree.EnsurePath("stanford/cs")
	mit, _ := tree.EnsurePath("mit")
	var placement []*canon.Domain
	for i := 0; i < 50; i++ {
		placement = append(placement, cs, mit)
	}
	nw, _ := canon.Build(tree, placement, canon.Options{Seed: 3})
	st := nw.NewStore()

	key := nw.HashKey("internal-report")
	origin := nw.NodesIn(cs)[0]
	if _, err := st.Put(origin, key, []byte("secret"), cs, cs); err != nil {
		panic(err)
	}
	fmt.Println("cs sees it:", st.Get(nw.NodesIn(cs)[1], key).Found)
	fmt.Println("mit sees it:", st.Get(nw.NodesIn(mit)[0], key).Found)
	// Output:
	// cs sees it: true
	// mit sees it: false
}

// Live nodes speak a real wire protocol; the in-memory bus keeps the example
// hermetic (use canon.ListenTCP for sockets).
func ExampleNewLiveNode() {
	bus := canon.NewBus()
	rng := rand.New(rand.NewSource(4))
	ctx := context.Background()

	a, _ := canon.NewLiveNode(canon.LiveConfig{
		Name: "acme/search", RandomID: true, Rand: rng, Transport: bus.Endpoint("a"),
	})
	defer a.Close()
	_ = a.Join(ctx, "")

	b, _ := canon.NewLiveNode(canon.LiveConfig{
		Name: "acme/search", RandomID: true, Rand: rng, Transport: bus.Endpoint("b"),
	})
	defer b.Close()
	_ = b.Join(ctx, a.Info().Addr)

	_ = a.Put(ctx, 42, []byte("hello"), "acme", "acme")
	v, _ := b.Get(ctx, 42)
	fmt.Printf("%s\n", v)
	// Output:
	// hello
}

// Multicast trees form from converged query paths.
func ExampleNetwork_Multicast() {
	tree, _ := canon.BalancedHierarchy(3, 4)
	rng := rand.New(rand.NewSource(5))
	placement := canon.AssignUniform(rng, tree, 500)
	nw, _ := canon.Build(tree, placement, canon.Options{Seed: 5})

	sources := []int{1, 2, 3, 4, 5, 6, 7, 8}
	mt := nw.Multicast(sources, 100)
	fmt.Println("all sources reached:", mt.Failed() == 0)
	fmt.Println("tree is connected:", mt.NumEdges() == mt.NumMembers()-1)
	// Output:
	// all sources reached: true
	// tree is connected: true
}
