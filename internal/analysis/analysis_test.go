package analysis_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/canon-dht/canon/internal/analysis"
	"github.com/canon-dht/canon/internal/chord"
	"github.com/canon-dht/canon/internal/core"
	"github.com/canon-dht/canon/internal/hierarchy"
	"github.com/canon-dht/canon/internal/id"
)

func TestBoundValues(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"chord degree n=1025", analysis.ChordDegreeBound(1025), 11},
		{"chord degree n=2", analysis.ChordDegreeBound(2), 1},
		{"chord hops n=1025", analysis.ChordHopsBound(1025), 5.5},
		{"crescendo hops n=1025", analysis.CrescendoHopsBound(1025), 11},
		{"crescendo degree n=1024 l=3", analysis.CrescendoDegreeBound(1024, 3), math.Log2(1023) + 3},
		{"crescendo degree n=4 l=10", analysis.CrescendoDegreeBound(4, 10), math.Log2(3) + 2},
		{"whp ceiling", analysis.WHPDegreeCeiling(1024, 4), 40},
		{"join messages", analysis.JoinMessagesBound(1024, 5), 50},
	}
	for _, tt := range tests {
		if math.Abs(tt.got-tt.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tt.name, tt.got, tt.want)
		}
	}
	// Degenerate inputs.
	for _, v := range []float64{
		analysis.ChordDegreeBound(1), analysis.ChordHopsBound(0),
		analysis.CrescendoDegreeBound(1, 3), analysis.CrescendoHopsBound(1),
		analysis.WHPDegreeCeiling(1, 4), analysis.JoinMessagesBound(0, 5),
	} {
		if v != 0 {
			t.Errorf("degenerate input should yield 0, got %v", v)
		}
	}
}

// TestBoundsHoldEmpirically ties the formulas back to built networks: the
// same check the per-package theorem tests make, driven through the
// analysis package.
func TestBoundsHoldEmpirically(t *testing.T) {
	const n = 1024
	space := id.DefaultSpace()
	for _, levels := range []int{1, 3} {
		rng := rand.New(rand.NewSource(7))
		tree, err := hierarchy.Balanced(levels, 10)
		if err != nil {
			t.Fatal(err)
		}
		leaves := hierarchy.AssignZipf(rng, tree, n, 1.25)
		pop, err := core.RandomPopulation(rng, space, tree, leaves)
		if err != nil {
			t.Fatal(err)
		}
		nw := core.Build(pop, chord.NewDeterministic(space), nil)

		var degBound float64
		if levels == 1 {
			degBound = analysis.ChordDegreeBound(n)
		} else {
			degBound = analysis.CrescendoDegreeBound(n, levels)
		}
		if avg := nw.AvgDegree(); avg > degBound {
			t.Errorf("levels=%d: avg degree %.3f exceeds bound %.3f", levels, avg, degBound)
		}

		var hops float64
		const pairs = 3000
		rrng := rand.New(rand.NewSource(8))
		for i := 0; i < pairs; i++ {
			r := nw.RouteToNode(rrng.Intn(n), rrng.Intn(n))
			hops += float64(r.Hops())
		}
		avgHops := hops / pairs
		var hopsBound float64
		if levels == 1 {
			hopsBound = analysis.ChordHopsBound(n)
		} else {
			hopsBound = analysis.CrescendoHopsBound(n)
		}
		if avgHops > hopsBound {
			t.Errorf("levels=%d: avg hops %.3f exceeds bound %.3f", levels, avgHops, hopsBound)
		}
		// Theorem 3 ceiling.
		for i := 0; i < n; i++ {
			if float64(nw.Degree(i)) > analysis.WHPDegreeCeiling(n, 4) {
				t.Errorf("levels=%d: node %d degree %d above w.h.p. ceiling", levels, i, nw.Degree(i))
			}
		}
	}
}
