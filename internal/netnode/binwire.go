package netnode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/canon-dht/canon/internal/telemetry"
	"github.com/canon-dht/canon/internal/transport"
)

// Binary marshaling for the hot wire payloads (lookup, store, fetch, ping).
//
// Every type here keeps its json tags — the JSON form is the legacy wire
// format and remains fully supported — and additionally implements
// transport.BinaryAppender + encoding.BinaryUnmarshaler, so the binary mux
// protocol carries these payloads in the compact form specified in
// docs/WIRE.md. Conventions (all multi-byte integers big-endian):
//
//   - ring identifiers and keys: fixed 8 bytes (they are uniformly random,
//     so varints would usually be longer)
//   - counts and lengths: unsigned varints
//   - small signed integers (hops, levels — levels can be -1): signed
//     varints (zigzag)
//   - strings: uvarint byte length, then the bytes
//   - optional byte slices and slices: uvarint n where 0 means absent (nil)
//     and n means length n-1 — preserving the nil/empty distinction the
//     JSON omitempty encoding makes
//   - booleans: one byte, 0 or 1
//
// Decoders are strict: trailing bytes, truncated fields and overflowing
// lengths are errors, so a corrupted frame can never silently decode.

// errBinWire is wrapped by every binary decode failure in this file.
var errBinWire = errors.New("netnode: malformed binary payload")

// maxDecodePrealloc caps the capacity a decoder reserves up front from a
// wire-declared element count. The count itself is still honored — append
// grows past the cap if the payload really carries that many elements — but
// a hostile header claiming 2^60 elements over a few bytes of payload can
// no longer reserve gigabytes before the truncation error surfaces.
const maxDecodePrealloc = 4096

// Compile-time interface checks: these are the payloads the binary wire
// protocol encodes natively.
var (
	_ transport.BinaryAppender = Info{}
	_ transport.BinaryAppender = lookupReq{}
	_ transport.BinaryAppender = lookupResp{}
	_ transport.BinaryAppender = storeReq{}
	_ transport.BinaryAppender = fetchReq{}
	_ transport.BinaryAppender = fetchResp{}
)

// ---- append helpers ----

func appendU64(b []byte, v uint64) []byte {
	var x [8]byte
	binary.BigEndian.PutUint64(x[:], v)
	return append(b, x[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendOptBytes encodes nil as 0 and a present slice p as uvarint(len+1)+p.
func appendOptBytes(b, p []byte) []byte {
	if p == nil {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(p))+1)
	return append(b, p...)
}

// appendSliceLen encodes a slice header with the same nil/present scheme.
func appendSliceLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return binary.AppendUvarint(b, 0)
	}
	return binary.AppendUvarint(b, uint64(n)+1)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---- strict reader ----

// binReader decodes the conventions above; the first failure latches and
// every later read returns zero values.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", errBinWire, what, r.off)
	}
}

func (r *binReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("string overflows buffer")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// optBytes decodes the nil/present scheme of appendOptBytes.
func (r *binReader) optBytes() []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(len(r.data)-r.off) {
		r.fail("bytes overflow buffer")
		return nil
	}
	// make (not append to nil) so an empty-but-present slice stays non-nil,
	// preserving the encoded nil/present distinction exactly.
	p := make([]byte, n)
	copy(p, r.data[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

// sliceLen decodes a slice header: present reports nil (false) vs non-nil.
func (r *binReader) sliceLen() (n int, present bool) {
	v := r.uvarint()
	if r.err != nil || v == 0 {
		return 0, false
	}
	if v-1 > uint64(len(r.data)-r.off) {
		// Every element takes at least one byte; a count beyond the
		// remaining bytes is corrupt and must not pre-allocate.
		r.fail("slice count overflows buffer")
		return 0, false
	}
	return int(v - 1), true
}

func (r *binReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail("truncated bool")
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.fail("bad bool")
		return false
	}
	return b == 1
}

// done returns the latched error, or an error if bytes remain.
func (r *binReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", errBinWire, len(r.data)-r.off)
	}
	return nil
}

// ---- Info ----

// AppendBinary implements transport.BinaryAppender.
func (i Info) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, i.ID)
	b = appendStr(b, i.Name)
	b = appendStr(b, i.Addr)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (i Info) MarshalBinary() ([]byte, error) { return i.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (i *Info) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	i.readFrom(r)
	return r.done()
}

func (i Info) appendTo(b []byte) []byte {
	b, _ = i.AppendBinary(b)
	return b
}

func (i *Info) readFrom(r *binReader) {
	i.ID = r.u64()
	i.Name = r.str()
	i.Addr = r.str()
}

// ---- telemetry spans (carried inside lookup messages) ----

const (
	spanFlagRouteAround = 1 << 0
	spanFlagOwner       = 1 << 1
)

func appendSpan(b []byte, s telemetry.Span) []byte {
	b = binary.AppendVarint(b, int64(s.Hop))
	b = appendU64(b, s.ID)
	b = binary.AppendVarint(b, int64(s.Level)) // -1 on terminal spans
	var flags byte
	if s.RouteAround {
		flags |= spanFlagRouteAround
	}
	if s.Owner {
		flags |= spanFlagOwner
	}
	b = append(b, flags)
	b = appendStr(b, s.Name)
	b = appendStr(b, s.Addr)
	return b
}

func readSpan(r *binReader) telemetry.Span {
	var s telemetry.Span
	s.Hop = int(r.varint())
	s.ID = r.u64()
	s.Level = int(r.varint())
	if r.err == nil && r.off < len(r.data) {
		flags := r.data[r.off]
		r.off++
		if flags&^(spanFlagRouteAround|spanFlagOwner) != 0 {
			r.fail("bad span flags")
		}
		s.RouteAround = flags&spanFlagRouteAround != 0
		s.Owner = flags&spanFlagOwner != 0
	} else {
		r.fail("truncated span flags")
	}
	s.Name = r.str()
	s.Addr = r.str()
	return s
}

func appendSpans(b []byte, spans []telemetry.Span) []byte {
	b = appendSliceLen(b, len(spans), spans == nil)
	for _, s := range spans {
		b = appendSpan(b, s)
	}
	return b
}

func readSpans(r *binReader) []telemetry.Span {
	n, present := r.sliceLen()
	if !present {
		return nil
	}
	spans := make([]telemetry.Span, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		spans = append(spans, readSpan(r))
	}
	return spans
}

// ---- lookup ----

// AppendBinary implements transport.BinaryAppender.
func (q lookupReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.Key)
	b = appendStr(b, q.Prefix)
	b = binary.AppendVarint(b, int64(q.Hops))
	b = appendStr(b, q.Trace)
	b = appendSpans(b, q.Spans)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q lookupReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *lookupReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Key = r.u64()
	q.Prefix = r.str()
	q.Hops = int(r.varint())
	q.Trace = r.str()
	q.Spans = readSpans(r)
	return r.done()
}

// AppendBinary implements transport.BinaryAppender.
func (p lookupResp) AppendBinary(b []byte) ([]byte, error) {
	b = p.Pred.appendTo(b)
	b = p.Succ.appendTo(b)
	b = binary.AppendVarint(b, int64(p.Hops))
	b = appendStr(b, p.Trace)
	b = appendSpans(b, p.Spans)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p lookupResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *lookupResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	p.Pred.readFrom(r)
	p.Succ.readFrom(r)
	p.Hops = int(r.varint())
	p.Trace = r.str()
	p.Spans = readSpans(r)
	return r.done()
}

// ---- store ----

// AppendBinary implements transport.BinaryAppender.
func (q storeReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.Key)
	b = appendOptBytes(b, q.Value)
	b = appendStr(b, q.Storage)
	b = appendStr(b, q.Access)
	b = q.Pointer.appendTo(b)
	b = appendBool(b, q.Replica)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q storeReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *storeReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Key = r.u64()
	q.Value = r.optBytes()
	q.Storage = r.str()
	q.Access = r.str()
	q.Pointer.readFrom(r)
	q.Replica = r.bool()
	return r.done()
}

// ---- fetch ----

// AppendBinary implements transport.BinaryAppender.
func (q fetchReq) AppendBinary(b []byte) ([]byte, error) {
	b = appendU64(b, q.Key)
	b = appendStr(b, q.Origin)
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (q fetchReq) MarshalBinary() ([]byte, error) { return q.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (q *fetchReq) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	q.Key = r.u64()
	q.Origin = r.str()
	return r.done()
}

func appendFetchValue(b []byte, v fetchValue) []byte {
	b = appendOptBytes(b, v.Value)
	b = appendStr(b, v.Access)
	b = v.Pointer.appendTo(b)
	return b
}

func readFetchValue(r *binReader) fetchValue {
	var v fetchValue
	v.Value = r.optBytes()
	v.Access = r.str()
	v.Pointer.readFrom(r)
	return v
}

// AppendBinary implements transport.BinaryAppender.
func (p fetchResp) AppendBinary(b []byte) ([]byte, error) {
	b = appendSliceLen(b, len(p.Values), p.Values == nil)
	for _, v := range p.Values {
		b = appendFetchValue(b, v)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p fetchResp) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *fetchResp) UnmarshalBinary(data []byte) error {
	r := &binReader{data: data}
	n, present := r.sliceLen()
	if !present {
		p.Values = nil
		return r.done()
	}
	p.Values = make([]fetchValue, 0, min(n, maxDecodePrealloc))
	for j := 0; j < n && r.err == nil; j++ {
		p.Values = append(p.Values, readFetchValue(r))
	}
	return r.done()
}
