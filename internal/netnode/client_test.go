package netnode_test

import (
	"context"
	"errors"
	"testing"

	"github.com/canon-dht/canon/internal/netnode"
)

func TestClientOperations(t *testing.T) {
	c := newCluster(t, 21, hierNames())
	defer c.close(t)
	ctx := context.Background()

	client := netnode.NewClient(c.bus.Endpoint("client"))
	var csAddr, mitAddr string
	for _, n := range c.nodes {
		switch n.Info().Name {
		case "stanford/cs":
			csAddr = n.Info().Addr
		case "mit/csail":
			mitAddr = n.Info().Addr
		}
	}

	info, err := client.Ping(ctx, csAddr)
	if err != nil || info.Name != "stanford/cs" {
		t.Fatalf("ping: %+v, %v", info, err)
	}

	// Put through a CS node with Stanford-wide access.
	if err := client.Put(ctx, csAddr, 4242, []byte("via-client"), "stanford/cs", "stanford"); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, csAddr, 4242)
	if err != nil || string(got) != "via-client" {
		t.Fatalf("get via cs: %q, %v", got, err)
	}
	// Not visible through an MIT node.
	if _, err := client.Get(ctx, mitAddr, 4242); !errors.Is(err, netnode.ErrNotFound) {
		t.Errorf("get via mit: %v", err)
	}
	// Validation: storage domain must contain the contacted node.
	if err := client.Put(ctx, mitAddr, 1, nil, "stanford/cs", "stanford"); !errors.Is(err, netnode.ErrBadDomain) {
		t.Errorf("cross-domain client put: %v", err)
	}

	// Lookup agrees with a member node's own lookup.
	owner, hops, err := client.Lookup(ctx, csAddr, 777, "")
	if err != nil || hops < 0 {
		t.Fatalf("client lookup: %v", err)
	}
	var cs *netnode.Node
	for _, n := range c.nodes {
		if n.Info().Addr == csAddr {
			cs = n
			break
		}
	}
	direct, err := cs.Lookup(ctx, 777, "")
	if err != nil || direct.Addr != owner.Addr {
		t.Errorf("client owner %d != node owner %d (%v)", owner.ID, direct.ID, err)
	}

	// Neighbors dump.
	pred, succs, err := client.Neighbors(ctx, csAddr, 0)
	if err != nil || len(succs) == 0 || pred.IsZero() {
		t.Errorf("neighbors: pred=%+v succs=%d err=%v", pred, len(succs), err)
	}
}
