// Package atomicmix is the golden fixture for the atomic/plain
// mixed-access check. The counters struct plays the telemetry hot-path
// counters: some code bumps them with sync/atomic, other code reads them
// with plain loads and no common lock — a data race the Go memory model
// does not forgive.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  uint64
	total uint64
}

var c counters

// bump is the atomic half of the mix.
func bump() { atomic.AddUint64(&c.hits, 1) }

// report is the plain half: a racy read against bump.
func report() uint64 {
	return c.hits // want `field atomicmix.counters.hits is accessed both through sync/atomic and by plain load/store`
}

var seq uint64

// next bumps the package-level sequence atomically.
func next() uint64 { return atomic.AddUint64(&seq, 1) }

// peek reads it plainly: mixed access on a package-level variable.
func peek() uint64 {
	return seq // want `field atomicmix.seq is accessed both through sync/atomic and by plain load/store`
}

var suppressed uint64

// bumpSuppressed is the atomic half of the pragma-proof pair.
func bumpSuppressed() { atomic.AddUint64(&suppressed, 1) }

// readSuppressed shows the escape hatch: the finding on the plain-access
// line is suppressed, so no want annotation appears.
func readSuppressed() uint64 {
	//canonvet:ignore atomicmix -- fixture: proves the pragma suppresses the finding
	return suppressed
}
