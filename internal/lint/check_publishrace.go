package lint

// publishrace: the flow-sensitive upgrade of snapshotmut. Once a value
// flows into an atomic.Pointer Store/Swap/CompareAndSwap (or a
// publish-summary/publish*-named helper), concurrent readers hold it
// without locks, so any subsequent write through it — in any file — is a
// data race against every reader of the published snapshot. The value-flow
// engine (dataflow.go) tracks the publish site per cell and flags writes
// reachable after it on any fall-through path; PublishesParam summaries
// carry the fact across call boundaries.

var checkPublishRace = Check{
	Name: "publishrace",
	Doc:  "writes to a value after it was published via an atomic pointer store (flow-sensitive snapshot immutability)",
	RunModule: func(mp *ModulePass) {
		for _, f := range mp.Graph.FlowFindings() {
			if f.Check != "publishrace" {
				continue
			}
			mp.Report(f.Pos, f.Chain, "%s", f.Msg)
		}
	},
}
