package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-transport", "carrier-pigeon"}); err == nil {
		t.Error("unknown transport should error")
	}
	if err := run([]string{"-listen", "definitely:not:an:address"}); err == nil {
		t.Error("bad listen address should error")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Error("unknown flag should error")
	}
	// -data-dir pointing at a regular file cannot host the storage engine.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-data-dir", notADir}); err == nil {
		t.Error("-data-dir at a regular file should error")
	}
}
