package netnode_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"github.com/canon-dht/canon/internal/id"
	"github.com/canon-dht/canon/internal/netnode"
	"github.com/canon-dht/canon/internal/transport"
)

// cluster is a set of live nodes on a shared in-memory bus.
type cluster struct {
	bus   *transport.Bus
	nodes []*netnode.Node
	rng   *rand.Rand
}

// newCluster spins up one node per name, joining everyone through the first
// node, then runs maintenance rounds until the rings settle.
func newCluster(t *testing.T, seed int64, names []string) *cluster {
	t.Helper()
	c := &cluster{bus: transport.NewBus(), rng: rand.New(rand.NewSource(seed))}
	ctx := context.Background()
	for i, name := range names {
		ep := c.bus.Endpoint(fmt.Sprintf("node-%d", i))
		n, err := netnode.New(netnode.Config{
			Name:      name,
			RandomID:  true,
			Rand:      c.rng,
			Transport: ep,
		})
		if err != nil {
			t.Fatal(err)
		}
		contact := ""
		if i > 0 {
			contact = c.nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatalf("join node %d (%s): %v", i, name, err)
		}
		c.nodes = append(c.nodes, n)
	}
	c.settle(t, 12)
	return c
}

// settle runs maintenance rounds across all nodes.
func (c *cluster) settle(t testing.TB, rounds int) {
	t.Helper()
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, n := range c.nodes {
			n.StabilizeOnce(ctx)
		}
		for _, n := range c.nodes {
			n.FixFingers(ctx)
		}
	}
}

func (c *cluster) close(t testing.TB) {
	t.Helper()
	for _, n := range c.nodes {
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

// ringOK verifies that the nodes of every domain form a consistent ring at
// the corresponding level: each member's first successor at that level is
// the next member clockwise.
func (c *cluster) ringOK(t *testing.T, prefix string, level int, exclude map[string]bool) {
	t.Helper()
	var members []*netnode.Node
	for _, n := range c.nodes {
		if exclude[n.Info().Addr] {
			continue
		}
		name := n.Info().Name
		if prefix == "" || name == prefix || len(name) > len(prefix) && name[:len(prefix)+1] == prefix+"/" {
			members = append(members, n)
		}
	}
	if len(members) < 2 {
		return
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Info().ID < members[j].Info().ID })
	for i, m := range members {
		want := members[(i+1)%len(members)].Info()
		succs := m.Successors(level)
		if len(succs) == 0 {
			t.Fatalf("domain %q: node %d has no successors at level %d", prefix, m.Info().ID, level)
		}
		if succs[0].Addr != want.Addr {
			t.Fatalf("domain %q: node %d successor = %d, want %d",
				prefix, m.Info().ID, succs[0].ID, want.ID)
		}
	}
}

func TestBootstrapSingleNode(t *testing.T) {
	bus := transport.NewBus()
	n, err := netnode.New(netnode.Config{
		Name: "a/b", ID: 42, Transport: bus.Endpoint("solo"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ctx := context.Background()
	if err := n.Join(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := n.Put(ctx, 7, []byte("v"), "", ""); err != nil {
		t.Fatal(err)
	}
	got, err := n.Get(ctx, 7)
	if err != nil || string(got) != "v" {
		t.Fatalf("get: %q, %v", got, err)
	}
	if _, err := n.Get(ctx, 8); !errors.Is(err, netnode.ErrNotFound) {
		t.Errorf("absent key: %v", err)
	}
	owner, err := n.Lookup(ctx, 1234, "")
	if err != nil || owner.ID != 42 {
		t.Errorf("lookup on singleton: %+v, %v", owner, err)
	}
}

func TestFlatRingForms(t *testing.T) {
	names := make([]string, 8)
	c := newCluster(t, 1, names) // all in root domain
	defer c.close(t)
	c.ringOK(t, "", 0, nil)

	// Lookups from every node agree on every key's owner.
	ctx := context.Background()
	infos := make([]netnode.Info, len(c.nodes))
	for i, n := range c.nodes {
		infos[i] = n.Info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	space := id.DefaultSpace()
	for trial := 0; trial < 50; trial++ {
		key := uint64(space.Random(c.rng))
		// Expected owner: greatest ID <= key, wrapping.
		want := infos[len(infos)-1]
		for _, inf := range infos {
			if inf.ID <= key {
				want = inf
			}
		}
		for _, n := range c.nodes {
			got, err := n.Lookup(ctx, key, "")
			if err != nil {
				t.Fatal(err)
			}
			if got.Addr != want.Addr {
				t.Fatalf("lookup(%d) from %d = %d, want %d", key, n.Info().ID, got.ID, want.ID)
			}
		}
	}
}

func hierNames() []string {
	var names []string
	for _, leaf := range []string{"stanford/cs", "stanford/ee", "mit/csail"} {
		for i := 0; i < 5; i++ {
			names = append(names, leaf)
		}
	}
	return names
}

func TestHierarchicalRingsForm(t *testing.T) {
	c := newCluster(t, 2, hierNames())
	defer c.close(t)
	c.ringOK(t, "", 0, nil)
	c.ringOK(t, "stanford", 1, nil)
	c.ringOK(t, "mit", 1, nil)
	c.ringOK(t, "stanford/cs", 2, nil)
	c.ringOK(t, "stanford/ee", 2, nil)
	c.ringOK(t, "mit/csail", 2, nil)
}

func TestHierarchicalLookupStaysInDomain(t *testing.T) {
	c := newCluster(t, 3, hierNames())
	defer c.close(t)
	ctx := context.Background()

	// Constrained lookups return an owner inside the domain.
	for _, n := range c.nodes {
		if n.Info().Name != "stanford/cs" {
			continue
		}
		for trial := 0; trial < 20; trial++ {
			key := uint64(id.DefaultSpace().Random(c.rng))
			owner, err := n.Lookup(ctx, key, "stanford/cs")
			if err != nil {
				t.Fatal(err)
			}
			if owner.Name != "stanford/cs" {
				t.Fatalf("constrained lookup returned outsider %q", owner.Name)
			}
			// And it must be the true owner among stanford/cs members.
			var best netnode.Info
			bestSet := false
			var members []netnode.Info
			for _, m := range c.nodes {
				if m.Info().Name == "stanford/cs" {
					members = append(members, m.Info())
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
			best = members[len(members)-1]
			bestSet = true
			for _, inf := range members {
				if inf.ID <= key {
					best = inf
				}
			}
			if bestSet && owner.Addr != best.Addr {
				t.Fatalf("domain owner of %d = %d, want %d", key, owner.ID, best.ID)
			}
		}
	}
}

func TestHierarchicalStorageAndAccess(t *testing.T) {
	c := newCluster(t, 4, hierNames())
	defer c.close(t)
	ctx := context.Background()

	var csNode, eeNode, mitNode *netnode.Node
	for _, n := range c.nodes {
		switch n.Info().Name {
		case "stanford/cs":
			csNode = n
		case "stanford/ee":
			eeNode = n
		case "mit/csail":
			mitNode = n
		}
	}
	// Stored in stanford/cs, visible throughout stanford.
	if err := csNode.Put(ctx, 1000, []byte("paper.pdf"), "stanford/cs", "stanford"); err != nil {
		t.Fatal(err)
	}
	if got, err := csNode.Get(ctx, 1000); err != nil || string(got) != "paper.pdf" {
		t.Fatalf("cs get: %q, %v", got, err)
	}
	if got, err := eeNode.Get(ctx, 1000); err != nil || string(got) != "paper.pdf" {
		t.Fatalf("ee get: %q, %v", got, err)
	}
	if _, err := mitNode.Get(ctx, 1000); !errors.Is(err, netnode.ErrNotFound) {
		t.Fatalf("mit must not access stanford content: %v", err)
	}
	// Validation errors.
	if err := csNode.Put(ctx, 1, nil, "mit/csail", ""); !errors.Is(err, netnode.ErrBadDomain) {
		t.Errorf("put outside own domain: %v", err)
	}
	if err := csNode.Put(ctx, 1, nil, "stanford/cs", "mit"); !errors.Is(err, netnode.ErrBadDomain) {
		t.Errorf("access not containing storage: %v", err)
	}
}

func TestDomainStorageStaysInDomain(t *testing.T) {
	c := newCluster(t, 5, hierNames())
	defer c.close(t)
	ctx := context.Background()
	var cs *netnode.Node
	for _, n := range c.nodes {
		if n.Info().Name == "stanford/cs" {
			cs = n
			break
		}
	}
	// Every cs-stored key must land on a stanford/cs node.
	for i := 0; i < 30; i++ {
		key := uint64(id.DefaultSpace().Random(c.rng))
		if err := cs.Put(ctx, key, []byte("x"), "stanford/cs", "stanford/cs"); err != nil {
			t.Fatal(err)
		}
		owner, err := cs.Lookup(ctx, key, "stanford/cs")
		if err != nil {
			t.Fatal(err)
		}
		if owner.Name != "stanford/cs" {
			t.Fatalf("key %d stored at %q", key, owner.Name)
		}
	}
	total := 0
	for _, n := range c.nodes {
		if n.Info().Name == "stanford/cs" {
			total += n.StoredKeys()
		} else if n.StoredKeys() > 0 {
			// Registry-driven storage is allowed on any node, but cs-domain
			// items must not appear outside. StoredKeys counts items, so a
			// nonzero count here could be registry-free: verify by access.
			if got, err := n.Get(ctx, 12345678); err == nil && got != nil {
				t.Fatalf("unexpected content on %q", n.Info().Name)
			}
		}
	}
	if total == 0 {
		t.Fatal("no cs node stored anything")
	}
}

func TestNodeFailureRepair(t *testing.T) {
	names := make([]string, 10)
	c := newCluster(t, 6, names)
	defer c.close(t)
	ctx := context.Background()

	// Crash two nodes.
	downed := map[string]bool{}
	for _, i := range []int{3, 7} {
		addr := c.nodes[i].Info().Addr
		c.bus.SetDown(addr, true)
		downed[addr] = true
	}
	c.settle(t, 12)
	c.ringOK(t, "", 0, downed)

	// Lookups from survivors still converge on a live owner.
	for _, n := range c.nodes {
		if downed[n.Info().Addr] {
			continue
		}
		owner, err := n.Lookup(ctx, 777, "")
		if err != nil {
			t.Fatalf("lookup after failures: %v", err)
		}
		if downed[owner.Addr] {
			t.Fatalf("lookup returned dead node %d", owner.ID)
		}
	}
}

func TestGracefulLeaveTransfersData(t *testing.T) {
	names := make([]string, 6)
	c := newCluster(t, 7, names)
	defer c.close(t)
	ctx := context.Background()

	key := uint64(0xABCDE)
	if err := c.nodes[0].Put(ctx, key, []byte("keep-me"), "", ""); err != nil {
		t.Fatal(err)
	}
	owner, err := c.nodes[0].Lookup(ctx, key, "")
	if err != nil {
		t.Fatal(err)
	}
	// Make the owner leave.
	var leaver *netnode.Node
	for _, n := range c.nodes {
		if n.Info().Addr == owner.Addr {
			leaver = n
			break
		}
	}
	if leaver == nil {
		t.Fatal("owner not found")
	}
	if err := leaver.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	c.bus.SetDown(owner.Addr, true) // make sure nobody reaches it
	// Let survivors repair, then the value must still be retrievable.
	alive := c.nodes[:0]
	for _, n := range c.nodes {
		if n != leaver {
			alive = append(alive, n)
		}
	}
	c.nodes = alive
	c.settle(t, 10)
	got, err := c.nodes[0].Get(ctx, key)
	if err != nil || string(got) != "keep-me" {
		t.Fatalf("value lost after graceful leave: %q, %v", got, err)
	}
}

func TestLateJoinFindsDeepDomain(t *testing.T) {
	// Join a node into a deep domain through a contact in a different
	// domain: the membership registry must route it home.
	c := newCluster(t, 8, hierNames())
	defer c.close(t)
	ctx := context.Background()

	ep := c.bus.Endpoint("late")
	late, err := netnode.New(netnode.Config{
		Name: "stanford/cs", RandomID: true, Rand: c.rng, Transport: ep,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Contact is an MIT node.
	var mit *netnode.Node
	for _, n := range c.nodes {
		if n.Info().Name == "mit/csail" {
			mit = n
			break
		}
	}
	if err := late.Join(ctx, mit.Info().Addr); err != nil {
		t.Fatal(err)
	}
	c.nodes = append(c.nodes, late)
	c.settle(t, 10)
	c.ringOK(t, "stanford/cs", 2, nil)
	c.ringOK(t, "", 0, nil)
}

func TestLookupHopsBounded(t *testing.T) {
	names := make([]string, 16)
	c := newCluster(t, 9, names)
	defer c.close(t)
	ctx := context.Background()
	var total, count float64
	for i := 0; i < 100; i++ {
		n := c.nodes[c.rng.Intn(len(c.nodes))]
		key := uint64(id.DefaultSpace().Random(c.rng))
		_, hops, err := n.LookupHops(ctx, key, "")
		if err != nil {
			t.Fatal(err)
		}
		total += float64(hops)
		count++
	}
	if avg := total / count; avg > 8 {
		t.Errorf("average lookup hops %.1f too high for 16 nodes", avg)
	}
}

func TestBackgroundMaintenance(t *testing.T) {
	bus := transport.NewBus()
	rng := rand.New(rand.NewSource(10))
	ctx := context.Background()
	var nodes []*netnode.Node
	for i := 0; i < 4; i++ {
		n, err := netnode.New(netnode.Config{
			RandomID: true, Rand: rng,
			Transport: bus.Endpoint(fmt.Sprintf("bg-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		n.Start(5 * time.Millisecond)
		nodes = append(nodes, n)
	}
	time.Sleep(100 * time.Millisecond)
	for _, n := range nodes {
		succs := n.Successors(0)
		if len(succs) == 0 {
			t.Error("no successors after background maintenance")
		}
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

func TestOverTCP(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(11))
	var nodes []*netnode.Node
	for i := 0; i < 4; i++ {
		tr, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n, err := netnode.New(netnode.Config{
			Name: "tcp/test", RandomID: true, Rand: rng, Transport: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for r := 0; r < 3; r++ {
		for _, n := range nodes {
			n.StabilizeOnce(ctx)
			n.FixFingers(ctx)
		}
	}
	if err := nodes[1].Put(ctx, 99, []byte("over-tcp"), "", ""); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[3].Get(ctx, 99)
	if err != nil || string(got) != "over-tcp" {
		t.Fatalf("tcp get: %q, %v", got, err)
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	names := make([]string, 6)
	c := newCluster(t, 51, names)
	defer c.close(t)
	ctx := context.Background()

	before := c.nodes[0].Stats()
	if _, err := c.nodes[0].Lookup(ctx, 12345, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[0].Put(ctx, 12345, []byte("x"), "", ""); err != nil {
		t.Fatal(err)
	}
	after := c.nodes[0].Stats()
	if after.Sent["lookup"] < before.Sent["lookup"] {
		t.Error("sent lookup counter should not decrease")
	}
	totalSent := int64(0)
	for _, v := range after.Sent {
		totalSent += v
	}
	if totalSent == 0 {
		t.Error("no messages counted as sent")
	}
	// Some node must have received lookups.
	received := int64(0)
	for _, n := range c.nodes {
		received += n.Stats().Received["lookup"]
	}
	if received == 0 {
		t.Error("no lookup receipts counted")
	}
	// The snapshot is a copy: mutating it must not affect the node.
	after.Sent["lookup"] = -999
	if c.nodes[0].Stats().Sent["lookup"] == -999 {
		t.Error("Stats returned internal map")
	}
}

func TestStatusEndpoint(t *testing.T) {
	c := newCluster(t, 52, hierNames())
	defer c.close(t)
	node := c.nodes[0]

	srv := httptest.NewServer(node)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st netnode.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Info.Addr != node.Info().Addr {
		t.Errorf("status info mismatch: %+v", st.Info)
	}
	if len(st.Levels) != node.Levels()+1 {
		t.Errorf("levels = %d, want %d", len(st.Levels), node.Levels()+1)
	}
	for _, lvl := range st.Levels {
		if len(lvl.Successors) == 0 {
			t.Errorf("level %d has no successors", lvl.Level)
		}
	}
	// Non-GET is rejected.
	postResp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", postResp.StatusCode)
	}
}

func TestOverUDP(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(12))
	var nodes []*netnode.Node
	for i := 0; i < 4; i++ {
		tr, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n, err := netnode.New(netnode.Config{
			Name: "lan/segment", RandomID: true, Rand: rng, Transport: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		contact := ""
		if i > 0 {
			contact = nodes[0].Info().Addr
		}
		if err := n.Join(ctx, contact); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for r := 0; r < 3; r++ {
		for _, n := range nodes {
			n.StabilizeOnce(ctx)
			n.FixFingers(ctx)
		}
	}
	if err := nodes[0].Put(ctx, 77, []byte("over-udp"), "lan", "lan"); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[2].Get(ctx, 77)
	if err != nil || string(got) != "over-udp" {
		t.Fatalf("udp get: %q, %v", got, err)
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}
