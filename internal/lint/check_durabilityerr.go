package lint

// durabilityerr: the flow-sensitive complement to fsyncbeforeack. In the
// storage engine and the ack paths that sit on it (Config.
// DurabilityPackages), the error result of a durability primitive —
// Sync/Flush/Close/Write/Truncate or a WAL append* — is the only signal
// that the durability promise failed; discarding it (bare call or blank
// assignment) or shadowing it before it is read breaks the latch/ack
// contract of docs/STORAGE.md. Discards lexically inside an error-path
// branch (if err != nil) or a deferred cleanup are allowed: secondary
// errors on a path that already failed are idiomatic best-effort.

var checkDurabilityErr = Check{
	Name: "durabilityerr",
	Doc:  "durability-call error results (Sync/Write/Close/WAL append) discarded or shadowed before the latch/ack site",
	RunModule: func(mp *ModulePass) {
		for _, f := range mp.Graph.FlowFindings() {
			if f.Check != "durabilityerr" {
				continue
			}
			mp.Report(f.Pos, f.Chain, "%s", f.Msg)
		}
	},
}
