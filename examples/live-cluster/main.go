// Live cluster: spin up real Crescendo nodes in-process (over the in-memory
// bus — swap in canon.ListenTCP for real sockets), join them through one
// bootstrap node, store and retrieve content with domain-scoped visibility,
// then kill an entire organization and watch the survivors keep working —
// the paper's fault-isolation property, live.
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"

	canon "github.com/canon-dht/canon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	bus := canon.NewBus()
	rng := rand.New(rand.NewSource(4))

	// Five nodes per department across two organizations.
	var nodes []*canon.LiveNode
	var bootstrap string
	for _, dept := range []string{"acme/search", "acme/ads", "globex/r-and-d"} {
		for i := 0; i < 5; i++ {
			addr := fmt.Sprintf("%s-%d", dept, i)
			node, err := canon.NewLiveNode(canon.LiveConfig{
				Name:      dept,
				RandomID:  true,
				Rand:      rng,
				Transport: bus.Endpoint(addr),
			})
			if err != nil {
				return err
			}
			if err := node.Join(ctx, bootstrap); err != nil {
				return fmt.Errorf("join %s: %w", addr, err)
			}
			if bootstrap == "" {
				bootstrap = node.Info().Addr
			}
			nodes = append(nodes, node)
		}
	}
	settle(ctx, nodes, 12)
	fmt.Printf("cluster up: %d live nodes across 3 departments\n", len(nodes))

	byName := func(name string) *canon.LiveNode {
		for _, n := range nodes {
			if n.Info().Name == name {
				return n
			}
		}
		return nil
	}
	search := byName("acme/search")
	ads := byName("acme/ads")
	globex := byName("globex/r-and-d")

	// Acme-wide content stored in acme/search.
	if err := search.Put(ctx, 1001, []byte("acme index shard"), "acme/search", "acme"); err != nil {
		return err
	}
	v, err := ads.Get(ctx, 1001)
	fmt.Printf("acme/ads reads acme content: %q (err=%v)\n", v, err)
	if _, err := globex.Get(ctx, 1001); !errors.Is(err, canon.ErrLiveNotFound) {
		return fmt.Errorf("globex should not see acme content, got %v", err)
	}
	fmt.Println("globex cannot read acme content (access control holds)")

	// Globex-internal content.
	if err := globex.Put(ctx, 2002, []byte("globex prototype"), "globex/r-and-d", "globex/r-and-d"); err != nil {
		return err
	}

	// Catastrophe: every acme node crashes (no graceful leave).
	fmt.Println("\ncrashing all 10 acme nodes...")
	var survivors []*canon.LiveNode
	for _, n := range nodes {
		if n.Info().Name == "globex/r-and-d" {
			survivors = append(survivors, n)
			continue
		}
		bus.SetDown(n.Info().Addr, true)
	}
	settle(ctx, survivors, 12)

	// Fault isolation: globex's internal content is still served, entirely
	// within globex.
	v, err = survivors[0].Get(ctx, 2002)
	if err != nil {
		return fmt.Errorf("globex content lost after acme crash: %w", err)
	}
	fmt.Printf("globex still serves its content after the crash: %q\n", v)

	owner, hops, err := survivors[1].LookupHops(ctx, 31337, "globex/r-and-d")
	if err != nil {
		return err
	}
	fmt.Printf("globex lookup after crash: owner node %d in %d hops\n", owner.ID, hops)

	for _, n := range survivors {
		if err := n.Close(); err != nil {
			return err
		}
	}
	fmt.Println("\ndone")
	return nil
}

func settle(ctx context.Context, nodes []*canon.LiveNode, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			n.StabilizeOnce(ctx)
		}
		for _, n := range nodes {
			n.FixFingers(ctx)
		}
	}
}
